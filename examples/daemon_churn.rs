//! Sustained churn through an in-process `chronusd`.
//!
//! Drives the daemon with a seeded Poisson arrival process — mixed
//! tenants, priorities and instance shapes, one deliberately throttled
//! tenant — then reads the admission outcome and latency percentiles
//! straight off the daemon's own Prometheus scrape, the way an
//! operator's dashboard would.
//!
//! ```text
//! cargo run --release --example daemon_churn [SEED]
//! ```

use chronus::daemon::{Daemon, DaemonConfig, Priority, Shed};
use chronus::net::{motivating_example, reversal_instance};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::Duration;

/// Arrival rate of the churn trace (requests per second).
const LAMBDA: f64 = 200.0;
/// Number of arrivals in the trace.
const EVENTS: usize = 200;

/// Extracts one cumulative-histogram percentile (in milliseconds) from
/// a Prometheus text exposition.
fn percentile_ms(text: &str, series: &str, q: f64) -> f64 {
    let prefix = format!("{series}_bucket{{le=\"");
    let mut buckets: Vec<(f64, f64)> = Vec::new();
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix(&prefix) {
            if let Some((le, value)) = rest.split_once("\"} ") {
                let le = if le == "+Inf" {
                    f64::INFINITY
                } else {
                    le.parse().unwrap_or(f64::INFINITY)
                };
                buckets.push((le, value.parse().unwrap_or(0.0)));
            }
        }
    }
    let total = buckets.last().map(|(_, c)| *c).unwrap_or(0.0);
    if total == 0.0 {
        return 0.0;
    }
    let rank = (q * total).ceil();
    for (le, cumulative) in buckets {
        if cumulative >= rank {
            return le / 1e6; // ns bucket bound -> ms
        }
    }
    f64::INFINITY
}

fn counter(text: &str, series: &str) -> f64 {
    text.lines()
        .find_map(|l| l.strip_prefix(&format!("{series} ")))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.0)
}

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);
    let mut rng = StdRng::seed_from_u64(seed);

    let state = std::env::temp_dir().join(format!("chronusd-churn-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&state);
    let mut config = DaemonConfig {
        snapshot_dir: state.clone(),
        workers: 2,
        queue_bound: 32,
        tenant_burst: 64.0,
        ..DaemonConfig::default()
    };
    // One tenant is held to a trickle so the shed path shows up in the
    // trace: ~40 req/s offered against a 5 req/s budget.
    config
        .tenant_overrides
        .insert("burst".to_string(), (5.0, 2.0));
    let daemon = Daemon::start(config).expect("daemon start");

    println!("chronusd churn: seed {seed}, {EVENTS} Poisson arrivals at {LAMBDA}/s");
    let priorities = [Priority::High, Priority::Normal, Priority::Low];
    let mut admitted = Vec::new();
    let (mut shed_rate, mut shed_queue) = (0u64, 0u64);
    for i in 0..EVENTS {
        // Poisson process: exponential inter-arrival gaps.
        let u: f64 = rng.gen();
        let gap_s = -(1.0 - u).max(f64::MIN_POSITIVE).ln() / LAMBDA;
        std::thread::sleep(Duration::from_nanos((gap_s * 1e9) as u64));

        let tenant = if i % 5 == 4 {
            "burst".to_string()
        } else {
            format!("tenant-{}", i % 4)
        };
        let instance = if rng.gen_bool(0.7) {
            Arc::new(motivating_example())
        } else {
            Arc::new(reversal_instance(rng.gen_range(4..8usize), 2, 1))
        };
        match daemon.submit(&tenant, priorities[i % 3], None, instance) {
            Ok(id) => admitted.push(id),
            Err(Shed::RateLimited { .. }) => shed_rate += 1,
            Err(Shed::QueueFull { .. }) => shed_queue += 1,
            Err(Shed::Draining) => unreachable!("daemon is not draining"),
        }
    }

    // Let every admitted update settle, then confirm the armed ones so
    // the journal ends the run empty.
    let mut armed = 0u64;
    for &id in &admitted {
        let status = daemon
            .watch(id, Duration::from_secs(30))
            .expect("update settles");
        if status.state == chronus::daemon::UpdateState::Armed {
            daemon.confirm(id).expect("confirm armed update");
            armed += 1;
        }
    }

    let text = daemon.metrics_text();
    println!(
        "admission: {} submitted, {} admitted, {} shed (rate {}, queue {}), {} armed",
        EVENTS,
        admitted.len(),
        shed_rate + shed_queue,
        shed_rate,
        shed_queue,
        armed
    );
    let hits = counter(&text, "chronus_daemon_cache_hits");
    let misses = counter(&text, "chronus_daemon_cache_misses");
    println!(
        "warm cache: {hits} hits / {misses} misses ({:.0}% hit rate)",
        100.0 * hits / (hits + misses).max(1.0)
    );
    println!("latency percentiles (log2-bucket upper bounds):");
    for series in [
        "chronus_daemon_queue_wait_ns",
        "chronus_daemon_plan_ns",
        "chronus_daemon_submit_to_settle_ns",
    ] {
        println!(
            "  {series:<36} p50 <= {:>9.3} ms   p90 <= {:>9.3} ms   p99 <= {:>9.3} ms",
            percentile_ms(&text, series, 0.50),
            percentile_ms(&text, series, 0.90),
            percentile_ms(&text, series, 0.99),
        );
    }

    let report = daemon.shutdown();
    println!(
        "drained: engine planned {}, {} armed left in journal",
        report.engine_planned, report.snapshot_live
    );
    assert_eq!(
        report.snapshot_live, 0,
        "confirmed updates must leave no journal residue"
    );
    let _ = std::fs::remove_dir_all(state);
}
