//! Traffic engineering: swap two flows between a spine and a detour,
//! without transient congestion.
//!
//! ```text
//! cargo run --example traffic_engineering
//! ```
//!
//! The paper's §I motivation (2): "to minimize the maximal link load,
//! an operator may decide to reroute parts of the traffic along
//! different links." Here two 300-unit flows swap paths — one moves
//! from the 500-capacity spine to the detour, the other the opposite
//! way. No link can carry both flows at once (`C < 2d`), so the update
//! *order and timing* decide whether the swap congests: flipping both
//! at `t₀` overlaps the draining old stream with the arriving new one,
//! while the Chronus schedule serializes the moves across time steps.

use chronus::core::greedy::greedy_schedule;
use chronus::net::{Flow, FlowId, NetworkBuilder, Path, SwitchId, UpdateInstance};
use chronus::opt::optimal_schedule;
use chronus::timenet::{FluidSimulator, Schedule, Verdict};
use std::collections::BTreeMap;

fn main() {
    // Two ingress switches (0 and 5) reach destination 2 through a
    // spine (via 1) or a detour (via 3, 4). Ingress 0 is far from the
    // spine (delay 3) and close to the detour (delay 1); ingress 5 the
    // opposite — and its spine approach (delay 4) is slower than f0's,
    // so f1's arrival can be sequenced after f0's drain (with equal
    // approach delays the swap would deadlock: each flow would need
    // the other to move first). All links have capacity 500.
    let mut b = NetworkBuilder::with_switches(6);
    let v = SwitchId;
    for (x, y, delay) in [
        (0, 1, 3),
        (5, 1, 5),
        (1, 2, 1),
        (0, 3, 1),
        (5, 3, 3),
        (3, 4, 1),
        (4, 2, 1),
    ] {
        b.add_duplex_link(v(x), v(y), 500, delay)
            .expect("unique links");
    }
    let net = b.build();

    // f0 leaves the spine for the detour; f1 does the opposite.
    let f0 = Flow::new(
        FlowId(0),
        300,
        Path::new(vec![v(0), v(1), v(2)]),
        Path::new(vec![v(0), v(3), v(4), v(2)]),
    )
    .expect("valid flow");
    let f1 = Flow::new(
        FlowId(1),
        300,
        Path::new(vec![v(5), v(3), v(4), v(2)]),
        Path::new(vec![v(5), v(1), v(2)]),
    )
    .expect("valid flow");
    println!("f0: {} => {}", f0.initial, f0.fin);
    println!("f1: {} => {}\n", f1.initial, f1.fin);
    let instance = UpdateInstance::new(net, vec![f0, f1]).expect("valid instance");

    print_loads("before", &instance, |f| &f.initial);
    print_loads("after", &instance, |f| &f.fin);

    // Flipping everything at t0 overlaps old and new streams.
    let naive = Schedule::all_at_zero(&instance);
    let naive_report = FluidSimulator::check(&instance, &naive);
    println!(
        "all-at-once verdict: {:?} ({} congestion events)",
        naive_report.verdict(),
        naive_report.congestion.len()
    );
    assert_eq!(naive_report.verdict(), Verdict::Inconsistent);

    // The greedy scheduler only ever commits *prefix-safe* plans —
    // every prefix of its schedule is itself consistent, so the
    // migration can be aborted at any moment without harm. A swap is
    // fundamentally not prefix-safe: after the first flow moves, the
    // network is congested until the second one follows. The greedy
    // therefore (correctly, by its own contract) reports infeasible…
    let greedy = greedy_schedule(&instance);
    println!(
        "greedy (prefix-safe plans only): {:?}",
        greedy.err().map(|e| e.to_string())
    );

    // …while the exact solver explores transiently-committed states
    // and finds the tightly-coupled schedule.
    let opt = optimal_schedule(&instance).expect("the swap is feasible when timed");
    let report = FluidSimulator::check(&instance, &opt.schedule);
    assert_eq!(report.verdict(), Verdict::Consistent);
    println!(
        "\noptimal swap schedule (|T| = {} steps):\n{}",
        opt.makespan + 1,
        opt.schedule
    );
}

fn print_loads<'a>(
    label: &str,
    instance: &'a UpdateInstance,
    path_of: impl Fn(&'a Flow) -> &'a Path,
) {
    let mut loads: BTreeMap<(SwitchId, SwitchId), u64> = BTreeMap::new();
    for f in &instance.flows {
        for e in path_of(f).edges() {
            *loads.entry(e).or_default() += f.demand;
        }
    }
    let max = loads.values().copied().max().unwrap_or(0);
    println!("{label}: max link load {max}");
    for ((a, b), l) in loads {
        println!("  <{a}, {b}> load {l}");
    }
    println!();
}
