//! Compare Chronus with the OR and TP baselines on one scenario.
//!
//! ```text
//! cargo run --example timed_vs_baselines
//! ```
//!
//! Reproduces the Fig. 6 experiment interactively: the 10-switch
//! 500 Mbps scenario is migrated by each of the three schemes on the
//! emulated data plane, and their per-second bandwidth curves, loss
//! events and rule-space peaks are printed side by side — the paper's
//! three-way comparison in one run.

use chronus::baselines::or::{or_rounds, OrConfig};
use chronus::baselines::tp::{chronus_peak_rule_count, tp_plan};
use chronus::core::greedy::greedy_schedule;
use chronus::emu::{EmuConfig, Emulator, UpdateDriver};
use chronus_bench::fig6::fig6_instance;

fn main() {
    let instance = fig6_instance();
    let flow = instance.flow();
    println!("scenario: 10 switches, 500 Mbps links, one 500 Mbps aggregate flow");
    println!("initial : {}", flow.initial);
    println!("final   : {}\n", flow.fin);

    let schedule = greedy_schedule(&instance).expect("feasible").schedule;
    let rounds = or_rounds(&instance, OrConfig::default())
        .expect("OR plan")
        .rounds;

    let drivers = vec![
        ("Chronus", UpdateDriver::chronus(schedule, &instance)),
        ("OR", UpdateDriver::or_rounds(rounds)),
        ("TP", UpdateDriver::two_phase()),
    ];

    println!(
        "{:>8} | {:>12} | {:>10} | {:>10} | {:>10}",
        "scheme", "peak Mbps", "ttl drops", "buf drops", "peak rules"
    );
    for (name, driver) in drivers {
        // Worst observed over a few seeds: OR's congestion depends on
        // how the random installation latencies fall.
        let mut peak: f64 = 0.0;
        let mut ttl = 0;
        let mut buf = 0;
        let mut rules = 0;
        for seed in 0..4 {
            let mut emu = Emulator::new(&instance, EmuConfig::default(), seed);
            emu.install_driver(driver.clone());
            let report = emu.run();
            peak = peak.max(report.global_peak_offered_mbps());
            ttl += report.ttl_drops;
            buf += report.buffer_drops;
            rules = rules.max(report.peak_rule_count);
        }
        println!(
            "{:>8} | {:>12.1} | {:>10} | {:>10} | {:>10}",
            name, peak, ttl, buf, rules
        );
    }

    println!(
        "\nrule-space ledger: Chronus peak {} rules vs TP peak {} rules",
        chronus_peak_rule_count(flow),
        tp_plan(flow).peak_rule_count()
    );
    println!("(Chronus rewrites actions in place; TP holds both rule generations.)");
}
