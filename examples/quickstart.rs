//! Quickstart: schedule a consistent route migration end to end.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Builds the paper's six-switch motivating topology, asks the
//! Chronus greedy scheduler (Algorithm 2) for a congestion- and
//! loop-free timed update, verifies it against the exact dynamic-flow
//! simulator, compares with the optimum, and prints the Algorithm-5
//! execution plan a controller would run.

use chronus::core::exec::ExecutionPlan;
use chronus::core::greedy::greedy_schedule;
use chronus::core::tree::{check_feasibility, Feasibility};
use chronus::net::motivating_example;
use chronus::opt::optimal_schedule;
use chronus::timenet::{FluidSimulator, Verdict};

fn main() {
    let instance = motivating_example();
    let flow = instance.flow();
    println!("topology : 6 switches, unit capacity, unit delay");
    println!("initial  : {}", flow.initial);
    println!("final    : {}", flow.fin);
    println!(
        "demand   : {} (links cannot hold old + new flow at once)\n",
        flow.demand
    );

    // 1. Does any consistent timed sequence exist? (Algorithm 1)
    match check_feasibility(&instance) {
        Feasibility::Feasible { .. } => println!("tree check: a consistent sequence exists"),
        other => {
            println!("tree check: {other:?}");
            return;
        }
    }

    // 2. Compute a schedule (Algorithm 2) and certify it.
    let outcome = greedy_schedule(&instance).expect("the example is feasible");
    let report = FluidSimulator::check(&instance, &outcome.schedule);
    assert_eq!(report.verdict(), Verdict::Consistent);
    if let Some(cert) = &outcome.certificate {
        println!("independent certifier: {cert}");
    }
    println!(
        "\ngreedy schedule (|T| = {} steps):\n{}",
        outcome.makespan + 1,
        outcome.schedule
    );

    // 3. How close to optimal?
    let opt = optimal_schedule(&instance).expect("small instance solves exactly");
    println!(
        "optimal |T| = {} steps (greedy {})",
        opt.makespan + 1,
        outcome.makespan + 1
    );

    // 4. The controller-side plan (Algorithm 5).
    println!("\nexecution plan:");
    print!("{}", ExecutionPlan::from_schedule(&outcome.schedule));
}
