//! Maintenance evacuation: move traffic off a link before it goes
//! down, and replay the update on the emulated data plane.
//!
//! ```text
//! cargo run --example failure_recovery
//! ```
//!
//! The paper's §I motivations (3) and (4): "in order to replace a
//! faulty router, it may be necessary to temporarily reroute traffic"
//! and "fast network update mechanisms are required to react quickly
//! to link failures and determine a failover path." A link on the
//! primary route is scheduled for maintenance; the controller computes
//! a failover path avoiding it, asks Chronus for a timed schedule, and
//! executes the plan on the discrete-event emulator (the Mininet
//! stand-in) over Time4-style synchronized clocks — checking that not
//! a single packet loops or blackholes during the evacuation, *before*
//! the link is taken down.

use chronus::core::greedy::greedy_schedule;
use chronus::emu::{EmuConfig, Emulator, UpdateDriver};
use chronus::net::routing::shortest_path_delay;
use chronus::net::topology::{self, LinkParams};
use chronus::net::{Flow, FlowId, NetworkBuilder, SwitchId, UpdateInstance};
use chronus::timenet::{FluidSimulator, Verdict};

fn main() {
    // A 3x4 grid fabric, 500-capacity links.
    let grid = topology::grid(3, 4, LinkParams::new(500, 1));
    let v = SwitchId;
    let (src, dst) = (v(0), v(11));

    // Primary route: delay-shortest path.
    let primary = shortest_path_delay(&grid, src, dst).expect("grid is connected");
    println!("primary    : {primary}");

    // A link on the primary is scheduled for maintenance: compute the
    // failover route on a copy of the fabric without it.
    let (fa, fb) = primary.edges().nth(1).expect("primary has 3+ hops");
    println!("MAINTENANCE: link <{fa}, {fb}> will go down");
    let mut b = NetworkBuilder::with_switches(grid.switch_count());
    for l in grid.links() {
        if (l.src, l.dst) == (fa, fb) || (l.src, l.dst) == (fb, fa) {
            continue;
        }
        b.add_link(l.src, l.dst, l.capacity, l.delay)
            .expect("copied links");
    }
    let degraded = b.build();
    let failover = shortest_path_delay(&degraded, src, dst).expect("grid survives one link down");
    println!("failover   : {failover}\n");

    // The evacuation runs on the live fabric (the link is still up
    // while traffic moves off it).
    let flow = Flow::new(FlowId(0), 300, primary, failover).expect("valid flow");
    let instance = UpdateInstance::single(grid, flow).expect("valid instance");
    let outcome = greedy_schedule(&instance).expect("evacuation is schedulable");
    let report = FluidSimulator::check(&instance, &outcome.schedule);
    assert_eq!(report.verdict(), Verdict::Consistent);
    println!(
        "chronus schedule (|T| = {} steps):\n{}",
        outcome.makespan + 1,
        outcome.schedule
    );

    // Replay on the emulated data plane: 500 Mbps links, synchronized
    // clocks with microsecond residual error, 10 s run.
    let cfg = EmuConfig {
        run_for: 10_000_000_000,
        update_at: 2_000_000_000,
        ..EmuConfig::default()
    };
    let mut emu = Emulator::new(&instance, cfg, 7);
    emu.install_driver(UpdateDriver::chronus(outcome.schedule, &instance));
    let emu_report = emu.run();
    println!(
        "emulation: delivered {} MB, ttl drops {}, table misses {}, buffer drops {}",
        emu_report.total_delivered() / 1_000_000,
        emu_report.ttl_drops,
        emu_report.table_misses,
        emu_report.buffer_drops
    );
    assert_eq!(emu_report.ttl_drops, 0);
    assert_eq!(emu_report.table_misses, 0);
    println!("evacuation completed with zero loss events; the link may go down");
}
