//! Plan a 50-flow batch on the engine, then drive every flow through
//! the emulated data plane.
//!
//! ```text
//! cargo run --example batched_updates
//! ```
//!
//! Fifty update instances (the paper's Fig. 1 example mixed with path
//! reversals of several sizes) are submitted to a 4-worker
//! `chronus-engine`. Each request walks the greedy → tree → two-phase
//! fallback chain under its deadline; the batch report shows which
//! stage won, the time-extended-network cache hit rate and per-stage
//! latencies. Every emitted schedule is certified by the exact fluid
//! simulator, then replayed on the discrete-event emulator through the
//! `Engine` update driver — the full controller path from "please move
//! these flows" to packets on the wire.

use chronus::emu::{EmuConfig, Emulator, UpdateDriver};
use chronus::engine::{Engine, EngineConfig, Stage};
use chronus::net::{motivating_example, reversal_instance, UpdateInstance};
use chronus::timenet::{FluidSimulator, Verdict};
use std::sync::Arc;

fn main() {
    // The batch: six instance shapes cycled over 50 flows.
    let instances: Vec<Arc<UpdateInstance>> = (0..50)
        .map(|i| match i % 6 {
            0 => Arc::new(motivating_example()),
            r => Arc::new(reversal_instance(3 + r, 2, 1)),
        })
        .collect();

    println!("planning 50 flows on a 4-worker engine...\n");
    let engine = Engine::new(EngineConfig::with_workers(4));
    let plans = engine.plan_instances(instances.clone());

    // Per-flow outcome, certified against the exact simulator.
    let mut by_stage = [0usize; 4];
    for (plan, inst) in plans.iter().zip(&instances) {
        by_stage[match plan.winner {
            Stage::Sharded => 0,
            Stage::Greedy => 1,
            Stage::Tree => 2,
            Stage::TwoPhase => 3,
        }] += 1;
        if let Some(schedule) = plan.plan.schedule() {
            let report = FluidSimulator::check(inst, schedule);
            assert_eq!(report.verdict(), Verdict::Consistent, "{}", plan.id);
        }
    }
    println!(
        "winners: sharded {} | greedy {} | tree {} | two-phase {}",
        by_stage[0], by_stage[1], by_stage[2], by_stage[3]
    );
    println!("all timed schedules certified Consistent by the fluid simulator\n");
    println!("{}", engine.report());

    // Replay a sample of the batch on the emulated data plane: the
    // Engine driver re-plans at install time and fires the winning
    // plan's FlowMods (timed triggers for a schedule, version flip for
    // a two-phase fallback).
    println!("\nreplaying 10 of the flows on the emulator...");
    let mut ttl = 0;
    let mut buf = 0;
    for (i, inst) in instances.iter().step_by(5).enumerate() {
        let mut emu = Emulator::new(inst, EmuConfig::default(), i as u64);
        emu.install_driver(UpdateDriver::engine(inst.clone(), 2));
        let report = emu.run();
        ttl += report.ttl_drops;
        buf += report.buffer_drops;
    }
    println!("emulator replay: {ttl} TTL drops, {buf} buffer drops");
    assert_eq!(ttl, 0, "certified schedules never loop packets");
}
