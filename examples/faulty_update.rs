//! Fault-tolerance round trip: certify a timed plan's slack, deploy it
//! over a faulty control plane (message loss plus a switch reboot that
//! wipes armed triggers), recover through reliable delivery, then
//! check the certificate against what actually happened — and export
//! the traced timeline.
//!
//! ```text
//! cargo run --example faulty_update [out_dir]
//! ```
//!
//! Produces, in `out_dir` (default `.`):
//!
//! - `trace.json` — Chrome trace-event JSON with the planning spans
//!   (`core.greedy`, `verify.slack`) and the emulation span
//!   (`emu.run`). Load it in Perfetto (<https://ui.perfetto.dev>).
//! - `fault_metrics.prom` — Prometheus text exposition of the fault
//!   layer's counters (drops, retransmits, re-arms, rollbacks, ...).

use chronus::core::greedy::greedy_schedule;
use chronus::emu::{EmuConfig, Emulator, UpdateDriver};
use chronus::faults::{FaultPlan, ReliableConfig};
use chronus::net::{motivating_example, SwitchId};
use chronus::trace::{Collector, MetricsRegistry, TimelineExporter};
use chronus::verify::{check_slack, slack_certificate, SlackConfig};
use std::path::PathBuf;

fn main() {
    let out_dir = std::env::args()
        .nth(1)
        .map_or_else(|| PathBuf::from("."), PathBuf::from);
    std::fs::create_dir_all(&out_dir).expect("create output directory");

    let _guard = Collector::install();

    // 1. Plan: the greedy packing is tight (zero certified slack), so
    //    dilate it ×2 and certify the tolerance the deployment gets to
    //    spend on faults.
    let instance = motivating_example();
    let schedule = greedy_schedule(&instance)
        .expect("the motivating example is greedy-schedulable")
        .schedule
        .dilated(2);
    let cert = slack_certificate(&instance, &schedule, &SlackConfig::default())
        .expect("the dilated schedule certifies");
    let config = EmuConfig {
        run_for: 8_000_000_000,
        update_at: 2_000_000_000,
        ..EmuConfig::default()
    };
    let delta = cert.delta_ns(config.step_ns);
    println!(
        "{cert} -> tolerance ±{delta} ns at a {} ns step",
        config.step_ns
    );

    // 2. Deploy over a hostile control plane: 15% message loss, plus a
    //    reboot that knocks switch 1 offline for 300 ms right after
    //    its Arm landed — wiping the armed trigger.
    let plan = FaultPlan::lossy(42, 0.15).with_reboot(1_200_000_000, SwitchId(1), 300_000_000);
    let mut emu = Emulator::new(&instance, config, 42);
    emu.install_faults_certified(plan, ReliableConfig::default(), &cert);
    emu.install_driver(UpdateDriver::chronus(schedule.clone(), &instance));
    let report = emu.run();

    let faults = report.faults.expect("faults were installed");
    println!("{faults}");
    println!(
        "emulation: {} FlowMods applied, {} timed tasks pending, rolled_back {}",
        report.applied_updates.len(),
        report.timed_tasks_pending,
        report.rolled_back
    );
    assert!(report.clean(), "recovered run must stay loop/drop-free");
    assert_eq!(report.timed_tasks_pending, 0, "every timed task applied");
    assert!(!report.rolled_back, "recovery stayed inside slack");
    assert_eq!(faults.reboots, 1);
    assert!(faults.triggers_lost >= 1, "the reboot wiped a trigger");

    // 3. Re-certify after the fact: the certificate's corner schedules
    //    still verify, and the worst measured firing deviation sits
    //    inside the certified window.
    check_slack(&instance, &schedule, &cert).expect("certificate re-validates");
    assert!(
        cert.covers_residual(faults.max_fire_deviation_ns as i128, config.step_ns),
        "measured deviation {} ns exceeds certified ±{delta} ns",
        faults.max_fire_deviation_ns
    );
    println!(
        "re-certified: max firing deviation {} ns within certified ±{delta} ns",
        faults.max_fire_deviation_ns
    );

    // 4. Export the traced timeline and the fault counters.
    let records = Collector::drain();
    let mut timeline = TimelineExporter::new();
    timeline.process_name("chronus-faulty-update");
    let mut tids: Vec<u64> = records.iter().map(|r| r.thread).collect();
    tids.sort_unstable();
    tids.dedup();
    for tid in tids {
        timeline.thread_name(tid, &format!("worker-{tid}"));
    }
    timeline.add_spans(&records);
    // One counter track showing when each FlowMod landed (true time).
    let anchor = records.iter().map(|r| r.end_ns).max().unwrap_or(0);
    timeline.counter("applied FlowMods", anchor, 0.0);
    for (i, &(at, _)) in report.applied_updates.iter().enumerate() {
        timeline.counter(
            "applied FlowMods",
            anchor + at.max(0) as u64,
            (i + 1) as f64,
        );
    }
    let trace_path = out_dir.join("trace.json");
    timeline.write_to(&trace_path).expect("write trace.json");

    // The fault layer's scoped registry travels with the report; fold
    // it into the process-global one and dump Prometheus text.
    let global = MetricsRegistry::global();
    global.absorb(report.fault_metrics.as_ref().expect("faulty run"));
    let prom = global.to_prometheus();
    assert!(
        prom.contains("chronus_faults_retransmits_total"),
        "fault counters exported"
    );
    let prom_path = out_dir.join("fault_metrics.prom");
    std::fs::write(&prom_path, &prom).expect("write fault_metrics.prom");

    let spans = |prefix: &str| {
        records
            .iter()
            .filter(|r| r.name.starts_with(prefix))
            .count()
    };
    println!(
        "captured {} records ({} core, {} verify, {} emu)",
        records.len(),
        spans("core."),
        spans("verify."),
        spans("emu."),
    );
    println!("wrote {}", trace_path.display());
    println!("wrote {} ({} bytes)", prom_path.display(), prom.len());
}
