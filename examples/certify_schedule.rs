//! Certify a schedule with the independent static certifier.
//!
//! ```text
//! cargo run --example certify_schedule
//! ```
//!
//! Takes the motivating example, certifies the greedy schedule with
//! `chronus-verify` (no simulator involved), prints the certificate's
//! per-link load bounds and per-boundary forwarding orders, re-checks
//! the certificate offline, and then shows the minimal counterexample
//! the certifier returns for two broken schedules: the naive
//! all-at-once update (a transient forwarding loop) and a corrupted
//! copy of the good schedule (found by mutation search).

use chronus::core::greedy::greedy_schedule;
use chronus::net::motivating_example;
use chronus::timenet::Schedule;
use chronus::verify::{certify, find_rejected_mutant, BoundaryOrder};

fn main() {
    let instance = motivating_example();
    let outcome = greedy_schedule(&instance).expect("the example is feasible");
    println!("greedy schedule:\n{}", outcome.schedule);

    // 1. Certify: symbolic interval trace + sweep-line, no simulator.
    let cert = certify(&instance, &outcome.schedule).expect("greedy output is consistent");
    println!("{cert}");
    println!("\nper-link transient load bounds (t >= 0):");
    for b in &cert.link_bounds {
        print!("  {}->{} cap {}: peak {}", b.src, b.dst, b.capacity, b.peak);
        for seg in &b.segments {
            print!("  [{}, {})={}", seg.start, seg.end, seg.load);
        }
        println!();
    }
    println!("\nper-boundary forwarding orders:");
    for w in &cert.boundaries {
        match &w.order {
            BoundaryOrder::Acyclic(order) => {
                let order: Vec<String> = order.iter().map(ToString::to_string).collect();
                println!("  t={}: acyclic, order {}", w.time, order.join(" < "));
            }
            BoundaryOrder::Cyclic(cycle) => {
                let cycle: Vec<String> = cycle.iter().map(ToString::to_string).collect();
                println!(
                    "  t={}: instantaneous rule cycle through {} (diagnostic)",
                    w.time,
                    cycle.join(", ")
                );
            }
        }
    }

    // 2. The certificate is a standalone artifact: re-validate it
    //    against the instance alone.
    cert.check(&instance).expect("certificate re-validates");
    println!("\ncertificate re-check: ok");

    // 3. A broken schedule gets a minimal counterexample instead.
    let naive = Schedule::all_at_zero(&instance);
    let violation = certify(&instance, &naive).expect_err("all-at-once is inconsistent");
    println!("\nnaive all-at-once schedule rejected:\n  {violation}");

    // 4. Corrupt the good schedule until the certifier objects.
    match find_rejected_mutant(&instance, &outcome.schedule) {
        Some((mutation, _mutant, violation)) => {
            println!("\ncorrupted schedule ({mutation:?}) rejected:\n  {violation}");
        }
        None => println!("\nevery single-site mutation of this schedule stays consistent"),
    }
}
