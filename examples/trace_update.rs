//! Observability round trip: plan, certify and emulate an update with
//! the span collector on, then export everything an operator would
//! want to look at.
//!
//! ```text
//! cargo run --example trace_update [out_dir]
//! ```
//!
//! Produces, in `out_dir` (default `.`):
//!
//! - `trace.json` — Chrome trace-event JSON: one timeline with spans
//!   from the engine (`engine.plan`, `engine.stage.*`), the solver
//!   (`core.greedy`), the simulators (`timenet.*`), the certifier
//!   (`verify.certify`) and the emulator (`emu.run`), plus one counter
//!   track per network link sampled from the exact gate's load ledger.
//!   Load it in Perfetto (<https://ui.perfetto.dev>) or
//!   `chrome://tracing`.
//! - `trace_metrics.prom` — Prometheus text exposition of the engine's
//!   metrics registry folded into the process-global registry.

use chronus::emu::{EmuConfig, Emulator, UpdateDriver};
use chronus::engine::{Engine, EngineConfig};
use chronus::net::{motivating_example, UpdateInstance};
use chronus::timenet::IncrementalSimulator;
use chronus::trace::{Collector, MetricsRegistry, TimelineExporter};
use std::path::PathBuf;
use std::sync::Arc;

/// One emulated nanosecond per schedule step on the counter tracks is
/// invisible next to the real span durations; stretch each model step
/// so the per-link load staircase is readable in Perfetto.
const STEP_NS: u64 = 1_000_000;

fn main() {
    let out_dir = std::env::args()
        .nth(1)
        .map_or_else(|| PathBuf::from("."), PathBuf::from);
    std::fs::create_dir_all(&out_dir).expect("create output directory");

    // Record everything from here on.
    let _guard = Collector::install();

    // 1. Plan a small batch through the engine: fallback-chain spans,
    //    greedy/simulator/certifier spans, per-stage counters.
    let instance = Arc::new(motivating_example());
    let engine = Engine::new(EngineConfig::with_workers(2));
    let plans = engine.plan_instances(vec![Arc::clone(&instance); 4]);
    let schedule = plans[0]
        .timed_schedule()
        .expect("the motivating example is greedy-feasible")
        .clone();
    println!("{}", engine.report());

    // 2. Replay the winning schedule on the incremental simulator and
    //    keep its ledger's per-link load series for counter tracks.
    let mut sim = IncrementalSimulator::new(&instance);
    for (flow, switch, t) in schedule.iter() {
        sim.apply(flow, switch, t);
    }
    let link_loads = sim.link_loads();

    // 3. Emulate the plan on the discrete-event testbed (`emu.run`).
    let mut emu = Emulator::new(&instance, EmuConfig::default(), 42);
    emu.install_driver(UpdateDriver::engine(Arc::clone(&instance), 2));
    let report = emu.run();
    assert_eq!(report.ttl_drops, 0, "a certified plan never loops");

    // 4. Export the timeline: spans first, then one counter track per
    //    link, anchored right after the last span so the two layers
    //    don't overprint each other.
    let records = Collector::drain();
    let mut timeline = TimelineExporter::new();
    timeline.process_name("chronus");
    let mut tids: Vec<u64> = records.iter().map(|r| r.thread).collect();
    tids.sort_unstable();
    tids.dedup();
    for tid in tids {
        timeline.thread_name(tid, &format!("worker-{tid}"));
    }
    timeline.add_spans(&records);
    let anchor = records.iter().map(|r| r.end_ns).max().unwrap_or(0);
    for ((src, dst), series) in &link_loads {
        let track = format!("link {}->{} load", src.0, dst.0);
        // Leading zero so the staircase starts from empty.
        timeline.counter(&track, anchor, 0.0);
        for (&t, &load) in series {
            timeline.counter(
                &track,
                anchor + (t.max(0) as u64 + 1) * STEP_NS,
                load as f64,
            );
        }
    }
    let trace_path = out_dir.join("trace.json");
    timeline.write_to(&trace_path).expect("write trace.json");

    // 5. Fold the engine's scoped registry into the process-global one
    //    (which already holds e.g. the OpenFlow rule-churn counters)
    //    and dump Prometheus text.
    let global = MetricsRegistry::global();
    global.absorb(&engine.metrics().registry().snapshot());
    let prom = global.to_prometheus();
    let prom_path = out_dir.join("trace_metrics.prom");
    std::fs::write(&prom_path, &prom).expect("write trace_metrics.prom");

    let spans = |prefix: &str| {
        records
            .iter()
            .filter(|r| r.name.starts_with(prefix))
            .count()
    };
    println!(
        "captured {} records ({} engine, {} core, {} timenet, {} verify, {} emu)",
        records.len(),
        spans("engine."),
        spans("core."),
        spans("timenet."),
        spans("verify."),
        spans("emu."),
    );
    println!(
        "{} counter samples over {} links",
        link_loads.values().map(|s| s.len() + 1).sum::<usize>(),
        link_loads.len()
    );
    println!("wrote {}", trace_path.display());
    println!("wrote {} ({} bytes)", prom_path.display(), prom.len());
    instance_summary(&instance);
}

fn instance_summary(instance: &UpdateInstance) {
    println!(
        "instance: {} switches, {} flow(s)",
        instance.network.switch_count(),
        instance.flows.len()
    );
}
