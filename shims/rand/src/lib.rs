//! Minimal offline shim of the `rand` crate (0.8 API subset).
//!
//! Provides exactly what this workspace uses: [`Rng`] with `gen`,
//! `gen_range` and `gen_bool`, [`SeedableRng::seed_from_u64`],
//! [`rngs::StdRng`] (xoshiro256++ seeded via SplitMix64) and
//! [`seq::SliceRandom`]. Streams are deterministic per seed but do
//! not match the real crate's output.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness: a 64-bit generator.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Types that [`Rng::gen`] can produce from uniform bits.
pub trait Standard: Sized {
    /// Draws a uniformly distributed value.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for i128 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::from_rng(rng) as i128
    }
}

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges [`Rng::gen_range`] accepts.
pub trait SampleRange {
    /// The element type of the range.
    type Output;
    /// Draws a uniform value from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_range {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide);
                let draw = <$wide>::from_rng(rng) % span;
                self.start.wrapping_add(draw as $t)
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as $wide).wrapping_sub(lo as $wide);
                if span == <$wide>::MAX {
                    return <$t>::from_rng(rng);
                }
                let draw = <$wide>::from_rng(rng) % (span + 1);
                lo.wrapping_add(draw as $t)
            }
        }
    )*};
}
impl_sample_range!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => u64, i16 => u64, i32 => u64, i64 => u64, isize => u64,
    u128 => u128, i128 => u128
);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::from_rng(rng) * (self.end - self.start)
    }
}

/// High-level convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    /// A uniform value from `range`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<Rg: SampleRange>(&mut self, range: Rg) -> Rg::Output {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The shim's standard generator: xoshiro256++ seeded via
    /// SplitMix64. Deterministic per seed; stream differs from the
    /// real `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Slice helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
        /// A uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3u64..10);
            assert!((3..10).contains(&x));
            let y = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
            let z = rng.gen_range(0i128..=3);
            assert!((0..=3).contains(&z));
            let f = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn range_covers_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..20).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
