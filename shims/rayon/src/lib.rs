//! Offline API-compatible shim of the `rayon` crate.
//!
//! Implements exactly the surface this workspace consumes — structured
//! scoped task spawning ([`scope`]), [`join`], thread-count discovery
//! ([`current_num_threads`]) and a minimal eager [`prelude::ParallelIterator`]
//! subset — on top of `std::thread::scope`. There is no work-stealing
//! pool: `scope` spawns one OS thread per task, which is the right
//! trade-off for this workspace's usage (a handful of long-lived
//! worker loops per parallel region, not fine-grained task soup).
//!
//! Closures keep rayon's shapes (`FnOnce(&Scope)`), so swapping the
//! real crate back in is a one-line `Cargo.toml` change.

#![forbid(unsafe_code)]

use std::num::NonZeroUsize;

/// The number of threads the "pool" would use: the machine's available
/// parallelism (real rayon reports its global pool size, which
/// defaults to the same quantity).
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Scope handle passed to [`scope`] closures; mirrors `rayon::Scope`.
///
/// Wraps a `std::thread::Scope` reference, so every `spawn` is a real
/// OS thread joined before [`scope`] returns — the same structured-
/// concurrency guarantee rayon provides.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a task guaranteed to finish before the enclosing
    /// [`scope`] call returns.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope, 'env>) + Send + 'scope,
    {
        let inner = self.inner;
        inner.spawn(move || f(&Scope { inner }));
    }
}

/// Structured parallel region: tasks spawned on the [`Scope`] all
/// complete before `scope` returns. Panics in tasks propagate.
pub fn scope<'env, F, R>(f: F) -> R
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    std::thread::scope(|s| f(&Scope { inner: s }))
}

/// Runs both closures, potentially in parallel, returning both
/// results. Falls back to sequential when a thread cannot be spawned.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        let rb = match hb.join() {
            Ok(rb) => rb,
            Err(payload) => std::panic::resume_unwind(payload),
        };
        (ra, rb)
    })
}

pub mod prelude {
    //! Minimal eager stand-ins for rayon's parallel iterator entry
    //! points. `par_iter` distributes contiguous chunks over scoped
    //! threads; results preserve input order.

    /// `&[T] → par_iter().map(..).collect::<Vec<_>>()` subset.
    pub trait ParallelSlice<T: Sync> {
        /// Applies `f` to every element, splitting the slice into one
        /// contiguous chunk per available thread. Output order matches
        /// input order.
        fn par_map<R, F>(&self, f: F) -> Vec<R>
        where
            R: Send,
            F: Fn(&T) -> R + Sync;
    }

    impl<T: Sync> ParallelSlice<T> for [T] {
        fn par_map<R, F>(&self, f: F) -> Vec<R>
        where
            R: Send,
            F: Fn(&T) -> R + Sync,
        {
            let threads = super::current_num_threads().max(1);
            if threads == 1 || self.len() <= 1 {
                return self.iter().map(&f).collect();
            }
            let chunk = self.len().div_ceil(threads);
            let mut out: Vec<Option<R>> = Vec::new();
            out.resize_with(self.len(), || None);
            std::thread::scope(|s| {
                let f = &f;
                for (ci, (input, output)) in
                    self.chunks(chunk).zip(out.chunks_mut(chunk)).enumerate()
                {
                    let _ = ci;
                    s.spawn(move || {
                        for (x, slot) in input.iter().zip(output.iter_mut()) {
                            *slot = Some(f(x));
                        }
                    });
                }
            });
            out.into_iter().flatten().collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::ParallelSlice;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_joins_all_spawned_tasks() {
        let counter = AtomicUsize::new(0);
        super::scope(|s| {
            for _ in 0..8 {
                s.spawn(|inner| {
                    counter.fetch_add(1, Ordering::SeqCst);
                    // Nested spawn through the rayon-shaped handle.
                    inner.spawn(|_| {
                        counter.fetch_add(1, Ordering::SeqCst);
                    });
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 16);
    }

    #[test]
    fn join_returns_both_results() {
        let (a, b) = super::join(|| 2 + 2, || "ok");
        assert_eq!((a, b), (4, "ok"));
    }

    #[test]
    fn par_map_preserves_order() {
        let xs: Vec<u64> = (0..1000).collect();
        let ys = xs.par_map(|&x| x * 3);
        assert!(ys.iter().enumerate().all(|(i, &y)| y == i as u64 * 3));
    }

    #[test]
    fn current_num_threads_is_positive() {
        assert!(super::current_num_threads() >= 1);
    }
}
