//! Offline shim of the [`loom`](https://docs.rs/loom) permutation
//! testing crate.
//!
//! The real loom replaces `std::sync` with instrumented types and runs
//! a model body under *every* legal interleaving of its threads. This
//! shim keeps the API surface (so `#[cfg(loom)]` model tests compile
//! and run offline) but explores interleavings **stochastically**: the
//! model body is executed [`ITERATIONS`] times with real OS threads,
//! relying on scheduler noise rather than exhaustive enumeration.
//!
//! The consequence for test authors: assertions must hold under *any*
//! interleaving (they are checked under many), and a pass here is
//! evidence, not proof. Swapping in the real loom is a one-line
//! `Cargo.toml` change — the model code does not change.

use std::sync::atomic::{AtomicBool, Ordering};

/// How many times [`model`] re-runs its body. Each run uses fresh
/// state and real threads, so distinct interleavings are sampled.
pub const ITERATIONS: usize = 64;

static IN_MODEL: AtomicBool = AtomicBool::new(false);

/// Runs `f` repeatedly, panicking (like the real loom) if any run
/// panics. The closure must be self-contained: it creates its own
/// shared state and joins its own threads each run.
pub fn model<F>(f: F)
where
    F: Fn() + Sync + Send + 'static,
{
    IN_MODEL.store(true, Ordering::SeqCst);
    for _ in 0..ITERATIONS {
        f();
    }
    IN_MODEL.store(false, Ordering::SeqCst);
}

/// `true` while a [`model`] body is running (the real loom exposes
/// richer introspection; tests here only need the flag).
pub fn is_model_active() -> bool {
    IN_MODEL.load(Ordering::SeqCst)
}

/// Mirror of `loom::thread`: re-exports the std thread API that model
/// bodies use (`spawn`, `JoinHandle`, `yield_now`).
pub mod thread {
    pub use std::thread::{current, park, sleep, spawn, yield_now, JoinHandle, Thread};
}

/// Mirror of `loom::sync`: instrumented types in the real loom, the
/// plain std types here.
pub mod sync {
    pub use std::sync::{Arc, Condvar, Mutex, MutexGuard, RwLock};

    /// Mirror of `loom::sync::atomic`.
    pub mod atomic {
        pub use std::sync::atomic::{
            fence, AtomicBool, AtomicI64, AtomicU32, AtomicU64, AtomicUsize, Ordering,
        };
    }

    /// Mirror of `loom::sync::mpsc`.
    pub mod mpsc {
        pub use std::sync::mpsc::{channel, Receiver, Sender};
    }
}

/// Mirror of `loom::hint`.
pub mod hint {
    pub use std::hint::spin_loop;
}

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicUsize, Ordering};
    use super::sync::{Arc, Mutex};

    #[test]
    fn model_runs_many_iterations() {
        let hits = Arc::new(AtomicUsize::new(0));
        let h = hits.clone();
        super::model(move || {
            h.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(hits.load(Ordering::SeqCst), super::ITERATIONS);
    }

    #[test]
    fn threads_and_mutexes_work_inside_model() {
        super::model(|| {
            let shared = Arc::new(Mutex::new(0u64));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let s = shared.clone();
                    super::thread::spawn(move || {
                        *s.lock().unwrap() += 1;
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(*shared.lock().unwrap(), 2);
        });
    }
}
