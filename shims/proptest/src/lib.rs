//! Minimal offline shim of the `proptest` crate.
//!
//! Supports the subset this workspace uses: the [`proptest!`] macro
//! (with an optional `#![proptest_config(..)]` header), range / tuple
//! / [`strategy::any`] / [`collection::vec`] strategies, and the
//! `prop_assert*` macros. Cases are generated from a deterministic
//! per-test seed; failures report the case index and seed. There is
//! no shrinking.

#![forbid(unsafe_code)]

pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

/// Defines property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     fn my_prop(x in 0u32..100, v in prop::collection::vec(0u8..4, 1..8)) {
///         prop_assert!(v.len() < 8);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            cfg = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            let config = $cfg;
            let test_path = concat!(module_path!(), "::", stringify!($name));
            for case in 0..config.cases {
                let seed = $crate::test_runner::case_seed(test_path, case);
                let mut __rng = $crate::test_runner::rng_from_seed(seed);
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        #[allow(unreachable_code)]
                        ::core::result::Result::Ok(())
                    })();
                if let ::core::result::Result::Err(err) = outcome {
                    panic!(
                        "proptest {test_path} failed at case {case}/{} (seed {seed:#x}): {err}",
                        config.cases
                    );
                }
            }
        }
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
}

/// Fails the current test case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fails the current test case unless both sides are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    }};
}

/// Fails the current test case if both sides are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}
