//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// Acceptable length specifications for [`vec`].
pub trait SizeRange {
    /// Draws a length.
    fn draw(&self, rng: &mut StdRng) -> usize;
}

impl SizeRange for usize {
    fn draw(&self, _rng: &mut StdRng) -> usize {
        *self
    }
}

impl SizeRange for Range<usize> {
    fn draw(&self, rng: &mut StdRng) -> usize {
        rng.gen_range(self.clone())
    }
}

impl SizeRange for RangeInclusive<usize> {
    fn draw(&self, rng: &mut StdRng) -> usize {
        rng.gen_range(self.clone())
    }
}

/// The strategy returned by [`vec`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S, L> {
    element: S,
    len: L,
}

impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        let n = self.len.draw(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// A strategy producing vectors whose elements come from `element`
/// and whose length comes from `len`.
pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
    VecStrategy { element, len }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::rng_from_seed;

    #[test]
    fn vec_respects_length_spec() {
        let mut rng = rng_from_seed(2);
        for _ in 0..100 {
            let v = vec(0u8..4, 1..24).generate(&mut rng);
            assert!((1..24).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 4));
            let fixed = vec((0u32..20, 0i64..50), 5usize).generate(&mut rng);
            assert_eq!(fixed.len(), 5);
        }
    }
}
