//! Deterministic case runner support.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;

/// Configuration for a `proptest!` block.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of cases generated per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real crate defaults to 256; the shim keeps suites fast.
        ProptestConfig { cases: 64 }
    }
}

/// A failed test case (carried out of the case closure by the
/// `prop_assert*` macros).
#[derive(Clone, Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Wraps a failure message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// The deterministic seed of `case` within the test named `path`
/// (FNV-1a over the path, mixed with the case index).
pub fn case_seed(path: &str, case: u32) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in path.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(case as u64 + 1))
}

/// Builds the generator for one case.
pub fn rng_from_seed(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_differ_by_case_and_path() {
        assert_ne!(case_seed("a::b", 0), case_seed("a::b", 1));
        assert_ne!(case_seed("a::b", 0), case_seed("a::c", 0));
        assert_eq!(case_seed("a::b", 3), case_seed("a::b", 3));
    }
}
