//! The glob-import surface (`use proptest::prelude::*`).

pub use crate::strategy::{any, Any, Just, Strategy};
pub use crate::test_runner::{ProptestConfig, TestCaseError};
pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

/// Alias module matching `proptest::prelude::prop`.
pub mod prop {
    pub use crate::collection;
}
