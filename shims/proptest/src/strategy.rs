//! Value-generation strategies.

use rand::rngs::StdRng;
use rand::Rng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, u128, i128);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Types with a full-domain uniform strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draws a uniform value over the whole domain.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.gen::<$t>()
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

/// The strategy returned by [`any`].
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::rng_from_seed;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = rng_from_seed(1);
        for _ in 0..200 {
            let x = (3u32..7).generate(&mut rng);
            assert!((3..7).contains(&x));
            let (a, b, c) = (0u16..4, 0u32..16, 8u8..=32).generate(&mut rng);
            assert!(a < 4 && b < 16 && (8..=32).contains(&c));
            assert_eq!(Just(99i32).generate(&mut rng), 99);
            let _ = any::<u32>().generate(&mut rng);
        }
    }
}
