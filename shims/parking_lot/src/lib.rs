//! Minimal offline shim of the `parking_lot` crate: non-poisoning
//! `Mutex`/`RwLock` wrappers over `std::sync` with the
//! guard-returning, `()`-erroring parking_lot API.

#![forbid(unsafe_code)]

use std::sync::{self, PoisonError};

pub use sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock` cannot fail (poison is
/// swallowed, matching parking_lot's behaviour of not poisoning).
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a lock holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires the lock if it is free right now.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A readers-writer lock whose acquisitions cannot fail.
#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_counts_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = m.clone();
                thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1, 2, 3]);
        assert_eq!(l.read().len(), 3);
        l.write().push(4);
        assert_eq!(*l.read(), vec![1, 2, 3, 4]);
        assert_eq!(l.into_inner(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(1);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
