//! Minimal offline shim of the `petgraph` crate (0.6 API subset):
//! a directed adjacency-list graph plus the two algorithms the
//! workspace uses (`dijkstra`, `kosaraju_scc`).

#![forbid(unsafe_code)]

/// Graph data structures.
pub mod graph {
    /// Index of a node in a [`DiGraph`].
    #[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
    pub struct NodeIndex(usize);

    impl NodeIndex {
        /// Creates an index from a raw `usize`.
        pub fn new(i: usize) -> Self {
            NodeIndex(i)
        }

        /// The raw index.
        pub fn index(self) -> usize {
            self.0
        }
    }

    /// Index of an edge in a [`DiGraph`].
    #[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
    pub struct EdgeIndex(usize);

    impl EdgeIndex {
        /// The raw index.
        pub fn index(self) -> usize {
            self.0
        }
    }

    pub(crate) struct Edge<E> {
        pub(crate) source: usize,
        pub(crate) target: usize,
        pub(crate) weight: E,
    }

    /// A directed graph with node weights `N` and edge weights `E`.
    #[derive(Default)]
    pub struct DiGraph<N, E> {
        pub(crate) nodes: Vec<N>,
        pub(crate) edges: Vec<Edge<E>>,
        // Outgoing edge ids per node, in insertion order.
        pub(crate) out: Vec<Vec<usize>>,
    }

    /// Borrowed view of one edge, as yielded to algorithm callbacks.
    #[derive(Debug)]
    pub struct EdgeReference<'a, E> {
        pub(crate) id: usize,
        pub(crate) source: usize,
        pub(crate) target: usize,
        pub(crate) weight: &'a E,
    }

    // Manual impls: the derive would add an unwanted `E: Clone/Copy`
    // bound even though only a reference to `E` is held.
    impl<E> Clone for EdgeReference<'_, E> {
        fn clone(&self) -> Self {
            *self
        }
    }

    impl<E> Copy for EdgeReference<'_, E> {}

    impl<'a, E> EdgeReference<'a, E> {
        /// The edge's weight.
        pub fn weight(&self) -> &'a E {
            self.weight
        }

        /// The edge's tail node.
        pub fn source(&self) -> NodeIndex {
            NodeIndex(self.source)
        }

        /// The edge's head node.
        pub fn target(&self) -> NodeIndex {
            NodeIndex(self.target)
        }

        /// The edge's id.
        pub fn id(&self) -> EdgeIndex {
            EdgeIndex(self.id)
        }
    }

    impl<N, E> DiGraph<N, E> {
        /// An empty graph.
        pub fn new() -> Self {
            DiGraph {
                nodes: Vec::new(),
                edges: Vec::new(),
                out: Vec::new(),
            }
        }

        /// Adds a node and returns its index.
        pub fn add_node(&mut self, weight: N) -> NodeIndex {
            self.nodes.push(weight);
            self.out.push(Vec::new());
            NodeIndex(self.nodes.len() - 1)
        }

        /// Adds a directed edge `a → b`.
        ///
        /// # Panics
        /// Panics if either endpoint is out of bounds.
        pub fn add_edge(&mut self, a: NodeIndex, b: NodeIndex, weight: E) -> EdgeIndex {
            assert!(a.0 < self.nodes.len() && b.0 < self.nodes.len());
            self.edges.push(Edge {
                source: a.0,
                target: b.0,
                weight,
            });
            let id = self.edges.len() - 1;
            self.out[a.0].push(id);
            EdgeIndex(id)
        }

        /// Number of nodes.
        pub fn node_count(&self) -> usize {
            self.nodes.len()
        }

        /// Number of edges.
        pub fn edge_count(&self) -> usize {
            self.edges.len()
        }

        /// The weight of `node`.
        pub fn node_weight(&self, node: NodeIndex) -> Option<&N> {
            self.nodes.get(node.0)
        }

        /// Outgoing edges of `node`, in insertion order.
        pub fn edges(&self, node: NodeIndex) -> impl Iterator<Item = EdgeReference<'_, E>> {
            self.out[node.0].iter().map(move |&id| {
                let e = &self.edges[id];
                EdgeReference {
                    id,
                    source: e.source,
                    target: e.target,
                    weight: &e.weight,
                }
            })
        }
    }
}

/// Graph algorithms.
pub mod algo {
    use super::graph::{DiGraph, EdgeReference, NodeIndex};
    use std::cmp::Reverse;
    use std::collections::{BinaryHeap, HashMap};
    use std::ops::Add;

    /// Single-source shortest path lengths by Dijkstra's algorithm.
    ///
    /// `edge_cost` maps each edge to a non-negative cost; returns the
    /// distance map of every node reachable from `start`. Stops early
    /// once `goal` (if given) is settled.
    pub fn dijkstra<N, E, K, F>(
        graph: &DiGraph<N, E>,
        start: NodeIndex,
        goal: Option<NodeIndex>,
        mut edge_cost: F,
    ) -> HashMap<NodeIndex, K>
    where
        K: Copy + Ord + Add<Output = K> + Default,
        F: FnMut(EdgeReference<'_, E>) -> K,
    {
        let mut dist: HashMap<NodeIndex, K> = HashMap::new();
        let mut heap: BinaryHeap<Reverse<(K, usize)>> = BinaryHeap::new();
        dist.insert(start, K::default());
        heap.push(Reverse((K::default(), start.index())));
        while let Some(Reverse((d, u))) = heap.pop() {
            let u_ix = NodeIndex::new(u);
            if dist.get(&u_ix).is_none_or(|&best| d > best) {
                continue; // stale entry
            }
            if goal == Some(u_ix) {
                break;
            }
            for e in graph.edges(u_ix) {
                let next = d + edge_cost(e);
                let v = e.target();
                if dist.get(&v).is_none_or(|&best| next < best) {
                    dist.insert(v, next);
                    heap.push(Reverse((next, v.index())));
                }
            }
        }
        dist
    }

    /// Strongly connected components by Kosaraju's algorithm, in
    /// reverse topological order of the condensation.
    pub fn kosaraju_scc<N, E>(graph: &DiGraph<N, E>) -> Vec<Vec<NodeIndex>> {
        let n = graph.node_count();
        // Pass 1: iterative DFS on G, recording finish order.
        let mut finish: Vec<usize> = Vec::with_capacity(n);
        let mut seen = vec![false; n];
        for root in 0..n {
            if seen[root] {
                continue;
            }
            // Stack of (node, next out-edge position).
            let mut stack = vec![(root, 0usize)];
            seen[root] = true;
            while let Some(&(u, pos)) = stack.last() {
                match graph.edges(NodeIndex::new(u)).nth(pos) {
                    Some(e) => {
                        stack.last_mut().expect("non-empty").1 = pos + 1;
                        let v = e.target().index();
                        if !seen[v] {
                            seen[v] = true;
                            stack.push((v, 0));
                        }
                    }
                    None => {
                        finish.push(u);
                        stack.pop();
                    }
                }
            }
        }
        // Transposed adjacency.
        let mut rev: Vec<Vec<usize>> = vec![Vec::new(); n];
        for u in 0..n {
            for e in graph.edges(NodeIndex::new(u)) {
                rev[e.target().index()].push(u);
            }
        }
        // Pass 2: DFS on Gᵀ in reverse finish order.
        let mut comp = vec![usize::MAX; n];
        let mut sccs: Vec<Vec<NodeIndex>> = Vec::new();
        for &root in finish.iter().rev() {
            if comp[root] != usize::MAX {
                continue;
            }
            let id = sccs.len();
            let mut members = Vec::new();
            let mut stack = vec![root];
            comp[root] = id;
            while let Some(u) = stack.pop() {
                members.push(NodeIndex::new(u));
                for &v in &rev[u] {
                    if comp[v] == usize::MAX {
                        comp[v] = id;
                        stack.push(v);
                    }
                }
            }
            sccs.push(members);
        }
        sccs
    }
}

#[cfg(test)]
mod tests {
    use super::algo::{dijkstra, kosaraju_scc};
    use super::graph::DiGraph;

    #[test]
    fn dijkstra_shortest_distances() {
        let mut g: DiGraph<(), u64> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        let d = g.add_node(());
        g.add_edge(a, b, 1);
        g.add_edge(b, c, 1);
        g.add_edge(a, c, 5);
        g.add_edge(c, d, 2);
        let dist = dijkstra(&g, a, None, |e| *e.weight());
        assert_eq!(dist[&a], 0);
        assert_eq!(dist[&b], 1);
        assert_eq!(dist[&c], 2);
        assert_eq!(dist[&d], 4);
    }

    #[test]
    fn dijkstra_unreachable_absent() {
        let mut g: DiGraph<(), u64> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let dist = dijkstra(&g, a, None, |e| *e.weight());
        assert!(dist.contains_key(&a));
        assert!(!dist.contains_key(&b));
    }

    #[test]
    fn scc_counts() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        g.add_edge(a, b, ());
        g.add_edge(b, a, ());
        g.add_edge(b, c, ());
        let sccs = kosaraju_scc(&g);
        assert_eq!(sccs.len(), 2);
        let sizes: Vec<usize> = {
            let mut s: Vec<usize> = sccs.iter().map(Vec::len).collect();
            s.sort_unstable();
            s
        };
        assert_eq!(sizes, vec![1, 2]);
        // Fully connected: one component.
        g.add_edge(c, a, ());
        assert_eq!(kosaraju_scc(&g).len(), 1);
    }
}
