//! Offline API-compatible shim of the `serde_json` crate covering the
//! value-model subset the workspace consumes: [`from_str`] → [`Value`]
//! with `get`/`as_*` accessors, plus [`to_string`] /
//! [`to_string_pretty`] re-serialization. No `Serialize`/`Deserialize`
//! derive support — callers work with dynamic [`Value`]s.
//!
//! The parser is a strict recursive-descent JSON reader (RFC 8259
//! grammar: objects, arrays, strings with `\uXXXX` escapes, numbers,
//! booleans, null) with a depth limit instead of unbounded recursion.
//! Numbers are held as `f64`, matching what the workspace's golden
//! tests compare against.

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::fmt;

/// Object representation: insertion order is not preserved (the real
/// crate's default feature set also sorts); golden tests must not
/// depend on key order.
pub type Map = BTreeMap<String, Value>;

/// A parsed JSON document.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (held as `f64`).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(Map),
}

impl Value {
    /// Object member by key, or array element by decimal-string
    /// index; `None` on type or key mismatch.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.get(key),
            Value::Array(items) => key.parse::<usize>().ok().and_then(|i| items.get(i)),
            _ => None,
        }
    }

    /// `true` when the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Borrow as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Borrow as an `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// Borrow as a `u64` (numbers with no fractional part only).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// Borrow as an `i64` (numbers with no fractional part only).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n)
                if n.fract() == 0.0 && *n >= i64::MIN as f64 && *n <= i64::MAX as f64 =>
            {
                Some(*n as i64)
            }
            _ => None,
        }
    }

    /// Borrow as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Borrow as an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Borrow as an object.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(map) => Some(map),
            _ => None,
        }
    }

    /// Largest integer magnitude an `f64` (and hence a shim
    /// [`Value::Number`]) represents exactly: 2⁵³.
    pub const EXACT_INT_MAX: u64 = 1 << 53;

    /// Encodes a `u64` without loss: a [`Value::Number`] when the
    /// value fits `f64` exactly, a decimal [`Value::String`]
    /// otherwise. Paired with [`Value::as_u64_exact`]; workspace
    /// extension (the real crate keeps integers arbitrary-precision).
    pub fn from_u64_exact(v: u64) -> Value {
        if v <= Self::EXACT_INT_MAX {
            Value::Number(v as f64)
        } else {
            Value::String(v.to_string())
        }
    }

    /// Encodes an `i64` without loss; see [`Value::from_u64_exact`].
    pub fn from_i64_exact(v: i64) -> Value {
        if v.unsigned_abs() <= Self::EXACT_INT_MAX {
            Value::Number(v as f64)
        } else {
            Value::String(v.to_string())
        }
    }

    /// Encodes an `i128` without loss; see [`Value::from_u64_exact`].
    pub fn from_i128_exact(v: i128) -> Value {
        if v.unsigned_abs() <= u128::from(Self::EXACT_INT_MAX) {
            Value::Number(v as f64)
        } else {
            Value::String(v.to_string())
        }
    }

    /// Decodes a `u64` written by [`Value::from_u64_exact`]: accepts
    /// an integral number or a decimal string.
    pub fn as_u64_exact(&self) -> Option<u64> {
        match self {
            Value::String(s) => s.parse().ok(),
            _ => self.as_u64(),
        }
    }

    /// Decodes an `i64` written by [`Value::from_i64_exact`].
    pub fn as_i64_exact(&self) -> Option<i64> {
        match self {
            Value::String(s) => s.parse().ok(),
            _ => self.as_i64(),
        }
    }

    /// Decodes an `i128` written by [`Value::from_i128_exact`].
    pub fn as_i128_exact(&self) -> Option<i128> {
        match self {
            Value::String(s) => s.parse().ok(),
            _ => self.as_i64().map(i128::from),
        }
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Number(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}

impl From<Vec<Value>> for Value {
    fn from(v: Vec<Value>) -> Value {
        Value::Array(v)
    }
}

/// Parse or serialization error, with the byte offset where parsing
/// failed.
#[derive(Clone, Debug, PartialEq)]
pub struct Error {
    msg: String,
    offset: usize,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.msg)
    }
}

impl std::error::Error for Error {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

const MAX_DEPTH: usize = 128;

impl<'a> Parser<'a> {
    fn err<T>(&self, msg: &str) -> Result<T, Error> {
        Err(Error {
            msg: msg.to_owned(),
            offset: self.pos,
        })
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.bump() == Some(b) {
            Ok(())
        } else {
            self.pos = self.pos.saturating_sub(1);
            self.err(&format!("expected '{}'", b as char))
        }
    }

    fn parse_value(&mut self, depth: usize) -> Result<Value, Error> {
        if depth > MAX_DEPTH {
            return self.err("nesting too deep");
        }
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(depth),
            Some(b'[') => self.parse_array(depth),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(_) => self.err("unexpected character"),
            None => self.err("unexpected end of input"),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            self.err(&format!("expected '{word}'"))
        }
    }

    fn parse_object(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value(depth + 1)?;
            map.insert(key, value);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Object(map)),
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return self.err("expected ',' or '}'");
                }
            }
        }
    }

    fn parse_array(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value(depth + 1)?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Array(items)),
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return self.err("expected ',' or ']'");
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return self.err("unterminated string"),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hi = self.parse_hex4()?;
                        let code = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair: require the low half.
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return self.err("unpaired surrogate");
                            }
                            let lo = self.parse_hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return self.err("invalid low surrogate");
                            }
                            0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                        } else {
                            hi
                        };
                        match char::from_u32(code) {
                            Some(c) => out.push(c),
                            None => return self.err("invalid unicode escape"),
                        }
                    }
                    _ => return self.err("invalid escape"),
                },
                Some(b) if b < 0x20 => return self.err("control character in string"),
                Some(b) => {
                    // Re-assemble UTF-8 multibyte sequences from the
                    // raw bytes (input is a &str, so this is valid).
                    let start = self.pos - 1;
                    let width = match b {
                        0x00..=0x7F => 1,
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    self.pos = start + width;
                    match std::str::from_utf8(self.bytes.get(start..self.pos).unwrap_or(&[])) {
                        Ok(s) => out.push_str(s),
                        Err(_) => return self.err("invalid utf-8"),
                    }
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let mut code = 0u32;
        for _ in 0..4 {
            let d = match self.bump() {
                Some(b @ b'0'..=b'9') => (b - b'0') as u32,
                Some(b @ b'a'..=b'f') => (b - b'a' + 10) as u32,
                Some(b @ b'A'..=b'F') => (b - b'A' + 10) as u32,
                _ => return self.err("invalid \\u escape"),
            };
            code = code * 16 + d;
        }
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(self.bytes.get(start..self.pos).unwrap_or(&[])).map_err(|_| {
                Error {
                    msg: "invalid utf-8 in number".to_owned(),
                    offset: start,
                }
            })?;
        match text.parse::<f64>() {
            Ok(n) if n.is_finite() => Ok(Value::Number(n)),
            _ => self.err("invalid number"),
        }
    }
}

/// Parses a complete JSON document (trailing garbage is an error,
/// matching the real crate).
pub fn from_str(s: &str) -> Result<Value, Error> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let value = parser.parse_value(0)?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return parser.err("trailing characters");
    }
    Ok(value)
}

fn escape(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(value: &Value, out: &mut String, indent: Option<usize>) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => {
            if n.fract() == 0.0 && n.abs() < 1e15 {
                out.push_str(&format!("{}", *n as i64));
            } else {
                out.push_str(&n.to_string());
            }
        }
        Value::String(s) => escape(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline(out, indent.map(|d| d + 1));
                write_value(item, out, indent.map(|d| d + 1));
            }
            if !items.is_empty() {
                newline(out, indent);
            }
            out.push(']');
        }
        Value::Object(map) => {
            out.push('{');
            for (i, (key, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline(out, indent.map(|d| d + 1));
                escape(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent.map(|d| d + 1));
            }
            if !map.is_empty() {
                newline(out, indent);
            }
            out.push('}');
        }
    }
}

fn newline(out: &mut String, indent: Option<usize>) {
    if let Some(depth) = indent {
        out.push('\n');
        for _ in 0..depth * 2 {
            out.push(' ');
        }
    }
}

/// Serializes a [`Value`] compactly.
pub fn to_string(value: &Value) -> Result<String, Error> {
    let mut out = String::new();
    write_value(value, &mut out, None);
    Ok(out)
}

/// Serializes a [`Value`] with two-space indentation.
pub fn to_string_pretty(value: &Value) -> Result<String, Error> {
    let mut out = String::new();
    write_value(value, &mut out, Some(0));
    Ok(out)
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        write_value(self, &mut out, None);
        f.write_str(&out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let doc = r#" {"a": [1, 2.5, -3e2], "b": {"c": true, "d": null}, "e": "x\"\né"} "#;
        let v = from_str(doc).unwrap();
        assert_eq!(
            v.get("a").and_then(|a| a.get("0")).and_then(Value::as_u64),
            Some(1)
        );
        assert_eq!(
            v.get("a").and_then(|a| a.get("1")).and_then(Value::as_f64),
            Some(2.5)
        );
        assert_eq!(
            v.get("a").and_then(|a| a.get("2")).and_then(Value::as_f64),
            Some(-300.0)
        );
        assert_eq!(
            v.get("b").and_then(|b| b.get("c")).and_then(Value::as_bool),
            Some(true)
        );
        assert!(v.get("b").and_then(|b| b.get("d")).unwrap().is_null());
        assert_eq!(v.get("e").and_then(Value::as_str), Some("x\"\né"));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn surrogate_pairs_and_unicode() {
        let v = from_str(r#""😀 ok""#).unwrap();
        assert_eq!(v.as_str(), Some("😀 ok"));
        assert!(from_str(r#""\ud83d""#).is_err());
    }

    #[test]
    fn rejects_malformed() {
        for bad in [
            "{",
            "[1,",
            "{\"a\" 1}",
            "tru",
            "1 2",
            "\"\u{1}\"",
            "nan",
            "",
        ] {
            assert!(from_str(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn round_trips() {
        let doc = r#"{"a":[1,2.5],"b":{"c":true},"d":"x"}"#;
        let v = from_str(doc).unwrap();
        let compact = to_string(&v).unwrap();
        assert_eq!(from_str(&compact).unwrap(), v);
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(from_str(&pretty).unwrap(), v);
        assert!(pretty.contains("\n  \"a\": ["));
    }

    #[test]
    fn integer_accessors() {
        let v = from_str("[9007199254740991, -5, 1.5]").unwrap();
        let items = v.as_array().unwrap();
        assert_eq!(items[0].as_u64(), Some(9007199254740991));
        assert_eq!(items[1].as_i64(), Some(-5));
        assert_eq!(items[1].as_u64(), None);
        assert_eq!(items[2].as_i64(), None);
    }

    #[test]
    fn exact_integers_survive_past_2_53() {
        for v in [0u64, 7, Value::EXACT_INT_MAX, u64::MAX] {
            assert_eq!(Value::from_u64_exact(v).as_u64_exact(), Some(v));
        }
        for v in [0i64, -7, i64::MIN, i64::MAX] {
            assert_eq!(Value::from_i64_exact(v).as_i64_exact(), Some(v));
        }
        for v in [0i128, -1_700_000_000_000_000_000i128, i128::MIN, i128::MAX] {
            assert_eq!(Value::from_i128_exact(v).as_i128_exact(), Some(v));
        }
        // Small values stay plain JSON numbers; huge ones go through
        // strings, and both forms survive a text round trip.
        assert!(matches!(Value::from_u64_exact(42), Value::Number(_)));
        assert!(matches!(Value::from_u64_exact(u64::MAX), Value::String(_)));
        let v = Value::Array(vec![
            Value::from_i128_exact(i128::MAX),
            Value::from_u64_exact(3),
        ]);
        let back = from_str(&to_string(&v).unwrap()).unwrap();
        assert_eq!(back.get("0").unwrap().as_i128_exact(), Some(i128::MAX));
        assert_eq!(back.get("1").unwrap().as_u64_exact(), Some(3));
    }
}
