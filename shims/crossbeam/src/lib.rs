//! Minimal offline shim of the `crossbeam` crate: MPMC channels with
//! the `crossbeam-channel` API subset the workspace uses
//! (`bounded`/`unbounded`, cloneable senders *and* receivers,
//! blocking/timeout/non-blocking receives, disconnect semantics).
//!
//! Built on `std::sync` (`Mutex` + two `Condvar`s); adequate for the
//! planning-engine workloads here, not a lock-free replacement.

#![forbid(unsafe_code)]

/// Multi-producer multi-consumer channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Chan<T> {
        state: Mutex<State<T>>,
        capacity: Option<usize>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    /// The sending half; cloneable.
    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    /// The receiving half; cloneable (MPMC).
    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    /// The message could not be delivered: all receivers are gone.
    #[derive(Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    // Manual impl: the derive would demand `T: Debug`, which real
    // crossbeam does not (the payload is elided).
    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// The channel is empty and all senders are gone.
    #[derive(Clone, Copy, PartialEq, Eq, Debug)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty, disconnected channel")
        }
    }

    /// Outcome of a failed [`Receiver::try_recv`].
    #[derive(Clone, Copy, PartialEq, Eq, Debug)]
    pub enum TryRecvError {
        /// Nothing queued right now.
        Empty,
        /// Empty and all senders are gone.
        Disconnected,
    }

    /// Outcome of a failed [`Receiver::recv_timeout`].
    #[derive(Clone, Copy, PartialEq, Eq, Debug)]
    pub enum RecvTimeoutError {
        /// The timeout elapsed with nothing queued.
        Timeout,
        /// Empty and all senders are gone.
        Disconnected,
    }

    /// An unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_capacity(None)
    }

    /// A channel holding at most `cap` queued messages (`send` blocks
    /// while full).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_capacity(Some(cap))
    }

    fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            capacity,
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (Sender { chan: chan.clone() }, Receiver { chan })
    }

    impl<T> Chan<T> {
        fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
            self.state.lock().unwrap_or_else(|e| e.into_inner())
        }
    }

    impl<T> Sender<T> {
        /// Delivers `msg`, blocking while a bounded channel is full.
        ///
        /// # Errors
        /// [`SendError`] when every receiver has been dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut st = self.chan.lock();
            loop {
                if st.receivers == 0 {
                    return Err(SendError(msg));
                }
                match self.chan.capacity {
                    Some(cap) if st.queue.len() >= cap => {
                        st = self
                            .chan
                            .not_full
                            .wait(st)
                            .unwrap_or_else(|e| e.into_inner());
                    }
                    _ => break,
                }
            }
            st.queue.push_back(msg);
            drop(st);
            self.chan.not_empty.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.chan.lock().senders += 1;
            Sender {
                chan: self.chan.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.chan.lock();
            st.senders -= 1;
            let last = st.senders == 0;
            drop(st);
            if last {
                // Wake blocked receivers so they observe disconnect.
                self.chan.not_empty.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives.
        ///
        /// # Errors
        /// [`RecvError`] when empty and every sender has been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.chan.lock();
            loop {
                if let Some(msg) = st.queue.pop_front() {
                    drop(st);
                    self.chan.not_full.notify_one();
                    return Ok(msg);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self
                    .chan
                    .not_empty
                    .wait(st)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Like [`Receiver::recv`] but gives up after `timeout`.
        ///
        /// # Errors
        /// [`RecvTimeoutError::Timeout`] or
        /// [`RecvTimeoutError::Disconnected`].
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut st = self.chan.lock();
            loop {
                if let Some(msg) = st.queue.pop_front() {
                    drop(st);
                    self.chan.not_full.notify_one();
                    return Ok(msg);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let Some(remaining) = deadline
                    .checked_duration_since(Instant::now())
                    .filter(|d| !d.is_zero())
                else {
                    return Err(RecvTimeoutError::Timeout);
                };
                let (guard, _timed_out) = self
                    .chan
                    .not_empty
                    .wait_timeout(st, remaining)
                    .unwrap_or_else(|e| e.into_inner());
                st = guard;
            }
        }

        /// Takes a queued message without blocking.
        ///
        /// # Errors
        /// [`TryRecvError::Empty`] or [`TryRecvError::Disconnected`].
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.chan.lock();
            if let Some(msg) = st.queue.pop_front() {
                drop(st);
                self.chan.not_full.notify_one();
                return Ok(msg);
            }
            if st.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Number of currently queued messages.
        pub fn len(&self) -> usize {
            self.chan.lock().queue.len()
        }

        /// `true` when nothing is queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// Blocking iterator draining the channel until disconnect.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.chan.lock().receivers += 1;
            Receiver {
                chan: self.chan.clone(),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.chan.lock();
            st.receivers -= 1;
            let last = st.receivers == 0;
            drop(st);
            if last {
                // Wake blocked senders so they observe disconnect.
                self.chan.not_full.notify_all();
            }
        }
    }

    /// See [`Receiver::iter`].
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn fifo_within_single_consumer() {
        let (tx, rx) = channel::unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        let got: Vec<i32> = (0..10).map(|_| rx.recv().unwrap()).collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn disconnect_semantics() {
        let (tx, rx) = channel::unbounded::<u8>();
        drop(tx);
        assert!(rx.recv().is_err());
        let (tx, rx) = channel::unbounded::<u8>();
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn timeout_fires_on_empty_channel() {
        let (_tx, rx) = channel::unbounded::<u8>();
        let err = rx.recv_timeout(Duration::from_millis(10)).unwrap_err();
        assert_eq!(err, channel::RecvTimeoutError::Timeout);
    }

    #[test]
    fn mpmc_distributes_all_messages() {
        let (tx, rx) = channel::bounded(4);
        let workers: Vec<_> = (0..3)
            .map(|_| {
                let rx = rx.clone();
                thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Ok(v) = rx.recv() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        drop(rx);
        for i in 0..100u32 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let mut all: Vec<u32> = workers
            .into_iter()
            .flat_map(|w| w.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }
}
