//! Minimal offline shim of the `criterion` crate (0.5 API subset).
//!
//! A plain wall-clock timing harness: each benchmark is warmed up,
//! then measured over a time-boxed batch of iterations, and the mean
//! ns/iter is printed (plus elements/sec when a [`Throughput`] is
//! set on the group). No statistics, plots or baselines.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier of one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `"<name>/<parameter>"`.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    /// Just the parameter as the id.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Work-per-iteration hint used to report a rate.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// The timing loop handed to benchmark closures.
pub struct Bencher {
    measured: Option<Measurement>,
    measurement_time: Duration,
}

#[derive(Clone, Copy, Debug)]
struct Measurement {
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `routine`: a short warm-up, then a time-boxed batch.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: one untimed call (compulsory — it may also be the
        // only call for very slow routines).
        black_box(routine());
        let budget = self.measurement_time;
        let start = Instant::now();
        let mut iters = 0u64;
        loop {
            black_box(routine());
            iters += 1;
            if start.elapsed() >= budget || iters >= 10_000 {
                break;
            }
        }
        self.measured = Some(Measurement {
            total: start.elapsed(),
            iters,
        });
    }
}

/// The harness entry point. One instance runs every registered bench.
pub struct Criterion {
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Sets the per-benchmark measurement budget.
    pub fn measurement_time(mut self, dur: Duration) -> Self {
        self.measurement_time = dur;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            measurement_time: self.measurement_time,
            _criterion: self,
        }
    }

    /// Benches a standalone function.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let measurement_time = self.measurement_time;
        run_one(None, &id.into(), None, measurement_time, f);
        self
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    measurement_time: Duration,
    _criterion: &'a Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the group's throughput hint (reported as a rate).
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Sets the group's measurement budget.
    pub fn measurement_time(&mut self, dur: Duration) -> &mut Self {
        self.measurement_time = dur;
        self
    }

    /// Kept for API compatibility; the shim ignores sample counts.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Benches a function within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(
            Some(&self.name),
            &id.into(),
            self.throughput,
            self.measurement_time,
            f,
        );
        self
    }

    /// Benches a function with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(
            Some(&self.name),
            &id.into(),
            self.throughput,
            self.measurement_time,
            |b| f(b, input),
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    group: Option<&str>,
    id: &BenchmarkId,
    throughput: Option<Throughput>,
    measurement_time: Duration,
    mut f: F,
) {
    let label = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_string(),
    };
    let mut bencher = Bencher {
        measured: None,
        measurement_time,
    };
    f(&mut bencher);
    match bencher.measured {
        Some(m) if m.iters > 0 => {
            let per_iter_ns = m.total.as_nanos() as f64 / m.iters as f64;
            let rate = throughput.map(|tp| {
                let (unit, count) = match tp {
                    Throughput::Elements(n) => ("elem/s", n),
                    Throughput::Bytes(n) => ("B/s", n),
                };
                let per_sec = count as f64 * m.iters as f64 / m.total.as_secs_f64();
                format!("  {per_sec:.1} {unit}")
            });
            println!(
                "bench {label:<40} {per_iter_ns:>14.0} ns/iter ({} iters){}",
                m.iters,
                rate.unwrap_or_default()
            );
        }
        _ => println!("bench {label:<40} (no measurement: Bencher::iter never called)"),
    }
}

/// Registers a group-running function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running every registered group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_and_prints() {
        let mut c = Criterion::default().measurement_time(Duration::from_millis(5));
        let mut calls = 0u64;
        c.bench_function("noop", |b| b.iter(|| calls += 1));
        assert!(calls > 1, "routine ran: {calls}");
    }

    #[test]
    fn group_with_input_and_throughput() {
        let mut c = Criterion::default().measurement_time(Duration::from_millis(5));
        let mut g = c.benchmark_group("grp");
        g.throughput(Throughput::Elements(10));
        g.bench_with_input(BenchmarkId::from_parameter(4), &4u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.bench_function("plain", |b| b.iter(|| 1 + 1));
        g.finish();
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("a", 3).to_string(), "a/3");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
