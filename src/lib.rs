//! # chronus — consistent data-plane updates in timed SDNs
//!
//! A from-scratch Rust reproduction of *Chronus: Consistent Data Plane
//! Updates in Timed SDNs* (Zheng, Chen, Schmid, Dai, Wu — ICDCS 2017).
//!
//! This facade crate re-exports the workspace:
//!
//! - [`net`] — the network model: switches, capacitated/delayed links,
//!   paths, flows, topologies, routing, instance generators;
//! - [`timenet`] — time-extended networks, schedules and the exact
//!   dynamic-flow simulator (the reproduction's ground truth);
//! - [`core`] — the paper's algorithms: tree feasibility (Alg. 1),
//!   greedy scheduling (Alg. 2), dependency sets (Alg. 3), loop checks
//!   (Alg. 4) and execution plans (Alg. 5);
//! - [`opt`] — exact MUTP solvers: schedule-space branch and bound and
//!   the ILP of program (3);
//! - [`baselines`] — the OR (order replacement) and TP (two-phase)
//!   comparison schemes;
//! - [`openflow`] — the OpenFlow-style data-plane substrate;
//! - [`clock`] — the Time4-style synchronized-clock substrate;
//! - [`emu`] — the discrete-event emulator standing in for Mininet;
//! - [`engine`] — the concurrent batched update-planning engine:
//!   worker-pool planning with per-request deadlines and the
//!   greedy → tree → two-phase fallback chain;
//! - [`verify`] — the independent static certifier: proves schedules
//!   loop- and congestion-free by interval arithmetic, with no shared
//!   simulator code, and seals every solver's success with a
//!   machine-checkable certificate;
//! - [`trace`] — the observability layer: structured spans across
//!   every solver/engine/emulator hot path, a lock-free metrics
//!   registry with Prometheus/JSON encoders, and a Chrome trace-event
//!   timeline exporter (load `trace.json` in Perfetto);
//! - [`faults`] — fault injection and failure recovery: seeded
//!   fault plans (message loss/duplication/delay, install stragglers,
//!   clock-desync spikes, switch reboots), a reliable-delivery
//!   protocol with acks and exponential-backoff retransmission, and
//!   the slack-certified re-arm / two-phase-rollback recovery policy;
//! - [`daemon`] — `chronusd`, the long-running update service: a
//!   Unix-socket line-JSON IPC server wrapping the engine with
//!   priority-class admission queues, per-tenant token-bucket rate
//!   limits, a warm resident planning cache, and a write-ahead
//!   journal of certified armed schedules that the restart path
//!   re-arms within certified slack or rolls back (plus the
//!   `chronusctl` CLI client).
//!
//! ## Quickstart
//!
//! ```
//! use chronus::core::greedy::greedy_schedule;
//! use chronus::net::motivating_example;
//! use chronus::timenet::{FluidSimulator, Verdict};
//!
//! let instance = motivating_example();
//! let outcome = greedy_schedule(&instance).expect("feasible");
//! let report = FluidSimulator::check(&instance, &outcome.schedule);
//! assert_eq!(report.verdict(), Verdict::Consistent);
//! println!("update in {} steps:\n{}", outcome.makespan + 1, outcome.schedule);
//! ```
//!
//! To plan a whole batch concurrently, hand the instances to the
//! engine instead of calling the scheduler per flow:
//!
//! ```
//! use chronus::engine::{Engine, EngineConfig};
//! use chronus::net::motivating_example;
//! use std::sync::Arc;
//!
//! let engine = Engine::new(EngineConfig::with_workers(2));
//! let plans = engine.plan_instances(vec![Arc::new(motivating_example()); 8]);
//! assert!(plans.iter().all(|p| p.timed_schedule().is_ok()));
//! assert!(plans.iter().all(|p| p.certificate.is_some()));
//! println!("{}", engine.report());
//! ```
//!
//! Run `cargo run -p chronus-bench --release --bin walkthrough` for the
//! paper's worked example, and the `fig6`…`fig11`/`table2` binaries to
//! regenerate every figure and table of the evaluation (see
//! EXPERIMENTS.md).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use chronus_baselines as baselines;
pub use chronus_clock as clock;
pub use chronus_core as core;
pub use chronus_daemon as daemon;
pub use chronus_emu as emu;
pub use chronus_engine as engine;
pub use chronus_faults as faults;
pub use chronus_net as net;
pub use chronus_openflow as openflow;
pub use chronus_opt as opt;
pub use chronus_timenet as timenet;
pub use chronus_trace as trace;
pub use chronus_verify as verify;
