//! End-to-end integration of every crate on the paper's worked
//! example (Figs. 1–5): the six-switch topology with unit capacities
//! and delays, old path v1→…→v6, new path v1→v4→v3→v2→v6.

use chronus::baselines::or::{or_rounds, OrConfig};
use chronus::baselines::tp::{chronus_peak_rule_count, tp_flip_report, tp_plan};
use chronus::core::exec::ExecutionPlan;
use chronus::core::greedy::{greedy_schedule, greedy_schedule_with, GreedyConfig};
use chronus::core::tree::{check_feasibility, Feasibility};
use chronus::net::{motivating_example, FlowId, SwitchId};
use chronus::opt::optimal_schedule;
use chronus::timenet::{FluidSimulator, Schedule, Verdict};

fn sid(i: u32) -> SwitchId {
    SwitchId(i)
}

#[test]
fn greedy_solves_and_certifies() {
    let inst = motivating_example();
    let out = greedy_schedule(&inst).expect("feasible");
    let report = FluidSimulator::check(&inst, &out.schedule);
    assert_eq!(report.verdict(), Verdict::Consistent, "{report}");
    out.schedule.validate(&inst).expect("complete schedule");
    // Paper Fig. 5: only v2 can go first.
    assert_eq!(out.schedule.get(FlowId(0), sid(1)), Some(0));
}

#[test]
fn optimum_is_three_steps_and_greedy_is_near_optimal() {
    let inst = motivating_example();
    let opt = optimal_schedule(&inst).expect("feasible");
    assert_eq!(opt.makespan, 2, "|T| = 3 time steps");
    let greedy = greedy_schedule(&inst).expect("feasible");
    assert!(greedy.makespan >= opt.makespan);
    assert!(
        greedy.makespan - opt.makespan <= 2,
        "greedy {} vs opt {}",
        greedy.makespan,
        opt.makespan
    );
}

#[test]
fn tree_algorithm_confirms_feasibility_with_witness() {
    let inst = motivating_example();
    match check_feasibility(&inst) {
        Feasibility::Feasible {
            schedule,
            certificate,
        } => {
            let report = FluidSimulator::check(&inst, &schedule);
            assert_eq!(report.verdict(), Verdict::Consistent);
            assert_eq!(certificate.check(&inst), Ok(()));
        }
        other => panic!("expected feasible, got {other:?}"),
    }
}

#[test]
fn all_at_zero_violates_loop_freedom() {
    // Paper Fig. 2(a): "If all the switches are updated at t0, there
    // would be three forwarding loops."
    let inst = motivating_example();
    let report = FluidSimulator::check(&inst, &Schedule::all_at_zero(&inst));
    assert!(!report.loop_free());
}

#[test]
fn or_needs_three_rounds_and_always_congests() {
    let inst = motivating_example();
    let or = or_rounds(&inst, OrConfig::default()).expect("plan exists");
    assert_eq!(or.round_count(), 3, "rounds: {:?}", or.rounds);
    // With synchronous installation (zero latency) the first round's
    // redirect overlaps the draining old flow on unit-capacity links —
    // a deterministic witness that OR ignores capacity. (Randomized
    // latencies congest only for some draws, so the witness here is
    // pinned rather than sampled.)
    let mut rng = chronus::net::routing::seeded_rng(1234);
    let schedule = or.execute(inst.flow(), (0, 0), &mut rng);
    let report = FluidSimulator::check(&inst, &schedule);
    assert!(report.loop_free(), "OR plans avoid loops: {report}");
    assert!(
        !report.congestion_free(),
        "OR ignores capacity and must congest here"
    );
}

#[test]
fn tp_is_loop_free_but_needs_double_rules() {
    let inst = motivating_example();
    let flow = inst.flow();
    let plan = tp_plan(flow);
    assert_eq!(plan.peak_rule_count(), 12);
    assert_eq!(chronus_peak_rule_count(flow), 6);
    let report = tp_flip_report(&inst, 3);
    assert!(report.loops.is_empty());
}

#[test]
fn execution_plan_matches_schedule_rounds() {
    let inst = motivating_example();
    let out = greedy_schedule(&inst).expect("feasible");
    let plan = ExecutionPlan::from_schedule(&out.schedule);
    assert_eq!(plan.total_updates(), 4);
    assert_eq!(plan.horizon(), Some(out.makespan));
    assert_eq!(plan.round_count(), out.schedule.distinct_steps());
}

#[test]
fn strict_paper_mode_vs_robust_mode() {
    // The paper's Algorithm 2 aborts on a dependency cycle; the
    // motivating example has a transient one at t0, which the robust
    // default dissolves by waiting.
    let inst = motivating_example();
    let strict = greedy_schedule_with(
        &inst,
        GreedyConfig {
            fail_on_cycle: true,
            ..GreedyConfig::default()
        },
    );
    assert!(strict.is_err());
    let robust = greedy_schedule(&inst);
    assert!(robust.is_ok());
}

#[test]
fn every_scheduler_agrees_on_the_infeasible_variant() {
    // Fast shortcut over a shared unit-capacity tail: nobody can
    // schedule it cleanly.
    use chronus::net::{Flow, NetworkBuilder, Path, UpdateInstance};
    let mut b = NetworkBuilder::with_switches(4);
    b.add_link(sid(0), sid(1), 1, 1).unwrap();
    b.add_link(sid(1), sid(2), 1, 1).unwrap();
    b.add_link(sid(2), sid(3), 1, 1).unwrap();
    b.add_link(sid(0), sid(2), 1, 1).unwrap();
    let flow = Flow::new(
        FlowId(0),
        1,
        Path::new(vec![sid(0), sid(1), sid(2), sid(3)]),
        Path::new(vec![sid(0), sid(2), sid(3)]),
    )
    .unwrap();
    let inst = UpdateInstance::single(b.build(), flow).unwrap();
    assert!(greedy_schedule(&inst).is_err());
    assert!(optimal_schedule(&inst).is_err());
    assert!(matches!(
        check_feasibility(&inst),
        Feasibility::Infeasible { .. }
    ));
}
