//! Fault tolerance end to end: the fault layer at rate zero is
//! observationally invisible, lossy control channels recover through
//! retransmission, reboots recover through re-arms, dead channels roll
//! back to two-phase, and every recovery stays inside the slack window
//! certified by `chronus-verify`.

use chronus::clock::{two_way_sync, HardwareClock, Nanos, SyncConfig};
use chronus::core::greedy::greedy_schedule;
use chronus::emu::{EmuConfig, EmuReport, Emulator, UpdateDriver};
use chronus::faults::{FaultPlan, ReliableConfig, SlackBudget};
use chronus::net::motivating_example;
use chronus::net::{InstanceGenerator, InstanceGeneratorConfig, SwitchId, UpdateInstance};
use chronus::timenet::Schedule;
use chronus::verify::{slack_certificate, SlackConfig};
use chronus_bench::fig6::fig6_instance;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn short_config() -> EmuConfig {
    EmuConfig {
        run_for: 8_000_000_000,
        update_at: 2_000_000_000,
        ..EmuConfig::default()
    }
}

/// Canonical view for the differential test: sorted firing instants,
/// per-flow delivery, and the three loss counters plus peak rules.
type CanonicalReport = (Vec<(Nanos, SwitchId)>, Vec<u64>, u64, u64, u64, usize);

/// The report fields both code paths must agree on byte for byte.
/// The fault-only additions (`faults`, `rolled_back`,
/// `timed_tasks_pending`) are excluded by construction: the legacy
/// path never sets them.
fn canonical(report: &EmuReport) -> CanonicalReport {
    let mut applied = report.applied_updates.clone();
    applied.sort_unstable();
    (
        applied,
        report.delivered_bytes.clone(),
        report.buffer_drops,
        report.ttl_drops,
        report.table_misses,
        report.peak_rule_count,
    )
}

fn run_legacy(inst: &UpdateInstance, schedule: &Schedule, seed: u64) -> EmuReport {
    let mut emu = Emulator::new(inst, short_config(), seed);
    emu.install_driver(UpdateDriver::chronus(schedule.clone(), inst));
    emu.run()
}

fn run_with_faults(
    inst: &UpdateInstance,
    schedule: &Schedule,
    seed: u64,
    plan: FaultPlan,
    reliable: ReliableConfig,
    slack: SlackBudget,
) -> EmuReport {
    let mut emu = Emulator::new(inst, short_config(), seed);
    emu.install_faults(plan, reliable, slack);
    emu.install_driver(UpdateDriver::chronus(schedule.clone(), inst));
    emu.run()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Differential property: installing a zero-rate `FaultPlan` turns
    /// on the whole reliable-delivery machinery (Arm envelopes, acks,
    /// trigger executors, watchdog checks) yet the emulation's
    /// observable outcome — firing instants, traffic, loss accounting
    /// — is byte-identical to the legacy fault-free path.
    #[test]
    fn quiet_fault_layer_is_byte_identical_to_the_fault_free_path(
        switches in 6usize..14,
        inst_seed in 0u64..5_000,
        emu_seed in 0u64..1_000,
    ) {
        let cfg = InstanceGeneratorConfig::paper(switches, inst_seed);
        let Some(inst) = InstanceGenerator::new(cfg).generate() else { return Ok(()); };
        let Ok(out) = greedy_schedule(&inst) else { return Ok(()); };

        let baseline = run_legacy(&inst, &out.schedule, emu_seed);
        let quiet = run_with_faults(
            &inst,
            &out.schedule,
            emu_seed,
            FaultPlan::quiet(emu_seed),
            ReliableConfig::default(),
            SlackBudget::zero(),
        );

        prop_assert_eq!(canonical(&baseline), canonical(&quiet));
        prop_assert_eq!(&baseline.bandwidth, &quiet.bandwidth);
        // The fault layer itself confirms it never intervened.
        let f = quiet.faults.expect("faults were installed");
        prop_assert_eq!(f.drops + f.dups + f.delays + f.retransmits + f.exhausted, 0);
        prop_assert_eq!(f.rearms + f.rollbacks, 0);
        prop_assert_eq!(quiet.timed_tasks_pending, 0);
        prop_assert!(!quiet.rolled_back);
        prop_assert!(baseline.faults.is_none(), "legacy path reports no fault layer");
    }
}

/// The fault_sweep gate at test scale: 200 seeds of up to 20% message
/// loss plus one trigger-wiping reboot per run, defended by reliable
/// delivery under a real slack certificate. Every run must end
/// certified and every firing must stay inside the certified ±Δ.
#[test]
fn certified_sweep_over_200_seeds_ends_every_run_certified() {
    let inst = motivating_example();
    let schedule = greedy_schedule(&inst)
        .expect("motivating example is greedy-schedulable")
        .schedule
        .dilated(2);
    let cert = slack_certificate(&inst, &schedule, &SlackConfig::default())
        .expect("dilated schedule certifies");
    assert!(cert.slack_steps >= 1, "dilation buys slack: {cert}");
    let config = short_config();
    let delta = cert.delta_ns(config.step_ns);

    for seed in 0..200u64 {
        let drop_prob = (seed % 21) as f64 / 100.0;
        let reboot_switch = SwitchId((seed % 4) as u32);
        let reboot_at = 1_000_000_000 + (seed % 5) as Nanos * 100_000_000;
        let outage = 200_000_000 + (seed % 3) as Nanos * 100_000_000;
        let plan = FaultPlan::lossy(seed, drop_prob).with_reboot(reboot_at, reboot_switch, outage);

        let mut emu = Emulator::new(&inst, config, seed);
        emu.install_faults_certified(plan, ReliableConfig::default(), &cert);
        emu.install_driver(UpdateDriver::chronus(schedule.clone(), &inst));
        let report = emu.run();

        let f = report.faults.expect("faults were installed");
        assert!(
            report.clean() && !report.rolled_back && report.timed_tasks_pending == 0,
            "seed {seed} (drop {drop_prob:.2}): pending {}, rolled_back {}, \
             ttl {}, misses {}, buffer {}\n  {f}",
            report.timed_tasks_pending,
            report.rolled_back,
            report.ttl_drops,
            report.table_misses,
            report.buffer_drops,
        );
        assert!(
            (f.max_fire_deviation_ns as i128) <= delta,
            "seed {seed}: deviation {} ns outside certified ±{delta} ns",
            f.max_fire_deviation_ns
        );
    }
}

/// The certificate's promise is stated against the *measured* post-sync
/// residual: after a `two_way_sync` round, the remaining clock error
/// must sit inside the certified ±Δ — and an emulated clock
/// perturbation of exactly that magnitude must leave the deployment
/// clean.
#[test]
fn certified_slack_covers_the_measured_sync_residual() {
    let inst = motivating_example();
    let schedule = greedy_schedule(&inst)
        .expect("feasible")
        .schedule
        .dilated(2);
    let cert = slack_certificate(&inst, &schedule, &SlackConfig::default())
        .expect("dilated schedule certifies");
    let config = short_config();
    let delta = cert.delta_ns(config.step_ns);
    assert!(delta > 0, "{cert}");

    for seed in 0..20u64 {
        // A switch clock with realistic error, synced once over a
        // jittery channel: the residual is what deployment must absorb.
        let mut clock = HardwareClock::new(50_000 - (seed as Nanos) * 5_000, 10_000);
        let mut rng = StdRng::seed_from_u64(seed);
        let out = two_way_sync(&mut clock, 0, SyncConfig::default(), &mut rng);
        let residual = out.residual_error;
        assert!(
            cert.covers_residual(residual, config.step_ns),
            "seed {seed}: residual {residual} ns outside certified ±{delta} ns"
        );

        // Re-inject the measured residual as a clock-desync spike on a
        // scheduled switch: the certificate says the run stays clean.
        let spike = residual.max(1);
        let plan = FaultPlan::quiet(seed).with_spike(1_500_000_000, SwitchId(1), spike);
        let mut emu = Emulator::new(&inst, config, seed);
        emu.install_faults_certified(plan, ReliableConfig::default(), &cert);
        emu.install_driver(UpdateDriver::chronus(schedule.clone(), &inst));
        let report = emu.run();
        let f = report.faults.expect("faults were installed");
        assert!(
            report.clean(),
            "seed {seed}: spike of {spike} ns broke the plan"
        );
        assert_eq!(report.timed_tasks_pending, 0);
        assert!(
            (f.max_fire_deviation_ns as i128) <= delta,
            "seed {seed}: deviation {} ns outside certified ±{delta} ns",
            f.max_fire_deviation_ns
        );
    }
}

/// A switch reboot during the distribution window wipes its armed
/// triggers; recovery re-arms them when the agent comes back, and the
/// migration still completes on time — on the paper's Fig. 6 topology,
/// not just the motivating example.
#[test]
fn reboot_during_distribution_recovers_on_fig6() {
    let inst = fig6_instance();
    let schedule = greedy_schedule(&inst).expect("feasible").schedule;
    let expected = inst.flow().switches_to_update().len();
    // Reboot the first scheduled switch after Arms land (lead time is
    // 1 s before the 2 s window) but before any trigger fires.
    let victim = schedule
        .iter()
        .map(|(_, s, _)| s)
        .min()
        .expect("non-empty schedule");
    let plan = FaultPlan::quiet(7).with_reboot(1_200_000_000, victim, 300_000_000);
    let report = run_with_faults(
        &inst,
        &schedule,
        7,
        plan,
        ReliableConfig::default(),
        SlackBudget::new(99_999_999),
    );
    let f = report.faults.expect("faults were installed");
    assert_eq!(f.reboots, 1);
    assert!(f.triggers_lost >= 1, "the reboot wiped armed triggers");
    assert!(
        f.triggers_armed as usize > expected,
        "recovery re-armed the wiped triggers"
    );
    assert_eq!(report.applied_updates.len(), expected);
    assert_eq!(report.timed_tasks_pending, 0);
    assert!(!report.rolled_back);
    assert!(report.clean(), "recovered run stays consistent");
}

/// When the control channel is dead and retries exhaust, the watchdog
/// must abandon the timed plan — exactly once — and the two-phase
/// rollback path must still complete the migration consistently.
#[test]
fn dead_channel_rolls_back_once_and_two_phase_completes() {
    let inst = fig6_instance();
    let schedule = greedy_schedule(&inst).expect("feasible").schedule;
    let timed = inst.flow().switches_to_update().len();
    let reliable = ReliableConfig {
        max_retries: 2,
        ..ReliableConfig::default()
    };
    let report = run_with_faults(
        &inst,
        &schedule,
        13,
        FaultPlan::lossy(13, 1.0),
        reliable,
        SlackBudget::zero(),
    );
    let f = report.faults.expect("faults were installed");
    assert!(report.rolled_back, "dead channel forces rollback");
    assert_eq!(f.rollbacks, 1, "rollback is idempotent");
    assert!(f.exhausted > 0, "retries exhausted on the dead channel");
    assert_eq!(
        report.timed_tasks_pending, timed,
        "no timed task ever applied"
    );
    // Two-phase re-issues the update out-of-band: the migration still
    // lands, and without forwarding loops.
    assert!(
        report.applied_updates.len() > timed,
        "two-phase rollback installed the update (tagged rules + flips)"
    );
    assert_eq!(report.ttl_drops, 0, "rollback path stays loop-free");
}
