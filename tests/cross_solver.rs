//! Cross-validation of the three exact routes to OPT: the
//! schedule-space branch and bound, the ILP of program (3), and the
//! brute-force enumeration oracle.

use chronus::net::{InstanceGenerator, InstanceGeneratorConfig};
use chronus::opt::enumerate::enumerate_consistent_schedules;
use chronus::opt::ilp::{build_mutp_ilp, ilp_optimal};
use chronus::opt::{optimal_schedule_with, OptConfig};
use chronus::timenet::{FluidSimulator, Verdict};
use std::time::Duration;

fn small_instances(count: usize) -> Vec<chronus::net::UpdateInstance> {
    let mut gen = InstanceGenerator::new(InstanceGeneratorConfig::paper(8, 2024));
    gen.generate_batch(count)
        .into_iter()
        .filter(|inst| inst.flow().switches_to_update().len() <= 6)
        .collect()
}

#[test]
fn search_and_oracle_agree_on_optimal_makespan() {
    let mut compared = 0;
    for inst in small_instances(12) {
        // Keep the brute-force oracle affordable in debug builds: skip
        // instances whose assignment space exceeds the cap.
        if inst.flow().switches_to_update().len() > 5 {
            continue;
        }
        let search = optimal_schedule_with(
            &inst,
            OptConfig {
                budget: Duration::from_secs(5),
                ..Default::default()
            },
        );
        let oracle = enumerate_consistent_schedules(&inst, 5, 300_000);
        if !oracle.exhaustive {
            continue;
        }
        match (search, oracle.optimal_makespan()) {
            (Ok(s), Some(m)) => {
                assert_eq!(s.makespan, m, "search vs oracle on {inst:?}");
                compared += 1;
            }
            (Err(_), Some(m)) => {
                panic!("oracle found makespan {m} but search said infeasible")
            }
            (Ok(s), None) if s.makespan <= 5 => {
                panic!("search found makespan {} but oracle found none", s.makespan)
            }
            _ => {}
        }
    }
    assert!(
        compared >= 2,
        "need a few solvable instances, got {compared}"
    );
}

#[test]
fn ilp_route_matches_search_route() {
    let mut compared = 0;
    for inst in small_instances(12) {
        if inst.flow().switches_to_update().len() > 4 {
            continue; // keep path enumeration tractable
        }
        let search = optimal_schedule_with(
            &inst,
            OptConfig {
                budget: Duration::from_secs(5),
                ..Default::default()
            },
        );
        let ilp = ilp_optimal(&inst, 5, Duration::from_secs(20));
        match (search, ilp) {
            (Ok(s), Ok((schedule, makespan, certificate))) if s.makespan <= 5 => {
                assert_eq!(s.makespan, makespan);
                let report = FluidSimulator::check(&inst, &schedule);
                assert_eq!(report.verdict(), Verdict::Consistent);
                assert_eq!(certificate.check(&inst), Ok(()));
                compared += 1;
            }
            (Err(_), Ok((_, m, _))) => panic!("ILP found |T|={} where search failed", m + 1),
            _ => {}
        }
    }
    assert!(
        compared >= 2,
        "need a few comparable instances, got {compared}"
    );
}

#[test]
fn ilp_model_structure_is_well_formed() {
    for inst in small_instances(6).into_iter().take(2) {
        let (model, vars, _) = build_mutp_ilp(&inst, 3, 512);
        assert_eq!(model.variables.len(), vars.len());
        assert_eq!(model.objective.len(), vars.len());
        // Every constraint's variable indices are in range and the
        // pick-one constraint exists for the flow.
        for c in &model.constraints {
            for &(vi, coeff) in &c.terms {
                assert!(vi < vars.len());
                assert!(coeff > 0);
            }
        }
        assert!(model.constraints.iter().any(|c| c.label.contains("(3b)")));
        let lp = model.to_lp_string();
        assert!(lp.contains("Minimize") && lp.contains("End"));
    }
}
