//! Property-based tests of the core invariants, over randomly
//! generated update instances.

use chronus::core::greedy::greedy_schedule;
use chronus::core::tree::{check_feasibility, Feasibility};
use chronus::net::{InstanceGenerator, InstanceGeneratorConfig};
use chronus::opt::{optimal_schedule_with, OptConfig};
use chronus::timenet::{FluidSimulator, Schedule, Verdict};
use proptest::prelude::*;
use std::time::Duration;

fn gen_instance(switches: usize, seed: u64) -> Option<chronus::net::UpdateInstance> {
    let cfg = InstanceGeneratorConfig::paper(switches.max(6), seed);
    InstanceGenerator::new(cfg).generate()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Theorem 3: every schedule the greedy emits is congestion- and
    /// loop-free (and blackhole-free, and complete).
    #[test]
    fn greedy_schedules_are_always_consistent(
        switches in 6usize..24,
        seed in 0u64..10_000,
    ) {
        let Some(inst) = gen_instance(switches, seed) else { return Ok(()); };
        if let Ok(out) = greedy_schedule(&inst) {
            let report = FluidSimulator::check(&inst, &out.schedule);
            prop_assert_eq!(report.verdict(), Verdict::Consistent);
            prop_assert!(out.schedule.validate(&inst).is_ok());
        }
    }

    /// OPT never needs more steps than the greedy, and its schedule is
    /// equally consistent.
    #[test]
    fn opt_is_no_worse_than_greedy(
        switches in 6usize..16,
        seed in 0u64..5_000,
    ) {
        let Some(inst) = gen_instance(switches, seed) else { return Ok(()); };
        let Ok(greedy) = greedy_schedule(&inst) else { return Ok(()); };
        let opt = optimal_schedule_with(&inst, OptConfig {
            budget: Duration::from_millis(500),
            ..Default::default()
        });
        if let Ok(opt) = opt {
            prop_assert!(opt.makespan <= greedy.makespan,
                "opt {} > greedy {}", opt.makespan, greedy.makespan);
            let report = FluidSimulator::check(&inst, &opt.schedule);
            prop_assert_eq!(report.verdict(), Verdict::Consistent);
        }
    }

    /// Algorithm 1 consistency: whenever the greedy finds a schedule,
    /// the tree feasibility check must say "feasible" — and its
    /// witness must verify.
    #[test]
    fn tree_feasibility_agrees_with_greedy_success(
        switches in 6usize..16,
        seed in 0u64..5_000,
    ) {
        let Some(inst) = gen_instance(switches, seed) else { return Ok(()); };
        if greedy_schedule(&inst).is_ok() {
            match check_feasibility(&inst) {
                Feasibility::Feasible { schedule, .. } => {
                    let report = FluidSimulator::check(&inst, &schedule);
                    prop_assert_eq!(report.verdict(), Verdict::Consistent);
                }
                other => prop_assert!(false, "greedy found a witness but tree said {:?}", other),
            }
        }
    }

    /// Time-shift invariance of the dynamic-flow semantics: delaying
    /// an entire consistent schedule by `k` steps keeps it consistent
    /// (the data plane is in steady state before updates begin).
    #[test]
    fn schedules_are_shift_invariant(
        switches in 6usize..16,
        seed in 0u64..5_000,
        shift in 1i64..6,
    ) {
        let Some(inst) = gen_instance(switches, seed) else { return Ok(()); };
        let Ok(out) = greedy_schedule(&inst) else { return Ok(()); };
        let mut shifted = out.schedule.clone();
        shifted.shift(shift);
        let report = FluidSimulator::check(&inst, &shifted);
        prop_assert_eq!(report.verdict(), Verdict::Consistent);
    }

    /// The simulator itself: a no-op schedule on a validated instance
    /// never reports violations (the initial state is feasible).
    #[test]
    fn steady_state_is_always_clean(
        switches in 6usize..20,
        seed in 0u64..10_000,
    ) {
        let Some(inst) = gen_instance(switches, seed) else { return Ok(()); };
        let report = FluidSimulator::check(&inst, &Schedule::new());
        prop_assert!(report.congestion_free());
        prop_assert!(report.loop_free());
        prop_assert!(report.blackholes.is_empty());
    }

    /// Flow conservation (Definition 1): with a complete consistent
    /// schedule, the load that leaves the source equals the load that
    /// arrives at the destination, shifted by path delays — no unit of
    /// flow is created or destroyed.
    #[test]
    fn consistent_migrations_conserve_flow(
        switches in 6usize..16,
        seed in 0u64..5_000,
    ) {
        let Some(inst) = gen_instance(switches, seed) else { return Ok(()); };
        let Ok(out) = greedy_schedule(&inst) else { return Ok(()); };
        let report = FluidSimulator::check(&inst, &out.schedule);
        prop_assert_eq!(report.verdict(), Verdict::Consistent);
        let flow = inst.flow();
        // Sum of loads leaving the source == sum arriving at the
        // destination across the simulated horizon (same cohort count).
        let out_load: u64 = report
            .link_loads
            .iter()
            .filter(|((a, _), _)| *a == flow.source())
            .flat_map(|(_, series)| series.values())
            .sum();
        let in_load: u64 = report
            .link_loads
            .iter()
            .filter(|((_, b), _)| *b == flow.destination())
            .flat_map(|(_, series)| series.values())
            .sum();
        prop_assert_eq!(out_load, in_load);
    }
}
