//! Failure injection: lossy control channels and their consequences.
//!
//! OR and TP FlowMods are fire-and-forget; when the control channel
//! drops them, the migration silently stalls in a mixed state. Chronus
//! distributes its timed updates ahead of the trigger window with
//! acknowledgement (Time4), so message loss costs only pre-budgeted
//! latency — modeled here as loss-immunity for the Chronus driver and
//! verified as the paper's reliability argument.

use chronus::baselines::or::{or_rounds, OrConfig};
use chronus::core::greedy::greedy_schedule;
use chronus::emu::{EmuConfig, Emulator, UpdateDriver};
use chronus_bench::fig6::fig6_instance;

fn lossy_config(loss: f64) -> EmuConfig {
    EmuConfig {
        run_for: 10_000_000_000,
        update_at: 2_000_000_000,
        control_loss_prob: loss,
        ..EmuConfig::default()
    }
}

#[test]
fn lossless_or_applies_every_flowmod() {
    let inst = fig6_instance();
    let rounds = or_rounds(&inst, OrConfig::default()).expect("plan").rounds;
    let mut emu = Emulator::new(&inst, lossy_config(0.0), 3);
    emu.install_driver(UpdateDriver::or_rounds(rounds));
    let report = emu.run();
    assert_eq!(
        report.applied_updates.len(),
        inst.flow().switches_to_update().len()
    );
}

#[test]
fn lossy_or_stalls_the_migration() {
    let inst = fig6_instance();
    let rounds = or_rounds(&inst, OrConfig::default()).expect("plan").rounds;
    let expected = inst.flow().switches_to_update().len();
    let mut stalled = 0;
    for seed in 0..10 {
        let mut emu = Emulator::new(&inst, lossy_config(0.4), seed);
        emu.install_driver(UpdateDriver::or_rounds(rounds.clone()));
        let report = emu.run();
        if report.applied_updates.len() < expected {
            stalled += 1;
        }
    }
    assert!(
        stalled >= 5,
        "40% loss must drop FlowMods in most runs, stalled {stalled}/10"
    );
}

#[test]
fn lossy_tp_leaves_blackholes_on_the_new_path() {
    // Losing a phase-1 tagged install while the stamp still flips:
    // stamped packets reach a switch with no rule for their tag and
    // miss the table.
    let inst = fig6_instance();
    let mut seen_misses = false;
    for seed in 0..10 {
        let mut emu = Emulator::new(&inst, lossy_config(0.5), seed);
        emu.install_driver(UpdateDriver::two_phase());
        let report = emu.run();
        if report.table_misses > 0 {
            seen_misses = true;
            break;
        }
    }
    assert!(
        seen_misses,
        "a lost tagged install must blackhole stamped packets in some run"
    );
}

#[test]
fn chronus_timed_updates_survive_control_loss() {
    // Time4 pre-distribution with retransmission: the trigger payloads
    // are already resident when the window opens, so loss cannot stall
    // the plan.
    let inst = fig6_instance();
    let schedule = greedy_schedule(&inst).expect("feasible").schedule;
    for seed in 0..5 {
        let mut emu = Emulator::new(&inst, lossy_config(0.5), seed);
        emu.install_driver(UpdateDriver::chronus(schedule.clone(), &inst));
        let report = emu.run();
        assert_eq!(
            report.applied_updates.len(),
            inst.flow().switches_to_update().len(),
            "seed {seed}: every timed update fires"
        );
        assert_eq!(report.ttl_drops, 0);
        assert_eq!(report.table_misses, 0);
    }
}
