//! Agreement between the analytical fluid model (`chronus-timenet`)
//! and the packet-level emulator (`chronus-emu`): schedules the model
//! certifies must replay cleanly on the emulated data plane, and the
//! model's failure modes must materialize there too.

use chronus::core::greedy::greedy_schedule;
use chronus::emu::{EmuConfig, Emulator, UpdateDriver};
use chronus::net::{motivating_example, InstanceGenerator, InstanceGeneratorConfig, SwitchId};
use chronus::timenet::{FluidSimulator, Verdict};
use chronus_bench::fig6::fig6_instance;

fn quick_config() -> EmuConfig {
    EmuConfig {
        run_for: 8_000_000_000,
        update_at: 2_000_000_000,
        ..EmuConfig::default()
    }
}

#[test]
fn certified_schedules_replay_cleanly() {
    for (name, inst) in [
        ("motivating", motivating_example()),
        ("fig6", fig6_instance()),
    ] {
        let out = greedy_schedule(&inst).expect("feasible");
        assert_eq!(
            FluidSimulator::check(&inst, &out.schedule).verdict(),
            Verdict::Consistent
        );
        let mut emu = Emulator::new(&inst, quick_config(), 77);
        emu.install_driver(UpdateDriver::chronus(out.schedule, &inst));
        let report = emu.run();
        assert_eq!(report.ttl_drops, 0, "{name}: loops on the wire");
        assert_eq!(report.table_misses, 0, "{name}: blackholes on the wire");
        assert!(report.total_delivered() > 0, "{name}: traffic flowed");
    }
}

#[test]
fn certified_random_instances_replay_cleanly() {
    let mut gen = InstanceGenerator::new(InstanceGeneratorConfig::paper(12, 555));
    let mut replayed = 0;
    for inst in gen.generate_batch(8) {
        let Ok(out) = greedy_schedule(&inst) else {
            continue;
        };
        let mut emu = Emulator::new(&inst, quick_config(), 1000 + replayed);
        emu.install_driver(UpdateDriver::chronus(out.schedule, &inst));
        let report = emu.run();
        assert_eq!(report.ttl_drops, 0);
        assert_eq!(report.table_misses, 0);
        replayed += 1;
    }
    assert!(
        replayed >= 3,
        "need a few feasible instances, got {replayed}"
    );
}

#[test]
fn model_predicted_loop_materializes_as_packet_loss() {
    // The model says updating v4 alone loops forever; on the wire the
    // packets bounce until TTL death or buffer overflow.
    let inst = motivating_example();
    let cfg = EmuConfig {
        ttl: 8,
        ..quick_config()
    };
    let mut emu = Emulator::new(&inst, cfg, 9);
    emu.install_driver(UpdateDriver::or_rounds(vec![vec![SwitchId(3)]]));
    let report = emu.run();
    assert!(
        report.ttl_drops > 0 || report.buffer_drops > 0,
        "the wire must lose packets: {report:?}"
    );
}

#[test]
fn clock_skew_within_time4_bounds_is_harmless() {
    // Residual sync error of ±1 µs against 100 ms steps: five orders
    // of magnitude of margin, as Time4 promises.
    let inst = fig6_instance();
    let out = greedy_schedule(&inst).expect("feasible");
    for seed in [1, 2, 3] {
        let cfg = EmuConfig {
            clock_error_ns: 1_000,
            clock_drift_ppb: 10_000,
            ..quick_config()
        };
        let mut emu = Emulator::new(&inst, cfg, seed);
        emu.install_driver(UpdateDriver::chronus(out.schedule.clone(), &inst));
        let report = emu.run();
        assert_eq!(report.ttl_drops, 0, "seed {seed}");
        assert_eq!(report.table_misses, 0, "seed {seed}");
    }
}

#[test]
fn gross_clock_skew_breaks_schedules() {
    // If clocks err by a full time step, the careful ordering is
    // scrambled — the reason timed updates need synchronization at
    // all. With the scheduled gaps gone, the Fig. 6 scenario's
    // contention reappears as packet loss or overload.
    let inst = fig6_instance();
    let out = greedy_schedule(&inst).expect("feasible");
    let mut broken = 0;
    for seed in 0..8 {
        let cfg = EmuConfig {
            clock_error_ns: 300_000_000, // three steps of skew
            stats_interval: 200_000_000, // windows fine enough to see it
            ..quick_config()
        };
        let mut emu = Emulator::new(&inst, cfg, seed);
        emu.install_driver(UpdateDriver::chronus(out.schedule.clone(), &inst));
        let report = emu.run();
        let peak = report.global_peak_offered_mbps();
        if !report.clean() || peak > 520.0 {
            broken += 1;
        }
    }
    assert!(
        broken >= 3,
        "step-scale skew must break runs (paper's motivation for Time4), broke {broken}/8"
    );
}
