//! Integration of the lower substrates with the scheduling stack:
//! clocks × execution plans, OpenFlow tables × schedules, and the
//! network model × routing under migration.

use chronus::clock::{two_way_sync, HardwareClock, ScheduledExecutor, SyncConfig};
use chronus::core::exec::ExecutionPlan;
use chronus::core::greedy::greedy_schedule;
use chronus::net::routing::seeded_rng;
use chronus::net::{motivating_example, FlowId, SwitchId};
use chronus::openflow::{Action, FlowMod, FlowTable, Ipv4Prefix, Match, Packet};
use std::time::Duration;

#[test]
fn execution_plan_fires_in_schedule_order_on_synced_clocks() {
    // Build the greedy plan, arm one Time4 trigger per update on a
    // per-switch skewed-then-synced clock, and check the realized
    // firing order matches the schedule's step order with error far
    // below one step.
    let inst = motivating_example();
    let out = greedy_schedule(&inst).expect("feasible");
    let plan = ExecutionPlan::from_schedule(&out.schedule);
    let step_ns: i128 = 100_000_000; // 100 ms per model step

    let mut rng = seeded_rng(99);
    let mut firings: Vec<(i128, SwitchId)> = Vec::new();
    for (offset, step) in plan.trigger_offsets(Duration::from_millis(100)) {
        for &(_, switch) in &step.updates {
            // A drifting clock, synchronized Time4-style first.
            let mut clock = HardwareClock::new(
                50_000 + switch.0 as i128 * 13_337,
                5_000 - switch.0 as i64 * 1_000,
            );
            let sync = two_way_sync(&mut clock, 0, SyncConfig::default(), &mut rng);
            assert!(sync.residual_error.abs() < 5_000, "sync within 5 µs");
            let mut ex = ScheduledExecutor::new(clock);
            let local_target = offset.as_nanos() as i128;
            ex.arm(local_target, switch);
            let fired = ex.advance_to(local_target + step_ns);
            assert_eq!(fired.len(), 1);
            let (true_at, s) = fired[0];
            assert!(
                (true_at - local_target).abs() < step_ns / 100,
                "firing error must be tiny vs the step"
            );
            firings.push((true_at, s));
        }
    }
    // Realized order respects schedule steps.
    firings.sort_by_key(|&(t, _)| t);
    let realized: Vec<SwitchId> = firings.iter().map(|&(_, s)| s).collect();
    let mut expected: Vec<SwitchId> = Vec::new();
    for (_, updates) in out.schedule.by_step() {
        for (_, v) in updates {
            expected.push(v);
        }
    }
    // Same multiset, and the first updater (v2) is first in both.
    let mut a = realized.clone();
    let mut b = expected.clone();
    a.sort();
    b.sort();
    assert_eq!(a, b);
    assert_eq!(realized[0], expected[0]);
}

#[test]
fn chronus_flowmods_update_real_tables_in_place() {
    // Apply the greedy schedule's updates to real flow tables keyed by
    // the flow's destination prefix; verify that lookups change from
    // old to new next hops and that table occupancy never grows.
    let inst = motivating_example();
    let flow = inst.flow();
    let out = greedy_schedule(&inst).expect("feasible");
    let dst_ip = u32::from_be_bytes([10, 0, 0, 1]);

    // One table per switch with the old rule installed.
    let mut tables: Vec<FlowTable> = Vec::new();
    let mut rule_ids = Vec::new();
    for s in inst.network.switches() {
        let mut t = FlowTable::with_capacity_limit(1); // table space is tight!
        let id = flow.old_rule(s).map(|nh| {
            t.add(
                10,
                Match::dst_prefix(Ipv4Prefix::host(dst_ip)),
                vec![Action::Output(nh.0 as u16)],
            )
            .expect("first rule fits")
        });
        tables.push(t);
        rule_ids.push(id);
    }

    // Apply updates in schedule order as ModifyActions FlowMods.
    for (_, updates) in out.schedule.by_step() {
        for (_, v) in updates {
            let new_hop = flow.new_rule(v).expect("updated switches have new rules");
            match rule_ids[v.index()] {
                Some(id) => {
                    let fm = FlowMod::modify(1, id, vec![Action::Output(new_hop.0 as u16)]);
                    if let chronus::openflow::FlowModCommand::ModifyActions = fm.command {
                        tables[v.index()]
                            .modify_actions(id, fm.actions)
                            .expect("modify in place");
                    }
                }
                None => {
                    // Fresh switch: the single add still fits.
                    tables[v.index()]
                        .add(
                            10,
                            Match::dst_prefix(Ipv4Prefix::host(dst_ip)),
                            vec![Action::Output(new_hop.0 as u16)],
                        )
                        .expect("fresh rule fits a capacity-1 table");
                }
            }
        }
    }

    // Every final-path switch now forwards along the final path, and
    // no table ever exceeded its single-rule budget (the point of
    // avoiding two-phase duplication).
    let pkt = Packet::new(1, 0, dst_ip);
    for w in flow.fin.hops().windows(2) {
        let rule = tables[w[0].index()].lookup(&pkt).expect("rule present");
        assert_eq!(rule.actions, vec![Action::Output(w[1].0 as u16)]);
        assert_eq!(tables[w[0].index()].len(), 1);
    }
}

#[test]
fn schedule_statistics_match_problem_structure() {
    let inst = motivating_example();
    let out = greedy_schedule(&inst).expect("feasible");
    assert_eq!(out.schedule.len(), 4);
    assert_eq!(out.schedule.switches_for(FlowId(0)).len(), 4);
    assert!(out.schedule.distinct_steps() >= 3, "paper needs ≥ 3 steps");
    let mut normalized = out.schedule.clone();
    assert_eq!(normalized.normalize(), 0, "greedy starts at step 0");
}
