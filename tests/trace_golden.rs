//! Golden-format tests over the observability encoders.
//!
//! The timeline exporter writes Chrome trace-event JSON by hand (no
//! serde in the workspace), so these tests round-trip its output
//! through the *independent* `serde_json` shim parser and assert the
//! structural invariants Perfetto relies on: a `traceEvents` array,
//! known phase codes, numeric timestamps, and — for every span that
//! names a parent — that the parent exists and contains the child's
//! interval.
//!
//! CI reuses the same checker on the artifact written by
//! `examples/trace_update.rs`: when `CHRONUS_TRACE_JSON` (and
//! optionally `CHRONUS_TRACE_PROM`) point at files, those are
//! validated instead of a freshly generated trace. Flight-record
//! dumps get the same treatment: the `flight_dump_*` test validates
//! the file `CHRONUS_FLIGHT_JSON` names (CI's SIGUSR1 dump) or a
//! freshly triggered dump, plus the ring-specific invariants —
//! time-ordered reassembly, cross-ring parent/child containment, an
//! exact drop ledger, and a marked trigger instant.

use chronus::engine::{Engine, EngineConfig};
use chronus::net::motivating_example;
use chronus::trace::{
    Collector, FlightRecorder, FlightSnapshot, MetricsRegistry, TimelineExporter,
};
use serde_json::Value;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Parent linkage policy for [`assert_well_formed_trace`].
#[derive(Clone, Copy, PartialEq)]
enum Parents {
    /// Every `parent_id` must name an exported span (collector traces
    /// export complete batches).
    Required,
    /// A `parent_id` may dangle — flight rings overwrite oldest-first,
    /// so a surviving child can outlive its dropped parent. When the
    /// parent *is* present, containment still must hold.
    MayDrop,
}

/// Parses `text` as trace-event JSON and checks every structural
/// invariant; returns `(complete_spans, instants, counters)`.
fn assert_well_formed_trace(text: &str, parents: Parents) -> (usize, usize, usize) {
    let v: Value = serde_json::from_str(text).expect("trace JSON parses");
    let events = v
        .get("traceEvents")
        .and_then(Value::as_array)
        .expect("top-level traceEvents array");
    assert_eq!(
        v.get("displayTimeUnit").and_then(Value::as_str),
        Some("ms"),
        "displayTimeUnit pins the UI scale"
    );

    // First pass: index complete spans by span_id.
    let mut spans: HashMap<u64, (f64, f64)> = HashMap::new(); // id -> (ts, ts+dur)
    for ev in events {
        if ev.get("ph").and_then(Value::as_str) == Some("X") {
            let id = ev
                .get("args")
                .and_then(|a| a.get("span_id"))
                .and_then(Value::as_u64)
                .expect("X events carry args.span_id");
            let ts = ev.get("ts").and_then(Value::as_f64).expect("numeric ts");
            let dur = ev.get("dur").and_then(Value::as_f64).expect("numeric dur");
            assert!(dur >= 0.0, "durations are non-negative");
            assert!(spans.insert(id, (ts, ts + dur)).is_none(), "unique ids");
        }
    }

    let (mut complete, mut instants, mut counters) = (0usize, 0usize, 0usize);
    for ev in events {
        let ph = ev.get("ph").and_then(Value::as_str).expect("phase code");
        assert!(ev.get("name").is_some(), "every event is named");
        match ph {
            "M" => continue, // metadata: no timestamp
            "C" => {
                counters += 1;
                assert!(
                    ev.get("args")
                        .and_then(|a| a.get("value"))
                        .and_then(Value::as_f64)
                        .is_some(),
                    "counter events carry args.value"
                );
                continue;
            }
            "X" => complete += 1,
            "i" => {
                instants += 1;
                assert_eq!(
                    ev.get("s").and_then(Value::as_str),
                    Some("t"),
                    "instants are thread-scoped"
                );
            }
            other => panic!("unexpected phase code {other:?}"),
        }
        assert!(ev.get("ts").and_then(Value::as_f64).is_some());
        assert!(ev.get("tid").and_then(Value::as_u64).is_some());
        // Parent linkage: the parent exists and contains the child
        // (tiny epsilon for the ns → µs float conversion).
        if let Some(parent) = ev
            .get("args")
            .and_then(|a| a.get("parent_id"))
            .and_then(Value::as_u64)
        {
            let found = spans.get(&parent);
            if parents == Parents::Required {
                assert!(found.is_some(), "parent_id names an exported span");
            }
            if let Some(&(pstart, pend)) = found {
                let ts = ev.get("ts").and_then(Value::as_f64).expect("numeric ts");
                let end = ts + ev.get("dur").and_then(Value::as_f64).unwrap_or(0.0);
                const EPS: f64 = 1e-3;
                assert!(
                    ts + EPS >= pstart && end <= pend + EPS,
                    "child [{ts}, {end}] escapes parent [{pstart}, {pend}]"
                );
            }
        }
    }
    (complete, instants, counters)
}

/// Checks Prometheus text-exposition line format plus histogram
/// coherence (cumulative buckets, `+Inf` == `_count`).
fn assert_well_formed_prometheus(text: &str) {
    let mut last_bucket: Option<(String, f64)> = None;
    let mut counts: HashMap<String, f64> = HashMap::new();
    let mut inf_buckets: HashMap<String, f64> = HashMap::new();
    for line in text.lines().filter(|l| !l.is_empty()) {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let (name, kind) = (parts.next(), parts.next());
            assert!(name.is_some_and(|n| n.starts_with("chronus_")), "{line}");
            assert!(
                matches!(kind, Some("counter" | "gauge" | "histogram")),
                "{line}"
            );
            continue;
        }
        let (key, value) = line.rsplit_once(' ').expect("sample line");
        let value: f64 = value.parse().unwrap_or_else(|_| panic!("number: {line}"));
        if let Some((series, le)) = key.split_once("_bucket{le=\"") {
            let le = le.strip_suffix("\"}").expect("closing le brace");
            if le == "+Inf" {
                inf_buckets.insert(series.to_string(), value);
                last_bucket = None;
            } else {
                let le: f64 = le.parse().unwrap_or_else(|_| panic!("le: {line}"));
                if let Some((prev_series, prev)) = &last_bucket {
                    if prev_series == series {
                        assert!(value >= *prev, "buckets are cumulative: {line}");
                    }
                }
                last_bucket = Some((series.to_string(), value));
                assert!(le >= 0.0);
            }
        } else if let Some(series) = key.strip_suffix("_count") {
            counts.insert(series.to_string(), value);
        } else {
            assert!(
                key.strip_suffix("_sum").is_some() || key.starts_with("chronus_"),
                "unexpected series name: {line}"
            );
        }
    }
    for (series, inf) in &inf_buckets {
        assert_eq!(
            counts.get(series),
            Some(inf),
            "{series}: +Inf bucket must equal _count"
        );
    }
    assert!(!counts.is_empty() || inf_buckets.is_empty());
}

/// Generates a trace by planning a small batch with the collector on.
fn generate_trace_json() -> String {
    let _guard = Collector::install();
    let instance = Arc::new(motivating_example());
    let engine = Engine::new(EngineConfig::with_workers(2));
    let plans = engine.plan_instances(vec![instance; 3]);
    assert!(plans.iter().all(|p| p.timed_schedule().is_ok()));
    drop(engine);
    let records = Collector::drain();
    assert!(!records.is_empty(), "instrumented paths produce spans");
    let mut timeline = TimelineExporter::new();
    timeline.process_name("chronus-test");
    timeline.add_spans(&records);
    timeline.counter("link 0->1 load", 10_000, 1.0);
    timeline.counter("link 0->1 load", 20_000, 0.0);
    timeline.to_json()
}

#[test]
fn trace_json_round_trips_through_serde_json() {
    // CI mode: validate the artifact the example wrote; otherwise
    // generate a fresh trace in-process.
    let (text, from_file) = match std::env::var("CHRONUS_TRACE_JSON") {
        Ok(path) => (
            std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("CHRONUS_TRACE_JSON={path}: {e}")),
            true,
        ),
        Err(_) => (generate_trace_json(), false),
    };
    let (complete, _instants, counters) = assert_well_formed_trace(&text, Parents::Required);
    assert!(complete > 0, "at least one complete span");
    if from_file {
        // The example promises link-utilization counter tracks.
        assert!(counters > 0, "example traces carry counter samples");
        for subsystem in ["engine.", "core.", "timenet.", "verify.", "emu."] {
            assert!(
                text.contains(&format!("\"name\":\"{subsystem}")),
                "trace.json must contain {subsystem}* spans"
            );
        }
    }
}

#[test]
fn prometheus_dump_parses() {
    match std::env::var("CHRONUS_TRACE_PROM") {
        Ok(path) => {
            let text = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("CHRONUS_TRACE_PROM={path}: {e}"));
            assert_well_formed_prometheus(&text);
        }
        Err(_) => {
            let registry = MetricsRegistry::new();
            registry.counter("chronus_test_requests_total").add(7);
            registry.gauge("chronus_test_queue_depth").set(3);
            let h = registry.histogram("chronus_test_latency_ns");
            for v in [0u64, 1, 2, 100, 10_000] {
                h.record(v);
            }
            assert_well_formed_prometheus(&registry.to_prometheus());
        }
    }
}

#[test]
fn empty_timeline_is_still_valid_json() {
    let timeline = TimelineExporter::new();
    let v: Value = serde_json::from_str(&timeline.to_json()).expect("parses");
    assert_eq!(
        v.get("traceEvents").and_then(Value::as_array).map(Vec::len),
        Some(0)
    );
}

// ---------------------------------------------------------------------------
// Flight-record dumps.
// ---------------------------------------------------------------------------

/// The recorder is process-global; the flight tests serialize on this
/// and tell their events apart by name prefix.
static FLIGHT_LOCK: Mutex<()> = Mutex::new(());

fn flight_lock() -> MutexGuard<'static, ()> {
    FLIGHT_LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

fn ring_events(snap: &FlightSnapshot, prefix: &str) -> Vec<chronus::trace::FlightEvent> {
    snap.events
        .iter()
        .filter(|e| e.name.starts_with(prefix))
        .cloned()
        .collect()
}

/// Checks the dump-specific invariants on parsed flight JSON: the
/// trigger is named in `chronusMeta` and present as a marked instant,
/// and the per-ring drop ledger balances exactly.
fn assert_flight_dump(parsed: &Value, expect_trigger: Option<&str>) {
    let meta = parsed.get("chronusMeta").expect("dump carries chronusMeta");
    let trigger_name = meta
        .get("trigger")
        .and_then(Value::as_str)
        .expect("meta names its trigger");
    if let Some(expected) = expect_trigger {
        assert_eq!(trigger_name, expected);
    }
    for ring in meta.get("rings").unwrap().as_array().expect("ring ledger") {
        let emitted = ring.get("emitted").unwrap().as_u64().unwrap();
        let recorded = ring.get("recorded").unwrap().as_u64().unwrap();
        let dropped = ring.get("dropped").unwrap().as_u64().unwrap();
        assert_eq!(
            dropped,
            emitted - recorded,
            "ledger must balance in the dump"
        );
    }
    let events = parsed.get("traceEvents").unwrap().as_array().unwrap();
    let marked: Vec<_> = events
        .iter()
        .filter(|e| e.get("name").and_then(Value::as_str) == Some("flightrec.trigger"))
        .collect();
    assert_eq!(marked.len(), 1, "exactly one marked trigger per dump");
    assert_eq!(marked[0].get("ph").and_then(Value::as_str), Some("i"));
    assert_eq!(
        marked[0]
            .get("args")
            .and_then(|a| a.get("reason"))
            .and_then(Value::as_str),
        Some(trigger_name),
        "the marked instant carries the meta trigger as its reason"
    );
}

/// Runs nested spans on several threads at once, then checks the
/// reassembled snapshot is globally time-ordered and every child
/// span's interval sits inside its parent's — after the merge across
/// thread rings.
#[test]
fn flight_reassembly_is_time_ordered_and_nesting_contains() {
    let _l = flight_lock();
    FlightRecorder::enable(256);
    let workers: Vec<_> = (0..4u64)
        .map(|w| {
            std::thread::spawn(move || {
                for i in 0..8u64 {
                    let outer =
                        chronus::trace::span!("gnest.outer", worker = w, iter = i).entered();
                    {
                        let _inner = chronus::trace::span!("gnest.inner", iter = i).entered();
                        std::hint::black_box(w + i);
                    }
                    drop(outer);
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("worker panicked");
    }
    let snap = FlightRecorder::snapshot();
    let events = ring_events(&snap, "gnest.");
    assert_eq!(events.len(), 4 * 8 * 2, "every span from every ring");

    // Global time order: start_ns non-decreasing, stamp breaks ties.
    for pair in snap.events.windows(2) {
        if let [a, b] = pair {
            assert!(
                a.start_ns < b.start_ns || (a.start_ns == b.start_ns && a.seq < b.seq),
                "snapshot not time-ordered: {} then {}",
                a.start_ns,
                b.start_ns
            );
        }
    }

    // Parent/child containment survives the merge: each inner span
    // names its outer as parent and fits inside its interval.
    let inners: Vec<_> = events.iter().filter(|e| e.name == "gnest.inner").collect();
    assert_eq!(inners.len(), 32);
    for inner in inners {
        let parent_id = inner.parent.expect("inner span must link to its outer");
        let parent = events
            .iter()
            .find(|e| e.id == parent_id)
            .expect("parent span present in the same snapshot");
        assert_eq!(parent.name, "gnest.outer");
        assert_eq!(parent.tid, inner.tid, "nesting is per-thread");
        assert!(
            parent.start_ns <= inner.start_ns && inner.end_ns <= parent.end_ns,
            "child [{}, {}] escapes parent [{}, {}]",
            inner.start_ns,
            inner.end_ns,
            parent.start_ns,
            parent.end_ns
        );
    }
    FlightRecorder::disable();
}

/// Floods a fresh thread's ring well past capacity: the drop ledger
/// must be exact, with `recorded` equal to the ring capacity.
#[test]
fn flight_drop_ledger_is_exact_after_overflow() {
    let _l = flight_lock();
    FlightRecorder::enable(128);
    let overfill = 128u64 + 41;
    let stats = std::thread::spawn(move || {
        for i in 0..overfill {
            let _s = chronus::trace::span!("gflood.flood", i = i).entered();
        }
        let snap = FlightRecorder::snapshot();
        let my_tid = ring_events(&snap, "gflood.").first().map(|e| e.tid)?;
        snap.rings.into_iter().find(|r| r.tid == my_tid)
    })
    .join()
    .expect("flood thread panicked")
    .expect("flood ring found");
    assert_eq!(stats.emitted, overfill);
    assert_eq!(stats.recorded, 128, "ring holds exactly its capacity");
    assert_eq!(stats.dropped, stats.emitted - stats.recorded);
    FlightRecorder::disable();
}

/// A forensic dump is a well-formed Perfetto trace (same checker as
/// collector traces, with dropped parents tolerated) that names its
/// trigger and balances its drop ledger. CI mode: validates the
/// SIGUSR1 dump the daemon-smoke job captured via
/// `CHRONUS_FLIGHT_JSON`; otherwise generates a dump in-process.
#[test]
fn flight_dump_validates_as_perfetto_trace() {
    let _l = flight_lock();
    let (text, expect_trigger) = match std::env::var("CHRONUS_FLIGHT_JSON") {
        Ok(path) => (
            std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("CHRONUS_FLIGHT_JSON={path}: {e}")),
            None,
        ),
        Err(_) => {
            FlightRecorder::enable(64);
            {
                let _s = chronus::trace::span!("gdump.dumped", case = 1u64).entered();
            }
            let doc = FlightRecorder::snapshot_json("golden-trigger");
            FlightRecorder::disable();
            (doc, Some("golden-trigger"))
        }
    };
    let (complete, instants, _counters) = assert_well_formed_trace(&text, Parents::MayDrop);
    assert!(instants > 0, "the trigger instant at minimum");
    let parsed: Value = serde_json::from_str(&text).expect("dump parses");
    assert_flight_dump(&parsed, expect_trigger);
    if expect_trigger.is_some() {
        // The in-process dump must carry the span recorded above.
        assert!(complete > 0);
        assert!(text.contains("\"name\":\"gdump.dumped\""));
    }
}
