//! Property-based tests of the substrate crates: flow tables, IPv4
//! prefixes, clocks, topologies, routing and schedules.

use chronus::clock::HardwareClock;
use chronus::net::routing::{
    k_shortest_paths, random_simple_path, seeded_rng, shortest_path_delay, shortest_path_hops,
};
use chronus::net::topology::{self, TopologyConfig};
use chronus::net::SwitchId;
use chronus::openflow::{Action, FlowTable, Ipv4Prefix, Match, Packet};
use chronus::timenet::Schedule;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// LPM lookup equals the brute-force "best matching rule" scan.
    #[test]
    fn lookup_matches_linear_scan(
        rules in prop::collection::vec((0u16..4, 0u32..16, 8u8..=32), 1..24),
        dst in 0u32..1024,
    ) {
        let mut table = FlowTable::new();
        for (prio, net_bits, len) in &rules {
            table
                .add(
                    *prio,
                    Match::dst_prefix(Ipv4Prefix::new(net_bits << 22, *len)),
                    vec![Action::Drop],
                )
                .expect("unbounded");
        }
        let pkt = Packet::new(0, 0, dst << 22);
        let fast = table.lookup(&pkt).map(|r| r.id);
        // Brute force: max by (priority, dst prefix length, oldest id).
        let slow = table
            .rules()
            .filter(|r| r.mat.matches(&pkt))
            .max_by(|a, b| {
                (a.priority, a.mat.dst_len(), std::cmp::Reverse(a.id))
                    .cmp(&(b.priority, b.mat.dst_len(), std::cmp::Reverse(b.id)))
            })
            .map(|r| r.id);
        prop_assert_eq!(fast, slow);
    }

    /// Prefix display/parse round-trips.
    #[test]
    fn prefix_roundtrip(addr in any::<u32>(), len in 0u8..=32) {
        let p = Ipv4Prefix::new(addr, len);
        let parsed: Ipv4Prefix = p.to_string().parse().expect("own display parses");
        prop_assert_eq!(p, parsed);
        // The network address itself is always contained.
        prop_assert!(p.contains(p.network()));
    }

    /// Clock read/inversion round-trips within 1 ns.
    #[test]
    fn clock_inversion_roundtrips(
        offset in -1_000_000i64..1_000_000,
        drift in -50_000i64..50_000,
        t in 0i64..86_400_000_000_000i64, // one day in ns
    ) {
        let c = HardwareClock::new(offset as i128, drift);
        let local = c.read(t as i128);
        let back = c.true_time_of_local(local);
        prop_assert!((back - t as i128).abs() <= 1);
    }

    /// Random connected topologies are strongly connected and every
    /// random path drawn on them validates.
    #[test]
    fn random_topologies_connected_and_routable(
        n in 4usize..24,
        seed in 0u64..500,
        chords in 0usize..20,
    ) {
        let cfg = TopologyConfig::simulation(n, seed);
        let net = topology::random_connected(cfg, chords);
        prop_assert!(topology::is_strongly_connected(&net));
        let mut rng = seeded_rng(seed ^ 0xABCD);
        let (src, dst) = (SwitchId(0), SwitchId((n - 1) as u32));
        let p = random_simple_path(&net, src, dst, &mut rng)
            .expect("strongly connected");
        prop_assert!(p.validate(&net).is_ok());
        prop_assert_eq!(p.source(), src);
        prop_assert_eq!(p.destination(), dst);
    }

    /// The delay-shortest path is never longer (in delay) than the
    /// hop-shortest path, and Yen's first path is the shortest.
    #[test]
    fn routing_consistency(n in 4usize..20, seed in 0u64..300) {
        let cfg = TopologyConfig::simulation(n, seed);
        let net = topology::random_connected(cfg, n / 2);
        let (src, dst) = (SwitchId(0), SwitchId((n - 1) as u32));
        let by_delay = shortest_path_delay(&net, src, dst).expect("connected");
        let by_hops = shortest_path_hops(&net, src, dst).expect("connected");
        let d1 = by_delay.total_delay(&net).expect("valid");
        let d2 = by_hops.total_delay(&net).expect("valid");
        prop_assert!(d1 <= d2);
        prop_assert!(by_hops.len() <= by_delay.len());
        let yen = k_shortest_paths(&net, src, dst, 3);
        prop_assert_eq!(yen.first(), Some(&by_delay));
        for w in yen.windows(2) {
            prop_assert!(
                w[0].total_delay(&net).expect("valid")
                    <= w[1].total_delay(&net).expect("valid")
            );
        }
    }

    /// Schedule shift/normalize algebra.
    #[test]
    fn schedule_shift_algebra(
        pairs in prop::collection::vec((0u32..20, 0i64..50), 1..12),
        delta in 1i64..20,
    ) {
        let flow = chronus::net::FlowId(0);
        let mut s = Schedule::new();
        for (v, t) in &pairs {
            s.set(flow, SwitchId(*v), *t);
        }
        let makespan_before = s.makespan().expect("non-empty");
        let mut shifted = s.clone();
        shifted.shift(delta);
        prop_assert_eq!(shifted.makespan().expect("non-empty"), makespan_before + delta);
        let applied = shifted.normalize();
        prop_assert_eq!(shifted.makespan().expect("non-empty"),
            makespan_before + delta + applied);
        // After normalization the earliest assignment sits at 0.
        let min = shifted.iter().map(|(_, _, t)| t).min().expect("non-empty");
        prop_assert_eq!(min, 0);
    }

    /// Capacity-1 tables reject a second add but always accept
    /// in-place action modification (the Chronus table-space claim).
    #[test]
    fn tight_tables_support_modify_not_add(port_a in 1u16..100, port_b in 1u16..100) {
        let mut t = FlowTable::with_capacity_limit(1);
        let id = t
            .add(1, Match::default(), vec![Action::Output(port_a)])
            .expect("first rule fits");
        prop_assert!(t.add(1, Match::default(), vec![Action::Output(port_b)]).is_err());
        prop_assert!(t.modify_actions(id, vec![Action::Output(port_b)]).is_ok());
        prop_assert_eq!(t.len(), 1);
    }
}
