//! Differential proofs for the sharded multi-flow planner.
//!
//! Sharding is a *performance* strategy, not a semantic one, and
//! these tests pin the places where it must be invisible:
//!
//! - **Delegation is byte-identical.** Whenever the sharded pipeline
//!   does not actually shard — `shards: 1` forced by config, the
//!   partitioner putting every flow in one shard, or the joint
//!   fallback after exhausted rounds — the schedule and makespan must
//!   equal the plain greedy run exactly.
//! - **Feasibility never regresses.** Sharding adds no failure modes:
//!   when the joint greedy succeeds, the sharded planner succeeds too
//!   (every sharded dead end falls back to the joint run). The
//!   converse does *not* hold — greedy is a heuristic, and splitting
//!   an instance into smaller subproblems sometimes lets the shards
//!   solve what the monolithic search gets stuck on; those extra wins
//!   are fine as long as they arrive sealed.
//! - **Sealed outcomes.** Every successful sharded run (with
//!   verification on) carries a certificate that checks against the
//!   ORIGINAL instance, and its merged schedule re-certifies from
//!   scratch — composition must never launder an unsafe plan.
//!
//! Random coverage comes from multi-flow instances over random
//! connected topologies (loop-erased random routes, mixed demands),
//! which exercise the partitioner on irregular graphs — single-shard
//! collapses, multi-shard plans with shared links, and fallbacks all
//! occur across the seed space.

use chronus_core::greedy::{greedy_schedule_with, GreedyConfig, GreedyOutcome};
use chronus_core::shard::{shard_schedule_with, ShardOutcome, ShardingConfig};
use chronus_net::topology::{fat_tree, random_connected, LinkParams, TopologyConfig};
use chronus_net::{
    motivating_example, reversal_instance, Flow, FlowId, Network, Path, SwitchId, UpdateInstance,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A random multi-flow update instance over a random connected
/// topology: `kflows` loop-erased random reroutes with mixed demands.
/// Returns `None` when a seed cannot place enough distinct flows or
/// the initial configuration is infeasible — proptest just skips it.
fn random_multiflow(switches: usize, kflows: usize, seed: u64) -> Option<UpdateInstance> {
    let mut rng = StdRng::seed_from_u64(seed);
    let net = random_connected(
        TopologyConfig {
            switches,
            capacity_range: (300, 700),
            delay_range: (1, 5),
            seed: rng.gen(),
        },
        switches / 2,
    );
    let mut flows = Vec::new();
    for id in 0..kflows {
        for _attempt in 0..32 {
            let src = SwitchId(rng.gen_range(0..switches as u32));
            let dst = SwitchId(rng.gen_range(0..switches as u32));
            if src == dst {
                continue;
            }
            let Some(initial) =
                chronus_net::routing::biased_random_path(&net, src, dst, 0.0, &mut rng)
            else {
                continue;
            };
            let Some(fin) = chronus_net::routing::biased_random_path(&net, src, dst, 0.5, &mut rng)
            else {
                continue;
            };
            if initial == fin {
                continue;
            }
            let demand = rng.gen_range(50u64..=250);
            if let Ok(f) = Flow::new(FlowId(id as u32), demand, initial, fin) {
                flows.push(f);
                break;
            }
        }
    }
    if flows.len() < 2 {
        return None;
    }
    UpdateInstance::new(net, flows).ok()
}

/// The delegation contract: schedule and makespan byte-identical.
fn assert_delegated(tag: &str, sharded: &ShardOutcome, joint: &GreedyOutcome) {
    assert_eq!(sharded.schedule, joint.schedule, "{tag}: schedules diverged");
    assert_eq!(sharded.makespan, joint.makespan, "{tag}: makespans diverged");
}

/// Runs both planners and checks every invariant that holds for *any*
/// instance: feasibility never regresses, sealed certificates,
/// re-certification of the merged schedule, and byte-identical
/// delegation whenever the sharded pipeline ended up planning jointly
/// anyway.
fn differential(tag: &str, inst: &UpdateInstance, config: ShardingConfig) {
    let sharded = shard_schedule_with(inst, config);
    let joint = greedy_schedule_with(inst, config.greedy);
    match (&sharded, &joint) {
        (Ok(s), joint) => {
            match joint {
                Ok(j) if s.stats.shards <= 1 || s.stats.fell_back_joint => {
                    assert_delegated(tag, s, j);
                }
                Ok(_) => {}
                // A sharded win over a stuck joint heuristic is only
                // acceptable from a genuinely sharded plan — the
                // delegation and fallback paths ARE the joint run.
                Err(e) => assert!(
                    s.stats.shards >= 2 && !s.stats.fell_back_joint,
                    "{tag}: delegated plan succeeded where joint failed: {e:?}"
                ),
            }
            assert_eq!(
                s.makespan,
                s.schedule.makespan().unwrap_or(0),
                "{tag}: reported makespan disagrees with the schedule"
            );
            if config.greedy.verify.enabled {
                let cert = s
                    .certificate
                    .as_ref()
                    .unwrap_or_else(|| panic!("{tag}: verify on but no certificate"));
                assert_eq!(
                    cert.check(inst),
                    Ok(()),
                    "{tag}: certificate does not seal the original instance"
                );
                assert!(
                    chronus_verify::certify(inst, &s.schedule).is_ok(),
                    "{tag}: merged schedule fails re-certification"
                );
            }
        }
        (Err(_), Err(_)) => {}
        (s, j) => panic!("{tag}: sharding lost feasibility: sharded {s:?} vs joint {j:?}"),
    }
}

fn by_name(net: &Network, n: &str) -> SwitchId {
    net.switches()
        .find(|&s| net.switch_name(s) == Some(n))
        .expect("fat-tree switch name")
}

/// Multi-flow instance confined to pod 0 of a k=4 fat tree: the pod
/// partitioner has only one populated shard to yield, so the sharded
/// pipeline must delegate.
fn one_pod_instance() -> UpdateInstance {
    let net = fat_tree(
        4,
        LinkParams {
            capacity: 1000,
            delay: 1,
        },
    );
    let (e0, e1) = (by_name(&net, "edge0"), by_name(&net, "edge1"));
    let (a0, a1) = (by_name(&net, "agg0"), by_name(&net, "agg1"));
    let flows = vec![
        Flow::new(
            FlowId(0),
            100,
            Path::new(vec![e0, a0, e1]),
            Path::new(vec![e0, a1, e1]),
        )
        .expect("pod-local flow"),
        Flow::new(
            FlowId(1),
            100,
            Path::new(vec![e0, a1, e1]),
            Path::new(vec![e0, a0, e1]),
        )
        .expect("pod-local counter-flow"),
    ];
    UpdateInstance::new(net, flows).expect("one-pod instance")
}

#[test]
fn partitioner_yielding_one_shard_delegates_byte_identically() {
    let inst = one_pod_instance();
    let out = shard_schedule_with(&inst, ShardingConfig::default()).expect("plans");
    assert_eq!(out.stats.shards, 1, "all flows sit in one pod");
    let joint = greedy_schedule_with(&inst, GreedyConfig::default()).expect("plans");
    assert_delegated("one-pod fat tree", &out, &joint);
}

#[test]
fn forced_single_shard_delegates_on_fixed_instances() {
    let single = ShardingConfig {
        shards: 1,
        ..ShardingConfig::default()
    };
    for (tag, inst) in [
        ("motivating", motivating_example()),
        ("one-pod", one_pod_instance()),
    ] {
        let sharded = shard_schedule_with(&inst, single).expect("plans");
        let joint = greedy_schedule_with(&inst, single.greedy).expect("plans");
        assert_delegated(tag, &sharded, &joint);
    }
    for n in 4..9 {
        let inst = reversal_instance(n, 2, 1);
        differential(&format!("reversal {n}"), &inst, single);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The tentpole differential on random multi-flow instances:
    /// feasibility parity, sealed certificates, and byte-identical
    /// delegation whenever the pipeline collapses to a joint plan.
    #[test]
    fn random_multiflow_instances_uphold_the_sharding_contract(
        switches in 8usize..24,
        kflows in 2usize..6,
        shards in 2usize..9,
        seed in 0u64..100_000,
    ) {
        if let Some(inst) = random_multiflow(switches, kflows, seed) {
            let config = ShardingConfig { shards, ..ShardingConfig::default() };
            differential(&format!("{switches}sw/{kflows}f/{shards}sh/{seed}"), &inst, config);
        }
    }

    /// Forcing `shards: 1` must be indistinguishable from calling the
    /// greedy planner directly, on every instance.
    #[test]
    fn forced_single_shard_is_always_byte_identical(
        switches in 8usize..20,
        kflows in 2usize..5,
        seed in 0u64..100_000,
    ) {
        if let Some(inst) = random_multiflow(switches, kflows, seed) {
            let config = ShardingConfig { shards: 1, ..ShardingConfig::default() };
            let sharded = shard_schedule_with(&inst, config);
            let joint = greedy_schedule_with(&inst, config.greedy);
            match (&sharded, &joint) {
                (Ok(s), Ok(j)) => assert_delegated("forced single shard", s, j),
                (Err(_), Err(_)) => {}
                (s, j) => panic!("feasibility diverged: {s:?} vs {j:?}"),
            }
        }
    }
}
