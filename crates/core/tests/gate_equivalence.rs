//! The incremental and full exact-gate backends must be *schedule*-
//! equivalent, not merely verdict-equivalent: greedy with the gate
//! swapped full↔incremental must walk the identical commit sequence
//! and emit the identical schedule on every instance.

use chronus_core::greedy::{greedy_schedule_with, GreedyConfig, GreedyOutcome};
use chronus_core::ScheduleError;
use chronus_net::{
    motivating_example, reversal_instance, InstanceGenerator, InstanceGeneratorConfig,
    UpdateInstance,
};
use proptest::prelude::*;

fn run_both(
    inst: &UpdateInstance,
) -> (
    Result<GreedyOutcome, ScheduleError>,
    Result<GreedyOutcome, ScheduleError>,
) {
    let full = greedy_schedule_with(
        inst,
        GreedyConfig {
            incremental_gate: false,
            ..Default::default()
        },
    );
    // `incremental_cutoff: 0` forces the incremental backend even on
    // instances below the small-n cutoff — this test exists precisely
    // to differentially exercise that backend.
    let inc = greedy_schedule_with(
        inst,
        GreedyConfig {
            incremental_cutoff: 0,
            ..Default::default()
        },
    );
    (full, inc)
}

fn assert_equivalent(inst: &UpdateInstance) {
    let (full, inc) = run_both(inst);
    match (full, inc) {
        (Ok(f), Ok(i)) => {
            assert_eq!(f.schedule, i.schedule, "schedules diverged");
            assert_eq!(f.makespan, i.makespan, "makespans diverged");
            assert_eq!(
                f.simulator_calls, i.simulator_calls,
                "gate call counts diverged"
            );
            let f_commits: Vec<_> = f.rounds.iter().map(|r| r.committed.clone()).collect();
            let i_commits: Vec<_> = i.rounds.iter().map(|r| r.committed.clone()).collect();
            assert_eq!(f_commits, i_commits, "commit traces diverged");
            assert_eq!(f.gate.incremental_checks, 0);
            assert_eq!(i.gate.full_checks, 0);
            assert_eq!(i.gate.incremental_checks as usize, i.simulator_calls);
        }
        (Err(_), Err(_)) => {}
        (f, i) => panic!("feasibility diverged: full={f:?} incremental={i:?}"),
    }
}

#[test]
fn motivating_example_equivalent() {
    assert_equivalent(&motivating_example());
}

/// Below `incremental_cutoff` the gate silently runs the full
/// resimulator (incremental bookkeeping costs more than it saves at
/// small n) and records which backend actually ran.
#[test]
fn small_instances_fall_back_to_full_backend() {
    use chronus_timenet::GateBackendKind;
    let inst = motivating_example();
    let defaulted = greedy_schedule_with(&inst, GreedyConfig::default()).expect("feasible");
    assert_eq!(defaulted.gate.backend, GateBackendKind::Full);
    assert_eq!(defaulted.gate.incremental_checks, 0);
    assert!(defaulted.gate.full_checks > 0);

    let forced = greedy_schedule_with(
        &inst,
        GreedyConfig {
            incremental_cutoff: 0,
            ..Default::default()
        },
    )
    .expect("feasible");
    assert_eq!(forced.gate.backend, GateBackendKind::Incremental);
    assert_eq!(forced.gate.full_checks, 0);
    assert_eq!(
        defaulted.schedule, forced.schedule,
        "cutoff must not change schedules"
    );
}

#[test]
fn reversal_instances_equivalent() {
    for n in 4..9 {
        assert_equivalent(&reversal_instance(n, 2, 1));
        // Capacity 1 with demand 1 is the congestion-tight variant.
        assert_equivalent(&reversal_instance(n, 1, 1));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn random_paper_instances_equivalent(
        switches in 6usize..24,
        seed in 0u64..10_000,
    ) {
        let cfg = InstanceGeneratorConfig::paper(switches, seed);
        if let Some(inst) = InstanceGenerator::new(cfg).generate() {
            assert_equivalent(&inst);
        }
    }
}
