//! Differential proofs for the flat-scan and parallel-scoring paths.
//!
//! The perf work must be invisible in the output: the flat
//! [`FlowScan`] tables and the parallel candidate scorer exist to make
//! greedy *faster*, not different. These tests pin byte-identical
//! schedules, traces and makespans between
//!
//! - the flat scan (default) and the legacy Path-walking scan
//!   (`legacy_scan: true`), and
//! - sequential scoring and parallel scoring at 2 and 4 workers
//!   (`parallel_candidates`),
//!
//! across the fixed paper instances and hundreds of random generated
//! instances.

use chronus_core::greedy::{greedy_schedule_with, GreedyConfig, GreedyOutcome};
use chronus_core::ScheduleError;
use chronus_net::{
    motivating_example, reversal_instance, InstanceGenerator, InstanceGeneratorConfig,
    UpdateInstance,
};
use proptest::prelude::*;

fn run(inst: &UpdateInstance, config: GreedyConfig) -> Result<GreedyOutcome, ScheduleError> {
    greedy_schedule_with(inst, config)
}

/// Two outcomes must agree on everything the caller can observe from
/// the schedule side: the schedule itself, its makespan, and the full
/// per-round commit/chain trace. (Instrumentation like simulator-call
/// counts is *allowed* to differ — parallel scoring relocates rejected
/// candidates' checks onto worker mirrors.)
fn assert_same_outcome(
    tag: &str,
    a: &Result<GreedyOutcome, ScheduleError>,
    b: &Result<GreedyOutcome, ScheduleError>,
) {
    match (a, b) {
        (Ok(x), Ok(y)) => {
            assert_eq!(x.schedule, y.schedule, "{tag}: schedules diverged");
            assert_eq!(x.makespan, y.makespan, "{tag}: makespans diverged");
            let xr: Vec<_> = x
                .rounds
                .iter()
                .map(|r| (r.time, r.chains.clone(), r.committed.clone()))
                .collect();
            let yr: Vec<_> = y
                .rounds
                .iter()
                .map(|r| (r.time, r.chains.clone(), r.committed.clone()))
                .collect();
            assert_eq!(xr, yr, "{tag}: round traces diverged");
        }
        (Err(_), Err(_)) => {}
        (x, y) => panic!("{tag}: feasibility diverged: {x:?} vs {y:?}"),
    }
}

fn flat_vs_legacy(inst: &UpdateInstance) {
    // `incremental_cutoff: 0` forces the flat scan even on small
    // instances — with the default cutoff both arms of the
    // differential would take the legacy walks and prove nothing.
    let flat = run(
        inst,
        GreedyConfig {
            incremental_cutoff: 0,
            ..Default::default()
        },
    );
    let legacy = run(
        inst,
        GreedyConfig {
            legacy_scan: true,
            ..Default::default()
        },
    );
    assert_same_outcome("flat vs legacy scan", &flat, &legacy);
}

fn parallel_vs_sequential(inst: &UpdateInstance) {
    // `incremental_cutoff: 0` forces the incremental backend so the
    // parallel path actually engages on small instances.
    let base = GreedyConfig {
        incremental_cutoff: 0,
        ..Default::default()
    };
    let seq = run(inst, base);
    for workers in [2, 4] {
        let par = run(
            inst,
            GreedyConfig {
                parallel_candidates: workers,
                ..base
            },
        );
        assert_same_outcome(&format!("sequential vs {workers} workers"), &seq, &par);
    }
}

#[test]
fn fixed_instances_flat_equals_legacy() {
    flat_vs_legacy(&motivating_example());
    for n in 4..9 {
        flat_vs_legacy(&reversal_instance(n, 2, 1));
        flat_vs_legacy(&reversal_instance(n, 1, 1));
    }
}

#[test]
fn fixed_instances_parallel_equals_sequential() {
    parallel_vs_sequential(&motivating_example());
    for n in 4..9 {
        parallel_vs_sequential(&reversal_instance(n, 2, 1));
        parallel_vs_sequential(&reversal_instance(n, 1, 1));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(500))]

    /// The tentpole equivalence: the flat scan must be schedule-,
    /// trace- and makespan-identical to the legacy scan on random
    /// paper-shaped instances.
    #[test]
    fn random_instances_flat_equals_legacy(
        switches in 6usize..28,
        seed in 0u64..100_000,
    ) {
        let cfg = InstanceGeneratorConfig::paper(switches, seed);
        if let Some(inst) = InstanceGenerator::new(cfg).generate() {
            flat_vs_legacy(&inst);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Worker count must never show up in the output (thread spawn per
    /// case keeps this one smaller than the scan differential).
    #[test]
    fn random_instances_parallel_equals_sequential(
        switches in 6usize..24,
        seed in 0u64..100_000,
    ) {
        let cfg = InstanceGeneratorConfig::paper(switches, seed);
        if let Some(inst) = InstanceGenerator::new(cfg).generate() {
            parallel_vs_sequential(&inst);
        }
    }
}
