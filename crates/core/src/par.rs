//! Parallel candidate scoring for the greedy one-by-one fallback.
//!
//! When a round's joint batch fails, the sequential path gate-checks
//! each candidate in order against the incremental simulator — each
//! check an apply → verdict → undo round-trip on the *same* simulator
//! state, so the checks within one "no commit yet" window are
//! embarrassingly parallel. [`ParallelScorer`] exploits exactly that
//! window and nothing more:
//!
//! - Each worker owns a full [`IncrementalSimulator`] *mirror* of the
//!   main gate's state, kept in sync by [`Req::Mirror`] broadcasts for
//!   every committed entry (the fresh pre-pass and every accepted
//!   candidate). Worker channels are FIFO, so a mirror sent before a
//!   scoring wave is always applied before it.
//! - A **wave** ([`Req::Score`]) broadcasts the ordered remaining
//!   candidate list; worker `w` of `W` scores indices `w, w+W, …`
//!   (apply → verdict → undo, leaving its mirror unchanged) and sends
//!   back `(wave, index, ok)`.
//! - The caller merges verdicts **in candidate order**: rejections
//!   become cooldown entries exactly as the sequential path records
//!   them, and the first predicted-accept is re-checked on the main
//!   gate, which stays authoritative. An accept invalidates the rest
//!   of the wave (the simulator base changed), so the caller mirrors
//!   the commit and starts a new wave over the remaining suffix; stale
//!   wave results are discarded by wave number on receipt.
//!
//! Because verdicts against an identical base are deterministic and
//! the merge consumes them in candidate order, the committed schedule
//! is **byte-identical at any worker count** — pinned by the
//! differential tests in `tests/scan_props.rs`. What parallelism
//! changes is only *where* rejected candidates burn their simulator
//! call: on a worker mirror instead of the main gate.

// Strided wave indexing into the shared candidate list; channel sends
// only fail when a worker died, which the scope turns into a panic.
#![allow(clippy::indexing_slicing, clippy::expect_used)]

use chronus_net::{FlowId, SwitchId, TimeStep, UpdateInstance};
use chronus_timenet::{IncrementalSimulator, SimWorkspace, Verdict};
use std::sync::mpsc;
use std::sync::Arc;

/// One request from the merge loop to a worker.
enum Req {
    /// A committed schedule entry: apply to the mirror, permanently.
    Mirror(FlowId, SwitchId, TimeStep),
    /// Score a candidate wave (worker takes its stride of `cands`).
    Score {
        wave: u64,
        flow: FlowId,
        t: TimeStep,
        cands: Arc<Vec<SwitchId>>,
    },
    /// Tear down the worker loop.
    Quit,
}

/// Handle owned by the greedy loop; workers live on the enclosing
/// [`rayon::scope`] and are joined when the scope ends.
pub(crate) struct ParallelScorer {
    txs: Vec<mpsc::Sender<Req>>,
    rx: mpsc::Receiver<(u64, usize, bool)>,
    wave: u64,
}

impl ParallelScorer {
    /// Spawns `workers` scoring threads on `scope`, each owning an
    /// incremental-simulator mirror built over `instance`.
    pub fn start<'scope, 'env>(
        scope: &rayon::Scope<'scope, 'env>,
        instance: &'env UpdateInstance,
        workers: usize,
    ) -> Self {
        let workers = workers.max(1);
        let (res_tx, rx) = mpsc::channel();
        let mut txs = Vec::with_capacity(workers);
        for w in 0..workers {
            let (tx, req_rx) = mpsc::channel::<Req>();
            txs.push(tx);
            let res_tx = res_tx.clone();
            scope.spawn(move |_| worker_loop(instance, w, workers, &req_rx, &res_tx));
        }
        ParallelScorer { txs, rx, wave: 0 }
    }

    /// Broadcasts a committed schedule entry to every mirror.
    pub fn mirror(&self, flow: FlowId, switch: SwitchId, t: TimeStep) {
        for tx in &self.txs {
            tx.send(Req::Mirror(flow, switch, t))
                .expect("scorer worker exited early");
        }
    }

    /// Scores `cands` (in order) against the mirrors' current state —
    /// which equals the main gate's state, by the mirroring protocol —
    /// and returns one verdict per candidate.
    pub fn score(&mut self, flow: FlowId, cands: &[SwitchId], t: TimeStep) -> Vec<bool> {
        self.wave += 1;
        let wave = self.wave;
        let shared = Arc::new(cands.to_vec());
        for tx in &self.txs {
            tx.send(Req::Score {
                wave,
                flow,
                t,
                cands: Arc::clone(&shared),
            })
            .expect("scorer worker exited early");
        }
        let mut verdicts = vec![false; cands.len()];
        let mut got = 0;
        while got < cands.len() {
            let (w, i, ok) = self.rx.recv().expect("scorer worker exited early");
            // Results from waves the merge loop abandoned mid-drain
            // (an accept changed the base) are dead — drop them.
            if w == wave {
                verdicts[i] = ok;
                got += 1;
            }
        }
        verdicts
    }

    /// Sends every worker its quit message; the enclosing scope joins
    /// the threads.
    pub fn shutdown(self) {
        for tx in &self.txs {
            // A worker that already died will be surfaced by the
            // scope's panic propagation; ignore the send error here.
            let _ = tx.send(Req::Quit);
        }
    }
}

fn worker_loop(
    instance: &UpdateInstance,
    worker: usize,
    stride: usize,
    req_rx: &mpsc::Receiver<Req>,
    res_tx: &mpsc::Sender<(u64, usize, bool)>,
) {
    let mut inc = IncrementalSimulator::with_workspace(instance, SimWorkspace::default());
    while let Ok(req) = req_rx.recv() {
        match req {
            Req::Mirror(flow, switch, t) => {
                let d = inc.apply(flow, switch, t);
                inc.commit(d);
            }
            Req::Score {
                wave,
                flow,
                t,
                cands,
            } => {
                let mut i = worker;
                while i < cands.len() {
                    let d = inc.apply(flow, cands[i], t);
                    let ok = inc.verdict() == Verdict::Consistent;
                    inc.undo(d);
                    if res_tx.send((wave, i, ok)).is_err() {
                        return; // merge side gone: stop quietly
                    }
                    i += stride;
                }
            }
            Req::Quit => return,
        }
    }
}
