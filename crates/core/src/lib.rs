//! # chronus-core — the Chronus scheduling algorithms
//!
//! This crate implements the paper's primary contribution (§III–§IV):
//!
//! - [`loopcheck`]: **Algorithm 4** — checking whether updating a switch
//!   at a given time would create a transient forwarding loop;
//! - [`deps`]: **Algorithm 3** — building the dependency relation set
//!   `O_t` that captures which switches must update before which;
//! - [`greedy`]: **Algorithm 2** — the greedy MUTP scheduler operating
//!   on the time-extended network, updating as many switches as
//!   possible per step;
//! - [`tree`]: **Algorithm 1** — the tree algorithm checking whether
//!   *any* congestion- and loop-free timed update sequence exists;
//! - [`exec`]: **Algorithm 5** — turning a [`chronus_timenet::Schedule`]
//!   into the timed command sequence (FlowMods + barriers) a controller
//!   executes.
//!
//! Every schedule produced here is certified against the exact
//! dynamic-flow simulator of `chronus-timenet` before it is returned —
//! the crate never hands out a schedule that violates Definition 2
//! (loop-freedom) or Definition 3 (congestion-freedom). On top of
//! that gate, every solver re-proves its result with the *independent*
//! static certifier of `chronus-verify` (interval arithmetic, zero
//! shared code with the simulator) and attaches the resulting
//! [`chronus_verify::Certificate`] to its outcome.
//!
//! ## Quickstart
//!
//! ```
//! use chronus_core::greedy::greedy_schedule;
//! use chronus_net::motivating_example;
//! use chronus_timenet::{FluidSimulator, Verdict};
//!
//! let instance = motivating_example();
//! let outcome = greedy_schedule(&instance).expect("example is feasible");
//! let report = FluidSimulator::check(&instance, &outcome.schedule);
//! assert_eq!(report.verdict(), Verdict::Consistent);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(
    not(test),
    deny(clippy::unwrap_used, clippy::expect_used, clippy::indexing_slicing)
)]

pub mod deps;
mod error;
pub mod exec;
pub mod greedy;
pub mod loopcheck;
pub(crate) mod par;
mod problem;
pub(crate) mod scan;
pub mod sequential;
pub mod shard;
pub mod tree;

pub use error::ScheduleError;
pub use problem::MutpProblem;

/// Shared post-hoc certification tail of every solver in this crate:
/// runs the independent static certifier over the finished schedule
/// and either returns its [`chronus_verify::Certificate`] (or `None`
/// when certification is disabled) or surfaces the counterexample as
/// [`ScheduleError::CertificationFailed`].
pub(crate) fn certify_outcome(
    instance: &chronus_net::UpdateInstance,
    schedule: &chronus_timenet::Schedule,
    config: &chronus_verify::VerifyConfig,
) -> Result<Option<chronus_verify::Certificate>, ScheduleError> {
    if !config.enabled {
        return Ok(None);
    }
    match chronus_verify::certify_with(instance, schedule, config) {
        Ok(cert) => Ok(Some(cert)),
        Err(violation) => Err(ScheduleError::CertificationFailed {
            violation: Box::new(violation),
        }),
    }
}
