//! # chronus-core — the Chronus scheduling algorithms
//!
//! This crate implements the paper's primary contribution (§III–§IV):
//!
//! - [`loopcheck`]: **Algorithm 4** — checking whether updating a switch
//!   at a given time would create a transient forwarding loop;
//! - [`deps`]: **Algorithm 3** — building the dependency relation set
//!   `O_t` that captures which switches must update before which;
//! - [`greedy`]: **Algorithm 2** — the greedy MUTP scheduler operating
//!   on the time-extended network, updating as many switches as
//!   possible per step;
//! - [`tree`]: **Algorithm 1** — the tree algorithm checking whether
//!   *any* congestion- and loop-free timed update sequence exists;
//! - [`exec`]: **Algorithm 5** — turning a [`chronus_timenet::Schedule`]
//!   into the timed command sequence (FlowMods + barriers) a controller
//!   executes.
//!
//! Every schedule produced here is certified against the exact
//! dynamic-flow simulator of `chronus-timenet` before it is returned —
//! the crate never hands out a schedule that violates Definition 2
//! (loop-freedom) or Definition 3 (congestion-freedom).
//!
//! ## Quickstart
//!
//! ```
//! use chronus_core::greedy::greedy_schedule;
//! use chronus_net::motivating_example;
//! use chronus_timenet::{FluidSimulator, Verdict};
//!
//! let instance = motivating_example();
//! let outcome = greedy_schedule(&instance).expect("example is feasible");
//! let report = FluidSimulator::check(&instance, &outcome.schedule);
//! assert_eq!(report.verdict(), Verdict::Consistent);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod deps;
mod error;
pub mod exec;
pub mod greedy;
pub mod loopcheck;
mod problem;
pub mod sequential;
pub mod tree;

pub use error::ScheduleError;
pub use problem::MutpProblem;
