//! A conservative reference scheduler: one switch per drain period.
//!
//! The paper's conclusion names approximation algorithms as future
//! work; this module provides the natural baseline for that study — a
//! scheduler that is *maximally* conservative about time: it updates
//! switches one at a time in dependency-respecting order and waits a
//! full drain period between updates, so that each update meets a
//! completely stationary data plane. Its makespan is therefore an
//! upper bound of roughly `pending × drain` steps, against which the
//! greedy's parallelism (and OPT) can be measured — the
//! `ablation_benches` bench and the EXPERIMENTS.md ablation table do
//! exactly that.
// Per-item slots are indexed by the instance's own item ids.
#![allow(clippy::indexing_slicing)]

use crate::loopcheck::creates_forwarding_loop;
use crate::{MutpProblem, ScheduleError};
use chronus_net::{SwitchId, TimeStep, UpdateInstance};
use chronus_timenet::{FluidSimulator, Schedule, SimulatorConfig, Verdict};
use std::collections::BTreeSet;

/// The result of the sequential scheduler.
#[derive(Clone, Debug)]
pub struct SequentialOutcome {
    /// The (certified) schedule.
    pub schedule: Schedule,
    /// Its makespan.
    pub makespan: TimeStep,
    /// Simulator calls spent.
    pub simulator_calls: usize,
    /// The independent certifier's proof of consistency (the
    /// sequential baseline always certifies — it has no hot path).
    pub certificate: Option<chronus_verify::Certificate>,
}

/// Schedules one switch per drain period, each commit verified by the
/// exact simulator; within a period, the first pending switch whose
/// update passes Algorithm 4 and the gate is taken.
///
/// # Errors
/// [`ScheduleError::Infeasible`] when some switch can never be updated
/// even against a stationary data plane (then no scheduler can help —
/// the same condition the greedy reports), or
/// [`ScheduleError::Invalid`] for malformed instances.
pub fn sequential_schedule(instance: &UpdateInstance) -> Result<SequentialOutcome, ScheduleError> {
    let problem = MutpProblem::new(instance)?;
    let sim = FluidSimulator::with_config(
        instance,
        SimulatorConfig {
            record_loads: false,
            fail_fast: true,
            ..SimulatorConfig::default()
        },
    );

    let mut schedule = Schedule::new();
    let mut pending: Vec<BTreeSet<SwitchId>> = (0..instance.flows.len())
        .map(|fi| problem.pending(fi).clone())
        .collect();
    // Fresh switches activate at step 0 (no flow crosses them yet).
    for (fi, flow) in instance.flows.iter().enumerate() {
        for v in problem.fresh_switches(fi) {
            schedule.set(flow.id, v, 0);
            pending[fi].remove(&v);
        }
    }

    let drain = problem.drain_bound();
    let mut t: TimeStep = 0;
    let mut simulator_calls = 0usize;
    let total: usize = pending.iter().map(BTreeSet::len).sum();

    for _ in 0..total {
        let mut committed = false;
        'flows: for (fi, flow) in instance.flows.iter().enumerate() {
            let candidates: Vec<SwitchId> = pending[fi].iter().copied().collect();
            for v in candidates {
                if creates_forwarding_loop(instance, flow, &schedule, v, t) {
                    continue;
                }
                schedule.set(flow.id, v, t);
                simulator_calls += 1;
                if sim.run(&schedule).verdict() == Verdict::Consistent {
                    pending[fi].remove(&v);
                    committed = true;
                    break 'flows;
                }
                schedule.unset(flow.id, v);
            }
        }
        if !committed {
            // The data plane is stationary at each period boundary, so
            // failure here is final.
            let blocked = pending.iter().flat_map(|p| p.iter().copied()).next();
            return Err(ScheduleError::Infeasible {
                blocked,
                reason: "no switch is updatable against a stationary data plane".into(),
            });
        }
        t += drain;
    }

    let makespan = schedule.makespan().unwrap_or(0);
    let certificate = crate::certify_outcome(
        instance,
        &schedule,
        &chronus_verify::VerifyConfig::default(),
    )?;
    Ok(SequentialOutcome {
        schedule,
        makespan,
        simulator_calls,
        certificate,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::greedy_schedule;
    use chronus_net::motivating_example;

    #[test]
    fn sequential_solves_the_motivating_example() {
        let inst = motivating_example();
        let out = sequential_schedule(&inst).expect("feasible");
        let report = FluidSimulator::check(&inst, &out.schedule);
        assert_eq!(report.verdict(), Verdict::Consistent, "{report}");
        out.schedule.validate(&inst).expect("complete");
    }

    #[test]
    fn sequential_is_much_slower_than_greedy() {
        let inst = motivating_example();
        let seq = sequential_schedule(&inst).expect("feasible");
        let greedy = greedy_schedule(&inst).expect("feasible");
        assert!(
            seq.makespan > greedy.makespan,
            "sequential {} vs greedy {}",
            seq.makespan,
            greedy.makespan
        );
        // One drain period per non-fresh pending switch.
        let problem = MutpProblem::new(&inst).unwrap();
        assert!(seq.makespan >= (problem.pending_total() as i64 - 1) * problem.drain_bound());
    }

    #[test]
    fn sequential_reports_truly_infeasible_instances() {
        use chronus_net::{Flow, FlowId, NetworkBuilder, Path, SwitchId};
        let sid = SwitchId;
        let mut b = NetworkBuilder::with_switches(4);
        b.add_link(sid(0), sid(1), 1, 1).unwrap();
        b.add_link(sid(1), sid(2), 1, 1).unwrap();
        b.add_link(sid(2), sid(3), 1, 1).unwrap();
        b.add_link(sid(0), sid(2), 1, 1).unwrap();
        let flow = Flow::new(
            FlowId(0),
            1,
            Path::new(vec![sid(0), sid(1), sid(2), sid(3)]),
            Path::new(vec![sid(0), sid(2), sid(3)]),
        )
        .unwrap();
        let inst = UpdateInstance::single(b.build(), flow).unwrap();
        assert!(sequential_schedule(&inst).is_err());
    }

    #[test]
    fn sequential_agrees_with_greedy_on_random_instances() {
        use chronus_net::{InstanceGenerator, InstanceGeneratorConfig};
        let mut gen = InstanceGenerator::new(InstanceGeneratorConfig::paper(12, 31337));
        let mut compared = 0;
        for inst in gen.generate_batch(10) {
            let g = greedy_schedule(&inst);
            let s = sequential_schedule(&inst);
            match (g, s) {
                (Ok(g), Ok(s)) => {
                    assert!(g.makespan <= s.makespan);
                    compared += 1;
                }
                // The greedy explores strictly more placements than the
                // sequential baseline, so greedy-fails ⇒ sequential-fails.
                (Err(_), Ok(_)) => {}
                (Ok(_), Err(e)) => panic!("sequential failed on a feasible instance: {e}"),
                (Err(_), Err(_)) => {}
            }
        }
        assert!(compared >= 3);
    }
}
