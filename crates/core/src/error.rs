//! Scheduling errors.

use chronus_net::{NetError, SwitchId};
use std::fmt;

/// Errors returned by the Chronus schedulers.
#[derive(Clone, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum ScheduleError {
    /// No congestion- and loop-free timed update sequence exists (or
    /// the greedy search could not find one within its horizon). The
    /// payload names a witness switch that could never be updated.
    Infeasible {
        /// A pending switch that blocked progress, if identifiable.
        blocked: Option<SwitchId>,
        /// Human-readable explanation.
        reason: String,
    },
    /// The dependency relation set of Algorithm 3 contained a cycle
    /// (Algorithm 2, lines 7–8): no congestion-free order exists.
    DependencyCycle(Vec<SwitchId>),
    /// The instance itself is malformed.
    Invalid(NetError),
    /// A solver exceeded its configured wall-clock budget (the paper
    /// caps OPT/OR at 600 s in Fig. 10).
    TimedOut {
        /// The budget that was exhausted, in milliseconds.
        budget_ms: u64,
    },
    /// The independent static certifier (`chronus-verify`) rejected a
    /// schedule a solver emitted as consistent. The solvers gate every
    /// commit on the exact simulator, so this indicates a bug in the
    /// solver, the simulator, or the certifier — the exact class of
    /// shared-implementation failures the certifier exists to expose.
    CertificationFailed {
        /// The certifier's minimal counterexample.
        violation: Box<chronus_verify::Violation>,
    },
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::Infeasible { blocked, reason } => match blocked {
                Some(v) => write!(f, "infeasible: {reason} (blocked at {v})"),
                None => write!(f, "infeasible: {reason}"),
            },
            ScheduleError::DependencyCycle(cycle) => {
                write!(f, "dependency cycle:")?;
                for v in cycle {
                    write!(f, " {v}")?;
                }
                Ok(())
            }
            ScheduleError::Invalid(e) => write!(f, "invalid instance: {e}"),
            ScheduleError::TimedOut { budget_ms } => {
                write!(f, "solver exceeded its {budget_ms} ms budget")
            }
            ScheduleError::CertificationFailed { violation } => {
                write!(f, "post-hoc certification failed: {violation}")
            }
        }
    }
}

impl std::error::Error for ScheduleError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ScheduleError::Invalid(e) => Some(e),
            ScheduleError::CertificationFailed { violation } => Some(violation.as_ref()),
            _ => None,
        }
    }
}

impl From<NetError> for ScheduleError {
    fn from(e: NetError) -> Self {
        ScheduleError::Invalid(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = ScheduleError::Infeasible {
            blocked: Some(SwitchId(3)),
            reason: "old flow never drains".into(),
        };
        assert!(e.to_string().contains("blocked at s3"));
        let e = ScheduleError::DependencyCycle(vec![SwitchId(1), SwitchId(2)]);
        assert!(e.to_string().contains("s1 s2"));
        let e = ScheduleError::TimedOut { budget_ms: 600_000 };
        assert!(e.to_string().contains("600000 ms"));
        let e: ScheduleError = NetError::ZeroDemand.into();
        assert!(e.to_string().contains("invalid instance"));
    }

    #[test]
    fn source_chains_net_errors() {
        use std::error::Error;
        let e: ScheduleError = NetError::PathTooShort.into();
        assert!(e.source().is_some());
        let e = ScheduleError::TimedOut { budget_ms: 1 };
        assert!(e.source().is_none());
    }
}
