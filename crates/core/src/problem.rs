//! The Minimum Update Time Problem instance wrapper.
// Update items index the instance's own switch set; `expect` sites
// unwrap path invariants checked at `Path` construction.
#![allow(clippy::indexing_slicing, clippy::expect_used)]

use crate::ScheduleError;
use chronus_net::{Flow, SwitchId, TimeStep, UpdateInstance};
use std::collections::BTreeSet;

/// A validated MUTP instance (paper §II-B, program (3)) together with
/// the derived quantities every scheduler needs.
///
/// Construction validates the underlying instance once, so algorithms
/// can use `expect`-free accessors afterwards.
#[derive(Clone, Debug)]
pub struct MutpProblem<'a> {
    instance: &'a UpdateInstance,
    /// Per-flow pending sets, parallel to `instance.flows`.
    pending: Vec<BTreeSet<SwitchId>>,
    /// Per-flow initial-path total delay `φ(p_init)`.
    phi_init: Vec<u64>,
    /// Per-flow final-path total delay `φ(p_fin)`.
    phi_fin: Vec<u64>,
}

impl<'a> MutpProblem<'a> {
    /// Wraps and validates an instance.
    ///
    /// # Errors
    /// [`ScheduleError::Invalid`] if a flow fails validation against
    /// the network.
    pub fn new(instance: &'a UpdateInstance) -> Result<Self, ScheduleError> {
        let mut pending = Vec::with_capacity(instance.flows.len());
        let mut phi_init = Vec::with_capacity(instance.flows.len());
        let mut phi_fin = Vec::with_capacity(instance.flows.len());
        for f in &instance.flows {
            f.validate(&instance.network)?;
            pending.push(f.switches_to_update());
            phi_init.push(
                f.initial
                    .total_delay(&instance.network)
                    .expect("validated path has a delay"),
            );
            phi_fin.push(
                f.fin
                    .total_delay(&instance.network)
                    .expect("validated path has a delay"),
            );
        }
        Ok(MutpProblem {
            instance,
            pending,
            phi_init,
            phi_fin,
        })
    }

    /// The wrapped instance.
    pub fn instance(&self) -> &'a UpdateInstance {
        self.instance
    }

    /// The flows of the instance.
    pub fn flows(&self) -> &[Flow] {
        &self.instance.flows
    }

    /// Switches requiring an update for flow index `fi`.
    pub fn pending(&self, fi: usize) -> &BTreeSet<SwitchId> {
        &self.pending[fi]
    }

    /// Total switches requiring updates across all flows.
    pub fn pending_total(&self) -> usize {
        self.pending.iter().map(BTreeSet::len).sum()
    }

    /// `φ(p_init)` of flow index `fi`.
    pub fn phi_init(&self, fi: usize) -> u64 {
        self.phi_init[fi]
    }

    /// `φ(p_fin)` of flow index `fi`.
    pub fn phi_fin(&self, fi: usize) -> u64 {
        self.phi_fin[fi]
    }

    /// The *drain bound*: after this many idle steps every in-flight
    /// cohort emitted before the idle period has left the network, so
    /// the transient state repeats. Waiting longer than this between
    /// updates can never unlock a previously impossible update —
    /// the core of the paper's Theorem 2 "infeasible now ⇒ infeasible
    /// forever" argument.
    pub fn drain_bound(&self) -> TimeStep {
        let max_phi = self
            .phi_init
            .iter()
            .chain(self.phi_fin.iter())
            .copied()
            .max()
            .unwrap_or(0);
        max_phi as TimeStep + 2
    }

    /// A horizon after which the greedy search declares infeasibility:
    /// every pending switch gets at least one full drain period.
    pub fn search_horizon(&self) -> TimeStep {
        (self.pending_total() as TimeStep + 2) * self.drain_bound()
    }

    /// Switches on the final path that have *no* old rule for flow
    /// `fi` ("fresh" switches): they carry no flow until an upstream
    /// switch diverges, so updating them at step 0 is always safe and
    /// any later time risks a blackhole.
    pub fn fresh_switches(&self, fi: usize) -> Vec<SwitchId> {
        let f = &self.instance.flows[fi];
        self.pending[fi]
            .iter()
            .copied()
            .filter(|&v| f.old_rule(v).is_none())
            .collect()
    }

    /// Switches whose rule's *action* changes (both old and new rules
    /// exist) — the updates Chronus performs in place without extra
    /// table space (§II-A).
    pub fn action_rewrite_switches(&self, fi: usize) -> Vec<SwitchId> {
        let f = &self.instance.flows[fi];
        self.pending[fi]
            .iter()
            .copied()
            .filter(|&v| f.old_rule(v).is_some())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chronus_net::{motivating_example, reversal_instance};

    #[test]
    fn wraps_motivating_example() {
        let inst = motivating_example();
        let p = MutpProblem::new(&inst).unwrap();
        assert_eq!(p.pending_total(), 4);
        assert_eq!(p.phi_init(0), 5);
        assert_eq!(p.phi_fin(0), 4);
        assert_eq!(p.drain_bound(), 7);
        assert!(p.search_horizon() >= p.drain_bound());
        // All four updated switches are on both paths in this example
        // except none are fresh (v4 and v3 lie on the old path too).
        assert!(p.fresh_switches(0).is_empty());
        assert_eq!(p.action_rewrite_switches(0).len(), 4);
        assert_eq!(p.flows().len(), 1);
        assert!(std::ptr::eq(p.instance(), &inst));
    }

    #[test]
    fn fresh_switch_detection() {
        // Diamond: 0 -> 1 -> 3 old, 0 -> 2 -> 3 new; switch 2 is fresh.
        let mut b = chronus_net::NetworkBuilder::with_switches(4);
        let s = SwitchId;
        b.add_link(s(0), s(1), 5, 1).unwrap();
        b.add_link(s(1), s(3), 5, 1).unwrap();
        b.add_link(s(0), s(2), 5, 1).unwrap();
        b.add_link(s(2), s(3), 5, 1).unwrap();
        let f = chronus_net::Flow::new(
            chronus_net::FlowId(0),
            1,
            chronus_net::Path::new(vec![s(0), s(1), s(3)]),
            chronus_net::Path::new(vec![s(0), s(2), s(3)]),
        )
        .unwrap();
        let inst = UpdateInstance::single(b.build(), f).unwrap();
        let p = MutpProblem::new(&inst).unwrap();
        assert_eq!(p.fresh_switches(0), vec![s(2)]);
        assert_eq!(p.action_rewrite_switches(0), vec![s(0)]);
    }

    #[test]
    fn reversal_has_large_pending_set() {
        let inst = reversal_instance(8, 1, 1);
        let p = MutpProblem::new(&inst).unwrap();
        assert!(p.pending_total() >= 6);
    }
}
