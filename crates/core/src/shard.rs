//! Sharded multi-flow planning over shared capacity (ROADMAP item 2).
//!
//! The joint greedy scheduler treats a K-flow [`UpdateInstance`] as
//! one monolithic search; on fabric-scale topologies that serializes
//! everything behind a single simulator. This module splits the
//! instance along the topology — fat-tree pods or min-cut regions,
//! via `chronus_net::partition` — and plans the shards **in
//! parallel**, coordinating only where shards genuinely interact: the
//! shared links, links loaded by flows of two or more shards.
//!
//! ## The reservation protocol (reserve → plan → commit)
//!
//! 1. **Reserve.** A [`ReservationTable`] grants every shard a slice
//!    of each shared link's capacity. When the shards' *static needs*
//!    (the per-shard sum of flow demands occupying the link — an upper
//!    bound on any transient peak, since paths are simple) all fit
//!    within capacity, the grants are safe by construction. Otherwise
//!    the table starts **optimistic**: grants interpolate between the
//!    full static need (headroom 1, betting that shard peaks do not
//!    coincide in time) and the proportional fair share (headroom 0,
//!    guaranteed additive), tightening every round.
//! 2. **Plan.** Each populated shard plans its own flows with the
//!    ordinary greedy scheduler against a network whose shared links
//!    are clamped to the shard's grant — so the shard's exact gate
//!    enforces the reservation with no new machinery.
//! 3. **Commit.** The per-shard certificates are composed
//!    (`chronus_verify::compose_certificates`) into a joint proof that
//!    re-checks exactly the shared links. A composition failure is a
//!    **conflict** — two optimistic grants overlapped in time — and
//!    triggers a replan round with less headroom; after
//!    [`ShardingConfig::max_rounds`] the planner falls back to the
//!    joint greedy, so sharding never loses feasibility, only time.
//!
//! With certification disabled there are no certificates to compose,
//! so only safe (statically additive) grants are used; contended
//! instances go straight to the joint path.
//!
//! Single-shard cases — one flow, one populated shard, or `shards <=
//! 1` — delegate verbatim to [`greedy_schedule_in`], so their
//! schedules are **byte-identical** to the joint planner's (pinned by
//! the differential proptest in `tests/shard_props.rs`).

// Shard and link indices are minted dense by the splitter; the grant
// table is indexed by (link, shard) arithmetic over those ranges.
#![allow(clippy::indexing_slicing)]

use crate::greedy::{greedy_schedule_in, GreedyConfig, GreedyOutcome};
use crate::ScheduleError;
use chronus_net::partition::{split_instance, SharedLink};
use chronus_net::{Capacity, SwitchId, TimeStep, UpdateInstance};
use chronus_timenet::{Schedule, SimWorkspace};
use chronus_verify::{compose_certificates, Certificate};
use std::collections::BTreeMap;
use std::sync::mpsc;

/// Tuning knobs for [`shard_schedule_with`].
#[derive(Clone, Copy, Debug)]
pub struct ShardingConfig {
    /// Target shard count; the partitioner may produce fewer (it
    /// never splits a fat-tree pod). `<= 1` disables sharding.
    pub shards: usize,
    /// Planning rounds before falling back to the joint greedy. Round
    /// 0 is the most optimistic; the last round grants proportional
    /// fair shares.
    pub max_rounds: usize,
    /// Initial optimism in `[0, 1]`: how far above its fair share a
    /// contending shard's first-round grant reaches toward its full
    /// static need (the augmentation-speed knob — more headroom means
    /// faster schedules when shard peaks interleave, more replans when
    /// they collide).
    pub headroom: f64,
    /// Plan shards on parallel worker threads (default true; the
    /// merged result is identical either way — shard plans are
    /// independent given their grants).
    pub parallel: bool,
    /// Per-shard planner configuration. `verify.enabled` also gates
    /// the optimistic rounds: without certificates conflicts cannot be
    /// detected, so only statically safe grants are used.
    pub greedy: GreedyConfig,
}

impl Default for ShardingConfig {
    fn default() -> Self {
        ShardingConfig {
            shards: 8,
            max_rounds: 3,
            headroom: 1.0,
            parallel: true,
            greedy: GreedyConfig::default(),
        }
    }
}

/// Counters describing how a sharded plan came together.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Shards that owned at least one flow and were planned.
    pub shards: usize,
    /// Topological cross-shard links in the partition.
    pub cross_links: usize,
    /// Links that needed capacity reservations (loaded by ≥ 2 shards).
    pub shared_links: usize,
    /// Replan rounds consumed beyond the first (0 = first try stuck).
    pub replan_rounds: usize,
    /// Reservation conflicts detected by certificate composition.
    pub conflicts: usize,
    /// Whether the planner gave up on sharding and planned jointly.
    pub fell_back_joint: bool,
}

/// The result of a successful sharded run.
#[derive(Clone, Debug)]
pub struct ShardOutcome {
    /// The merged congestion- and loop-free schedule.
    pub schedule: Schedule,
    /// Makespan across all shards (latest update step).
    pub makespan: TimeStep,
    /// The joint certificate: composed from the per-shard proofs on
    /// the sharded path, the ordinary greedy certificate on delegated
    /// or fallback paths, `None` when certification is disabled.
    pub certificate: Option<Certificate>,
    /// How the plan came together.
    pub stats: ShardStats,
}

/// Per-(link, shard) capacity grants over the shared links.
///
/// Kept flat (`grants[link * shards + shard]`) so the per-round grant
/// kernel touches no allocator — it runs inside the replan loop.
struct ReservationTable {
    links: Vec<SharedLink>,
    shards: usize,
    grants: Vec<Capacity>,
}

impl ReservationTable {
    fn new(links: Vec<SharedLink>, shards: usize) -> Self {
        let grants = vec![0; links.len() * shards];
        ReservationTable {
            links,
            shards,
            grants,
        }
    }

    /// Whether every shared link can grant all static needs additively
    /// (no link is contended, so any round of grants is safe).
    fn conservative(&self) -> bool {
        self.links.iter().all(|l| l.total_need() <= l.capacity)
    }

    /// Recomputes every grant for one round at the given headroom
    /// (1 = optimistic full static need, 0 = proportional fair share).
    /// Alloc-free: runs once per replan round.
    fn grant_round(&mut self, headroom: f64) {
        let h = headroom.clamp(0.0, 1.0);
        for (li, link) in self.links.iter().enumerate() {
            let base = li * self.shards;
            let total = link.total_need();
            let cap = link.capacity;
            if total <= cap {
                // Uncontended: static needs plus an even split of the
                // spare capacity among the link's users.
                let users = link.users() as Capacity;
                let spare = if users > 0 { (cap - total) / users } else { 0 };
                for s in 0..self.shards {
                    let need = link.needs[s];
                    self.grants[base + s] = if need > 0 { need + spare } else { 0 };
                }
            } else {
                // Contended: interpolate fair share → static need by
                // headroom, never below the shard's largest single
                // demand (the floor for instance validity).
                for s in 0..self.shards {
                    let need = link.needs[s];
                    if need == 0 {
                        self.grants[base + s] = 0;
                        continue;
                    }
                    let fair = ((cap as u128 * need as u128) / total as u128) as Capacity;
                    let reach = need.saturating_sub(fair) as f64 * h;
                    self.grants[base + s] = (fair + reach as Capacity).max(link.min_needs[s]);
                }
            }
        }
    }

    fn grant(&self, link: usize, shard: usize) -> Capacity {
        self.grants[link * self.shards + shard]
    }
}

/// Plans `instance` with default sharding configuration.
///
/// # Errors
/// See [`crate::greedy::greedy_schedule`]; sharding adds no failure
/// modes of its own (exhausted rounds fall back to the joint greedy).
pub fn shard_schedule(instance: &UpdateInstance) -> Result<ShardOutcome, ScheduleError> {
    shard_schedule_with(instance, ShardingConfig::default())
}

/// Plans `instance` with explicit sharding configuration.
///
/// # Errors
/// See [`shard_schedule`].
pub fn shard_schedule_with(
    instance: &UpdateInstance,
    config: ShardingConfig,
) -> Result<ShardOutcome, ScheduleError> {
    let mut ws = SimWorkspace::default();
    shard_schedule_in(instance, config, &mut ws)
}

/// Plans `instance` reusing caller-owned simulation buffers for the
/// delegated / joint-fallback paths (parallel shard workers own their
/// own workspaces).
///
/// # Errors
/// See [`shard_schedule`].
pub fn shard_schedule_in(
    instance: &UpdateInstance,
    config: ShardingConfig,
    workspace: &mut SimWorkspace,
) -> Result<ShardOutcome, ScheduleError> {
    let mut span = chronus_trace::span!(
        "core.shard",
        flows = instance.flows.len(),
        shards = config.shards
    )
    .entered();
    // Degenerate shapes delegate verbatim (byte-identical schedules).
    if instance.flows.len() < 2 || config.shards <= 1 {
        let joint = greedy_schedule_in(instance, config.greedy, workspace)?;
        return Ok(from_joint(joint, ShardStats {
            shards: 1,
            ..ShardStats::default()
        }));
    }

    let split = split_instance(instance, config.shards);
    let populated: Vec<usize> = (0..split.partition.shards)
        .filter(|&s| !split.flow_shards[s].is_empty())
        .collect();
    let mut stats = ShardStats {
        shards: populated.len(),
        cross_links: split.partition.cross_links.len(),
        shared_links: split.shared_links.len(),
        ..ShardStats::default()
    };
    if populated.len() <= 1 {
        let joint = greedy_schedule_in(instance, config.greedy, workspace)?;
        stats.shards = 1;
        return Ok(from_joint(joint, stats));
    }

    let mut table = ReservationTable::new(split.shared_links.clone(), split.partition.shards);
    let verify_on = config.greedy.verify.enabled;
    let conservative = table.conservative();
    // Without certificates, conflicts are undetectable — only take the
    // sharded path when static needs make every grant safe.
    let rounds = if conservative {
        1
    } else if verify_on {
        config.max_rounds.max(1)
    } else {
        0
    };

    for round in 0..rounds {
        let headroom = if rounds <= 1 || conservative {
            1.0
        } else {
            config.headroom.clamp(0.0, 1.0) * (rounds - 1 - round) as f64 / (rounds - 1) as f64
        };
        table.grant_round(headroom);
        stats.replan_rounds = round;

        let mut shard_instances = Vec::with_capacity(populated.len());
        for &s in &populated {
            shard_instances.push(shard_instance(instance, &split.flow_shards[s], s, &table)?);
        }
        let outcomes = match plan_shards(&shard_instances, &config) {
            Ok(o) => o,
            // A shard failing at these grants will not pass tighter
            // ones — contention only grows as headroom shrinks — so
            // fall straight back to the joint planner.
            Err(_) => break,
        };

        if verify_on {
            let certs: Vec<Certificate> = outcomes
                .iter()
                .filter_map(|o| o.certificate.clone())
                .collect();
            if certs.len() != outcomes.len() {
                break; // a shard lost its certificate: cannot compose
            }
            match compose_certificates(instance, &certs) {
                Ok(joint_cert) => {
                    let out = merged(&outcomes, Some(joint_cert), stats);
                    span.record("fell_back_joint", false);
                    return Ok(out);
                }
                Err(_) => {
                    stats.conflicts += 1;
                    continue;
                }
            }
        } else {
            // Conservative grants are additive: no composition needed.
            let out = merged(&outcomes, None, stats);
            span.record("fell_back_joint", false);
            return Ok(out);
        }
    }

    // Out of rounds (or conflicts undetectable): joint fallback.
    stats.fell_back_joint = true;
    span.record("fell_back_joint", true);
    let joint = greedy_schedule_in(instance, config.greedy, workspace)?;
    Ok(from_joint(joint, stats))
}

/// Builds shard `s`'s planning view: its own flows against a network
/// pruned to exactly the links those flows touch, with shared links
/// clamped to the shard's grants.
///
/// The pruning is lossless: Chronus schedules update *times* over
/// fixed routes, so a shard's planner never looks at a link outside
/// its flows' initial and final paths — but the simulator's
/// per-candidate cost scales with the network it is handed. Keeping
/// the full switch numbering (so certificates compose against the
/// original instance) while dropping every untouched link makes each
/// shard pay for its own region, not the whole fabric.
fn shard_instance(
    instance: &UpdateInstance,
    flow_indices: &[usize],
    shard: usize,
    table: &ReservationTable,
) -> Result<UpdateInstance, ScheduleError> {
    let mut overrides: BTreeMap<(SwitchId, SwitchId), Capacity> = BTreeMap::new();
    for (li, link) in table.links.iter().enumerate() {
        if link.needs[shard] > 0 {
            overrides.insert((link.src, link.dst), table.grant(li, shard));
        }
    }
    let mut builder =
        chronus_net::NetworkBuilder::with_unnamed_switches(instance.network.switch_count());
    let mut seen: BTreeMap<(SwitchId, SwitchId), ()> = BTreeMap::new();
    for &fi in flow_indices {
        let flow = &instance.flows[fi];
        for path in [&flow.initial, &flow.fin] {
            for (u, v) in path.edges() {
                if seen.insert((u, v), ()).is_some() {
                    continue;
                }
                let link = instance.network.link_between(u, v).ok_or_else(|| {
                    ScheduleError::Infeasible {
                        blocked: None,
                        reason: format!("flow path link {u:?}->{v:?} missing from network"),
                    }
                })?;
                let capacity = overrides.get(&(u, v)).copied().unwrap_or(link.capacity);
                builder
                    .add_link(u, v, capacity, link.delay)
                    .map_err(|e| ScheduleError::Infeasible {
                        blocked: None,
                        reason: format!("shard view link {u:?}->{v:?}: {e}"),
                    })?;
            }
        }
    }
    let flows = flow_indices
        .iter()
        .map(|&fi| instance.flows[fi].clone())
        .collect();
    UpdateInstance::new(builder.build(), flows).map_err(ScheduleError::from)
}

/// Plans every shard instance, in parallel when configured. Results
/// come back in shard order regardless of completion order, so the
/// merged schedule is deterministic.
fn plan_shards(
    instances: &[UpdateInstance],
    config: &ShardingConfig,
) -> Result<Vec<GreedyOutcome>, ScheduleError> {
    // Worker threads only pay off when there are cores to run them;
    // on a single-core host the sequential path is strictly faster
    // (and the merged result is identical either way).
    if !config.parallel || instances.len() < 2 || rayon::current_num_threads() < 2 {
        let mut ws = SimWorkspace::default();
        return instances
            .iter()
            .map(|inst| greedy_schedule_in(inst, config.greedy, &mut ws))
            .collect();
    }
    let mut slots: Vec<Option<Result<GreedyOutcome, ScheduleError>>> =
        (0..instances.len()).map(|_| None).collect();
    rayon::scope(|scope| {
        let (tx, rx) = mpsc::channel();
        for (i, inst) in instances.iter().enumerate() {
            let tx = tx.clone();
            let greedy = config.greedy;
            scope.spawn(move |_| {
                let mut ws = SimWorkspace::default();
                let result = greedy_schedule_in(inst, greedy, &mut ws);
                let _ = tx.send((i, result));
            });
        }
        drop(tx);
        for (i, result) in rx {
            slots[i] = Some(result);
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.unwrap_or_else(|| {
                Err(ScheduleError::Infeasible {
                    blocked: None,
                    reason: "shard worker vanished".into(),
                })
            })
        })
        .collect()
}

/// Merges per-shard outcomes into one joint outcome. Flows are
/// disjoint across shards, so the schedule union is a plain merge.
fn merged(outcomes: &[GreedyOutcome], certificate: Option<Certificate>, stats: ShardStats) -> ShardOutcome {
    let mut schedule = Schedule::new();
    for o in outcomes {
        for (flow, switch, t) in o.schedule.iter() {
            schedule.set(flow, switch, t);
        }
    }
    let makespan = outcomes.iter().map(|o| o.makespan).max().unwrap_or(0);
    ShardOutcome {
        schedule,
        makespan,
        certificate,
        stats,
    }
}

fn from_joint(joint: GreedyOutcome, stats: ShardStats) -> ShardOutcome {
    ShardOutcome {
        schedule: joint.schedule,
        makespan: joint.makespan,
        certificate: joint.certificate,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::greedy_schedule_with;
    use chronus_net::topology::{fat_tree, LinkParams};
    use chronus_net::{Flow, FlowId, Network, Path};

    fn params() -> LinkParams {
        LinkParams {
            capacity: 1000,
            delay: 1,
        }
    }

    fn by_name(net: &Network, n: &str) -> SwitchId {
        net.switches()
            .find(|&s| net.switch_name(s) == Some(n))
            .unwrap()
    }

    /// k=4 fat tree with one pod-local migration per pod: fully
    /// pod-separable, so sharding needs no reservations at all.
    fn separable_instance() -> UpdateInstance {
        let net = fat_tree(4, params());
        let mut flows = Vec::new();
        for pod in 0..4u32 {
            let e0 = by_name(&net, &format!("edge{}", 2 * pod));
            let e1 = by_name(&net, &format!("edge{}", 2 * pod + 1));
            let a0 = by_name(&net, &format!("agg{}", 2 * pod));
            let a1 = by_name(&net, &format!("agg{}", 2 * pod + 1));
            flows.push(
                Flow::new(
                    FlowId(pod),
                    100,
                    Path::new(vec![e0, a0, e1]),
                    Path::new(vec![e0, a1, e1]),
                )
                .unwrap(),
            );
        }
        UpdateInstance::new(net, flows).unwrap()
    }

    #[test]
    fn separable_instance_plans_without_conflicts() {
        let inst = separable_instance();
        let out = shard_schedule(&inst).unwrap();
        assert!(out.stats.shards >= 2);
        assert_eq!(out.stats.conflicts, 0);
        assert!(!out.stats.fell_back_joint);
        // The joint certificate seals the merged schedule against the
        // original instance.
        let cert = out.certificate.expect("verify enabled by default");
        assert_eq!(cert.check(&inst), Ok(()));
        // And the schedule itself re-certifies from scratch.
        assert!(chronus_verify::certify(&inst, &out.schedule).is_ok());
    }

    #[test]
    fn sequential_and_parallel_merge_identically() {
        let inst = separable_instance();
        let seq = shard_schedule_with(
            &inst,
            ShardingConfig {
                parallel: false,
                ..ShardingConfig::default()
            },
        )
        .unwrap();
        let par = shard_schedule_with(&inst, ShardingConfig::default()).unwrap();
        assert_eq!(seq.schedule, par.schedule);
        assert_eq!(seq.makespan, par.makespan);
    }

    #[test]
    fn single_flow_delegates_byte_identically() {
        let inst = chronus_net::motivating_example();
        let sharded = shard_schedule(&inst).unwrap();
        let joint = greedy_schedule_with(&inst, GreedyConfig::default()).unwrap();
        assert_eq!(sharded.schedule, joint.schedule);
        assert_eq!(sharded.makespan, joint.makespan);
        assert_eq!(sharded.stats.shards, 1);
    }

    #[test]
    fn contended_shared_link_still_produces_a_sealed_plan() {
        // Two clusters joined by a 150-capacity bridge 2->3 that one
        // 100-demand flow must leave and another must enter: static
        // needs sum to 200 > 150 (contended), but a temporal handoff
        // exists. Whether the optimistic rounds land it or the planner
        // falls back to joint, the outcome must carry a certificate
        // that seals the ORIGINAL instance.
        let mut b = chronus_net::NetworkBuilder::with_switches(7);
        let s = SwitchId;
        for (u, v, cap) in [
            (0u32, 1u32, 1000u64),
            (1, 2, 1000),
            (2, 3, 150), // the contended bridge
            (0, 6, 1000),
            (6, 3, 1000),
            (5, 4, 1000),
            (4, 3, 1000),
            (5, 2, 1000),
        ] {
            b.add_link(s(u), s(v), cap, 1).unwrap();
        }
        let net = b.build();
        // f0 starts on the bridge and migrates off it.
        let f0 = Flow::new(
            FlowId(0),
            100,
            Path::new(vec![s(0), s(1), s(2), s(3)]),
            Path::new(vec![s(0), s(6), s(3)]),
        )
        .unwrap();
        // f1 starts off the bridge and migrates onto it.
        let f1 = Flow::new(
            FlowId(1),
            100,
            Path::new(vec![s(5), s(4), s(3)]),
            Path::new(vec![s(5), s(2), s(3)]),
        )
        .unwrap();
        let inst = UpdateInstance::new(net, vec![f0, f1]).unwrap();
        let out = shard_schedule_with(
            &inst,
            ShardingConfig {
                shards: 2,
                ..ShardingConfig::default()
            },
        )
        .unwrap();
        let cert = out.certificate.expect("verify enabled");
        assert_eq!(cert.check(&inst), Ok(()));
        assert!(chronus_verify::certify(&inst, &out.schedule).is_ok());
        // The bridge really was a reservation surface.
        if out.stats.shards == 2 {
            assert_eq!(out.stats.shared_links, 1);
            // Optimistic grants of 100 + 100 over 150 either collided
            // (conflict then fallback) or the composition proved the
            // handoff clean — both are legal, silence is not.
            assert!(out.stats.conflicts > 0 || !out.stats.fell_back_joint);
        }
    }

    #[test]
    fn verify_disabled_takes_sharded_path_only_when_safe() {
        let inst = separable_instance();
        let cfg = ShardingConfig {
            greedy: GreedyConfig {
                verify: chronus_verify::VerifyConfig::disabled(),
                ..GreedyConfig::default()
            },
            ..ShardingConfig::default()
        };
        let out = shard_schedule_with(&inst, cfg).unwrap();
        assert!(out.certificate.is_none());
        // Separable: no shared links at all, so the sharded path ran.
        assert!(!out.stats.fell_back_joint);
        // The emitted schedule is still consistent.
        assert!(chronus_verify::certify(&inst, &out.schedule).is_ok());
    }

    #[test]
    fn reservation_grants_are_additive_when_uncontended() {
        let links = vec![SharedLink {
            src: SwitchId(0),
            dst: SwitchId(1),
            capacity: 100,
            needs: vec![30, 50],
            min_needs: vec![30, 25],
        }];
        let mut t = ReservationTable::new(links, 2);
        assert!(t.conservative());
        t.grant_round(1.0);
        // 20 spare / 2 users = 10 extra each.
        assert_eq!(t.grant(0, 0), 40);
        assert_eq!(t.grant(0, 1), 60);
    }

    #[test]
    fn contended_grants_tighten_with_headroom() {
        let links = vec![SharedLink {
            src: SwitchId(0),
            dst: SwitchId(1),
            capacity: 100,
            needs: vec![80, 80],
            min_needs: vec![20, 20],
        }];
        let mut t = ReservationTable::new(links, 2);
        assert!(!t.conservative());
        t.grant_round(1.0);
        // Fully optimistic: each shard gets its whole static need.
        assert_eq!((t.grant(0, 0), t.grant(0, 1)), (80, 80));
        t.grant_round(0.0);
        // Fair shares are additive within capacity.
        assert!(t.grant(0, 0) + t.grant(0, 1) <= 100);
        // And never below the single-flow floor.
        assert!(t.grant(0, 0) >= 20 && t.grant(0, 1) >= 20);
    }
}
