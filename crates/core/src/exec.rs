//! **Algorithm 5** — performing the timed network update.
//!
//! Algorithm 5 turns a MUTP solution `{⟨v_i, t_j⟩}` into the concrete
//! controller procedure: sort by time, and for every time step send
//! the update messages for that step's switches, send a barrier
//! request to each, wait for all barrier replies, then sleep one time
//! unit. This module produces that plan as data
//! ([`ExecutionPlan`]); `chronus-emu` executes it against the
//! emulated data plane, and `chronus-clock` maps step boundaries onto
//! synchronized wall-clock trigger times (Time4-style).

use chronus_net::{FlowId, SwitchId, TimeStep};
use chronus_timenet::Schedule;
use std::fmt;
use std::time::Duration;

/// One batch of Algorithm 5: all updates sharing a time step, followed
/// by a barrier.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExecStep {
    /// The model time step `t_j`.
    pub time: TimeStep,
    /// Rule updates to issue at this step.
    pub updates: Vec<(FlowId, SwitchId)>,
}

impl ExecStep {
    /// Number of switches updated in this step.
    pub fn update_count(&self) -> usize {
        self.updates.len()
    }
}

/// The full timed execution plan (Algorithm 5).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ExecutionPlan {
    steps: Vec<ExecStep>,
}

impl ExecutionPlan {
    /// Builds the plan from a schedule: sorts assignments by time and
    /// groups them into steps (Algorithm 5 lines 1–3).
    pub fn from_schedule(schedule: &Schedule) -> Self {
        let steps = schedule
            .by_step()
            .into_iter()
            .map(|(time, updates)| ExecStep { time, updates })
            .collect();
        ExecutionPlan { steps }
    }

    /// The ordered steps.
    pub fn steps(&self) -> &[ExecStep] {
        &self.steps
    }

    /// Total number of rule updates in the plan.
    pub fn total_updates(&self) -> usize {
        self.steps.iter().map(ExecStep::update_count).sum()
    }

    /// Number of controller interaction rounds — the quantity the
    /// order-replacement baseline minimizes.
    pub fn round_count(&self) -> usize {
        self.steps.len()
    }

    /// The latest step in the plan (`t^ = arg max t_j`, Algorithm 5
    /// line 3), or `None` for an empty plan.
    pub fn horizon(&self) -> Option<TimeStep> {
        self.steps.last().map(|s| s.time)
    }

    /// Maps every step to a wall-clock trigger offset, with one model
    /// time unit lasting `step_duration` ("sleep for one time unit",
    /// Algorithm 5 line 9). Offsets are relative to the plan start.
    ///
    /// Steps earlier than 0 cannot occur (schedules are validated to
    /// be non-negative); the offset of step `t` is simply
    /// `t × step_duration`.
    pub fn trigger_offsets(&self, step_duration: Duration) -> Vec<(Duration, &ExecStep)> {
        self.steps
            .iter()
            .map(|s| (step_duration.saturating_mul(s.time.max(0) as u32), s))
            .collect()
    }
}

impl fmt::Display for ExecutionPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for s in &self.steps {
            write!(f, "t{}: update", s.time)?;
            for (flow, v) in &s.updates {
                write!(f, " {flow}/{v}")?;
            }
            writeln!(f, "; barrier; sleep 1 unit")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schedule {
        Schedule::from_pairs(
            FlowId(0),
            [
                (SwitchId(1), 0),
                (SwitchId(2), 1),
                (SwitchId(0), 2),
                (SwitchId(3), 2),
            ],
        )
    }

    #[test]
    fn groups_and_sorts_by_time() {
        let plan = ExecutionPlan::from_schedule(&sample());
        assert_eq!(plan.round_count(), 3);
        assert_eq!(plan.total_updates(), 4);
        assert_eq!(plan.horizon(), Some(2));
        assert_eq!(plan.steps()[0].time, 0);
        assert_eq!(plan.steps()[2].updates.len(), 2);
        let times: Vec<_> = plan.steps().iter().map(|s| s.time).collect();
        assert_eq!(times, vec![0, 1, 2]);
    }

    #[test]
    fn empty_schedule_empty_plan() {
        let plan = ExecutionPlan::from_schedule(&Schedule::new());
        assert_eq!(plan.round_count(), 0);
        assert_eq!(plan.horizon(), None);
        assert_eq!(plan.total_updates(), 0);
    }

    #[test]
    fn trigger_offsets_scale_with_step_duration() {
        let plan = ExecutionPlan::from_schedule(&sample());
        let offsets = plan.trigger_offsets(Duration::from_millis(100));
        assert_eq!(offsets.len(), 3);
        assert_eq!(offsets[0].0, Duration::ZERO);
        assert_eq!(offsets[1].0, Duration::from_millis(100));
        assert_eq!(offsets[2].0, Duration::from_millis(200));
    }

    #[test]
    fn display_matches_algorithm5_shape() {
        let plan = ExecutionPlan::from_schedule(&sample());
        let s = plan.to_string();
        assert!(s.contains("t0: update f0/s1; barrier; sleep 1 unit"));
        assert!(s.contains("t2: update f0/s0 f0/s3"));
    }
}
