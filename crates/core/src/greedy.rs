//! **Algorithm 2** — the greedy MUTP scheduler.
//!
//! At every time step the scheduler rebuilds the dependency relation
//! set (Algorithm 3) over the remaining switches, takes the head of
//! every chain, filters heads through the forwarding-loop check
//! (Algorithm 4), and commits as many of them as possible to the
//! current step — "at each time step, we plan to update as many
//! switches as possible so as to minimize the total update time"
//! (paper §IV). It then appends one future step to the time-extended
//! network and repeats.
//!
//! ## Exactness gate
//!
//! The paper's local checks (Algorithms 3 and 4) look one hop ahead;
//! deeper interactions (a redirected stream contending two hops
//! downstream, or revisiting the *second* switch of its new route) can
//! slip past them. To guarantee Theorem 3 — every emitted schedule is
//! congestion- and loop-free — each candidate commit is additionally
//! verified by the exact [`chronus_timenet::FluidSimulator`] on the
//! partial schedule. A candidate is committed only if the partial
//! schedule extended by it simulates clean; since the final schedule
//! *is* the last accepted partial schedule, the result is consistent
//! by induction. The local checks remain as cheap pre-filters (and can
//! be toggled off for the ablation benches).
//!
//! ## Prefix safety
//!
//! Because every commit must keep the *partial* schedule consistent,
//! every schedule this module emits is **prefix-safe**: interrupt the
//! migration after any subset of its steps and the data plane is
//! still congestion- and loop-free forever. That is a robustness
//! property the paper's single-flow setting gets for free, but it has
//! a price in the multi-flow generality: migrations whose
//! intermediate states are only safe *because* a later update is
//! coming (e.g. two flows swapping paths when neither target can host
//! both) are not prefix-safe and are reported infeasible here — the
//! exact solver in `chronus-opt` schedules them
//! (`examples/traffic_engineering.rs` shows the contrast).
//!
//! ## Termination and infeasibility
//!
//! After [`MutpProblem::drain_bound`] consecutive steps without a
//! commit, every transient from earlier commits has left the network
//! and the data-plane state is stationary — if no pending update is
//! safe then, it never will be, and the scheduler soundly reports
//! [`ScheduleError::Infeasible`].
// Round state is dense-indexed by item ids the scheduler minted.
#![allow(clippy::indexing_slicing, clippy::expect_used)]

use crate::deps::{dependency_set, DependencySet};
use crate::loopcheck::creates_forwarding_loop;
use crate::par::ParallelScorer;
use crate::scan::FlowScan;
use crate::{MutpProblem, ScheduleError};
use chronus_net::{FlowId, SwitchId, TimeStep, UpdateInstance};
use chronus_timenet::{
    Delta, FluidSimulator, GateBackendKind, GateStats, IncrementalSimulator, Schedule,
    SimWorkspace, SimulatorConfig, Verdict,
};
use std::collections::BTreeSet;
use std::time::Instant;

/// Tuning knobs for [`greedy_schedule_with`]; the defaults reproduce
/// the paper's Algorithm 2 plus the exactness gate.
#[derive(Clone, Copy, Debug)]
pub struct GreedyConfig {
    /// Run Algorithm 4 as a pre-filter before the exact gate
    /// (default true). Ablation: turning it off makes the exact gate
    /// do all the work — same schedules, more simulator calls.
    pub loop_precheck: bool,
    /// Restrict each step's candidates to dependency-chain heads
    /// (default true, the paper's rule). Ablation: with false, every
    /// pending switch is tried every step.
    pub heads_only: bool,
    /// Use the exact simulator gate (default true). Turning it off
    /// yields the paper's *unguarded* greedy: schedules may then
    /// violate consistency in corner cases — the ablation bench
    /// measures how often.
    pub exact_gate: bool,
    /// Back the exact gate with the O(Δ) [`IncrementalSimulator`]
    /// (default true) instead of a fresh full simulation per check.
    /// Both backends return identical verdicts — this knob exists for
    /// the differential benches and as an escape hatch.
    pub incremental_gate: bool,
    /// Below this many switches the flat-path machinery's bookkeeping
    /// costs more than it saves (BENCH_incremental.json shows a 0.58×
    /// gate *slowdown* at n=8, and BENCH_simulate.json showed a 0.90×
    /// end-to-end slowdown before the scan joined the rule), so both
    /// the gate and the candidate scan fall back: the gate to full
    /// resimulation even when [`GreedyConfig::incremental_gate`] is
    /// set, and the scan to the legacy Path walks as if
    /// [`GreedyConfig::legacy_scan`] were set. All combinations
    /// produce byte-identical schedules; `GateStats::backend` records
    /// which gate ran. Set to 0 to always take the flat paths.
    pub incremental_cutoff: usize,
    /// Use the legacy per-candidate dependency/loop scan (Path walks +
    /// hash lookups per check) instead of the flat [`FlowScan`]
    /// tables. The two are proven schedule-identical by differential
    /// proptests; the flag exists for ablation benches. Default false.
    pub legacy_scan: bool,
    /// Score each round's candidate batch on this many worker threads
    /// (default 1 = sequential). Workers hold mirror simulators and
    /// verdicts are merged deterministically in candidate order, so
    /// schedules are byte-identical at any worker count. Only the
    /// incremental gate backend parallelizes; other configurations
    /// silently run sequentially.
    pub parallel_candidates: usize,
    /// Fail immediately when Algorithm 3 reports a dependency cycle
    /// (the paper's Algorithm 2 lines 7–8). Default false: cycles are
    /// often transient (they dissolve as old flow drains), so the
    /// default keeps stepping and relies on the drain-bound horizon.
    pub fail_on_cycle: bool,
    /// Post-hoc certification by the independent static certifier
    /// (`chronus-verify`). Enabled by default: every emitted schedule
    /// is re-proved consistent by interval arithmetic, with zero
    /// shared code with the simulator gate, and the proof is attached
    /// to the outcome as a [`chronus_verify::Certificate`]. Disable
    /// for hot benchmark loops.
    pub verify: chronus_verify::VerifyConfig,
}

impl Default for GreedyConfig {
    fn default() -> Self {
        GreedyConfig {
            loop_precheck: true,
            heads_only: true,
            exact_gate: true,
            incremental_gate: true,
            incremental_cutoff: 32,
            legacy_scan: false,
            parallel_candidates: 1,
            fail_on_cycle: false,
            verify: chronus_verify::VerifyConfig::default(),
        }
    }
}

/// The two interchangeable exactness-gate backends.
enum GateBackend<'a> {
    /// Fresh full simulation per check (the pre-optimization path).
    Full {
        sim: FluidSimulator<'a>,
        ws: SimWorkspace,
    },
    /// Persistent incremental state, updated in O(affected cohorts).
    Incremental(Box<IncrementalSimulator>),
}

/// The exactness gate: owns whichever backend the config selected and
/// keeps the two behaviourally identical (same accept/reject answers,
/// same schedule side effects on rejection).
///
/// Instrumentation lives in a gate-scoped
/// [`chronus_trace::MetricsRegistry`] (`chronus_core_gate_*` names);
/// the [`GateStats`] returned by [`ExactGate::into_parts`] is a
/// derived view over it, and the per-check latency distribution is a
/// `chronus_core_gate_ns` histogram whose exact sum is the run's
/// `gate_nanos`. The registry is per-run, so concurrent plans (and
/// parallel tests) never share counters.
struct ExactGate<'a> {
    backend: GateBackend<'a>,
    /// Pooled delta scratch for `try_extend` (no per-candidate alloc).
    deltas: Vec<Delta>,
    registry: chronus_trace::MetricsRegistry,
    calls: chronus_trace::Counter,
    incremental_checks: chronus_trace::Counter,
    full_checks: chronus_trace::Counter,
    full_equivalent_cells: chronus_trace::Counter,
    /// Wall-clock nanoseconds spent inside the gate (construction,
    /// mirroring, checks) — the "exact-gate planning time" that the
    /// incremental backend exists to shrink. One observation per
    /// timed segment; the histogram sum is the exact total.
    gate_ns: chronus_trace::Histogram,
}

impl<'a> ExactGate<'a> {
    fn new(instance: &'a UpdateInstance, incremental: bool, ws: SimWorkspace) -> Self {
        let registry = chronus_trace::MetricsRegistry::new();
        let calls = registry.counter("chronus_core_gate_checks_total");
        let incremental_checks = registry.counter("chronus_core_gate_incremental_checks_total");
        let full_checks = registry.counter("chronus_core_gate_full_checks_total");
        let full_equivalent_cells =
            registry.counter("chronus_core_gate_full_equivalent_cells_total");
        let gate_ns = registry.histogram("chronus_core_gate_ns");
        // chronus-lint: allow(det-wallclock) — GateStats wall-time stamp; observability only, never feeds the schedule
        let t0 = Instant::now();
        let backend = if incremental {
            GateBackend::Incremental(Box::new(IncrementalSimulator::with_workspace(instance, ws)))
        } else {
            let sim_cfg = SimulatorConfig {
                record_loads: false,
                fail_fast: true,
                ..SimulatorConfig::default()
            };
            GateBackend::Full {
                sim: FluidSimulator::with_config(instance, sim_cfg),
                ws,
            }
        };
        gate_ns.record(t0.elapsed().as_nanos() as u64);
        ExactGate {
            backend,
            deltas: Vec::new(),
            registry,
            calls,
            incremental_checks,
            full_checks,
            full_equivalent_cells,
            gate_ns,
        }
    }

    /// Mirrors an unconditional schedule entry (the fresh pre-pass)
    /// into the incremental state without a verdict check.
    fn mirror_set(&mut self, flow: FlowId, switch: SwitchId, t: TimeStep) {
        if let GateBackend::Incremental(inc) = &mut self.backend {
            // chronus-lint: allow(det-wallclock) — GateStats wall-time stamp; observability only, never feeds the schedule
            let t0 = Instant::now();
            let d = inc.apply(flow, switch, t);
            inc.commit(d); // never undone: recycle its undo buffers
            self.gate_ns.record(t0.elapsed().as_nanos() as u64);
        }
    }

    /// One gate check of the current schedule as-is.
    fn check_current(&mut self, schedule: &Schedule) -> bool {
        // chronus-lint: allow(det-wallclock) — GateStats wall-time stamp; observability only, never feeds the schedule
        let t0 = Instant::now();
        self.calls.inc();
        let ok = match &mut self.backend {
            GateBackend::Full { sim, .. } => {
                self.full_checks.inc();
                sim.run(schedule).verdict() == Verdict::Consistent
            }
            GateBackend::Incremental(inc) => {
                self.incremental_checks.inc();
                self.full_equivalent_cells.add(inc.live_cells());
                inc.verdict() == Verdict::Consistent
            }
        };
        self.gate_ns.record(t0.elapsed().as_nanos() as u64);
        ok
    }

    /// Tentatively extends the schedule by `switches @ t` for `flow`
    /// and gate-checks it. On rejection every side effect is rolled
    /// back (schedule entries unset, incremental deltas undone); on
    /// acceptance the extension stays committed.
    fn try_extend(
        &mut self,
        schedule: &mut Schedule,
        flow: FlowId,
        switches: &[SwitchId],
        t: TimeStep,
    ) -> bool {
        // chronus-lint: allow(det-wallclock) — GateStats wall-time stamp; observability only, never feeds the schedule
        let t0 = Instant::now();
        self.calls.inc();
        for &v in switches {
            schedule.set(flow, v, t);
        }
        let ok = match &mut self.backend {
            GateBackend::Full { sim, .. } => {
                self.full_checks.inc();
                sim.run(schedule).verdict() == Verdict::Consistent
            }
            GateBackend::Incremental(inc) => {
                self.incremental_checks.inc();
                self.full_equivalent_cells.add(inc.live_cells());
                let deltas = &mut self.deltas;
                debug_assert!(deltas.is_empty());
                for &v in switches {
                    deltas.push(inc.apply(flow, v, t));
                }
                let ok = inc.verdict() == Verdict::Consistent;
                if ok {
                    for d in deltas.drain(..) {
                        inc.commit(d); // accepted: never undone
                    }
                } else {
                    while let Some(d) = deltas.pop() {
                        inc.undo(d);
                    }
                }
                ok
            }
        };
        if !ok {
            for &v in switches {
                schedule.unset(flow, v);
            }
        }
        self.gate_ns.record(t0.elapsed().as_nanos() as u64);
        ok
    }

    /// Tears the gate down into its instrumentation plus the reusable
    /// workspace buffers. The returned [`GateStats`] is derived from
    /// the gate's registry — the counters and the stats view are the
    /// same numbers by construction.
    fn into_parts(self) -> (usize, GateStats, u64, SimWorkspace) {
        let ledger_applies = self
            .registry
            .counter("chronus_core_gate_ledger_applies_total");
        let ledger_undos = self
            .registry
            .counter("chronus_core_gate_ledger_undos_total");
        let cells_touched = self
            .registry
            .counter("chronus_core_gate_cells_touched_total");
        let backend_kind = match &self.backend {
            GateBackend::Full { .. } => GateBackendKind::Full,
            GateBackend::Incremental(_) => GateBackendKind::Incremental,
        };
        let ws = match self.backend {
            GateBackend::Full { ws, .. } => ws,
            GateBackend::Incremental(inc) => {
                ledger_applies.add(inc.applies());
                ledger_undos.add(inc.undos());
                cells_touched.add(inc.cell_visits());
                inc.into_workspace()
            }
        };
        let stats = GateStats {
            backend: backend_kind,
            incremental_checks: self.incremental_checks.get(),
            full_checks: self.full_checks.get(),
            ledger_applies: ledger_applies.get(),
            ledger_undos: ledger_undos.get(),
            cells_touched: cells_touched.get(),
            full_equivalent_cells: self.full_equivalent_cells.get(),
        };
        (self.calls.get() as usize, stats, self.gate_ns.sum(), ws)
    }
}

/// Trace of one greedy step, for rendering Fig. 5-style walkthroughs.
#[derive(Clone, Debug)]
pub struct RoundTrace {
    /// The time step.
    pub time: TimeStep,
    /// Dependency chains seen at this step (per flow, flattened).
    pub chains: Vec<Vec<SwitchId>>,
    /// Updates committed at this step.
    pub committed: Vec<(FlowId, SwitchId)>,
}

/// The result of a successful greedy run.
#[derive(Clone, Debug)]
pub struct GreedyOutcome {
    /// The congestion- and loop-free schedule.
    pub schedule: Schedule,
    /// Makespan (latest update step).
    pub makespan: TimeStep,
    /// Per-step trace.
    pub rounds: Vec<RoundTrace>,
    /// Number of exact simulator calls spent (instrumentation).
    pub simulator_calls: usize,
    /// Gate-backend counters: incremental vs full checks, ledger
    /// apply/undo volume, and the cell-visit savings.
    pub gate: GateStats,
    /// Wall-clock nanoseconds spent inside the exact gate (backend
    /// construction plus every check). Zero when the gate is disabled.
    pub gate_nanos: u64,
    /// The independent certifier's proof of consistency, when
    /// certification was enabled (see [`GreedyConfig::verify`]).
    pub certificate: Option<chronus_verify::Certificate>,
    /// High-water mark, in bytes, of the run's [`SimArena`] pools
    /// (the flat backing store every simulation path draws from).
    /// Zero when the gate never ran or the workspace was not returned.
    ///
    /// [`SimArena`]: chronus_timenet::SimArena
    pub arena_bytes: u64,
    /// Worker threads that actually scored candidate waves: 1 for the
    /// sequential path (including configs where parallelism silently
    /// disengages — no incremental backend, gate disabled).
    pub parallel_candidates: usize,
}

/// Runs Algorithm 2 with default configuration.
///
/// # Errors
/// [`ScheduleError::Infeasible`] if no consistent schedule exists (or
/// none was found before the sound drain-bound horizon),
/// [`ScheduleError::Invalid`] for malformed instances.
pub fn greedy_schedule(instance: &UpdateInstance) -> Result<GreedyOutcome, ScheduleError> {
    greedy_schedule_with(instance, GreedyConfig::default())
}

/// Runs Algorithm 2 with explicit configuration.
///
/// # Errors
/// See [`greedy_schedule`].
pub fn greedy_schedule_with(
    instance: &UpdateInstance,
    config: GreedyConfig,
) -> Result<GreedyOutcome, ScheduleError> {
    let mut ws = SimWorkspace::default();
    greedy_schedule_in(instance, config, &mut ws)
}

/// Runs Algorithm 2 reusing caller-owned simulation buffers.
///
/// Long-lived callers (the engine's worker threads, the benches) pass
/// the same [`SimWorkspace`] to every run so the gate's load ledger,
/// visit stamps and hop buffers are allocated once, not per plan. The
/// workspace is returned to `workspace` on every exit path, including
/// errors.
///
/// # Errors
/// See [`greedy_schedule`].
pub fn greedy_schedule_in(
    instance: &UpdateInstance,
    config: GreedyConfig,
    workspace: &mut SimWorkspace,
) -> Result<GreedyOutcome, ScheduleError> {
    let mut span = chronus_trace::span!(
        "core.greedy",
        flows = instance.flows.len(),
        exact_gate = config.exact_gate,
        incremental = config.incremental_gate
    )
    .entered();
    // Small-n cutoff: below `incremental_cutoff` switches the full
    // resimulator is faster than incremental bookkeeping, and the two
    // backends emit byte-identical schedules — fall back silently.
    let incremental =
        config.incremental_gate && instance.network.switch_count() >= config.incremental_cutoff;
    let mut gate = if config.exact_gate {
        Some(ExactGate::new(
            instance,
            incremental,
            std::mem::take(workspace),
        ))
    } else {
        None
    };
    // Parallel candidate scoring needs mirrorable per-worker simulator
    // state, so it exists only for the incremental gate backend; other
    // configurations silently run sequentially (same schedules either
    // way — the workers only relocate rejected candidates' checks).
    let parallel = if incremental && config.exact_gate {
        config.parallel_candidates.max(1)
    } else {
        1
    };
    let result = if parallel > 1 {
        rayon::scope(|s| {
            let scorer = ParallelScorer::start(s, instance, parallel);
            let mut scorer = Some(scorer);
            let r = greedy_loop(instance, config, &mut gate, &mut scorer);
            if let Some(sc) = scorer {
                sc.shutdown();
            }
            r
        })
    } else {
        greedy_loop(instance, config, &mut gate, &mut None)
    };
    let (simulator_calls, gate_stats, gate_nanos) = match gate {
        Some(g) => {
            let (calls, stats, nanos, ws) = g.into_parts();
            *workspace = ws;
            (calls, stats, nanos)
        }
        None => (0, GateStats::default(), 0),
    };
    let arena_bytes = workspace.arena_bytes();
    if span.is_recording() {
        span.record("simulator_calls", simulator_calls);
        span.record("gate_ns", gate_nanos);
        span.record("arena_bytes", arena_bytes);
        span.record("parallel_candidates", parallel as u64);
        span.record("feasible", result.is_ok());
    }
    let (schedule, rounds) = result?;
    let makespan = schedule.makespan().unwrap_or(0);
    let certificate = crate::certify_outcome(instance, &schedule, &config.verify)?;
    span.record("makespan", makespan);
    Ok(GreedyOutcome {
        schedule,
        makespan,
        rounds,
        simulator_calls,
        gate: gate_stats,
        gate_nanos,
        certificate,
        arena_bytes,
        parallel_candidates: parallel,
    })
}

/// The Algorithm 2 main loop, generic over the gate backend.
fn greedy_loop(
    instance: &UpdateInstance,
    config: GreedyConfig,
    gate: &mut Option<ExactGate<'_>>,
    scorer: &mut Option<ParallelScorer>,
) -> Result<(Schedule, Vec<RoundTrace>), ScheduleError> {
    let problem = MutpProblem::new(instance)?;

    let mut schedule = Schedule::new();
    let mut rounds = Vec::new();

    // Flat per-flow scan tables (see `scan`): built once per run,
    // snapshotted per flow-turn. `legacy_scan` keeps the original
    // Path-walking implementations around for ablation and the
    // differential tests. Below `incremental_cutoff` switches the
    // tables cost more to build and snapshot than the direct Path
    // walks they replace (BENCH_simulate.json showed a 0.90× e2e
    // *slowdown* at n=8), so small instances take the legacy walks
    // too — the same small-n rule the gate backend applies, and the
    // two scans are proven schedule-identical by the differential
    // proptests.
    let legacy = config.legacy_scan || instance.network.switch_count() < config.incremental_cutoff;
    let mut scans: Vec<FlowScan> = if legacy {
        Vec::new()
    } else {
        instance
            .flows
            .iter()
            .map(|f| FlowScan::build(instance, f))
            .collect()
    };

    // Per-flow pending sets.
    let mut pending: Vec<BTreeSet<SwitchId>> = (0..instance.flows.len())
        .map(|fi| problem.pending(fi).clone())
        .collect();

    // Fresh switches (new rule, no old rule) carry no flow until an
    // upstream switch diverges; activating them at step 0 is always
    // safe and required before any diverger sends flow their way.
    for (fi, flow) in instance.flows.iter().enumerate() {
        for v in problem.fresh_switches(fi) {
            schedule.set(flow.id, v, 0);
            if let Some(g) = gate.as_mut() {
                g.mirror_set(flow.id, v, 0);
            }
            if let Some(sc) = scorer.as_ref() {
                sc.mirror(flow.id, v, 0);
            }
            pending[fi].remove(&v);
        }
    }
    // The fresh pre-pass must itself be clean (it is, since fresh
    // switches see no traffic yet), but verify once under the gate.
    if let Some(g) = gate.as_mut() {
        if !schedule.is_empty() && !g.check_current(&schedule) {
            return Err(ScheduleError::Infeasible {
                blocked: None,
                reason: "activating fresh final-path switches failed".into(),
            });
        }
    }

    let drain = problem.drain_bound();
    let cooldown = (drain / 4).max(1);
    let mut t: TimeStep = 0;
    let mut idle_steps: TimeStep = 0;
    // Gate failures are sticky: nothing about a rejected candidate
    // changes until either time passes (old flow drains) or another
    // switch commits, so skip re-testing it until then. A BTreeMap,
    // not a HashMap: this map is get/insert-only today, but the
    // determinism lint (det-hash) bans owned hash containers in
    // schedule-producing code so a future `.iter()` can never leak
    // process-random order into the schedule (DESIGN.md §15).
    let mut failed_at: std::collections::BTreeMap<(usize, SwitchId), TimeStep> =
        std::collections::BTreeMap::new();
    let mut last_commit_t: TimeStep = -1;
    // Candidate-build buffers, hoisted out of the round loop and
    // reused across flow-turns (cleared, never reallocated).
    let mut candidates: Vec<SwitchId> = Vec::new();
    let mut seen: BTreeSet<SwitchId> = BTreeSet::new();

    while pending.iter().any(|p| !p.is_empty()) {
        let mut trace = RoundTrace {
            time: t,
            chains: Vec::new(),
            committed: Vec::new(),
        };

        for (fi, flow) in instance.flows.iter().enumerate() {
            if pending[fi].is_empty() {
                continue;
            }
            let mut deps: DependencySet = match scans.get_mut(fi) {
                Some(scan) => {
                    // Snapshot is valid for this whole flow-turn: all
                    // commits for this flow happen after collection.
                    scan.begin_step(&schedule, &pending[fi]);
                    scan.dependency_set(&pending[fi], t)
                }
                None => dependency_set(instance, flow, &schedule, &pending[fi], t),
            };
            if config.fail_on_cycle {
                if let Some(cycle) = deps.cycle.take() {
                    return Err(ScheduleError::DependencyCycle(cycle));
                }
            }
            let scan = scans.get(fi);

            // Single-pass candidate build: cooldown and Algorithm 4
            // filters are applied as each candidate is drawn, and the
            // idle-step widening dedups through a set instead of
            // linear `Vec::contains` scans.
            let admissible = |v: SwitchId, schedule: &Schedule| {
                pending[fi].contains(&v)
                    && failed_at
                        .get(&(fi, v))
                        .is_none_or(|&ft| last_commit_t > ft || t >= ft + cooldown)
                    && !(config.loop_precheck
                        && match scan {
                            Some(s) => s.creates_loop(v, t),
                            None => creates_forwarding_loop(instance, flow, schedule, v, t),
                        })
            };
            candidates.clear();
            seen.clear();
            if config.heads_only {
                for v in deps.heads() {
                    if seen.insert(v) && admissible(v, &schedule) {
                        candidates.push(v);
                    }
                }
                // If the heads alone make no progress for a while, the
                // robust mode widens to all pending switches so the
                // exact gate gets the final say.
                if idle_steps > 0 {
                    for &v in pending[fi].iter() {
                        if seen.insert(v) && admissible(v, &schedule) {
                            candidates.push(v);
                        }
                    }
                }
            } else {
                for &v in pending[fi].iter() {
                    if admissible(v, &schedule) {
                        candidates.push(v);
                    }
                }
            }
            // Chains are moved (not cloned) into the trace; `heads()`
            // above was the last reader of `deps`.
            trace.chains.append(&mut deps.chains);
            if candidates.is_empty() {
                continue;
            }

            // Fast path: commit the whole candidate batch at once —
            // "update as many switches as possible" (§IV) — and fall
            // back to one-by-one only if the joint commit fails.
            if candidates.len() > 1 {
                if let Some(g) = gate.as_mut() {
                    if g.try_extend(&mut schedule, flow.id, &candidates, t) {
                        for &v in &candidates {
                            pending[fi].remove(&v);
                            trace.committed.push((flow.id, v));
                            if let Some(sc) = scorer.as_ref() {
                                sc.mirror(flow.id, v, t);
                            }
                        }
                        last_commit_t = t;
                        continue;
                    }
                }
            }

            if let Some(sc) = scorer.as_mut() {
                // Parallel wave scoring: all candidates share the same
                // simulator base until something commits, so one wave
                // scores the whole remaining suffix on the worker
                // mirrors; only predicted-accepts touch the main gate
                // (which stays authoritative). Merging in candidate
                // order keeps the schedule byte-identical to the
                // sequential path at any worker count.
                let g = gate
                    .as_mut()
                    .expect("parallel scoring only runs with the gate enabled");
                let mut remaining = candidates.as_slice();
                'waves: while !remaining.is_empty() {
                    let verdicts = sc.score(flow.id, remaining, t);
                    for (i, &v) in remaining.iter().enumerate() {
                        if !verdicts[i] {
                            failed_at.insert((fi, v), t);
                            continue;
                        }
                        if g.try_extend(&mut schedule, flow.id, std::slice::from_ref(&v), t) {
                            pending[fi].remove(&v);
                            trace.committed.push((flow.id, v));
                            last_commit_t = t;
                            sc.mirror(flow.id, v, t);
                            // The base changed: the rest of this wave's
                            // verdicts are dead. Re-score the suffix.
                            remaining = &remaining[i + 1..];
                            continue 'waves;
                        }
                        // Mirror/gate divergence (should not happen):
                        // the gate's answer wins, and since a rejection
                        // leaves the base unchanged, the rest of the
                        // wave is still valid.
                        debug_assert!(false, "worker mirror diverged from the main gate");
                        failed_at.insert((fi, v), t);
                    }
                    break;
                }
            } else {
                for &v in &candidates {
                    if !pending[fi].contains(&v) {
                        continue;
                    }
                    // Exact gate: commit only if the extended partial
                    // schedule simulates clean.
                    let ok = match gate.as_mut() {
                        Some(g) => {
                            g.try_extend(&mut schedule, flow.id, std::slice::from_ref(&v), t)
                        }
                        None => {
                            schedule.set(flow.id, v, t);
                            true
                        }
                    };
                    if ok {
                        pending[fi].remove(&v);
                        trace.committed.push((flow.id, v));
                        last_commit_t = t;
                    } else {
                        failed_at.insert((fi, v), t);
                    }
                }
            }
        }

        let committed = !trace.committed.is_empty();
        rounds.push(trace);
        if committed {
            idle_steps = 0;
        } else {
            idle_steps += 1;
            if idle_steps > drain {
                let blocked = pending.iter().flat_map(|p| p.iter().copied()).next();
                return Err(ScheduleError::Infeasible {
                    blocked,
                    reason: format!(
                        "no safe update for {drain} consecutive steps; \
                         data plane is stationary"
                    ),
                });
            }
        }
        t += 1;
    }

    Ok((schedule, rounds))
}

#[cfg(test)]
mod tests {
    use super::*;
    use chronus_net::{motivating_example, reversal_instance, Flow, FlowId, NetworkBuilder, Path};

    fn sid(i: u32) -> SwitchId {
        SwitchId(i)
    }

    fn assert_consistent(instance: &UpdateInstance, schedule: &Schedule) {
        let report = FluidSimulator::check(instance, schedule);
        assert_eq!(report.verdict(), Verdict::Consistent, "{report}");
        schedule
            .validate(instance)
            .expect("schedule covers instance");
    }

    #[test]
    fn solves_motivating_example() {
        let inst = motivating_example();
        let out = greedy_schedule(&inst).expect("feasible");
        assert_consistent(&inst, &out.schedule);
        // Only v2 can move at t0 (paper Fig. 5); everything completes
        // within a handful of steps.
        assert_eq!(
            out.rounds[0].committed,
            vec![(FlowId(0), sid(1))],
            "only v2 updates at t0"
        );
        assert!(out.makespan <= 6, "makespan {} too large", out.makespan);
        assert!(out.simulator_calls > 0);
    }

    #[test]
    fn solves_shared_tail_with_slow_shortcut() {
        let mut b = NetworkBuilder::with_switches(4);
        b.add_link(sid(0), sid(1), 1, 1).unwrap();
        b.add_link(sid(1), sid(2), 1, 1).unwrap();
        b.add_link(sid(2), sid(3), 1, 1).unwrap();
        b.add_link(sid(0), sid(2), 1, 3).unwrap();
        let net = b.build();
        let flow = Flow::new(
            FlowId(0),
            1,
            Path::new(vec![sid(0), sid(1), sid(2), sid(3)]),
            Path::new(vec![sid(0), sid(2), sid(3)]),
        )
        .unwrap();
        let inst = UpdateInstance::single(net, flow).unwrap();
        let out = greedy_schedule(&inst).expect("slow shortcut is feasible");
        assert_consistent(&inst, &out.schedule);
        assert_eq!(out.makespan, 0, "single immediate update suffices");
    }

    #[test]
    fn reports_infeasible_fast_shortcut() {
        let mut b = NetworkBuilder::with_switches(4);
        b.add_link(sid(0), sid(1), 1, 1).unwrap();
        b.add_link(sid(1), sid(2), 1, 1).unwrap();
        b.add_link(sid(2), sid(3), 1, 1).unwrap();
        b.add_link(sid(0), sid(2), 1, 1).unwrap();
        let net = b.build();
        let flow = Flow::new(
            FlowId(0),
            1,
            Path::new(vec![sid(0), sid(1), sid(2), sid(3)]),
            Path::new(vec![sid(0), sid(2), sid(3)]),
        )
        .unwrap();
        let inst = UpdateInstance::single(net, flow).unwrap();
        let err = greedy_schedule(&inst).unwrap_err();
        assert!(matches!(err, ScheduleError::Infeasible { .. }), "{err}");
    }

    #[test]
    fn solves_reversal_instances() {
        for n in 4..9 {
            let inst = reversal_instance(n, 2, 1); // capacity 2 ≥ 2d: no congestion risk
            let out = greedy_schedule(&inst)
                .unwrap_or_else(|e| panic!("reversal n={n} should be feasible: {e}"));
            assert_consistent(&inst, &out.schedule);
        }
    }

    #[test]
    fn fresh_switches_scheduled_at_zero() {
        let mut b = NetworkBuilder::with_switches(4);
        b.add_link(sid(0), sid(1), 5, 1).unwrap();
        b.add_link(sid(1), sid(3), 5, 1).unwrap();
        b.add_link(sid(0), sid(2), 5, 1).unwrap();
        b.add_link(sid(2), sid(3), 5, 1).unwrap();
        let flow = Flow::new(
            FlowId(0),
            1,
            Path::new(vec![sid(0), sid(1), sid(3)]),
            Path::new(vec![sid(0), sid(2), sid(3)]),
        )
        .unwrap();
        let inst = UpdateInstance::single(b.build(), flow).unwrap();
        let out = greedy_schedule(&inst).expect("diamond is feasible");
        assert_consistent(&inst, &out.schedule);
        assert_eq!(out.schedule.get(FlowId(0), sid(2)), Some(0));
    }

    #[test]
    fn ablation_configs_still_produce_valid_schedules_here() {
        let inst = motivating_example();
        for cfg in [
            GreedyConfig {
                loop_precheck: false,
                ..Default::default()
            },
            GreedyConfig {
                heads_only: false,
                ..Default::default()
            },
        ] {
            let out = greedy_schedule_with(&inst, cfg).expect("feasible");
            assert_consistent(&inst, &out.schedule);
        }
    }

    #[test]
    fn unguarded_mode_matches_paper_checks_on_example() {
        // Without the exact gate, Algorithms 3+4 alone must still
        // handle the paper's own example correctly.
        let inst = motivating_example();
        let cfg = GreedyConfig {
            exact_gate: false,
            ..Default::default()
        };
        let out = greedy_schedule_with(&inst, cfg).expect("feasible");
        let report = FluidSimulator::check(&inst, &out.schedule);
        assert_eq!(report.verdict(), Verdict::Consistent, "{report}");
        assert_eq!(out.simulator_calls, 0);
    }

    #[test]
    fn fail_on_cycle_reproduces_paper_behaviour() {
        // The motivating example has a transient v1/v3 cycle at t0;
        // strict paper mode bails out, robust mode solves it.
        let inst = motivating_example();
        let cfg = GreedyConfig {
            fail_on_cycle: true,
            ..Default::default()
        };
        let err = greedy_schedule_with(&inst, cfg).unwrap_err();
        assert!(matches!(err, ScheduleError::DependencyCycle(_)));
    }

    #[test]
    fn noop_instance_needs_empty_schedule() {
        let mut b = NetworkBuilder::with_switches(3);
        b.add_link(sid(0), sid(1), 1, 1).unwrap();
        b.add_link(sid(1), sid(2), 1, 1).unwrap();
        let p = Path::new(vec![sid(0), sid(1), sid(2)]);
        let flow = Flow::new(FlowId(0), 1, p.clone(), p).unwrap();
        let inst = UpdateInstance::single(b.build(), flow).unwrap();
        let out = greedy_schedule(&inst).expect("noop feasible");
        assert!(out.schedule.is_empty());
        assert_eq!(out.makespan, 0);
    }

    #[test]
    fn two_flow_joint_scheduling() {
        // Two flows whose new paths share a capacity-1 link: the gate
        // must serialize them in time.
        let mut b = NetworkBuilder::with_switches(5);
        b.add_link(sid(0), sid(1), 1, 1).unwrap(); // f0 old
        b.add_link(sid(2), sid(1), 1, 1).unwrap(); // f1 old
        b.add_link(sid(0), sid(3), 2, 1).unwrap();
        b.add_link(sid(2), sid(3), 2, 2).unwrap();
        b.add_link(sid(3), sid(1), 1, 1).unwrap(); // shared new tail
        let net = b.build();
        let f0 = Flow::new(
            FlowId(0),
            1,
            Path::new(vec![sid(0), sid(1)]),
            Path::new(vec![sid(0), sid(3), sid(1)]),
        )
        .unwrap();
        let f1 = Flow::new(
            FlowId(1),
            1,
            Path::new(vec![sid(2), sid(1)]),
            Path::new(vec![sid(2), sid(3), sid(1)]),
        )
        .unwrap();
        let inst = UpdateInstance::new(net, vec![f0, f1]).unwrap();
        // Both flows permanently need the shared tail: total demand 2
        // on a capacity-1 link — the *final* state itself is congested,
        // so this must be infeasible.
        let err = greedy_schedule(&inst).unwrap_err();
        assert!(matches!(err, ScheduleError::Infeasible { .. }));
    }

    #[test]
    fn two_flow_feasible_when_capacity_allows() {
        let mut b = NetworkBuilder::with_switches(5);
        b.add_link(sid(0), sid(1), 1, 1).unwrap();
        b.add_link(sid(2), sid(1), 1, 1).unwrap();
        b.add_link(sid(0), sid(3), 2, 1).unwrap();
        b.add_link(sid(2), sid(3), 2, 2).unwrap();
        b.add_link(sid(3), sid(1), 2, 1).unwrap(); // capacity 2 now
        let net = b.build();
        let f0 = Flow::new(
            FlowId(0),
            1,
            Path::new(vec![sid(0), sid(1)]),
            Path::new(vec![sid(0), sid(3), sid(1)]),
        )
        .unwrap();
        let f1 = Flow::new(
            FlowId(1),
            1,
            Path::new(vec![sid(2), sid(1)]),
            Path::new(vec![sid(2), sid(3), sid(1)]),
        )
        .unwrap();
        let inst = UpdateInstance::new(net, vec![f0, f1]).unwrap();
        let out = greedy_schedule(&inst).expect("capacity 2 admits both");
        assert_consistent(&inst, &out.schedule);
    }
}
