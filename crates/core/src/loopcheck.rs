//! **Algorithm 4** — checking for forwarding loops.
//!
//! The paper's Algorithm 4 decides whether updating switch `v` at time
//! `t` would violate loop-freedom (Definition 2): it takes `v`'s dashed
//! (new) out-edge to `v'` and then walks *backward* along incoming
//! solid (old) links in the time-extended network; if the walk reaches
//! `v'` before reaching the source, then a cohort that is about to be
//! redirected at `v` has already passed through `v'` on its way in —
//! redirecting it back to `v'` makes it visit `v'` twice.
//!
//! The backward walk is time-respecting: a solid in-link from `u`
//! exists only while `u` still applies its old rule at the relevant
//! departure step, so updates already committed in the partial
//! schedule naturally prune the walk (paper Fig. 2: "we do not draw
//! the links in the time-extended network once the update is done").
//!
//! The check is exact for revisits of `v`'s immediate new next-hop
//! (the only case the paper's pseudocode covers); deeper revisits —
//! where the *second* or later hop of the new route lies on the
//! cohort's history — are caught by the exact simulator gate in
//! [`crate::greedy`].
// `expect` unwraps the topological-order invariant the checker
// itself maintains.
#![allow(clippy::expect_used)]

use chronus_net::{Flow, SwitchId, TimeStep, UpdateInstance};
use chronus_timenet::Schedule;

/// Would updating `v` (for `flow`) at step `t` create a forwarding
/// loop, given the updates already committed in `schedule`?
///
/// Implements the paper's Algorithm 4: starting from `v` at step `t`,
/// walk backward along still-active old-path in-links; report a loop
/// if `v`'s new next-hop `v'` appears on that upstream chain before
/// the source is reached.
pub fn creates_forwarding_loop(
    instance: &UpdateInstance,
    flow: &Flow,
    schedule: &Schedule,
    v: SwitchId,
    t: TimeStep,
) -> bool {
    let net = &instance.network;
    let Some(v_prime) = flow.new_rule(v) else {
        // No dashed out-edge at v: the "update" redirects nothing.
        return false;
    };

    let mut cur = v;
    let mut time = t;
    // The old path is simple, so the walk terminates at the source in
    // at most |p_init| steps.
    while let Some(prev) = flow.initial.prev_hop(cur) {
        let sigma = net
            .delay(prev, cur)
            .expect("old path links exist in a validated instance") as TimeStep;
        let departure = time - sigma;
        // The solid in-link from `prev` exists at `departure` only if
        // `prev` still applied its old rule then.
        let diverts = flow.new_rule(prev).is_some() && flow.new_rule(prev) != flow.old_rule(prev);
        if diverts {
            if let Some(t_prev) = schedule.get(flow.id, prev) {
                if t_prev <= departure {
                    // Old flow through this in-link already stopped:
                    // nothing upstream can reach v the old way anymore.
                    return false;
                }
            }
        }
        if prev == v_prime {
            return true;
        }
        cur = prev;
        time = departure;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use chronus_net::{motivating_example, FlowId};

    fn sid(i: u32) -> SwitchId {
        SwitchId(i)
    }

    #[test]
    fn updating_v4_before_v3_loops() {
        // In the motivating example (old v1→v2→v3→v4→v5→v6, new
        // v1→v4→v3→v2→v6; 0-indexed ids one less) updating v4 (id 3,
        // new rule → v3) while old flow still streams v3→v4 bounces a
        // cohort that already visited v3 back to v3.
        let inst = motivating_example();
        let flow = inst.flow().clone();
        let empty = Schedule::new();
        assert!(creates_forwarding_loop(&inst, &flow, &empty, sid(3), 0));
    }

    #[test]
    fn updating_v2_is_always_loop_free() {
        // v2 (id 1) has new rule → v6 (the destination), which never
        // lies on v2's old upstream chain (v1 only).
        let inst = motivating_example();
        let flow = inst.flow().clone();
        let empty = Schedule::new();
        for t in 0..5 {
            assert!(!creates_forwarding_loop(&inst, &flow, &empty, sid(1), t));
        }
    }

    #[test]
    fn updating_v3_before_v2_loops() {
        // v3 (id 2) has new rule → v2; old flow arriving v3 came
        // through v2 — redirecting it revisits v2.
        let inst = motivating_example();
        let flow = inst.flow().clone();
        let empty = Schedule::new();
        assert!(creates_forwarding_loop(&inst, &flow, &empty, sid(2), 0));
        // Once v2 is committed at step 0, cohorts arriving at v3 at
        // step ≥ 1 departed v2 at step ≥ 0 — but those were already
        // diverted at v2, so no old in-link exists: safe.
        let mut s = Schedule::new();
        s.set(FlowId(0), sid(1), 0);
        assert!(!creates_forwarding_loop(&inst, &flow, &s, sid(2), 1));
    }

    #[test]
    fn respects_scheduled_times_not_just_membership() {
        // v2 committed at step 5: a cohort redirected at v3 at step 1
        // departed v2 at step 0 < 5 via the old rule — loop.
        let inst = motivating_example();
        let flow = inst.flow().clone();
        let mut s = Schedule::new();
        s.set(FlowId(0), sid(1), 5);
        assert!(creates_forwarding_loop(&inst, &flow, &s, sid(2), 1));
        // A redirect at step 5 still catches the cohort that departed
        // v2 at step 4 on the old rule: it revisits v2 (which by then
        // forwards to v6, but Definition 2 counts the revisit itself).
        assert!(creates_forwarding_loop(&inst, &flow, &s, sid(2), 5));
        // At step 6 the upstream old in-link from v2 is gone: safe.
        assert!(!creates_forwarding_loop(&inst, &flow, &s, sid(2), 6));
    }

    #[test]
    fn switch_without_new_rule_never_loops() {
        let inst = motivating_example();
        let flow = inst.flow().clone();
        let empty = Schedule::new();
        // v5 (id 4) is not on the final path: no dashed edge, no loop.
        assert!(!creates_forwarding_loop(&inst, &flow, &empty, sid(4), 0));
    }

    #[test]
    fn source_update_is_loop_free_here() {
        // v1's new rule → v4; v4 is downstream of v1 on the old path,
        // never on v1's (empty) upstream chain.
        let inst = motivating_example();
        let flow = inst.flow().clone();
        let empty = Schedule::new();
        assert!(!creates_forwarding_loop(&inst, &flow, &empty, sid(0), 0));
    }
}
