//! Flat candidate scan: dense per-flow twins of Algorithms 3 and 4.
//!
//! The legacy scan path re-derives everything per candidate from
//! [`chronus_net::Path`] primitives: `position` is a linear hop scan,
//! `prefix_delay` a per-edge hash lookup walk, and both run inside
//! [`crate::deps::last_old_arrival`], which itself runs once per
//! pending switch per step — O(steps × pending × diverters × path)
//! for the greedy loop overall, and profiling shows it dominating
//! end-to-end wall clock once the exact gate went incremental.
//!
//! [`FlowScan`] flattens all of it. At construction (once per greedy
//! run) every path-derived quantity becomes a dense array indexed by
//! switch id or by old-path position. At the start of each flow's
//! turn in a step ([`FlowScan::begin_step`], O(path · log)), the
//! schedule-dependent state is snapshotted:
//!
//! - `divert_bound[p] = t_p − φ_prefix(p)` for each diverting
//!   scheduled position, folded into an *exclusive prefix minimum*
//!   `ex_min`, so [`last_old_arrival`](crate::deps::last_old_arrival)
//!   becomes one O(1) array read;
//! - scheduled times by position, giving Algorithm 4's backward walk
//!   O(1) per hop with zero hash lookups;
//! - the sorted list of pending old-path positions, giving the
//!   "nearest pending upstream switch" a reverse scan over exactly
//!   the pending positions instead of a filter over the whole prefix.
//!
//! The snapshot is sound for the whole candidate-collection phase of
//! one flow's turn because the greedy loop commits candidates only
//! *after* collection: `dependency_set` and every
//! `creates_forwarding_loop` pre-check read the same schedule state,
//! exactly as the legacy path does.
//!
//! Edge discovery iterates pending switches in the same ascending
//! order and pushes the same edges as [`crate::deps::dependency_set`],
//! then reuses the identical [`crate::deps::build_set`] merge — so
//! chains, heads and cycle witnesses are byte-identical, which the
//! differential proptests in `tests/scan_props.rs` pin across random
//! instances.
// Dense tables indexed by ids this module mints from validated paths.
#![allow(clippy::indexing_slicing, clippy::expect_used)]

use crate::deps::{build_set, ArrivalBound, DependencySet};
use chronus_net::{Flow, SwitchId, TimeStep, UpdateInstance};
use chronus_timenet::Schedule;
use std::collections::BTreeSet;

/// Sentinel for "not on the old path" in [`FlowScan::pos_of`].
const NO_POS: u32 = u32::MAX;

/// Dense per-flow scan tables (see the module docs).
#[derive(Debug)]
pub(crate) struct FlowScan {
    flow_id: chronus_net::FlowId,
    source: SwitchId,
    destination: SwitchId,
    /// Old-path hops in order.
    old_hops: Vec<SwitchId>,
    /// `prefix[p]` = old-path delay from the source to `old_hops[p]`.
    prefix: Vec<TimeStep>,
    /// `link_delay[p]` = delay of the old link `old_hops[p] → [p+1]`.
    link_delay: Vec<TimeStep>,
    /// Does `old_hops[p]` divert (has a new rule ≠ its old rule)?
    diverts: Vec<bool>,
    /// Switch id → old-path position ([`NO_POS`] when absent).
    pos_of: Vec<u32>,
    /// Switch id → the flow's new rule target.
    new_next: Vec<Option<SwitchId>>,
    /// `σ(v, new_next(v))` with the legacy `unwrap_or(1)` fallback
    /// (arrival-time computation in Algorithm 3).
    sigma_new: Vec<TimeStep>,
    /// Same delay with the legacy `unwrap_or(0)` fallback (the
    /// self-cycle φ_new comparison). The two defaults differ in the
    /// original code and must be replicated independently.
    phi_new0: Vec<TimeStep>,
    /// Switch id → "its old outgoing link exists and cannot hold old
    /// and new stream simultaneously" (`C < 2d`); folds the three
    /// `continue` guards of Algorithm 3 into one flag.
    contended: Vec<bool>,

    // ---- Per-step snapshot (rebuilt by `begin_step`) ----
    /// Scheduled update time by old-path position, diverting positions
    /// only (the only ones either algorithm consults).
    sched_pos: Vec<Option<TimeStep>>,
    /// Exclusive prefix minimum of `t_p − prefix[p]` over diverting
    /// scheduled positions `< p` ([`TimeStep::MAX`] = unbounded).
    ex_min: Vec<TimeStep>,
    /// Ascending old-path positions of currently pending switches.
    pending_pos: Vec<u32>,
}

impl FlowScan {
    /// Builds the dense tables of `flow` (once per greedy run).
    pub fn build(instance: &UpdateInstance, flow: &Flow) -> Self {
        let net = &instance.network;
        let old_hops: Vec<SwitchId> = flow.initial.hops().to_vec();
        let n = old_hops.len();
        let max_id = old_hops
            .iter()
            .chain(flow.fin.hops())
            .map(|s| s.index() + 1)
            .max()
            .unwrap_or(0);
        let width = net.switch_count().max(max_id);

        let mut prefix = vec![0; n];
        let mut link_delay = vec![0; n.saturating_sub(1)];
        for p in 0..n.saturating_sub(1) {
            let d = net
                .delay(old_hops[p], old_hops[p + 1])
                .expect("validated old path links exist") as TimeStep;
            link_delay[p] = d;
            prefix[p + 1] = prefix[p] + d;
        }

        let mut pos_of = vec![NO_POS; width];
        for (p, &h) in old_hops.iter().enumerate() {
            pos_of[h.index()] = p as u32;
        }

        let mut new_next = vec![None; width];
        for w in flow.fin.hops().windows(2) {
            new_next[w[0].index()] = Some(w[1]);
        }
        let mut old_next = vec![None; width];
        for w in old_hops.windows(2) {
            old_next[w[0].index()] = Some(w[1]);
        }

        let diverts = old_hops
            .iter()
            .map(|&h| {
                let nn = new_next[h.index()];
                nn.is_some() && nn != old_next[h.index()]
            })
            .collect();

        let mut sigma_new = vec![0; width];
        let mut phi_new0 = vec![0; width];
        let mut contended = vec![false; width];
        for v in 0..width {
            if let Some(next) = new_next[v] {
                let d = net.delay(SwitchId(v as u32), next);
                sigma_new[v] = d.unwrap_or(1) as TimeStep;
                phi_new0[v] = d.unwrap_or(0) as TimeStep;
            }
            if let Some(vt) = old_next[v] {
                if let Some(c) = net.capacity(SwitchId(v as u32), vt) {
                    contended[v] = c < 2 * flow.demand;
                }
            }
        }

        FlowScan {
            flow_id: flow.id,
            source: flow.source(),
            destination: flow.destination(),
            prefix,
            link_delay,
            diverts,
            pos_of,
            new_next,
            sigma_new,
            phi_new0,
            contended,
            sched_pos: vec![None; n],
            ex_min: vec![TimeStep::MAX; n],
            pending_pos: Vec::new(),
            old_hops,
        }
    }

    /// Snapshots the schedule-dependent state for one flow-turn of one
    /// greedy step. Valid until the first commit for this flow — i.e.
    /// for the whole candidate-collection phase, matching the window
    /// in which the legacy path reads the same schedule.
    pub fn begin_step(&mut self, schedule: &Schedule, pending: &BTreeSet<SwitchId>) {
        let n = self.old_hops.len();
        let mut run_min = TimeStep::MAX;
        for p in 0..n {
            self.ex_min[p] = run_min;
            self.sched_pos[p] = if self.diverts[p] {
                schedule.get(self.flow_id, self.old_hops[p])
            } else {
                None
            };
            if let Some(tp) = self.sched_pos[p] {
                run_min = run_min.min(tp - self.prefix[p]);
            }
        }
        self.pending_pos.clear();
        for &v in pending {
            let p = self.pos_of.get(v.index()).copied().unwrap_or(NO_POS);
            if p != NO_POS {
                self.pending_pos.push(p);
            }
        }
        self.pending_pos.sort_unstable();
    }

    /// O(1) twin of [`crate::deps::last_old_arrival`] over the current
    /// snapshot.
    fn arrival_bound(&self, v: SwitchId) -> ArrivalBound {
        let p = self.pos_of.get(v.index()).copied().unwrap_or(NO_POS);
        if p == NO_POS || p == 0 {
            return ArrivalBound::Never;
        }
        let m = self.ex_min[p as usize];
        if m == TimeStep::MAX {
            ArrivalBound::Forever
        } else {
            ArrivalBound::Until(m - 1 + self.prefix[p as usize])
        }
    }

    /// Flat twin of [`crate::deps::dependency_set`]: same pending
    /// iteration order, same guards, same edges — then the shared
    /// [`build_set`] merge.
    pub fn dependency_set(&self, pending: &BTreeSet<SwitchId>, t: TimeStep) -> DependencySet {
        // chronus-lint: allow(hot-alloc) — edge list feeds build_set, which returns a freshly built DependencySet by contract
        let mut edges: Vec<(SwitchId, SwitchId)> = Vec::new();
        for &vi in pending {
            let redirect_active = vi == self.source || self.arrival_bound(vi).still_arrives_at(t);
            if !redirect_active {
                continue;
            }
            let Some(v) = self.new_next.get(vi.index()).copied().flatten() else {
                continue;
            };
            if v == self.destination {
                continue;
            }
            // `contended` folds the old-rule / link-exists / capacity
            // guards into one precomputed flag.
            if !self.contended[v.index()] {
                continue;
            }
            let arrival = t + self.sigma_new[vi.index()];
            if !self.arrival_bound(v).still_arrives_at(arrival) {
                continue;
            }
            let pos_v = self.pos_of[v.index()];
            debug_assert_ne!(pos_v, NO_POS, "v has an old rule, so it is on the old path");
            // Nearest pending switch strictly upstream of v that is not
            // vi itself; scans only pending positions, newest first.
            let cut = self.pending_pos.partition_point(|&q| q < pos_v);
            let mut nearest = None;
            let mut saw_vi = false;
            for &q in self.pending_pos[..cut].iter().rev() {
                let u = self.old_hops[q as usize];
                if u == vi {
                    saw_vi = true;
                    continue;
                }
                nearest = Some(u);
                break;
            }
            if let Some(u) = nearest {
                edges.push((u, vi));
            } else if saw_vi {
                let phi_new = self.phi_new0[vi.index()];
                let pos_vi = self.pos_of.get(vi.index()).copied().unwrap_or(NO_POS);
                let phi_old = if pos_vi != NO_POS && pos_vi < pos_v {
                    self.prefix[pos_v as usize] - self.prefix[pos_vi as usize]
                } else {
                    TimeStep::MAX
                };
                if phi_new < phi_old {
                    edges.push((vi, vi));
                }
            }
        }
        build_set(edges, pending)
    }

    /// Flat twin of [`crate::loopcheck::creates_forwarding_loop`] over
    /// the current snapshot: the backward time-respecting walk with
    /// positions and precomputed link delays instead of `prev_hop` /
    /// `net.delay` per hop.
    pub fn creates_loop(&self, v: SwitchId, t: TimeStep) -> bool {
        let Some(v_prime) = self.new_next.get(v.index()).copied().flatten() else {
            return false;
        };
        let mut p = match self.pos_of.get(v.index()).copied() {
            Some(p) if p != NO_POS => p as usize,
            // Not on the old path: `prev_hop` would be None right away.
            _ => return false,
        };
        let mut time = t;
        while p > 0 {
            let prev_pos = p - 1;
            let departure = time - self.link_delay[prev_pos];
            if self.diverts[prev_pos] {
                if let Some(t_prev) = self.sched_pos[prev_pos] {
                    if t_prev <= departure {
                        return false;
                    }
                }
            }
            if self.old_hops[prev_pos] == v_prime {
                return true;
            }
            p = prev_pos;
            time = departure;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deps::dependency_set;
    use crate::loopcheck::creates_forwarding_loop;
    use chronus_net::{motivating_example, FlowId};

    /// The flat scan must agree with the legacy path on the paper's
    /// own example across steps and partial schedules (the broad
    /// random-instance differential lives in `tests/scan_props.rs`).
    #[test]
    fn flat_scan_matches_legacy_on_motivating_example() {
        let inst = motivating_example();
        let flow = inst.flow().clone();
        let mut scan = FlowScan::build(&inst, &flow);
        let mut pending = flow.switches_to_update();
        let mut schedule = Schedule::new();

        for (commit, at) in [(None, 0), (Some((1u32, 0)), 1), (Some((3u32, 4)), 6)] {
            if let Some((v, tc)) = commit {
                let v = SwitchId(v);
                schedule.set(FlowId(0), v, tc);
                pending.remove(&v);
            }
            scan.begin_step(&schedule, &pending);
            let legacy = dependency_set(&inst, &flow, &schedule, &pending, at);
            let flat = scan.dependency_set(&pending, at);
            assert_eq!(legacy.edges, flat.edges, "edges diverged at t={at}");
            assert_eq!(legacy.chains, flat.chains, "chains diverged at t={at}");
            assert_eq!(legacy.cycle, flat.cycle, "cycle diverged at t={at}");
            for &v in &pending {
                for t in at..at + 4 {
                    assert_eq!(
                        creates_forwarding_loop(&inst, &flow, &schedule, v, t),
                        scan.creates_loop(v, t),
                        "loop check diverged for {v:?} at t={t}"
                    );
                }
            }
        }
    }
}
