//! **Algorithm 3** — the dependency relation set `O_t`.
//!
//! For every pending switch `v_i`, Algorithm 3 asks: if `v_i` were
//! updated at the current step `t`, the redirected flow would arrive at
//! `v = v_i`'s new next-hop; if old flow is *still* streaming through
//! `v` onto its old outgoing link `⟨v, ṽ⟩` at that moment, and the
//! link cannot hold both streams (`C(v, ṽ) < 2d`), then some upstream
//! switch must be updated first to cut the old stream — a dependency
//! `(u → v_i)`. Dependencies sharing switches merge into chains (the
//! paper merges `{v1 → v2}` and `{v2 → v3}` into `{v1 → v2 → v3}`);
//! only chain heads may be updated at `t`. A cycle in the relation
//! means no congestion-free order exists at this step.
//!
//! Whether old flow still reaches `v` is read off the time-extended
//! network: a cohort emitted at `τ` follows the old path into `v` iff
//! it passes every upstream old-path switch before that switch's
//! update time. [`last_old_arrival`] computes the resulting cutoff
//! exactly, respecting the partial schedule.
// Dependency analysis walks dense per-switch tables indexed by ids
// minted from the instance's own path hops; `expect` unwraps
// invariants the builder just established.
#![allow(clippy::indexing_slicing, clippy::expect_used)]

use chronus_net::{Flow, SwitchId, TimeStep, UpdateInstance};
use chronus_timenet::Schedule;
use std::collections::{BTreeMap, BTreeSet};

/// Until when does old-path flow keep *arriving at* switch `v`?
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ArrivalBound {
    /// Old flow never crosses `v` (it is not an interior old-path hop).
    Never,
    /// Old flow arrives at `v` at every step `≤ t`, none after.
    Until(TimeStep),
    /// No upstream diversion is scheduled: old flow arrives forever.
    Forever,
}

impl ArrivalBound {
    /// `true` if old flow still arrives at step `t` or later.
    pub fn still_arrives_at(self, t: TimeStep) -> bool {
        match self {
            ArrivalBound::Never => false,
            ArrivalBound::Until(last) => t <= last,
            ArrivalBound::Forever => true,
        }
    }
}

/// Computes the last step at which old-path flow arrives at `v`,
/// given the updates committed in `schedule`.
///
/// A cohort emitted at `τ` reaches `v` along the old path iff for
/// every upstream old-path switch `u` (source included) with a
/// *diverting* scheduled update at `t_u`, the cohort passes `u` before
/// `t_u`: `τ + φ_prefix(u) < t_u`. The cutoff emission is therefore
/// `min_u (t_u − φ_prefix(u)) − 1`, and the last arrival at `v` is the
/// cutoff plus `φ_prefix(v)`.
pub fn last_old_arrival(
    instance: &UpdateInstance,
    flow: &Flow,
    schedule: &Schedule,
    v: SwitchId,
) -> ArrivalBound {
    let net = &instance.network;
    let Some(pos) = flow.initial.position(v) else {
        return ArrivalBound::Never;
    };
    if pos == 0 {
        // `v` is the source: flow originates here rather than arriving.
        return ArrivalBound::Never;
    }
    let prefix_v = flow
        .initial
        .prefix_delay(net, v)
        .expect("validated old path has prefix delays") as TimeStep;

    let mut cutoff: Option<TimeStep> = None; // min over upstream diverters
    for &u in &flow.initial.hops()[..pos] {
        // Only switches whose scheduled update actually changes their
        // forwarding divert the stream.
        let diverts = flow.new_rule(u).is_some() && flow.new_rule(u) != flow.old_rule(u);
        if !diverts {
            continue;
        }
        if let Some(t_u) = schedule.get(flow.id, u) {
            let prefix_u =
                flow.initial
                    .prefix_delay(net, u)
                    .expect("validated old path has prefix delays") as TimeStep;
            let bound = t_u - prefix_u;
            cutoff = Some(cutoff.map_or(bound, |c| c.min(bound)));
        }
    }
    match cutoff {
        None => ArrivalBound::Forever,
        Some(c) => ArrivalBound::Until(c - 1 + prefix_v),
    }
}

/// The dependency relation set `O_t` of Algorithm 3.
#[derive(Clone, Debug, Default)]
pub struct DependencySet {
    /// Raw dependency edges `(u, w)`: `u` must update before `w`.
    pub edges: Vec<(SwitchId, SwitchId)>,
    /// Merged chains/components, each topologically ordered; pending
    /// switches without constraints appear as singleton chains (the
    /// paper's `{(v4)}`).
    pub chains: Vec<Vec<SwitchId>>,
    /// A witness cycle if the relation is cyclic (update order
    /// impossible at this step).
    pub cycle: Option<Vec<SwitchId>>,
}

impl DependencySet {
    /// `true` if the relation contains a cycle (Algorithm 2 line 7).
    pub fn has_cycle(&self) -> bool {
        self.cycle.is_some()
    }

    /// The updatable switches at this step: the head (first element)
    /// of every acyclic chain — "Pick the first element v̂ from o"
    /// (Algorithm 2 line 10). For a component that is a DAG rather
    /// than a pure chain, every zero-in-degree switch is a head.
    pub fn heads(&self) -> Vec<SwitchId> {
        let blocked: BTreeSet<SwitchId> = self.edges.iter().map(|&(_, w)| w).collect();
        let mut out = Vec::new();
        for chain in &self.chains {
            for &v in chain {
                if !blocked.contains(&v) {
                    out.push(v);
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }
}

/// Builds the dependency relation set for `flow` at step `t`
/// (Algorithm 3), given committed updates in `schedule` and the
/// not-yet-updated switches in `pending`.
pub fn dependency_set(
    instance: &UpdateInstance,
    flow: &Flow,
    schedule: &Schedule,
    pending: &BTreeSet<SwitchId>,
    t: TimeStep,
) -> DependencySet {
    let net = &instance.network;
    let mut edges: Vec<(SwitchId, SwitchId)> = Vec::new();

    for &vi in pending {
        // Updating v_i only matters while flow still reaches v_i: the
        // source always emits, any other switch is relevant only while
        // old flow keeps arriving (cohorts arriving from step t on are
        // the ones the update redirects).
        let redirect_active = vi == flow.source()
            || last_old_arrival(instance, flow, schedule, vi).still_arrives_at(t);
        if !redirect_active {
            continue;
        }
        let Some(v) = flow.new_rule(vi) else {
            continue; // no dashed out-edge: nothing to redirect
        };
        if v == flow.destination() {
            continue; // flow terminates at v: no downstream contention
        }
        let Some(v_tilde) = flow.old_rule(v) else {
            continue; // v has no old outgoing link: no old stream at v
        };
        let Some(capacity) = net.capacity(v, v_tilde) else {
            continue;
        };
        if capacity >= 2 * flow.demand {
            continue; // link can hold old and new stream simultaneously
        }
        // When would the redirected flow arrive at v?
        let sigma = net.delay(vi, v).unwrap_or(1) as TimeStep;
        let arrival = t + sigma;
        // Is old flow still streaming through v at that point?
        if !last_old_arrival(instance, flow, schedule, v).still_arrives_at(arrival) {
            continue; // already drained: no dependency
        }
        // Some pending switch upstream of v on the old path must cut
        // the stream first. The nearest pending upstream switch is the
        // dependency head; if the only candidate is v_i itself, the
        // relation becomes the self-cycle (v_i → v_i), signalling that
        // no ordering fixes the contention at this step.
        let pos_v = flow
            .initial
            .position(v)
            .expect("v has an old rule, so it lies on the old path");
        let upstream_pending: Vec<SwitchId> = flow.initial.hops()[..pos_v]
            .iter()
            .copied()
            .filter(|u| pending.contains(u))
            .collect();
        if let Some(&nearest) = upstream_pending.iter().rev().find(|&&u| u != vi) {
            edges.push((nearest, vi));
        } else if upstream_pending.contains(&vi) {
            // Only v_i itself can cut the stream; updating v_i is what
            // creates the new stream, so the contention is ordered by
            // the delay comparison of Algorithm 1 instead. If the new
            // detour is faster than the old route, the two streams
            // overlap whatever we do: record the self-dependency.
            let phi_new = net.delay(vi, v).unwrap_or(0) as TimeStep;
            let pos_vi = flow.initial.position(vi);
            let phi_old = match pos_vi {
                Some(p) if p < pos_v => {
                    let a = flow.initial.prefix_delay(net, vi).unwrap_or(0);
                    let b = flow.initial.prefix_delay(net, v).unwrap_or(0);
                    (b - a) as TimeStep
                }
                _ => TimeStep::MAX,
            };
            if phi_new < phi_old {
                edges.push((vi, vi));
            }
        }
    }

    build_set(edges, pending)
}

/// Merges raw edges into chains and detects cycles (the paper's
/// "merge the dependency relation set with the common element").
/// Shared with the flat scan in [`crate::scan`], which produces the
/// same edge list from dense tables — chain construction is therefore
/// byte-identical between the two scan paths by construction.
pub(crate) fn build_set(
    edges: Vec<(SwitchId, SwitchId)>,
    pending: &BTreeSet<SwitchId>,
) -> DependencySet {
    // Union-find over involved switches to group components.
    let involved: BTreeSet<SwitchId> = edges
        .iter()
        .flat_map(|&(a, b)| [a, b])
        .chain(pending.iter().copied())
        .collect();
    let idx: BTreeMap<SwitchId, usize> = involved
        .iter()
        .copied()
        .enumerate()
        .map(|(i, v)| (v, i))
        .collect();
    let nodes: Vec<SwitchId> = involved.iter().copied().collect();
    let n = nodes.len();
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut Vec<usize>, x: usize) -> usize {
        if parent[x] != x {
            let r = find(parent, parent[x]);
            parent[x] = r;
        }
        parent[x]
    }
    for &(a, b) in &edges {
        let (ra, rb) = (find(&mut parent, idx[&a]), find(&mut parent, idx[&b]));
        if ra != rb {
            parent[ra] = rb;
        }
    }

    // Per-component topological sort (Kahn); leftovers mean a cycle.
    // Components that *are* cyclic are reported as a witness but do
    // not stop the other components from producing usable chains —
    // their contention typically resolves at a later step once flow
    // drains (the greedy loop re-runs Algorithm 3 every step).
    let mut adj: BTreeMap<SwitchId, Vec<SwitchId>> = BTreeMap::new();
    let mut indeg: BTreeMap<SwitchId, usize> = involved.iter().map(|&v| (v, 0)).collect();
    let mut cycle_members: Vec<SwitchId> = Vec::new();
    for &(a, b) in &edges {
        if a == b {
            cycle_members.push(a);
            continue;
        }
        adj.entry(a).or_default().push(b);
        *indeg.get_mut(&b).expect("b is involved") += 1;
    }

    let mut comp_members: BTreeMap<usize, Vec<SwitchId>> = BTreeMap::new();
    for &v in &nodes {
        let root = find(&mut parent, idx[&v]);
        comp_members.entry(root).or_default().push(v);
    }

    let mut chains = Vec::new();
    for (_, members) in comp_members {
        if members.iter().any(|v| cycle_members.contains(v)) {
            continue; // component already known cyclic via a self-loop
        }
        let mut local_indeg: BTreeMap<SwitchId, usize> =
            members.iter().map(|&v| (v, indeg[&v])).collect();
        let mut queue: Vec<SwitchId> = members
            .iter()
            .copied()
            .filter(|v| local_indeg[v] == 0)
            .collect();
        let mut order = Vec::new();
        while let Some(v) = queue.pop() {
            order.push(v);
            for &w in adj.get(&v).into_iter().flatten() {
                let d = local_indeg.get_mut(&w).expect("w in component");
                *d -= 1;
                if *d == 0 {
                    queue.push(w);
                }
            }
        }
        if order.len() != members.len() {
            cycle_members.extend(members.iter().copied().filter(|v| !order.contains(v)));
        } else {
            chains.push(order);
        }
    }
    chains.sort();
    cycle_members.sort_unstable();
    cycle_members.dedup();
    DependencySet {
        edges,
        chains,
        cycle: if cycle_members.is_empty() {
            None
        } else {
            Some(cycle_members)
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chronus_net::{motivating_example, Flow, FlowId, NetworkBuilder, Path};

    fn sid(i: u32) -> SwitchId {
        SwitchId(i)
    }

    fn pending_of(flow: &Flow) -> BTreeSet<SwitchId> {
        flow.switches_to_update()
    }

    #[test]
    fn arrival_bound_semantics() {
        assert!(!ArrivalBound::Never.still_arrives_at(0));
        assert!(ArrivalBound::Until(3).still_arrives_at(3));
        assert!(!ArrivalBound::Until(3).still_arrives_at(4));
        assert!(ArrivalBound::Forever.still_arrives_at(1_000_000));
    }

    #[test]
    fn last_old_arrival_unscheduled_is_forever() {
        let inst = motivating_example();
        let flow = inst.flow().clone();
        let s = Schedule::new();
        // v4 (id 3) keeps receiving old flow while nothing upstream is
        // scheduled.
        assert_eq!(
            last_old_arrival(&inst, &flow, &s, sid(3)),
            ArrivalBound::Forever
        );
        // The source never "receives" old flow.
        assert_eq!(
            last_old_arrival(&inst, &flow, &s, sid(0)),
            ArrivalBound::Never
        );
        // v6 off the old path? v6 is the destination and on the path —
        // it receives flow forever too until an upstream cut.
        assert_eq!(
            last_old_arrival(&inst, &flow, &s, sid(5)),
            ArrivalBound::Forever
        );
    }

    #[test]
    fn last_old_arrival_respects_upstream_cut() {
        let inst = motivating_example();
        let flow = inst.flow().clone();
        let mut s = Schedule::new();
        // Cut at v2 (id 1, prefix delay 1) at step 4: last cohort that
        // passes v2 on the old rule is emitted at 4 − 1 − 1 = 2, so the
        // last old arrival at v4 (prefix 3) is 2 + 3 = 5.
        s.set(FlowId(0), sid(1), 4);
        assert_eq!(
            last_old_arrival(&inst, &flow, &s, sid(3)),
            ArrivalBound::Until(5)
        );
        // Source cut at step 2 tightens the bound: emissions < 2 reach
        // v4 until 1 + 3 = 4.
        s.set(FlowId(0), sid(0), 2);
        assert_eq!(
            last_old_arrival(&inst, &flow, &s, sid(3)),
            ArrivalBound::Until(4)
        );
    }

    #[test]
    fn motivating_example_dependencies_at_t0() {
        let inst = motivating_example();
        let flow = inst.flow().clone();
        let pending = pending_of(&flow);
        let s = Schedule::new();
        let deps = dependency_set(&inst, &flow, &s, &pending, 0);
        // v2's new edge goes straight to the destination: unconstrained,
        // and it heads the (v2 → v4) chain — only v2 may update at t0,
        // exactly like the paper's Fig. 5 where only v2 updates first.
        assert_eq!(deps.heads(), vec![sid(1)]);
        // v1 is constrained (its redirect lands on v4 which still sees
        // old flow) and v3's constraint points back at v1: at t0 these
        // two form a cycle that only draining can break.
        assert!(
            deps.edges.iter().any(|&(_, w)| w == sid(0)),
            "v1 should be dependent, edges {:?}",
            deps.edges
        );
        let cycle = deps.cycle.clone().expect("v1/v3 mutual wait at t0");
        assert_eq!(cycle, vec![sid(0), sid(2)]);
        // The acyclic component is the chain v2 → v4.
        assert_eq!(deps.chains, vec![vec![sid(1), sid(3)]]);
    }

    #[test]
    fn dependencies_resolve_once_upstream_commits_and_drains() {
        let inst = motivating_example();
        let flow = inst.flow().clone();
        let mut pending = pending_of(&flow);
        let mut s = Schedule::new();
        // Commit v2 at step 0: the old stream into v3/v4 dries up.
        s.set(FlowId(0), sid(1), 0);
        pending.remove(&sid(1));
        // Well after the drain, nothing depends on anything.
        let deps = dependency_set(&inst, &flow, &s, &pending, 10);
        assert!(deps.edges.is_empty(), "edges: {:?}", deps.edges);
        assert_eq!(deps.heads().len(), pending.len());
    }

    #[test]
    fn self_dependency_detects_unfixable_contention() {
        // shared-tail instance with a *fast* shortcut: old 0→1→2→3,
        // new 0→2→3 with σ(0,2)=1 < σ(0→1→2)=2 and C(2,3)=1 < 2d.
        let mut b = NetworkBuilder::with_switches(4);
        b.add_link(sid(0), sid(1), 1, 1).unwrap();
        b.add_link(sid(1), sid(2), 1, 1).unwrap();
        b.add_link(sid(2), sid(3), 1, 1).unwrap();
        b.add_link(sid(0), sid(2), 1, 1).unwrap();
        let net = b.build();
        let flow = Flow::new(
            FlowId(0),
            1,
            Path::new(vec![sid(0), sid(1), sid(2), sid(3)]),
            Path::new(vec![sid(0), sid(2), sid(3)]),
        )
        .unwrap();
        let inst = chronus_net::UpdateInstance::single(net, flow.clone()).unwrap();
        let pending = pending_of(&flow);
        let deps = dependency_set(&inst, &flow, &Schedule::new(), &pending, 0);
        assert!(deps.has_cycle(), "fast shortcut must self-depend");
        assert_eq!(deps.cycle, Some(vec![sid(0)]));
    }

    #[test]
    fn slow_shortcut_has_no_dependency() {
        // Same topology but σ(0,2)=3 ≥ 2: the new stream arrives after
        // the old drains; no dependency.
        let mut b = NetworkBuilder::with_switches(4);
        b.add_link(sid(0), sid(1), 1, 1).unwrap();
        b.add_link(sid(1), sid(2), 1, 1).unwrap();
        b.add_link(sid(2), sid(3), 1, 1).unwrap();
        b.add_link(sid(0), sid(2), 1, 3).unwrap();
        let net = b.build();
        let flow = Flow::new(
            FlowId(0),
            1,
            Path::new(vec![sid(0), sid(1), sid(2), sid(3)]),
            Path::new(vec![sid(0), sid(2), sid(3)]),
        )
        .unwrap();
        let inst = chronus_net::UpdateInstance::single(net, flow.clone()).unwrap();
        let pending = pending_of(&flow);
        let deps = dependency_set(&inst, &flow, &Schedule::new(), &pending, 0);
        assert!(!deps.has_cycle());
        assert!(deps.edges.is_empty());
        assert_eq!(deps.heads(), vec![sid(0)]);
    }

    #[test]
    fn wide_links_remove_all_dependencies() {
        // Capacity ≥ 2d everywhere: Algorithm 3 finds nothing.
        let mut inst = motivating_example();
        // Rebuild with capacity 2.
        let mut b = NetworkBuilder::with_switches(6);
        for l in inst.network.links() {
            b.add_link(l.src, l.dst, 2, l.delay).unwrap();
        }
        let flow = inst.flow().clone();
        inst = chronus_net::UpdateInstance::single(b.build(), flow.clone()).unwrap();
        let pending = pending_of(&flow);
        let deps = dependency_set(&inst, &flow, &Schedule::new(), &pending, 0);
        assert!(deps.edges.is_empty());
        assert_eq!(deps.heads().len(), pending.len());
    }

    #[test]
    fn chain_merging_produces_topological_chains() {
        let pending: BTreeSet<SwitchId> = [sid(1), sid(2), sid(3), sid(7)].into();
        let set = build_set(vec![(sid(1), sid(2)), (sid(2), sid(3))], &pending);
        assert!(!set.has_cycle());
        // One merged chain 1 → 2 → 3, one singleton (7).
        assert_eq!(set.chains.len(), 2);
        let big = set.chains.iter().find(|c| c.len() == 3).unwrap();
        assert_eq!(big, &vec![sid(1), sid(2), sid(3)]);
        assert_eq!(set.heads(), vec![sid(1), sid(7)]);
    }

    #[test]
    fn cycle_detection_in_merge() {
        let pending: BTreeSet<SwitchId> = [sid(1), sid(2)].into();
        let set = build_set(vec![(sid(1), sid(2)), (sid(2), sid(1))], &pending);
        assert!(set.has_cycle());
        let c = set.cycle.unwrap();
        assert_eq!(c.len(), 2);
    }
}
