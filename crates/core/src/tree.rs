//! **Algorithm 1** — checking whether a congestion- and loop-free
//! timed update sequence exists at all.
//!
//! The paper's tree algorithm walks the union of `p_init` (solid) and
//! `p_fin` (dashed) as a binary tree rooted at the destination and
//! repeatedly updates switches whose dashed edge crosses from the
//! branch currently carrying flow to the other branch. Each crossing
//! is admissible when either
//!
//! 1. the contended segment `Λ` can hold both streams
//!    (`Λ.cons ≥ 2d`), or
//! 2. the new route into the merge point is no faster than the old
//!    one (`φ(p) ≥ φ(q)`), so the new stream arrives only after the
//!    old one has drained.
//!
//! Theorem 2 proves the resulting check exact for identical link
//! delays — its key insight being that if a crossing is infeasible
//! *now*, waiting cannot fix it, because the relative offset between
//! the old and new stream is fixed by path delays, not by the update
//! time.
//!
//! This module implements the algorithm in three layers:
//!
//! - [`crossings`] extracts the dashed detours of `p_fin` relative to
//!   `p_init` together with their `φ`/`Λ.cons` quantities (the data
//!   the paper's conditions inspect);
//! - [`quick_infeasible`] applies the paper's Case-1 argument to
//!   detours that provably cannot ever be scheduled;
//! - [`check_feasibility`] gives the full decision: the greedy
//!   scheduler serves as a fast constructive witness, and a
//!   memoized depth-first search over update orders (each candidate
//!   verified by the exact simulator, waiting up to one full drain
//!   period) settles the instances the greedy's myopia misses.
// The search operates on per-switch order vectors whose indices come
// from the instance's update items; `expect` unwraps search-stack
// invariants (a popped frame always has a live parent).
#![allow(clippy::indexing_slicing, clippy::expect_used)]

use crate::greedy::{greedy_schedule_with, GreedyConfig, GreedyOutcome};
use crate::MutpProblem;
use chronus_net::{Capacity, Delay, Flow, SwitchId, TimeStep, UpdateInstance};
use chronus_timenet::{FluidSimulator, Schedule, SimulatorConfig, Verdict};
use std::collections::HashSet;

/// One dashed detour of the final path relative to the initial path:
/// the flow leaves `p_init` at `diverge`, travels `detour` (interior
/// switches off the old path), and re-enters the old path at `merge`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Crossing {
    /// Last shared switch before the detour.
    pub diverge: SwitchId,
    /// First old-path switch the detour rejoins, or the destination.
    pub merge: SwitchId,
    /// Interior detour switches (possibly empty for a direct jump).
    pub interior: Vec<SwitchId>,
    /// `φ(p)`: delay of the new route from `diverge` to `merge`.
    pub phi_new: Delay,
    /// `φ(q)`: delay of the old route from `diverge` to `merge`, if
    /// `merge` lies downstream of `diverge` on the old path (a
    /// "forward" detour); `None` for backward merges.
    pub phi_old: Option<Delay>,
    /// `Λ.cons`: the bottleneck capacity of the old path from `merge`
    /// onward — the segment both streams would share.
    pub cons: Capacity,
}

impl Crossing {
    /// The paper's admissibility test for this crossing: the shared
    /// segment holds both streams, or the new route is no faster.
    pub fn admissible(&self, demand: Capacity) -> bool {
        if self.cons >= 2 * demand {
            return true;
        }
        match self.phi_old {
            Some(q) => self.phi_new >= q,
            // Backward merges are resolved by update ordering (the
            // merge switch updates first); no delay condition applies.
            None => true,
        }
    }
}

/// Extracts all crossings (detours) of `flow.fin` relative to
/// `flow.initial`.
pub fn crossings(instance: &UpdateInstance, flow: &Flow) -> Vec<Crossing> {
    let net = &instance.network;
    let fin = flow.fin.hops();
    let mut out = Vec::new();
    let mut i = 0;
    while i < fin.len() {
        let on_old = flow.initial.contains(fin[i]);
        if !on_old {
            i += 1;
            continue;
        }
        // fin[i] is on the old path; find the next fin hop on the old
        // path. Everything between is a detour (possibly empty if the
        // next hop differs from the old next hop).
        let mut j = i + 1;
        while j < fin.len() && !flow.initial.contains(fin[j]) {
            j += 1;
        }
        if j >= fin.len() {
            break;
        }
        let diverge = fin[i];
        let merge = fin[j];
        // Only a real detour: the new edge sequence must differ from
        // simply following the old path.
        let follows_old = j == i + 1 && flow.initial.next_hop(diverge) == Some(merge);
        if !follows_old {
            let interior: Vec<SwitchId> = fin[i + 1..j].to_vec();
            let phi_new: Delay = fin[i..=j]
                .windows(2)
                .map(|w| net.delay(w[0], w[1]).unwrap_or(0))
                .sum();
            let pos_d = flow.initial.position(diverge).expect("diverge on old path");
            let pos_m = flow.initial.position(merge).expect("merge on old path");
            let phi_old = if pos_m > pos_d {
                let a = flow.initial.prefix_delay(net, diverge).unwrap_or(0);
                let b = flow.initial.prefix_delay(net, merge).unwrap_or(0);
                Some(b - a)
            } else {
                None
            };
            // Λ.cons: bottleneck of the old path from merge onward.
            let cons = flow
                .initial
                .suffix_from(merge)
                .map(|suffix| {
                    suffix
                        .windows(2)
                        .map(|w| net.capacity(w[0], w[1]).unwrap_or(Capacity::MAX))
                        .min()
                        .unwrap_or(Capacity::MAX)
                })
                .unwrap_or(Capacity::MAX);
            out.push(Crossing {
                diverge,
                merge,
                interior,
                phi_new,
                phi_old,
                cons,
            });
        }
        i = j;
    }
    out
}

/// Applies the paper's Case-1 argument: a forward detour whose
/// contended segment cannot hold both streams *and* whose new route is
/// strictly faster than the old one can never be scheduled — if it is
/// infeasible at the current step, it is infeasible at any step
/// (Theorem 2, Case 1). Returns the witness crossing, if any.
///
/// Only detours departing from a switch with no *other* pending
/// upstream cutter are provably doomed; detours deeper in the path may
/// be rescued by updating an upstream switch first, so they are left
/// to the full search.
pub fn quick_infeasible(instance: &UpdateInstance) -> Option<Crossing> {
    for flow in &instance.flows {
        let pending = flow.switches_to_update();
        for c in crossings(instance, flow) {
            if c.admissible(flow.demand) {
                continue;
            }
            // Is there a pending switch strictly upstream of the merge
            // point (other than the diverger) that could cut the old
            // stream first?
            let pos_m = flow
                .initial
                .position(c.merge)
                .expect("merge is on the old path");
            let has_other_cutter = flow.initial.hops()[..pos_m]
                .iter()
                .any(|u| *u != c.diverge && pending.contains(u));
            if !has_other_cutter {
                return Some(c);
            }
        }
    }
    None
}

/// Outcome of [`check_feasibility`].
#[derive(Clone, Debug)]
pub enum Feasibility {
    /// A consistent schedule exists; the witness is attached together
    /// with the independent certifier's proof of its consistency.
    Feasible {
        /// The witness schedule.
        schedule: Schedule,
        /// `chronus-verify`'s proof that the witness is consistent.
        certificate: Box<chronus_verify::Certificate>,
    },
    /// No consistent schedule exists.
    Infeasible {
        /// A crossing that can never be scheduled, when the fast path
        /// found one.
        witness: Option<Crossing>,
    },
    /// The search budget was exhausted before a decision was reached
    /// (only possible on instances with very large pending sets) —
    /// or, signalling a bug in the simulator or the certifier, the
    /// independent certifier rejected a simulator-verified witness.
    Unknown,
}

impl Feasibility {
    /// `true` for [`Feasibility::Feasible`].
    pub fn is_feasible(&self) -> bool {
        matches!(self, Feasibility::Feasible { .. })
    }

    /// The witness schedule, for [`Feasibility::Feasible`].
    pub fn schedule(&self) -> Option<&Schedule> {
        match self {
            Feasibility::Feasible { schedule, .. } => Some(schedule),
            _ => None,
        }
    }
}

/// Certifies a simulator-verified witness with the independent static
/// certifier and seals it into [`Feasibility::Feasible`]. A rejection
/// here means the simulator and the certifier disagree — a bug in one
/// of them — so the decision is downgraded to
/// [`Feasibility::Unknown`] rather than vouched for.
fn seal_feasible(instance: &UpdateInstance, schedule: Schedule) -> Feasibility {
    match chronus_verify::certify(instance, &schedule) {
        Ok(cert) => Feasibility::Feasible {
            schedule,
            certificate: Box::new(cert),
        },
        Err(_) => Feasibility::Unknown,
    }
}

/// Search budget for the exhaustive fallback of [`check_feasibility`].
#[derive(Clone, Copy, Debug)]
pub struct TreeConfig {
    /// Maximum simulator invocations before giving up with
    /// [`Feasibility::Unknown`].
    pub max_simulations: usize,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            max_simulations: 200_000,
        }
    }
}

/// Decides whether *any* congestion- and loop-free timed update
/// sequence exists for the instance (the question the paper's
/// Algorithm 1 answers), returning a witness schedule when one exists.
pub fn check_feasibility(instance: &UpdateInstance) -> Feasibility {
    check_feasibility_with(instance, TreeConfig::default())
}

/// [`check_feasibility`] with an explicit search budget.
pub fn check_feasibility_with(instance: &UpdateInstance, cfg: TreeConfig) -> Feasibility {
    // Fast negative path: the paper's delay/capacity conditions.
    if let Some(witness) = quick_infeasible(instance) {
        return Feasibility::Infeasible {
            witness: Some(witness),
        };
    }
    // Fast positive path: the greedy scheduler usually finds a witness
    // (certification deferred to `seal_feasible` to avoid running the
    // certifier twice).
    let greedy_cfg = GreedyConfig {
        verify: chronus_verify::VerifyConfig::disabled(),
        ..GreedyConfig::default()
    };
    if let Ok(GreedyOutcome { schedule, .. }) = greedy_schedule_with(instance, greedy_cfg) {
        return seal_feasible(instance, schedule);
    }
    // Exhaustive fallback: memoized DFS over update orders.
    let Ok(problem) = MutpProblem::new(instance) else {
        return Feasibility::Infeasible { witness: None };
    };
    let mut searcher = match Searcher::new(instance, &problem, cfg) {
        Ok(s) => s,
        Err(TooManyPending) => return Feasibility::Unknown,
    };
    match searcher.solve() {
        SearchResult::Found(schedule) => seal_feasible(instance, schedule),
        SearchResult::Exhausted => Feasibility::Infeasible { witness: None },
        SearchResult::BudgetSpent => Feasibility::Unknown,
    }
}

struct TooManyPending;

enum SearchResult {
    Found(Schedule),
    Exhausted,
    BudgetSpent,
}

/// DFS over update orders: each level picks one pending `(flow,
/// switch)` pair and the earliest time within one drain period at
/// which committing it keeps the partial schedule consistent
/// (verified exactly by the simulator). Failed pending-sets are
/// memoized: after a full drain the data plane depends only on *which*
/// switches updated, not when, so a set that failed once cannot
/// succeed from the stationary state either.
struct Searcher<'a> {
    instance: &'a UpdateInstance,
    sim: FluidSimulator<'a>,
    items: Vec<(usize, SwitchId)>, // (flow index, switch)
    drain: TimeStep,
    budget: usize,
    used: usize,
    // chronus-lint: allow(det-hash) — membership-only memo of failed subset signatures; never iterated
    failed: HashSet<u64>,
    base: Schedule,
}

impl<'a> Searcher<'a> {
    fn new(
        instance: &'a UpdateInstance,
        problem: &MutpProblem<'a>,
        cfg: TreeConfig,
    ) -> Result<Self, TooManyPending> {
        let mut items = Vec::new();
        let mut base = Schedule::new();
        for (fi, flow) in instance.flows.iter().enumerate() {
            // Fresh switches activate at step 0 unconditionally (they
            // carry no flow until an upstream diverger updates).
            let fresh = problem.fresh_switches(fi);
            for v in &fresh {
                base.set(flow.id, *v, 0);
            }
            for &v in problem.pending(fi) {
                if !fresh.contains(&v) {
                    items.push((fi, v));
                }
            }
        }
        if items.len() > 63 {
            return Err(TooManyPending);
        }
        let sim_cfg = SimulatorConfig {
            record_loads: false,
            ..SimulatorConfig::default()
        };
        Ok(Searcher {
            instance,
            sim: FluidSimulator::with_config(instance, sim_cfg),
            items,
            drain: problem.drain_bound(),
            budget: cfg.max_simulations,
            used: 0,
            // chronus-lint: allow(det-hash) — membership-only memo, see field declaration
            failed: HashSet::new(),
            base: base.clone(),
        })
    }

    fn solve(&mut self) -> SearchResult {
        let full: u64 = if self.items.is_empty() {
            0
        } else {
            (1u64 << self.items.len()) - 1
        };
        let mut schedule = self.base.clone();
        match self.dfs(full, &mut schedule, 0) {
            Some(true) => SearchResult::Found(schedule),
            Some(false) => SearchResult::Exhausted,
            None => SearchResult::BudgetSpent,
        }
    }

    /// Returns `Some(true)` on success (schedule filled in),
    /// `Some(false)` if this subtree is exhausted, `None` on budget
    /// exhaustion.
    fn dfs(&mut self, mask: u64, schedule: &mut Schedule, t0: TimeStep) -> Option<bool> {
        if mask == 0 {
            return Some(true);
        }
        if self.failed.contains(&mask) {
            return Some(false);
        }
        let mut bits = mask;
        while bits != 0 {
            let i = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            let (fi, v) = self.items[i];
            let flow_id = self.instance.flows[fi].id;
            for t in t0..=t0 + self.drain {
                if self.used >= self.budget {
                    return None;
                }
                self.used += 1;
                schedule.set(flow_id, v, t);
                let clean = self.sim.run(schedule).verdict() == Verdict::Consistent;
                if clean {
                    match self.dfs(mask & !(1 << i), schedule, t) {
                        Some(true) => return Some(true),
                        Some(false) => {}
                        None => {
                            schedule.unset(flow_id, v);
                            return None;
                        }
                    }
                }
                schedule.unset(flow_id, v);
            }
        }
        self.failed.insert(mask);
        Some(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chronus_net::{motivating_example, Flow, FlowId, NetworkBuilder, Path};

    fn sid(i: u32) -> SwitchId {
        SwitchId(i)
    }

    fn shared_tail(shortcut_delay: u64) -> UpdateInstance {
        let mut b = NetworkBuilder::with_switches(4);
        b.add_link(sid(0), sid(1), 1, 1).unwrap();
        b.add_link(sid(1), sid(2), 1, 1).unwrap();
        b.add_link(sid(2), sid(3), 1, 1).unwrap();
        b.add_link(sid(0), sid(2), 1, shortcut_delay).unwrap();
        let flow = Flow::new(
            FlowId(0),
            1,
            Path::new(vec![sid(0), sid(1), sid(2), sid(3)]),
            Path::new(vec![sid(0), sid(2), sid(3)]),
        )
        .unwrap();
        UpdateInstance::single(b.build(), flow).unwrap()
    }

    #[test]
    fn crossings_extracts_forward_detour() {
        let inst = shared_tail(3);
        let cs = crossings(&inst, inst.flow());
        assert_eq!(cs.len(), 1);
        let c = &cs[0];
        assert_eq!(c.diverge, sid(0));
        assert_eq!(c.merge, sid(2));
        assert!(c.interior.is_empty());
        assert_eq!(c.phi_new, 3);
        assert_eq!(c.phi_old, Some(2));
        assert_eq!(c.cons, 1);
        assert!(c.admissible(1), "slow detour satisfies phi condition");
    }

    #[test]
    fn crossings_on_motivating_example() {
        let inst = motivating_example();
        let cs = crossings(&inst, inst.flow());
        // New path v1→v4→v3→v2→v6 vs old v1→…→v6: v1 jumps forward to
        // v4 (detour 1), then v4→v3, v3→v2 are backward jumps along
        // the old path, then v2→v6 jumps to the destination.
        assert!(!cs.is_empty());
        let first = &cs[0];
        assert_eq!(first.diverge, sid(0));
        assert_eq!(first.merge, sid(3));
        assert_eq!(first.phi_old, Some(3));
        assert_eq!(first.phi_new, 1);
        // Fast-forward jump over a capacity-1 segment: not admissible
        // by delay, needs an ordering rescue (update v2/v3 first).
        assert!(!first.admissible(1));
        // Backward merges have no phi_old.
        assert!(cs.iter().any(|c| c.phi_old.is_none()));
    }

    #[test]
    fn quick_infeasible_flags_fast_shortcut() {
        let inst = shared_tail(1);
        let w = quick_infeasible(&inst).expect("fast shortcut is doomed");
        assert_eq!(w.diverge, sid(0));
        assert_eq!(w.merge, sid(2));
        assert!(quick_infeasible(&shared_tail(2)).is_none());
        assert!(quick_infeasible(&shared_tail(3)).is_none());
    }

    #[test]
    fn quick_infeasible_spares_rescuable_detours() {
        // The motivating example's v1 crossing is inadmissible but v2
        // and v3 upstream of the merge can cut the stream: not doomed.
        let inst = motivating_example();
        assert!(quick_infeasible(&inst).is_none());
    }

    #[test]
    fn feasibility_decisions() {
        assert!(check_feasibility(&shared_tail(3)).is_feasible());
        assert!(check_feasibility(&shared_tail(2)).is_feasible());
        match check_feasibility(&shared_tail(1)) {
            Feasibility::Infeasible { witness } => {
                assert!(witness.is_some());
            }
            other => panic!("expected infeasible, got {other:?}"),
        }
        let f = check_feasibility(&motivating_example());
        assert!(f.is_feasible());
        if let Feasibility::Feasible {
            schedule,
            certificate,
        } = f
        {
            let report = FluidSimulator::check(&motivating_example(), &schedule);
            assert_eq!(report.verdict(), Verdict::Consistent);
            // The attached proof re-validates independently.
            assert_eq!(certificate.check(&motivating_example()), Ok(()));
        }
    }

    #[test]
    fn witness_schedules_are_always_verified() {
        // Equal-delay variant: phi_new == phi_old is admissible (the
        // new stream arrives exactly as the old one ends).
        let inst = shared_tail(2);
        if let Feasibility::Feasible { schedule, .. } = check_feasibility(&inst) {
            let report = FluidSimulator::check(&inst, &schedule);
            assert_eq!(report.verdict(), Verdict::Consistent, "{report}");
        } else {
            panic!("equal-delay shortcut should be feasible");
        }
    }

    #[test]
    fn dfs_fallback_handles_greedy_myopia() {
        // Force the DFS path by giving the searcher a tiny instance and
        // bypassing the greedy fast path via direct construction.
        let inst = motivating_example();
        let problem = MutpProblem::new(&inst).unwrap();
        let mut searcher = match Searcher::new(&inst, &problem, TreeConfig::default()) {
            Ok(s) => s,
            Err(_) => panic!("4 pending switches fit in the mask"),
        };
        match searcher.solve() {
            SearchResult::Found(s) => {
                let report = FluidSimulator::check(&inst, &s);
                assert_eq!(report.verdict(), Verdict::Consistent, "{report}");
            }
            _ => panic!("DFS must solve the motivating example"),
        }
    }

    #[test]
    fn budget_exhaustion_reports_unknown() {
        let inst = motivating_example();
        let cfg = TreeConfig { max_simulations: 1 };
        let problem = MutpProblem::new(&inst).unwrap();
        let mut searcher = match Searcher::new(&inst, &problem, cfg) {
            Ok(s) => s,
            Err(_) => panic!("fits"),
        };
        assert!(matches!(searcher.solve(), SearchResult::BudgetSpent));
    }
}
