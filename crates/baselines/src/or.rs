//! **OR** — order-replacement updates (Ludwig et al. [15]).
//!
//! OR partitions the switches needing updates into *rounds*. Within a
//! round the controller fires all updates at once and waits for
//! barrier replies; switches apply them at arbitrary relative times
//! (the asynchronous data plane), so a round `S` is *loop-free* only
//! if **every** interleaving of `S` is: equivalently, the forwarding
//! multigraph in which already-updated switches use their new edge,
//! untouched switches their old edge, and switches in `S` *both*
//! edges, must be acyclic. Minimizing the number of rounds under this
//! condition is NP-hard [15]; the paper solves it with branch and
//! bound, with a greedy maximal-round heuristic as fallback — both are
//! implemented here.
//!
//! OR ignores link capacities and transmission delays entirely; when
//! its rounds are executed with realistic per-switch installation
//! latencies ([`OrOutcome::execute`]), the resulting schedule is what
//! produces the transient congestion of Figs. 6–8.
// Rounds and segment tables are indexed by ids this planner minted.
#![allow(clippy::indexing_slicing)]

use chronus_core::ScheduleError;
use chronus_net::{Flow, SwitchId, TimeStep, UpdateInstance};
use chronus_timenet::Schedule;
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::{BTreeSet, HashMap, HashSet};
use std::time::{Duration, Instant};

/// Configuration for the exact OR solver.
#[derive(Clone, Copy, Debug)]
pub struct OrConfig {
    /// Wall-clock budget for the branch and bound (paper: 600 s).
    pub budget: Duration,
}

impl Default for OrConfig {
    fn default() -> Self {
        OrConfig {
            budget: Duration::from_secs(600),
        }
    }
}

/// An OR update plan: switches grouped into rounds.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OrOutcome {
    /// Rounds in execution order; within a round, updates are fired
    /// simultaneously and land asynchronously.
    pub rounds: Vec<Vec<SwitchId>>,
    /// `true` if produced by the exact branch and bound, `false` for
    /// the greedy heuristic.
    pub exact: bool,
}

impl OrOutcome {
    /// Number of controller interaction rounds (OR's objective).
    pub fn round_count(&self) -> usize {
        self.rounds.len()
    }

    /// Executes the plan against an asynchronous data plane: every
    /// switch's update lands `latency ∈ [min, max]` steps after its
    /// round fires, and a round fires only after every update of the
    /// previous round has landed (barrier). Returns the realized
    /// per-switch update times as a [`Schedule`], ready for the exact
    /// simulator — this is how the OR rows of Figs. 6–8 are produced.
    pub fn execute(
        &self,
        flow: &Flow,
        latency_range: (TimeStep, TimeStep),
        rng: &mut StdRng,
    ) -> Schedule {
        assert!(
            latency_range.0 >= 0 && latency_range.0 <= latency_range.1,
            "latency range must be non-negative and ordered"
        );
        let mut schedule = Schedule::new();
        let mut round_start: TimeStep = 0;
        for round in &self.rounds {
            let mut latest = round_start;
            for &v in round {
                let latency = rng.gen_range(latency_range.0..=latency_range.1);
                let at = round_start + latency;
                schedule.set(flow.id, v, at);
                latest = latest.max(at);
            }
            // Barrier: next round fires only after every reply.
            round_start = latest + 1;
        }
        schedule
    }

    /// [`OrOutcome::execute`] followed by the independent static
    /// certifier: returns the realized schedule together with either
    /// its consistency [`chronus_verify::Certificate`] or the
    /// [`chronus_verify::Violation`] the draw produced. OR ignores
    /// capacities, so on tight links the violation is typically
    /// congestion — the Figs. 6–8 effect, now with a machine-checkable
    /// counterexample naming the link and interval.
    pub fn execute_certified(
        &self,
        instance: &UpdateInstance,
        latency_range: (TimeStep, TimeStep),
        rng: &mut StdRng,
    ) -> (
        Schedule,
        Result<chronus_verify::Certificate, chronus_verify::Violation>,
    ) {
        let schedule = self.execute(instance.flow(), latency_range, rng);
        let verdict = chronus_verify::certify(instance, &schedule);
        (schedule, verdict)
    }
}

/// Is the round set `candidate` safe to fire given `already_updated`?
///
/// Builds the forwarding multigraph (new edges for updated, both for
/// candidate, old for the rest) and checks it for cycles.
fn round_is_loop_free(
    flow: &Flow,
    already_updated: &BTreeSet<SwitchId>,
    candidate: &BTreeSet<SwitchId>,
) -> bool {
    // Adjacency over the switches touched by the flow.
    let mut adj: HashMap<SwitchId, Vec<SwitchId>> = HashMap::new();
    for v in flow.touched_switches() {
        let mut outs = Vec::new();
        let old = flow.old_rule(v);
        let new = flow.new_rule(v);
        if already_updated.contains(&v) {
            if let Some(n) = new {
                outs.push(n);
            }
        } else if candidate.contains(&v) {
            if let Some(n) = new {
                outs.push(n);
            }
            if let Some(o) = old {
                outs.push(o);
            }
        } else if let Some(o) = old {
            outs.push(o);
        }
        adj.insert(v, outs);
    }
    // DFS cycle detection.
    #[derive(Clone, Copy, PartialEq)]
    enum Mark {
        White,
        Grey,
        Black,
    }
    let mut marks: HashMap<SwitchId, Mark> = adj.keys().map(|&v| (v, Mark::White)).collect();
    fn dfs(
        v: SwitchId,
        adj: &HashMap<SwitchId, Vec<SwitchId>>,
        marks: &mut HashMap<SwitchId, Mark>,
    ) -> bool {
        marks.insert(v, Mark::Grey);
        for &w in adj.get(&v).into_iter().flatten() {
            match marks.get(&w).copied().unwrap_or(Mark::Black) {
                Mark::Grey => return true,
                Mark::White => {
                    if dfs(w, adj, marks) {
                        return true;
                    }
                }
                Mark::Black => {}
            }
        }
        marks.insert(v, Mark::Black);
        false
    }
    let keys: Vec<SwitchId> = adj.keys().copied().collect();
    for v in keys {
        if marks[&v] == Mark::White && dfs(v, &adj, &mut marks) {
            return false;
        }
    }
    true
}

/// Greedy maximal rounds: repeatedly grow a round by adding every
/// pending switch that keeps the multigraph acyclic. Terminates
/// because updating a switch whose new next-hop chain is already
/// final is always eventually admissible (the classic backward
/// induction of [15]).
pub fn or_rounds_greedy(instance: &UpdateInstance) -> Result<OrOutcome, ScheduleError> {
    let flow = single_flow(instance)?;
    let mut updated: BTreeSet<SwitchId> = BTreeSet::new();
    let mut pending: BTreeSet<SwitchId> = flow.switches_to_update();
    let mut rounds = Vec::new();
    while !pending.is_empty() {
        let mut round: BTreeSet<SwitchId> = BTreeSet::new();
        for &v in &pending {
            round.insert(v);
            if !round_is_loop_free(flow, &updated, &round) {
                round.remove(&v);
            }
        }
        if round.is_empty() {
            return Err(ScheduleError::Infeasible {
                blocked: pending.iter().next().copied(),
                reason: "no switch can be updated loop-free".into(),
            });
        }
        for &v in &round {
            pending.remove(&v);
            updated.insert(v);
        }
        rounds.push(round.into_iter().collect());
    }
    Ok(OrOutcome {
        rounds,
        exact: false,
    })
}

/// Exact minimum-round OR plan by iterative-deepening branch and bound
/// (the paper's method), falling back to the greedy plan when the
/// budget expires. Minimizing rounds is NP-hard [15], so the budget
/// matters on large pending sets — exactly the effect Fig. 10 shows.
pub fn or_rounds(instance: &UpdateInstance, cfg: OrConfig) -> Result<OrOutcome, ScheduleError> {
    let _span = chronus_trace::span!("baselines.or_rounds", flows = instance.flows.len()).entered();
    let flow = single_flow(instance)?;
    let pending: Vec<SwitchId> = flow.switches_to_update().into_iter().collect();
    if pending.is_empty() {
        return Ok(OrOutcome {
            rounds: Vec::new(),
            exact: true,
        });
    }
    let greedy = or_rounds_greedy(instance)?;
    let ub = greedy.round_count();
    if pending.len() > 62 {
        // Bitmask state does not fit a u64; the exact search could
        // not finish anyway, so hand back the greedy plan.
        return Ok(greedy);
    }
    let deadline = Instant::now() + cfg.budget;

    // Iterative deepening on the round count.
    for target in 1..ub {
        let mut seen: HashSet<(usize, u64)> = HashSet::new();
        match search_rounds(
            flow,
            &pending,
            &mut Vec::new(),
            0,
            target,
            deadline,
            &mut seen,
        ) {
            SearchOutcome::Found(rounds) => {
                return Ok(OrOutcome {
                    rounds,
                    exact: true,
                })
            }
            SearchOutcome::Exhausted => continue,
            SearchOutcome::TimedOut => return Ok(greedy),
        }
    }
    // Greedy already optimal (or proven so by exhausting < ub).
    Ok(OrOutcome {
        rounds: greedy.rounds,
        exact: true,
    })
}

enum SearchOutcome {
    Found(Vec<Vec<SwitchId>>),
    Exhausted,
    TimedOut,
}

fn search_rounds(
    flow: &Flow,
    pending: &[SwitchId],
    chosen: &mut Vec<Vec<SwitchId>>,
    done_mask: u64,
    rounds_left: usize,
    deadline: Instant,
    seen: &mut HashSet<(usize, u64)>,
) -> SearchOutcome {
    let full = (1u64 << pending.len()) - 1;
    if done_mask == full {
        return SearchOutcome::Found(chosen.clone());
    }
    if rounds_left == 0 {
        return SearchOutcome::Exhausted;
    }
    if Instant::now() > deadline {
        return SearchOutcome::TimedOut;
    }
    if !seen.insert((rounds_left, done_mask)) {
        return SearchOutcome::Exhausted;
    }
    let updated: BTreeSet<SwitchId> = pending
        .iter()
        .enumerate()
        .filter(|&(i, _)| done_mask & (1 << i) != 0)
        .map(|(_, &v)| v)
        .collect();
    let rest: Vec<usize> = (0..pending.len())
        .filter(|i| done_mask & (1 << i) == 0)
        .collect();

    // Enumerate non-empty subsets of `rest`, descending — high masks
    // tend to be larger subsets, which finish in fewer rounds. The
    // enumeration itself is 2^|rest|, so the deadline is re-checked
    // periodically inside the loop (this is the exponential blow-up
    // that makes OR time out at scale in Fig. 10).
    let total = 1u64 << rest.len().min(62);
    let mut iterations = 0u64;
    for bits in (1..total).rev() {
        iterations += 1;
        if iterations.is_multiple_of(4096) && Instant::now() > deadline {
            return SearchOutcome::TimedOut;
        }
        let candidate: BTreeSet<SwitchId> = rest
            .iter()
            .enumerate()
            .filter(|&(j, _)| bits & (1 << j) != 0)
            .map(|(_, &i)| pending[i])
            .collect();
        // Quick necessary bound: must be able to finish in time.
        let remaining_after = rest.len() - candidate.len();
        if remaining_after > 0 && rounds_left == 1 {
            continue;
        }
        if !round_is_loop_free(flow, &updated, &candidate) {
            continue;
        }
        let mut new_mask = done_mask;
        for (j, &i) in rest.iter().enumerate() {
            if bits & (1 << j) != 0 {
                new_mask |= 1 << i;
            }
        }
        chosen.push(candidate.iter().copied().collect());
        match search_rounds(
            flow,
            pending,
            chosen,
            new_mask,
            rounds_left - 1,
            deadline,
            seen,
        ) {
            SearchOutcome::Exhausted => {
                chosen.pop();
            }
            other => return other,
        }
    }
    SearchOutcome::Exhausted
}

fn single_flow(instance: &UpdateInstance) -> Result<&Flow, ScheduleError> {
    if instance.flows.len() != 1 {
        return Err(ScheduleError::Infeasible {
            blocked: None,
            reason: "OR baseline is defined per flow".into(),
        });
    }
    Ok(&instance.flows[0])
}

#[cfg(test)]
mod tests {
    use super::*;
    use chronus_net::motivating_example;
    use chronus_timenet::FluidSimulator;
    use rand::SeedableRng;

    fn sid(i: u32) -> SwitchId {
        SwitchId(i)
    }

    #[test]
    fn greedy_rounds_cover_all_switches_loop_free() {
        let inst = motivating_example();
        let out = or_rounds_greedy(&inst).unwrap();
        let all: BTreeSet<SwitchId> = out.rounds.iter().flatten().copied().collect();
        assert_eq!(all, inst.flow().switches_to_update());
        // Every prefix of rounds must be loop-free as a set sequence.
        let mut updated = BTreeSet::new();
        for round in &out.rounds {
            let cand: BTreeSet<SwitchId> = round.iter().copied().collect();
            assert!(round_is_loop_free(inst.flow(), &updated, &cand));
            updated.extend(cand);
        }
    }

    #[test]
    fn exact_never_worse_than_greedy() {
        let inst = motivating_example();
        let greedy = or_rounds_greedy(&inst).unwrap();
        let exact = or_rounds(&inst, OrConfig::default()).unwrap();
        assert!(exact.round_count() <= greedy.round_count());
        assert!(exact.exact);
        let all: BTreeSet<SwitchId> = exact.rounds.iter().flatten().copied().collect();
        assert_eq!(all, inst.flow().switches_to_update());
    }

    #[test]
    fn motivating_example_needs_multiple_rounds() {
        // Updating everything at once admits interleavings with loops
        // (paper Fig. 2a), so at least two rounds are required.
        let inst = motivating_example();
        let exact = or_rounds(&inst, OrConfig::default()).unwrap();
        assert!(exact.round_count() >= 2, "rounds: {:?}", exact.rounds);
    }

    #[test]
    fn round_condition_rejects_v3_v4_together_initially() {
        let inst = motivating_example();
        let flow = inst.flow();
        let updated = BTreeSet::new();
        // v3 and v4 both in flight: interleaving "v4 first" creates
        // the v3 ⇄ v4 bounce.
        let cand: BTreeSet<SwitchId> = [sid(2), sid(3)].into();
        assert!(!round_is_loop_free(flow, &updated, &cand));
        // v2 alone is fine.
        let cand: BTreeSet<SwitchId> = [sid(1)].into();
        assert!(round_is_loop_free(flow, &updated, &cand));
    }

    #[test]
    fn execute_respects_rounds_and_barriers() {
        let inst = motivating_example();
        let out = or_rounds(&inst, OrConfig::default()).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let schedule = out.execute(inst.flow(), (0, 3), &mut rng);
        assert_eq!(
            schedule.len(),
            inst.flow().switches_to_update().len(),
            "every switch lands"
        );
        // Later rounds must start strictly after the previous round's
        // latest landing.
        let mut prev_latest: Option<TimeStep> = None;
        for round in &out.rounds {
            let times: Vec<TimeStep> = round
                .iter()
                .map(|&v| schedule.get(inst.flow().id, v).unwrap())
                .collect();
            let earliest = *times.iter().min().unwrap();
            if let Some(pl) = prev_latest {
                assert!(earliest > pl, "barrier violated");
            }
            prev_latest = Some(*times.iter().max().unwrap());
        }
    }

    #[test]
    fn or_execution_is_loop_free_but_can_congest() {
        // The defining property: OR avoids loops by construction but
        // ignores capacities — on the motivating example (unit
        // capacities) some latency draws congest.
        let inst = motivating_example();
        let out = or_rounds(&inst, OrConfig::default()).unwrap();
        let mut congested = 0;
        for seed in 0..20 {
            let mut rng = StdRng::seed_from_u64(seed);
            let schedule = out.execute(inst.flow(), (0, 4), &mut rng);
            let report = FluidSimulator::check(&inst, &schedule);
            assert!(report.loop_free(), "OR guarantees loop freedom: {report}");
            if !report.congestion_free() {
                congested += 1;
            }
        }
        assert!(
            congested > 0,
            "OR must congest for some interleavings on unit capacities"
        );
    }

    #[test]
    fn execute_certified_agrees_with_the_simulator() {
        // The certified execution path must give the simulator's
        // verdict on every draw, and certified draws must carry a
        // re-validating proof while rejected ones name a real link.
        let inst = motivating_example();
        let out = or_rounds(&inst, OrConfig::default()).unwrap();
        for seed in 0..20 {
            let mut rng = StdRng::seed_from_u64(seed);
            let (schedule, verdict) = out.execute_certified(&inst, (0, 4), &mut rng);
            let report = FluidSimulator::check(&inst, &schedule);
            match verdict {
                Ok(cert) => {
                    assert!(report.congestion_free(), "seed {seed}: {report}");
                    assert_eq!(cert.check(&inst), Ok(()));
                }
                Err(v) => {
                    assert!(!report.congestion_free(), "seed {seed}: spurious {v}");
                }
            }
        }
    }

    #[test]
    fn empty_update_set_is_zero_rounds() {
        use chronus_net::{Flow, FlowId, NetworkBuilder, Path};
        let mut b = NetworkBuilder::with_switches(3);
        b.add_link(sid(0), sid(1), 1, 1).unwrap();
        b.add_link(sid(1), sid(2), 1, 1).unwrap();
        let p = Path::new(vec![sid(0), sid(1), sid(2)]);
        let flow = Flow::new(FlowId(0), 1, p.clone(), p).unwrap();
        let inst = UpdateInstance::single(b.build(), flow).unwrap();
        let out = or_rounds(&inst, OrConfig::default()).unwrap();
        assert_eq!(out.round_count(), 0);
    }
}
