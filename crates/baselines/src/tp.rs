//! **TP** — two-phase updates (Reitblatt et al. [20]).
//!
//! Phase 1 installs, on every switch of the final path, a duplicate
//! rule matching the *new* version tag (the paper uses VLAN IDs as
//! version numbers); existing traffic still carries the old tag and
//! ignores them. Phase 2 flips the ingress stamp: packets entering
//! from the flip instant on carry the new tag and follow the new
//! rules end-to-end. Old rules are garbage collected once in-flight
//! old-tag packets drain.
//!
//! Per-packet consistency means no packet ever sees a mixed
//! configuration, so TP cannot loop — but during the transition every
//! switch on either path holds rules for *both* versions, doubling
//! flow-table occupancy (the drawback quantified in Fig. 9), and the
//! changeover can still congest shared links when the new path
//! delivers the stamped packets to a shared link sooner than the old
//! path drains it.
// `expect` unwraps the two-generation invariant `tp_plan` creates.
#![allow(clippy::expect_used)]

use chronus_net::{Capacity, Flow, SwitchId, TimeStep, UpdateInstance};
use chronus_timenet::{CongestionEvent, SimulationReport};
use std::collections::{BTreeSet, HashMap};

/// One rule operation in a two-phase plan.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RuleOp {
    /// Install a rule matching the new version tag at this switch.
    InstallTagged(SwitchId),
    /// Flip the ingress stamp at the source switch.
    FlipStamp(SwitchId),
    /// Remove the old-version rule at this switch.
    RemoveOld(SwitchId),
}

/// A two-phase update plan for one flow, plus its rule-space ledger.
#[derive(Clone, Debug)]
pub struct TpPlan {
    /// Phase 1: tagged duplicates on every final-path switch.
    pub phase1: Vec<RuleOp>,
    /// Phase 2: the ingress stamp flip.
    pub phase2: RuleOp,
    /// Cleanup after old packets drain.
    pub cleanup: Vec<RuleOp>,
    baseline: usize,
    peak: usize,
}

impl TpPlan {
    /// Rules installed for this flow before the update begins: one
    /// forwarding rule per initial-path switch (the destination's
    /// delivery rule included) plus the ingress tagging rule.
    pub fn baseline_rule_count(&self) -> usize {
        self.baseline
    }

    /// Peak rules held *during* the transition: the old generation,
    /// the complete new tagged generation, and the ingress stamp —
    /// the quantity Fig. 9 reports for TP.
    pub fn peak_rule_count(&self) -> usize {
        self.peak
    }
}

/// Builds the two-phase plan for one flow.
pub fn tp_plan(flow: &Flow) -> TpPlan {
    let _span = chronus_trace::span!(
        "baselines.tp_plan",
        initial_hops = flow.initial.len(),
        final_hops = flow.fin.len()
    )
    .entered();
    let phase1: Vec<RuleOp> = flow
        .fin
        .hops()
        .iter()
        .map(|&v| RuleOp::InstallTagged(v))
        .collect();
    let cleanup: Vec<RuleOp> = flow
        .initial
        .hops()
        .iter()
        .map(|&v| RuleOp::RemoveOld(v))
        .collect();
    // Old generation: one rule per initial-path switch (destination
    // delivery included) + the ingress tagging rule.
    let baseline = flow.initial.len() + 1;
    // Transition: old generation + full tagged new generation + the
    // flipped stamp rule.
    let peak = flow.initial.len() + flow.fin.len() + 1;
    TpPlan {
        phase1,
        phase2: RuleOp::FlipStamp(flow.source()),
        cleanup,
        baseline,
        peak,
    }
}

/// Peak rules Chronus needs for the same migration: one rule per
/// switch on either path — actions are rewritten in place, fresh
/// switches add a single rule, nothing is duplicated (§II-A: "we only
/// modify the action in the flow table during the update process").
pub fn chronus_peak_rule_count(flow: &Flow) -> usize {
    let union: BTreeSet<SwitchId> = flow
        .initial
        .hops()
        .iter()
        .chain(flow.fin.hops())
        .copied()
        .collect();
    union.len()
}

/// Executes the two-phase changeover analytically: old-tag cohorts
/// (emitted before `flip_time`) follow `p_init`, new-tag cohorts
/// follow `p_fin`; the per-link loads of both streams are summed and
/// checked against capacities. Returns a standard
/// [`SimulationReport`] (loops and blackholes are impossible under
/// per-packet consistency, so only congestion events can appear).
pub fn tp_flip_report(instance: &UpdateInstance, flip_time: TimeStep) -> SimulationReport {
    let mut loads: HashMap<(SwitchId, SwitchId), HashMap<TimeStep, Capacity>> = HashMap::new();

    for flow in &instance.flows {
        let net = &instance.network;
        let phi_init = flow.initial.total_delay(net).unwrap_or(0) as TimeStep;
        let phi_fin = flow.fin.total_delay(net).unwrap_or(0) as TimeStep;
        // Old-tag cohorts still relevant around the flip.
        for tau in (flip_time - phi_init - 2)..flip_time {
            let mut t = tau;
            for (u, v) in flow.initial.edges() {
                *loads.entry((u, v)).or_default().entry(t).or_insert(0) += flow.demand;
                t += net.delay(u, v).unwrap_or(1) as TimeStep;
            }
        }
        // New-tag cohorts until the pattern repeats.
        for tau in flip_time..=(flip_time + phi_fin + phi_init + 2) {
            let mut t = tau;
            for (u, v) in flow.fin.edges() {
                *loads.entry((u, v)).or_default().entry(t).or_insert(0) += flow.demand;
                t += net.delay(u, v).unwrap_or(1) as TimeStep;
            }
        }
    }

    let mut report = SimulationReport::default();
    for (&(u, v), series) in &loads {
        let capacity = instance
            .network
            .capacity(u, v)
            .expect("loads only on real links");
        for (&t, &load) in series {
            if t >= 0 && load > capacity {
                report.congestion.push(CongestionEvent {
                    src: u,
                    dst: v,
                    time: t,
                    load,
                    capacity,
                });
            }
        }
    }
    report.congestion.sort_by_key(|c| (c.time, c.src, c.dst));
    report.link_loads = loads
        .into_iter()
        .map(|(k, m)| (k, m.into_iter().collect()))
        .collect();
    report
}

/// Certifies the two-phase changeover at `flip_time` with the
/// independent static certifier: either a machine-checkable
/// [`chronus_verify::Certificate`] of congestion-freedom over the
/// overlap window, or the [`chronus_verify::Violation`] naming the
/// congested link and interval. Mirrors exactly the cohort windows of
/// [`tp_flip_report`] (pinned by a differential test), with zero
/// shared code.
pub fn tp_certificate(
    instance: &UpdateInstance,
    flip_time: TimeStep,
) -> Result<chronus_verify::Certificate, chronus_verify::Violation> {
    chronus_verify::certify_two_phase(instance, flip_time)
}

#[cfg(test)]
mod tests {
    use super::*;
    use chronus_net::{motivating_example, Flow, FlowId, NetworkBuilder, Path};

    fn sid(i: u32) -> SwitchId {
        SwitchId(i)
    }

    #[test]
    fn plan_shape_on_motivating_example() {
        let inst = motivating_example();
        let plan = tp_plan(inst.flow());
        // New path has 5 hops → 5 tagged installs.
        assert_eq!(plan.phase1.len(), 5);
        assert_eq!(plan.phase2, RuleOp::FlipStamp(sid(0)));
        assert_eq!(plan.cleanup.len(), 6);
        // 6 old + 1 tag = 7 baseline; 6 + 5 + 1 = 12 peak.
        assert_eq!(plan.baseline_rule_count(), 7);
        assert_eq!(plan.peak_rule_count(), 12);
    }

    #[test]
    fn chronus_needs_fewer_rules() {
        let inst = motivating_example();
        let flow = inst.flow();
        let chronus = chronus_peak_rule_count(flow);
        let tp = tp_plan(flow).peak_rule_count();
        // Union of both paths is 6 switches vs 12 TP rules: the ≥ 50%
        // saving Fig. 9 reports.
        assert_eq!(chronus, 6);
        assert!(tp >= 2 * chronus);
    }

    #[test]
    fn per_packet_consistency_never_loops() {
        let inst = motivating_example();
        let report = tp_flip_report(&inst, 3);
        assert!(report.loops.is_empty());
        assert!(report.blackholes.is_empty());
    }

    #[test]
    fn tp_congests_when_new_prefix_is_faster() {
        // Shared tail with a fast shortcut: the flip cannot avoid
        // overlapping the streams on <2,3> (same analysis as Chronus'
        // infeasible case — TP has no way out either).
        let mut b = NetworkBuilder::with_switches(4);
        b.add_link(sid(0), sid(1), 1, 1).unwrap();
        b.add_link(sid(1), sid(2), 1, 1).unwrap();
        b.add_link(sid(2), sid(3), 1, 1).unwrap();
        b.add_link(sid(0), sid(2), 1, 1).unwrap();
        let flow = Flow::new(
            FlowId(0),
            1,
            Path::new(vec![sid(0), sid(1), sid(2), sid(3)]),
            Path::new(vec![sid(0), sid(2), sid(3)]),
        )
        .unwrap();
        let inst = UpdateInstance::single(b.build(), flow).unwrap();
        let report = tp_flip_report(&inst, 2);
        assert!(!report.congestion_free());
        assert_eq!(report.congestion[0].src, sid(2));
    }

    #[test]
    fn tp_clean_when_new_prefix_is_slower() {
        let mut b = NetworkBuilder::with_switches(4);
        b.add_link(sid(0), sid(1), 1, 1).unwrap();
        b.add_link(sid(1), sid(2), 1, 1).unwrap();
        b.add_link(sid(2), sid(3), 1, 1).unwrap();
        b.add_link(sid(0), sid(2), 1, 3).unwrap();
        let flow = Flow::new(
            FlowId(0),
            1,
            Path::new(vec![sid(0), sid(1), sid(2), sid(3)]),
            Path::new(vec![sid(0), sid(2), sid(3)]),
        )
        .unwrap();
        let inst = UpdateInstance::single(b.build(), flow).unwrap();
        let report = tp_flip_report(&inst, 2);
        assert!(report.congestion_free(), "{report}");
    }

    #[test]
    fn tp_certificate_matches_flip_report_exactly() {
        // Differential pin: the independent certifier's two-phase
        // analysis must reproduce tp_flip_report's verdict, congestion
        // events and load surface on randomized instances and flips.
        use chronus_net::{InstanceGenerator, InstanceGeneratorConfig};
        let mut agreed = 0;
        for seed in 0..120u64 {
            let n = 5 + (seed % 7) as usize;
            let Some(inst) =
                InstanceGenerator::new(InstanceGeneratorConfig::paper(n, seed)).generate()
            else {
                continue;
            };
            let flip = (seed % 9) as TimeStep;
            let report = tp_flip_report(&inst, flip);
            match tp_certificate(&inst, flip) {
                Ok(cert) => {
                    assert!(
                        report.congestion_free(),
                        "seed {seed} flip {flip}: certifier passed, report congests"
                    );
                    assert_eq!(cert.check(&inst), Ok(()));
                    // Load surfaces agree peak-for-peak on every link.
                    for b in &cert.link_bounds {
                        let sim_peak = report
                            .link_loads
                            .get(&(b.src, b.dst))
                            .map(|m| {
                                m.iter()
                                    .filter(|(&t, _)| t >= 0)
                                    .map(|(_, &l)| l)
                                    .max()
                                    .unwrap_or(0)
                            })
                            .unwrap_or(0);
                        assert_eq!(b.peak, sim_peak, "seed {seed} link {}->{}", b.src, b.dst);
                    }
                }
                Err(v) => {
                    assert!(
                        !report.congestion_free(),
                        "seed {seed} flip {flip}: certifier rejected ({v}), report clean"
                    );
                    // The named link and first instant match the
                    // report's earliest congestion event.
                    if let chronus_verify::Violation::Congestion {
                        src, dst, start, ..
                    } = v
                    {
                        let first = &report.congestion[0];
                        assert_eq!((src, dst, start), (first.src, first.dst, first.time));
                    } else {
                        panic!("two-phase can only congest, got {v}");
                    }
                }
            }
            agreed += 1;
        }
        assert!(agreed >= 40, "need real coverage, got {agreed}");
    }

    #[test]
    fn loads_cover_both_streams() {
        let inst = motivating_example();
        let report = tp_flip_report(&inst, 3);
        // Old path loaded before the changeover, new path after.
        assert!(report.peak_load(sid(0), sid(1)) >= 1); // old first link
        assert!(report.peak_load(sid(0), sid(3)) >= 1); // new first link
    }
}
