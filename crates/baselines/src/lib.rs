//! # chronus-baselines — the paper's comparison schemes
//!
//! §V of the paper compares Chronus against two prior approaches:
//!
//! - [`or`] — **OR**, order-replacement updates (Ludwig et al.,
//!   PODC'15 [15]): the controller updates switches in rounds,
//!   minimizing the number of rounds subject to loop-freedom under
//!   *any* asynchronous interleaving within a round. Capacities and
//!   link delays are ignored — which is exactly why OR exhibits the
//!   transient congestion Figs. 6–8 measure.
//! - [`tp`] — **TP**, two-phase updates (Reitblatt et al.,
//!   SIGCOMM'12 [20]): version-tagged duplicate rules are installed
//!   everywhere, the ingress stamp flips, and old rules are garbage
//!   collected. Per-packet consistency is preserved, but the flow
//!   table must hold both rule generations at once — the rule-space
//!   overhead Fig. 9 measures.
//!
//! Both baselines produce artifacts the rest of the workspace can
//! execute and measure: OR rounds become a [`chronus_timenet::Schedule`]
//! once per-switch installation latencies are drawn (the paper samples
//! them "from the data of [9]", i.e. Dionysus), and TP produces a
//! rule-count ledger plus an analytic load profile.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(
    not(test),
    deny(clippy::unwrap_used, clippy::expect_used, clippy::indexing_slicing)
)]

pub mod or;
pub mod tp;

pub use or::{or_rounds, or_rounds_greedy, OrConfig, OrOutcome};
pub use tp::{tp_plan, TpPlan};
