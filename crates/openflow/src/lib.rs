//! # chronus-openflow — an OpenFlow-style data-plane substrate
//!
//! The paper's prototype runs on OpenFlow 1.3 switches driven by a
//! Floodlight controller (§V-A). This crate reproduces the parts of
//! that stack the evaluation exercises, from scratch:
//!
//! - [`types`] — IPv4 prefixes, packet headers, match fields (in-port,
//!   source/destination prefix, VLAN tag — the paper's version tag),
//!   and actions;
//! - [`table`] — priority-ordered flow tables with longest-prefix
//!   match, per-rule byte/packet counters (the counters the paper's
//!   statistics module polls to compute Fig. 6's bandwidth
//!   consumption), in-place *action modification* (the operation
//!   Chronus relies on to avoid rule duplication) and a configurable
//!   capacity limit (the "limited flow table space" that motivates
//!   avoiding two-phase headroom);
//! - [`messages`] — the controller-to-switch messages Algorithm 5
//!   sends: `FlowMod` (add/modify/delete), `BarrierRequest`/
//!   `BarrierReply`, and counter-polling stats messages;
//! - [`render`] — pretty-printing of flow tables in the layout of the
//!   paper's Table II.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(
    not(test),
    deny(clippy::unwrap_used, clippy::expect_used, clippy::indexing_slicing)
)]

pub mod messages;
pub mod render;
pub mod table;
pub mod types;

pub use messages::{FlowMod, FlowModCommand, OfMessage, Xid};
pub use table::{FlowRule, FlowTable, RuleId, TableError};
pub use types::{Action, Ipv4Prefix, Match, Packet, PortId, VlanId};
