//! Controller ⇄ switch messages.
//!
//! Algorithm 5 sends update messages followed by barrier requests and
//! waits for the barrier replies ("In Floodlight, OpenFlow barrier
//! messages are implemented by the OFBarrierRequest and OFBarrierReply
//! classes"). This module defines exactly the message set the
//! prototype exercises, plus the stats messages the bandwidth monitor
//! polls.

use crate::table::RuleId;
use crate::types::{Action, Match};
use std::fmt;

/// Transaction id correlating requests and replies.
pub type Xid = u64;

/// FlowMod subcommands.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FlowModCommand {
    /// Install a new rule.
    Add,
    /// Rewrite the actions of an existing rule (Chronus' in-place
    /// update).
    ModifyActions,
    /// Delete a rule.
    Delete,
}

/// A flow-table modification message.
#[derive(Clone, Debug, PartialEq)]
pub struct FlowMod {
    /// Transaction id.
    pub xid: Xid,
    /// What to do.
    pub command: FlowModCommand,
    /// Target rule for modify/delete.
    pub rule: Option<RuleId>,
    /// Priority for adds.
    pub priority: u16,
    /// Match fields for adds.
    pub mat: Match,
    /// New action list (adds and modifies).
    pub actions: Vec<Action>,
}

impl FlowMod {
    /// An `Add` FlowMod.
    pub fn add(xid: Xid, priority: u16, mat: Match, actions: Vec<Action>) -> Self {
        FlowMod {
            xid,
            command: FlowModCommand::Add,
            rule: None,
            priority,
            mat,
            actions,
        }
    }

    /// A `ModifyActions` FlowMod targeting an installed rule.
    pub fn modify(xid: Xid, rule: RuleId, actions: Vec<Action>) -> Self {
        FlowMod {
            xid,
            command: FlowModCommand::ModifyActions,
            rule: Some(rule),
            priority: 0,
            mat: Match::default(),
            actions,
        }
    }

    /// A `Delete` FlowMod targeting an installed rule.
    pub fn delete(xid: Xid, rule: RuleId) -> Self {
        FlowMod {
            xid,
            command: FlowModCommand::Delete,
            rule: Some(rule),
            priority: 0,
            mat: Match::default(),
            actions: Vec::new(),
        }
    }
}

/// The controller ⇄ switch message set.
#[derive(Clone, Debug, PartialEq)]
pub enum OfMessage {
    /// Flow-table modification.
    FlowMod(FlowMod),
    /// Barrier request: the switch must answer only after every
    /// earlier message took effect.
    BarrierRequest(Xid),
    /// Barrier reply.
    BarrierReply(Xid),
    /// Poll a switch's byte/packet counters.
    StatsRequest(Xid),
    /// Counter snapshot: total packets and bytes forwarded.
    StatsReply {
        /// Correlating transaction id.
        xid: Xid,
        /// Packets forwarded since boot.
        packets: u64,
        /// Bytes forwarded since boot.
        bytes: u64,
    },
    /// Switch-to-controller: a packet missed the table (punt).
    PacketIn {
        /// Correlating transaction id.
        xid: Xid,
        /// Size of the punted packet.
        bytes: u64,
    },
}

impl OfMessage {
    /// The message's transaction id.
    pub fn xid(&self) -> Xid {
        match self {
            OfMessage::FlowMod(m) => m.xid,
            OfMessage::BarrierRequest(x)
            | OfMessage::BarrierReply(x)
            | OfMessage::StatsRequest(x) => *x,
            OfMessage::StatsReply { xid, .. } | OfMessage::PacketIn { xid, .. } => *xid,
        }
    }

    /// `true` for messages travelling controller → switch.
    pub fn is_controller_to_switch(&self) -> bool {
        matches!(
            self,
            OfMessage::FlowMod(_) | OfMessage::BarrierRequest(_) | OfMessage::StatsRequest(_)
        )
    }
}

impl fmt::Display for OfMessage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OfMessage::FlowMod(m) => write!(f, "FlowMod[{:?} xid={}]", m.command, m.xid),
            OfMessage::BarrierRequest(x) => write!(f, "BarrierRequest[xid={x}]"),
            OfMessage::BarrierReply(x) => write!(f, "BarrierReply[xid={x}]"),
            OfMessage::StatsRequest(x) => write!(f, "StatsRequest[xid={x}]"),
            OfMessage::StatsReply {
                xid,
                packets,
                bytes,
            } => {
                write!(f, "StatsReply[xid={xid} pkts={packets} bytes={bytes}]")
            }
            OfMessage::PacketIn { xid, bytes } => write!(f, "PacketIn[xid={xid} bytes={bytes}]"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_xids() {
        let add = FlowMod::add(1, 5, Match::default(), vec![Action::Flood]);
        assert_eq!(add.command, FlowModCommand::Add);
        let m = OfMessage::FlowMod(add);
        assert_eq!(m.xid(), 1);
        assert!(m.is_controller_to_switch());

        let modify = FlowMod::modify(2, RuleId(3), vec![Action::Output(1)]);
        assert_eq!(modify.command, FlowModCommand::ModifyActions);
        assert_eq!(modify.rule, Some(RuleId(3)));

        let del = FlowMod::delete(3, RuleId(4));
        assert_eq!(del.command, FlowModCommand::Delete);
        assert!(del.actions.is_empty());

        assert!(!OfMessage::BarrierReply(9).is_controller_to_switch());
        assert_eq!(OfMessage::BarrierRequest(7).xid(), 7);
        assert_eq!(
            OfMessage::StatsReply {
                xid: 8,
                packets: 1,
                bytes: 2
            }
            .xid(),
            8
        );
        assert_eq!(OfMessage::PacketIn { xid: 5, bytes: 64 }.xid(), 5);
    }

    #[test]
    fn display_forms() {
        assert!(OfMessage::BarrierRequest(1).to_string().contains("xid=1"));
        let s = OfMessage::StatsReply {
            xid: 2,
            packets: 10,
            bytes: 999,
        }
        .to_string();
        assert!(s.contains("bytes=999"));
    }
}
