//! Priority-ordered flow tables with longest-prefix match, counters
//! and a capacity limit.

use crate::types::{Action, Match, Packet};
use std::fmt;

/// Identifier of a rule within one table.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct RuleId(pub u64);

/// Per-rule traffic counters — the counters the paper's statistics
/// module polls ("the controller queries the byte counters collected
/// at every two time points", §V-A).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Counters {
    /// Packets matched.
    pub packets: u64,
    /// Bytes matched.
    pub bytes: u64,
}

/// One flow rule.
#[derive(Clone, Debug)]
pub struct FlowRule {
    /// Table-unique id.
    pub id: RuleId,
    /// Higher wins; destination-prefix length breaks ties (LPM).
    pub priority: u16,
    /// Match fields.
    pub mat: Match,
    /// Action list, applied in order.
    pub actions: Vec<Action>,
    /// Traffic counters.
    pub counters: Counters,
}

/// Errors from table mutation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TableError {
    /// The table's rule capacity is exhausted — the "flow table space
    /// is limited" scenario of §I that two-phase updates aggravate.
    TableFull {
        /// The configured capacity.
        capacity: usize,
    },
    /// No rule with the given id.
    NoSuchRule(RuleId),
}

impl fmt::Display for TableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableError::TableFull { capacity } => {
                write!(f, "flow table full (capacity {capacity})")
            }
            TableError::NoSuchRule(id) => write!(f, "no rule {id:?}"),
        }
    }
}

impl std::error::Error for TableError {}

/// A single flow table.
///
/// Lookup selects the matching rule with the highest priority,
/// breaking ties by longest destination prefix then lowest id
/// (deterministic). An optional capacity cap models TCAM space.
#[derive(Clone, Debug)]
pub struct FlowTable {
    rules: Vec<FlowRule>,
    capacity: Option<usize>,
    next_id: u64,
}

impl Default for FlowTable {
    fn default() -> Self {
        Self::new()
    }
}

impl FlowTable {
    /// An unbounded table.
    pub fn new() -> Self {
        FlowTable {
            rules: Vec::new(),
            capacity: None,
            next_id: 0,
        }
    }

    /// A table holding at most `capacity` rules.
    pub fn with_capacity_limit(capacity: usize) -> Self {
        FlowTable {
            rules: Vec::new(),
            capacity: Some(capacity),
            next_id: 0,
        }
    }

    /// Number of installed rules — the Fig. 9 metric.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// `true` if no rules are installed.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// The configured capacity, if bounded.
    pub fn capacity_limit(&self) -> Option<usize> {
        self.capacity
    }

    /// Installs a rule.
    ///
    /// # Errors
    /// [`TableError::TableFull`] when at capacity.
    pub fn add(
        &mut self,
        priority: u16,
        mat: Match,
        actions: Vec<Action>,
    ) -> Result<RuleId, TableError> {
        if let Some(cap) = self.capacity {
            if self.rules.len() >= cap {
                return Err(TableError::TableFull { capacity: cap });
            }
        }
        let id = RuleId(self.next_id);
        self.next_id += 1;
        self.rules.push(FlowRule {
            id,
            priority,
            mat,
            actions,
            counters: Counters::default(),
        });
        // Control-plane churn is process-wide observability (rule
        // installs are cold relative to packet lookups).
        chronus_trace::MetricsRegistry::global()
            .counter("chronus_openflow_rule_installs_total")
            .inc();
        Ok(id)
    }

    /// Rewrites a rule's action list *in place* — the Chronus update
    /// primitive ("we only modify the action in the flow table",
    /// §II-A). Match, priority and counters are untouched, and no
    /// table space is consumed.
    ///
    /// # Errors
    /// [`TableError::NoSuchRule`].
    pub fn modify_actions(&mut self, id: RuleId, actions: Vec<Action>) -> Result<(), TableError> {
        let rule = self
            .rules
            .iter_mut()
            .find(|r| r.id == id)
            .ok_or(TableError::NoSuchRule(id))?;
        rule.actions = actions;
        Ok(())
    }

    /// Removes a rule.
    ///
    /// # Errors
    /// [`TableError::NoSuchRule`].
    pub fn remove(&mut self, id: RuleId) -> Result<FlowRule, TableError> {
        let pos = self
            .rules
            .iter()
            .position(|r| r.id == id)
            .ok_or(TableError::NoSuchRule(id))?;
        chronus_trace::MetricsRegistry::global()
            .counter("chronus_openflow_rule_removals_total")
            .inc();
        Ok(self.rules.remove(pos))
    }

    /// Removes every rule matching a predicate, returning how many
    /// were removed (used by the two-phase cleanup).
    pub fn remove_where(&mut self, mut pred: impl FnMut(&FlowRule) -> bool) -> usize {
        let before = self.rules.len();
        self.rules.retain(|r| !pred(r));
        before - self.rules.len()
    }

    /// The rule a packet would hit, without updating counters.
    pub fn lookup(&self, pkt: &Packet) -> Option<&FlowRule> {
        self.rules
            .iter()
            .filter(|r| r.mat.matches(pkt))
            .max_by(|a, b| {
                (a.priority, a.mat.dst_len(), std::cmp::Reverse(a.id)).cmp(&(
                    b.priority,
                    b.mat.dst_len(),
                    std::cmp::Reverse(b.id),
                ))
            })
    }

    /// Processes a packet: finds the best rule, bumps its counters and
    /// returns its actions (empty = table miss, i.e. drop/punt).
    pub fn process(&mut self, pkt: &Packet) -> Vec<Action> {
        let id = self.lookup(pkt).map(|r| r.id);
        match id {
            Some(id) => {
                // `id` came from `lookup` over the same rule set.
                #[allow(clippy::expect_used)]
                let rule = self
                    .rules
                    .iter_mut()
                    .find(|r| r.id == id)
                    .expect("id came from lookup");
                rule.counters.packets += 1;
                rule.counters.bytes += pkt.bytes;
                rule.actions.clone()
            }
            None => Vec::new(),
        }
    }

    /// Iterator over the rules in insertion order.
    pub fn rules(&self) -> impl Iterator<Item = &FlowRule> {
        self.rules.iter()
    }

    /// A rule by id.
    pub fn rule(&self, id: RuleId) -> Option<&FlowRule> {
        self.rules.iter().find(|r| r.id == id)
    }

    /// Sum of byte counters across all rules (the per-switch total the
    /// statistics module samples).
    pub fn total_bytes(&self) -> u64 {
        self.rules.iter().map(|r| r.counters.bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(a: u8, b: u8, c: u8, d: u8) -> u32 {
        u32::from_be_bytes([a, b, c, d])
    }

    fn dst(p: &str) -> Match {
        Match::dst_prefix(p.parse().unwrap())
    }

    #[test]
    fn add_lookup_and_counters() {
        let mut t = FlowTable::new();
        let r1 = t
            .add(10, dst("10.0.1.0/24"), vec![Action::Output(1)])
            .unwrap();
        let _r2 = t
            .add(10, dst("10.0.0.0/8"), vec![Action::Output(2)])
            .unwrap();
        let pkt = Packet::new(3, ip(10, 1, 0, 1), ip(10, 0, 1, 5));
        // LPM: /24 wins over /8 at equal priority.
        assert_eq!(t.lookup(&pkt).unwrap().id, r1);
        let actions = t.process(&pkt);
        assert_eq!(actions, vec![Action::Output(1)]);
        assert_eq!(t.rule(r1).unwrap().counters.packets, 1);
        assert_eq!(t.rule(r1).unwrap().counters.bytes, 1500);
        assert_eq!(t.total_bytes(), 1500);
    }

    #[test]
    fn priority_beats_prefix_length() {
        let mut t = FlowTable::new();
        let _long = t
            .add(1, dst("10.0.1.0/30"), vec![Action::Output(1)])
            .unwrap();
        let high = t
            .add(9, dst("10.0.0.0/8"), vec![Action::Output(2)])
            .unwrap();
        let pkt = Packet::new(0, 0, ip(10, 0, 1, 1));
        assert_eq!(t.lookup(&pkt).unwrap().id, high);
    }

    #[test]
    fn table_miss_returns_empty() {
        let mut t = FlowTable::new();
        t.add(5, dst("10.0.1.0/24"), vec![Action::Output(1)])
            .unwrap();
        let pkt = Packet::new(0, 0, ip(192, 168, 0, 1));
        assert!(t.lookup(&pkt).is_none());
        assert!(t.process(&pkt).is_empty());
    }

    #[test]
    fn capacity_limit_enforced() {
        let mut t = FlowTable::with_capacity_limit(2);
        t.add(1, Match::default(), vec![Action::Drop]).unwrap();
        t.add(1, Match::default(), vec![Action::Drop]).unwrap();
        let err = t.add(1, Match::default(), vec![Action::Drop]).unwrap_err();
        assert_eq!(err, TableError::TableFull { capacity: 2 });
        assert_eq!(t.capacity_limit(), Some(2));
    }

    #[test]
    fn modify_actions_in_place() {
        let mut t = FlowTable::with_capacity_limit(1);
        let id = t
            .add(5, dst("10.0.2.0/24"), vec![Action::Output(1)])
            .unwrap();
        // The Chronus primitive: rewrite the action with the table full.
        t.modify_actions(id, vec![Action::Output(7)]).unwrap();
        assert_eq!(t.len(), 1);
        let pkt = Packet::new(0, 0, ip(10, 0, 2, 2));
        assert_eq!(t.lookup(&pkt).unwrap().actions, vec![Action::Output(7)]);
        assert!(matches!(
            t.modify_actions(RuleId(99), vec![]),
            Err(TableError::NoSuchRule(_))
        ));
    }

    #[test]
    fn remove_and_remove_where() {
        let mut t = FlowTable::new();
        let a = t
            .add(1, dst("10.0.1.0/24"), vec![Action::Output(1)])
            .unwrap();
        let _b = t
            .add(2, dst("10.0.2.0/24"), vec![Action::Output(2)])
            .unwrap();
        let removed = t.remove(a).unwrap();
        assert_eq!(removed.id, a);
        assert_eq!(t.len(), 1);
        assert!(t.remove(a).is_err());
        let n = t.remove_where(|r| r.priority == 2);
        assert_eq!(n, 1);
        assert!(t.is_empty());
    }

    #[test]
    fn deterministic_tie_break_prefers_older_rule() {
        let mut t = FlowTable::new();
        let first = t
            .add(5, dst("10.0.0.0/8"), vec![Action::Output(1)])
            .unwrap();
        let _second = t
            .add(5, dst("10.1.0.0/8"), vec![Action::Output(2)])
            .unwrap();
        // Both /8, same priority; only the first matches this packet
        // anyway, but craft an overlap to check the id tie-break:
        let _third = t
            .add(5, dst("10.0.0.0/8"), vec![Action::Output(3)])
            .unwrap();
        let pkt = Packet::new(0, 0, ip(10, 0, 0, 1));
        assert_eq!(t.lookup(&pkt).unwrap().id, first);
    }

    #[test]
    fn vlan_versioning_like_two_phase() {
        // Two generations side by side, disambiguated by tag — the TP
        // transition state.
        let mut t = FlowTable::new();
        let old = Match {
            dst: Some("10.0.9.0/24".parse().unwrap()),
            vlan: Some(1),
            ..Default::default()
        };
        let new = Match {
            dst: Some("10.0.9.0/24".parse().unwrap()),
            vlan: Some(2),
            ..Default::default()
        };
        t.add(5, old, vec![Action::Output(1)]).unwrap();
        t.add(5, new, vec![Action::Output(2)]).unwrap();
        let p_old = Packet::new(0, 0, ip(10, 0, 9, 1)).with_vlan(1);
        let p_new = Packet::new(0, 0, ip(10, 0, 9, 1)).with_vlan(2);
        assert_eq!(t.lookup(&p_old).unwrap().actions, vec![Action::Output(1)]);
        assert_eq!(t.lookup(&p_new).unwrap().actions, vec![Action::Output(2)]);
        assert_eq!(t.len(), 2, "two-phase doubles the rules");
    }
}
