//! Flow-table pretty-printing in the layout of the paper's Table II.
// Table rendering indexes fixed-width row/column vectors sized from
// its own headers.
#![allow(clippy::indexing_slicing)]

use crate::table::FlowTable;
use crate::types::Action;

/// Renders a flow table like the paper's Table II: one row per rule,
/// columns `InPort | SrcPfx | DstPfx | Tag | Action`.
pub fn render_table(title: &str, table: &FlowTable) -> String {
    let _span = chronus_trace::span!("openflow.render_table", rules = table.len()).entered();
    let mut rows: Vec<[String; 5]> = Vec::new();
    for r in table.rules() {
        let action = r
            .actions
            .iter()
            .map(Action::to_string)
            .collect::<Vec<_>>()
            .join(", ");
        rows.push([
            r.mat.in_port.map_or_else(|| "*".into(), |p| p.to_string()),
            r.mat.src.map_or_else(|| "*".into(), |p| p.to_string()),
            r.mat.dst.map_or_else(|| "*".into(), |p| p.to_string()),
            r.mat.vlan.map_or_else(|| "*".into(), |v| v.to_string()),
            action,
        ]);
    }
    let headers = ["InPort", "SrcPfx", "DstPfx", "Tag", "Action"];
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in &rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    out.push_str(&format!("Flow table at {title}\n"));
    let fmt_row = |cells: &[String]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<width$}", c, width = widths[i]))
            .collect::<Vec<_>>()
            .join(" | ")
    };
    let header_cells: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&header_cells));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 3 * (widths.len() - 1)));
    out.push('\n');
    for row in &rows {
        out.push_str(&fmt_row(row));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{Action, Ipv4Prefix, Match};

    #[test]
    fn renders_table_ii_layout() {
        let mut t = FlowTable::new();
        t.add(
            5,
            Match {
                in_port: Some(1),
                src: Some(Ipv4Prefix::host(u32::from_be_bytes([10, 0, 0, 1]))),
                dst: Some("10.0.12.0/24".parse().unwrap()),
                vlan: None,
            },
            vec![Action::Output(2)],
        )
        .unwrap();
        t.add(5, Match::default(), vec![Action::Flood]).unwrap();
        let s = render_table("source switch R1", &t);
        assert!(s.contains("Flow table at source switch R1"));
        assert!(s.contains("InPort | SrcPfx"));
        assert!(s.contains("10.0.12.0/24"));
        assert!(s.contains("Output: 2"));
        assert!(s.contains("Flood"));
        // Wildcards render as '*'.
        assert!(s.lines().last().unwrap().contains('*'));
    }
}
