//! Packet headers, match fields and actions.

use std::fmt;
use std::str::FromStr;

/// A switch port number.
pub type PortId = u16;

/// A VLAN tag — the paper uses VLAN IDs as two-phase version numbers.
pub type VlanId = u16;

/// An IPv4 prefix in CIDR notation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Ipv4Prefix {
    addr: u32,
    len: u8,
}

impl Ipv4Prefix {
    /// Creates a prefix, masking the address down to `len` bits.
    ///
    /// # Panics
    /// Panics if `len > 32`.
    pub fn new(addr: u32, len: u8) -> Self {
        assert!(len <= 32, "prefix length must be at most 32");
        Ipv4Prefix {
            addr: addr & Self::mask(len),
            len,
        }
    }

    /// The canonical all-matching prefix `0.0.0.0/0`.
    pub fn any() -> Self {
        Ipv4Prefix { addr: 0, len: 0 }
    }

    /// A /32 host prefix.
    pub fn host(addr: u32) -> Self {
        Ipv4Prefix { addr, len: 32 }
    }

    fn mask(len: u8) -> u32 {
        if len == 0 {
            0
        } else {
            u32::MAX << (32 - len)
        }
    }

    /// Prefix length in bits (a /0 is `is_any`, not "empty" — there is
    /// deliberately no `is_empty`).
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> u8 {
        self.len
    }

    /// `true` for the zero-length prefix.
    pub fn is_any(&self) -> bool {
        self.len == 0
    }

    /// The masked network address.
    pub fn network(&self) -> u32 {
        self.addr
    }

    /// Does `ip` fall inside this prefix?
    pub fn contains(&self, ip: u32) -> bool {
        (ip & Self::mask(self.len)) == self.addr
    }
}

impl fmt::Display for Ipv4Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let a = self.addr;
        write!(
            f,
            "{}.{}.{}.{}/{}",
            a >> 24,
            (a >> 16) & 0xff,
            (a >> 8) & 0xff,
            a & 0xff,
            self.len
        )
    }
}

/// Error parsing an [`Ipv4Prefix`] from text.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ParsePrefixError;

impl fmt::Display for ParsePrefixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "expected a.b.c.d/len")
    }
}

impl std::error::Error for ParsePrefixError {}

impl FromStr for Ipv4Prefix {
    type Err = ParsePrefixError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (ip, len) = s.split_once('/').ok_or(ParsePrefixError)?;
        let len: u8 = len.parse().map_err(|_| ParsePrefixError)?;
        if len > 32 {
            return Err(ParsePrefixError);
        }
        let mut addr: u32 = 0;
        let mut octets = 0;
        for part in ip.split('.') {
            let o: u8 = part.parse().map_err(|_| ParsePrefixError)?;
            addr = (addr << 8) | o as u32;
            octets += 1;
        }
        if octets != 4 {
            return Err(ParsePrefixError);
        }
        Ok(Ipv4Prefix::new(addr, len))
    }
}

/// A (simplified) packet header, as seen by the match pipeline.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Packet {
    /// Ingress port at the current switch.
    pub in_port: PortId,
    /// Source IPv4 address.
    pub src: u32,
    /// Destination IPv4 address.
    pub dst: u32,
    /// VLAN tag, if stamped (the two-phase version number).
    pub vlan: Option<VlanId>,
    /// Payload size in bytes (for byte counters).
    pub bytes: u64,
}

impl Packet {
    /// A convenience constructor with 1500-byte payload and no tag.
    pub fn new(in_port: PortId, src: u32, dst: u32) -> Self {
        Packet {
            in_port,
            src,
            dst,
            vlan: None,
            bytes: 1500,
        }
    }

    /// Returns a copy stamped with a VLAN tag.
    pub fn with_vlan(mut self, vlan: VlanId) -> Self {
        self.vlan = Some(vlan);
        self
    }
}

/// OpenFlow-style match fields; `None` is a wildcard (paper Table II:
/// `*` entries).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Match {
    /// Ingress port.
    pub in_port: Option<PortId>,
    /// Source prefix.
    pub src: Option<Ipv4Prefix>,
    /// Destination prefix — the paper's forwarding key ("we use the
    /// destination IP address as the matching field").
    pub dst: Option<Ipv4Prefix>,
    /// VLAN tag.
    pub vlan: Option<VlanId>,
}

impl Match {
    /// A match on destination prefix only.
    pub fn dst_prefix(p: Ipv4Prefix) -> Self {
        Match {
            dst: Some(p),
            ..Default::default()
        }
    }

    /// Does the packet satisfy every specified field?
    pub fn matches(&self, pkt: &Packet) -> bool {
        if let Some(p) = self.in_port {
            if p != pkt.in_port {
                return false;
            }
        }
        if let Some(pre) = self.src {
            if !pre.contains(pkt.src) {
                return false;
            }
        }
        if let Some(pre) = self.dst {
            if !pre.contains(pkt.dst) {
                return false;
            }
        }
        if let Some(v) = self.vlan {
            if pkt.vlan != Some(v) {
                return false;
            }
        }
        true
    }

    /// Destination-prefix length used for longest-prefix tie-breaking
    /// (0 for wildcard).
    pub fn dst_len(&self) -> u8 {
        self.dst.map_or(0, |p| p.len())
    }
}

impl fmt::Display for Match {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn field<T: fmt::Display>(v: &Option<T>) -> String {
            v.as_ref().map_or_else(|| "*".into(), T::to_string)
        }
        write!(
            f,
            "in={} src={} dst={} vlan={}",
            field(&self.in_port),
            field(&self.src),
            field(&self.dst),
            field(&self.vlan)
        )
    }
}

/// Forwarding actions.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Action {
    /// Emit on a port.
    Output(PortId),
    /// Flood to all ports except the ingress (the paper floods ARP).
    Flood,
    /// Stamp the packet with a VLAN tag (two-phase phase 2).
    SetVlan(VlanId),
    /// Remove the VLAN tag.
    StripVlan,
    /// Drop the packet.
    Drop,
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Action::Output(p) => write!(f, "Output: {p}"),
            Action::Flood => write!(f, "Flood"),
            Action::SetVlan(v) => write!(f, "SetVlan: {v}"),
            Action::StripVlan => write!(f, "StripVlan"),
            Action::Drop => write!(f, "Drop"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(a: u8, b: u8, c: u8, d: u8) -> u32 {
        u32::from_be_bytes([a, b, c, d])
    }

    #[test]
    fn prefix_masking_and_contains() {
        let p = Ipv4Prefix::new(ip(10, 0, 1, 7), 24);
        assert_eq!(p.network(), ip(10, 0, 1, 0));
        assert!(p.contains(ip(10, 0, 1, 200)));
        assert!(!p.contains(ip(10, 0, 2, 1)));
        assert_eq!(p.to_string(), "10.0.1.0/24");
        assert!(Ipv4Prefix::any().contains(ip(1, 2, 3, 4)));
        assert!(Ipv4Prefix::host(ip(10, 0, 0, 1)).contains(ip(10, 0, 0, 1)));
        assert!(!Ipv4Prefix::host(ip(10, 0, 0, 1)).contains(ip(10, 0, 0, 2)));
    }

    #[test]
    fn prefix_parsing() {
        let p: Ipv4Prefix = "10.0.1.0/24".parse().unwrap();
        assert_eq!(p, Ipv4Prefix::new(ip(10, 0, 1, 0), 24));
        assert!("10.0.1.0".parse::<Ipv4Prefix>().is_err());
        assert!("10.0.1/24".parse::<Ipv4Prefix>().is_err());
        assert!("10.0.1.0/40".parse::<Ipv4Prefix>().is_err());
        assert!("a.b.c.d/8".parse::<Ipv4Prefix>().is_err());
    }

    #[test]
    #[should_panic(expected = "at most 32")]
    fn prefix_rejects_long_len() {
        let _ = Ipv4Prefix::new(0, 33);
    }

    #[test]
    fn match_semantics() {
        let m = Match {
            in_port: Some(1),
            src: None,
            dst: Some(Ipv4Prefix::new(ip(10, 0, 2, 0), 24)),
            vlan: Some(5),
        };
        let hit = Packet::new(1, ip(10, 0, 1, 1), ip(10, 0, 2, 9)).with_vlan(5);
        assert!(m.matches(&hit));
        let wrong_port = Packet::new(2, ip(10, 0, 1, 1), ip(10, 0, 2, 9)).with_vlan(5);
        assert!(!m.matches(&wrong_port));
        let no_vlan = Packet::new(1, ip(10, 0, 1, 1), ip(10, 0, 2, 9));
        assert!(!m.matches(&no_vlan));
        let wrong_dst = Packet::new(1, ip(10, 0, 1, 1), ip(10, 0, 3, 9)).with_vlan(5);
        assert!(!m.matches(&wrong_dst));
        assert_eq!(m.dst_len(), 24);
        assert!(Match::default().matches(&no_vlan));
    }

    #[test]
    fn displays() {
        let m = Match::dst_prefix(Ipv4Prefix::new(ip(10, 0, 2, 0), 24));
        assert_eq!(m.to_string(), "in=* src=* dst=10.0.2.0/24 vlan=*");
        assert_eq!(Action::Output(3).to_string(), "Output: 3");
        assert_eq!(Action::SetVlan(7).to_string(), "SetVlan: 7");
    }
}
