//! Simple (loop-free) switch paths.
// A `Path` holds >= 2 hops (checked at construction); first/last and
// windowed hop indexing rely on that invariant.
#![allow(clippy::expect_used, clippy::indexing_slicing)]

use crate::{Delay, NetError, Network, SwitchId};
use std::collections::HashSet;
use std::fmt;

/// A simple directed path through the network: a sequence of at least
/// two distinct switches.
///
/// `Path` is a plain sequence; whether all of its hops exist in a given
/// [`Network`] is checked by [`Path::validate`]. The paper requires both
/// `p_init` and `p_fin` to be loop-free (§II-B: the pre-computed path set
/// `P(f)` contains only loop-free paths).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Path {
    hops: Vec<SwitchId>,
}

impl Path {
    /// Creates a path from a hop sequence.
    ///
    /// The sequence is taken as-is; call [`Path::validate`] to check it
    /// against a network, or [`Path::try_new`] to validate simplicity
    /// eagerly.
    pub fn new(hops: Vec<SwitchId>) -> Self {
        Path { hops }
    }

    /// Creates a path, checking that it is simple and has ≥ 2 hops.
    ///
    /// # Errors
    /// [`NetError::PathTooShort`] or [`NetError::PathNotSimple`].
    pub fn try_new(hops: Vec<SwitchId>) -> Result<Self, NetError> {
        let p = Path { hops };
        p.check_simple()?;
        Ok(p)
    }

    fn check_simple(&self) -> Result<(), NetError> {
        if self.hops.len() < 2 {
            return Err(NetError::PathTooShort);
        }
        let mut seen = HashSet::with_capacity(self.hops.len());
        for &h in &self.hops {
            if !seen.insert(h) {
                return Err(NetError::PathNotSimple(h));
            }
        }
        Ok(())
    }

    /// The hop sequence.
    #[inline]
    pub fn hops(&self) -> &[SwitchId] {
        &self.hops
    }

    /// Number of switches on the path.
    #[inline]
    pub fn len(&self) -> usize {
        self.hops.len()
    }

    /// `true` if the path has no hops at all (an invalid path).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.hops.is_empty()
    }

    /// The source switch (first hop).
    ///
    /// # Panics
    /// Panics on an empty path; construct through [`Path::try_new`] to
    /// rule that out.
    pub fn source(&self) -> SwitchId {
        *self.hops.first().expect("path has a source")
    }

    /// The destination switch (last hop).
    ///
    /// # Panics
    /// Panics on an empty path.
    pub fn destination(&self) -> SwitchId {
        *self.hops.last().expect("path has a destination")
    }

    /// Returns `true` if `v` lies on the path.
    pub fn contains(&self, v: SwitchId) -> bool {
        self.hops.contains(&v)
    }

    /// The position of `v` on the path, if present.
    pub fn position(&self, v: SwitchId) -> Option<usize> {
        self.hops.iter().position(|&h| h == v)
    }

    /// The switch following `v` on this path, if `v` is a non-terminal
    /// hop. This is the forwarding rule the path induces at `v`.
    pub fn next_hop(&self, v: SwitchId) -> Option<SwitchId> {
        self.position(v).and_then(|i| self.hops.get(i + 1)).copied()
    }

    /// The switch preceding `v` on this path, if `v` is not the source.
    pub fn prev_hop(&self, v: SwitchId) -> Option<SwitchId> {
        match self.position(v) {
            Some(i) if i > 0 => Some(self.hops[i - 1]),
            _ => None,
        }
    }

    /// Iterator over the directed edges `(u, v)` of the path.
    pub fn edges(&self) -> impl Iterator<Item = (SwitchId, SwitchId)> + '_ {
        self.hops.windows(2).map(|w| (w[0], w[1]))
    }

    /// Checks the path against a network: simplicity, and existence of
    /// every hop-to-hop link.
    ///
    /// # Errors
    /// [`NetError::PathTooShort`], [`NetError::PathNotSimple`],
    /// [`NetError::UnknownSwitch`] or [`NetError::MissingLink`].
    pub fn validate(&self, net: &Network) -> Result<(), NetError> {
        self.check_simple()?;
        for &h in &self.hops {
            if !net.contains_switch(h) {
                return Err(NetError::UnknownSwitch(h));
            }
        }
        for (u, v) in self.edges() {
            if net.link_between(u, v).is_none() {
                return Err(NetError::MissingLink(u, v));
            }
        }
        Ok(())
    }

    /// Total transmission delay `φ(p) = Σ σ(u,v)` along the path
    /// (paper Algorithm 1 input).
    ///
    /// Returns `None` if a hop-to-hop link is missing from the network.
    pub fn total_delay(&self, net: &Network) -> Option<Delay> {
        let mut sum = 0;
        for (u, v) in self.edges() {
            sum += net.delay(u, v)?;
        }
        Some(sum)
    }

    /// Delay `φ` of the prefix ending at `v` (source has prefix delay 0).
    ///
    /// Returns `None` if `v` is not on the path or a link is missing.
    pub fn prefix_delay(&self, net: &Network, v: SwitchId) -> Option<Delay> {
        let pos = self.position(v)?;
        let mut sum = 0;
        for w in self.hops[..=pos].windows(2) {
            sum += net.delay(w[0], w[1])?;
        }
        Some(sum)
    }

    /// The suffix of the path starting at `v` (inclusive), if `v` is on
    /// the path.
    pub fn suffix_from(&self, v: SwitchId) -> Option<&[SwitchId]> {
        self.position(v).map(|i| &self.hops[i..])
    }

    /// The minimum link capacity along the path, or `None` if any link
    /// is missing (the `Λ.cons` quantity of paper Algorithm 1).
    pub fn bottleneck_capacity(&self, net: &Network) -> Option<u64> {
        self.edges()
            .map(|(u, v)| net.capacity(u, v))
            .collect::<Option<Vec<_>>>()
            .map(|caps| caps.into_iter().min().unwrap_or(u64::MAX))
    }
}

impl fmt::Display for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for h in &self.hops {
            if !first {
                write!(f, " -> ")?;
            }
            write!(f, "{h}")?;
            first = false;
        }
        Ok(())
    }
}

impl From<Vec<SwitchId>> for Path {
    fn from(hops: Vec<SwitchId>) -> Self {
        Path::new(hops)
    }
}

impl AsRef<[SwitchId]> for Path {
    fn as_ref(&self) -> &[SwitchId] {
        &self.hops
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NetworkBuilder;

    fn chain(n: usize) -> Network {
        let mut b = NetworkBuilder::with_switches(n);
        for i in 0..n - 1 {
            b.add_link(SwitchId(i as u32), SwitchId(i as u32 + 1), 10, i as u64 + 1)
                .unwrap();
        }
        b.build()
    }

    fn ids(v: &[u32]) -> Vec<SwitchId> {
        v.iter().copied().map(SwitchId).collect()
    }

    #[test]
    fn construction_and_accessors() {
        let p = Path::try_new(ids(&[0, 1, 2, 3])).unwrap();
        assert_eq!(p.len(), 4);
        assert!(!p.is_empty());
        assert_eq!(p.source(), SwitchId(0));
        assert_eq!(p.destination(), SwitchId(3));
        assert_eq!(p.next_hop(SwitchId(1)), Some(SwitchId(2)));
        assert_eq!(p.next_hop(SwitchId(3)), None);
        assert_eq!(p.prev_hop(SwitchId(1)), Some(SwitchId(0)));
        assert_eq!(p.prev_hop(SwitchId(0)), None);
        assert_eq!(p.position(SwitchId(2)), Some(2));
        assert!(p.contains(SwitchId(3)));
        assert!(!p.contains(SwitchId(9)));
        assert_eq!(p.suffix_from(SwitchId(2)), Some(&ids(&[2, 3])[..]));
    }

    #[test]
    fn rejects_short_and_looping_paths() {
        assert_eq!(
            Path::try_new(ids(&[0])).unwrap_err(),
            NetError::PathTooShort
        );
        assert_eq!(
            Path::try_new(ids(&[0, 1, 0])).unwrap_err(),
            NetError::PathNotSimple(SwitchId(0))
        );
    }

    #[test]
    fn validate_against_network() {
        let net = chain(4);
        let good = Path::new(ids(&[0, 1, 2, 3]));
        assert!(good.validate(&net).is_ok());

        let missing = Path::new(ids(&[0, 2]));
        assert_eq!(
            missing.validate(&net).unwrap_err(),
            NetError::MissingLink(SwitchId(0), SwitchId(2))
        );

        let unknown = Path::new(ids(&[0, 9]));
        assert_eq!(
            unknown.validate(&net).unwrap_err(),
            NetError::UnknownSwitch(SwitchId(9))
        );
    }

    #[test]
    fn delays_and_bottleneck() {
        let net = chain(4); // delays 1, 2, 3 along the chain
        let p = Path::new(ids(&[0, 1, 2, 3]));
        assert_eq!(p.total_delay(&net), Some(6));
        assert_eq!(p.prefix_delay(&net, SwitchId(0)), Some(0));
        assert_eq!(p.prefix_delay(&net, SwitchId(2)), Some(3));
        assert_eq!(p.prefix_delay(&net, SwitchId(9)), None);
        assert_eq!(p.bottleneck_capacity(&net), Some(10));
        let bad = Path::new(ids(&[0, 2]));
        assert_eq!(bad.total_delay(&net), None);
        assert_eq!(bad.bottleneck_capacity(&net), None);
    }

    #[test]
    fn edges_and_display() {
        let p = Path::new(ids(&[0, 1, 2]));
        let es: Vec<_> = p.edges().collect();
        assert_eq!(
            es,
            vec![(SwitchId(0), SwitchId(1)), (SwitchId(1), SwitchId(2))]
        );
        assert_eq!(p.to_string(), "s0 -> s1 -> s2");
        assert_eq!(p.as_ref().len(), 3);
        let q: Path = ids(&[0, 1, 2]).into();
        assert_eq!(p, q);
    }
}
