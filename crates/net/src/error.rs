//! Error type for network-model construction and validation.

use crate::{SwitchId, TimeStep};
use std::fmt;

/// Errors raised while building or validating the network model.
#[derive(Clone, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum NetError {
    /// A referenced switch id does not exist in the network.
    UnknownSwitch(SwitchId),
    /// A link `⟨u, v⟩` was added twice.
    DuplicateLink(SwitchId, SwitchId),
    /// Self-loop links `⟨v, v⟩` are not allowed.
    SelfLoop(SwitchId),
    /// Link delays must be strictly positive (see paper §II-B; a zero
    /// delay collapses the time-extended network).
    ZeroDelay(SwitchId, SwitchId),
    /// Link capacities must be strictly positive.
    ZeroCapacity(SwitchId, SwitchId),
    /// A path referenced a link `⟨u, v⟩` that is not in the network.
    MissingLink(SwitchId, SwitchId),
    /// A path visits the same switch twice (violates the static
    /// loop-freedom required of `p_init`/`p_fin`).
    PathNotSimple(SwitchId),
    /// A path has fewer than two hops.
    PathTooShort,
    /// `p_init` and `p_fin` do not share source and destination.
    EndpointMismatch {
        /// Endpoints of the initial path.
        init: (SwitchId, SwitchId),
        /// Endpoints of the final path.
        fin: (SwitchId, SwitchId),
    },
    /// A flow demand of zero is meaningless.
    ZeroDemand,
    /// A flow's demand exceeds the capacity of a link on one of its own
    /// paths, so even the static routing would be congested.
    DemandExceedsCapacity {
        /// Violating link tail.
        src: SwitchId,
        /// Violating link head.
        dst: SwitchId,
    },
    /// A schedule assigned an update to a history time step (`< 0`);
    /// the paper only allows updates at the current or future steps.
    UpdateInThePast(SwitchId, TimeStep),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::UnknownSwitch(s) => write!(f, "unknown switch {s}"),
            NetError::DuplicateLink(u, v) => write!(f, "duplicate link <{u}, {v}>"),
            NetError::SelfLoop(v) => write!(f, "self-loop on switch {v}"),
            NetError::ZeroDelay(u, v) => {
                write!(f, "link <{u}, {v}> must have a positive transmission delay")
            }
            NetError::ZeroCapacity(u, v) => {
                write!(f, "link <{u}, {v}> must have a positive capacity")
            }
            NetError::MissingLink(u, v) => write!(f, "no link <{u}, {v}> in the network"),
            NetError::PathNotSimple(v) => {
                write!(f, "path visits switch {v} more than once")
            }
            NetError::PathTooShort => write!(f, "a path needs at least two switches"),
            NetError::EndpointMismatch { init, fin } => write!(
                f,
                "initial path {} -> {} and final path {} -> {} must share endpoints",
                init.0, init.1, fin.0, fin.1
            ),
            NetError::ZeroDemand => write!(f, "flow demand must be positive"),
            NetError::DemandExceedsCapacity { src, dst } => write!(
                f,
                "flow demand exceeds the capacity of link <{src}, {dst}> on its own path"
            ),
            NetError::UpdateInThePast(v, t) => {
                write!(f, "switch {v} scheduled at history step {t}")
            }
        }
    }
}

impl std::error::Error for NetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_readable() {
        let e = NetError::DuplicateLink(SwitchId(1), SwitchId(2));
        assert_eq!(e.to_string(), "duplicate link <s1, s2>");
        let e = NetError::UpdateInThePast(SwitchId(3), -2);
        assert!(e.to_string().contains("history step -2"));
        let e = NetError::EndpointMismatch {
            init: (SwitchId(0), SwitchId(5)),
            fin: (SwitchId(0), SwitchId(4)),
        };
        assert!(e.to_string().contains("s5"));
        assert!(e.to_string().contains("s4"));
    }

    #[test]
    fn implements_std_error() {
        fn assert_err<E: std::error::Error>(_e: &E) {}
        assert_err(&NetError::PathTooShort);
    }
}
