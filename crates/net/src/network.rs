//! The directed network graph `G = (V, E)` and its builder.
// `LinkIdx` values are only minted by this builder, so indexing the
// link table with one cannot fail.
#![allow(clippy::indexing_slicing)]

use crate::{Capacity, Delay, Link, LinkIdx, NetError, SwitchId};
use std::collections::HashMap;
use std::fmt;

/// Immutable directed network graph with capacitated, delayed links.
///
/// Built through [`NetworkBuilder`]; once built, the topology is frozen.
/// All mutable update state (which rule a switch currently applies) lives
/// in the scheduling and simulation crates, never here — this mirrors
/// the paper's separation between the static graph `G` and the dynamic
/// flow over it.
#[derive(Clone, Debug)]
pub struct Network {
    names: Vec<String>,
    links: Vec<Link>,
    out_links: Vec<Vec<LinkIdx>>,
    in_links: Vec<Vec<LinkIdx>>,
    by_endpoints: HashMap<(SwitchId, SwitchId), LinkIdx>,
}

impl Network {
    /// Number of switches `|V|`.
    #[inline]
    pub fn switch_count(&self) -> usize {
        self.names.len()
    }

    /// Number of links `|E|`.
    #[inline]
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Iterator over all switch ids in the network.
    pub fn switches(&self) -> impl Iterator<Item = SwitchId> + '_ {
        (0..self.names.len() as u32).map(SwitchId)
    }

    /// Iterator over all links.
    pub fn links(&self) -> impl Iterator<Item = &Link> {
        self.links.iter()
    }

    /// Returns `true` if `s` is a switch of this network.
    #[inline]
    pub fn contains_switch(&self, s: SwitchId) -> bool {
        s.index() < self.names.len()
    }

    /// The human-readable name given to `s` at build time.
    ///
    /// Returns `None` if `s` is not a switch of this network.
    pub fn switch_name(&self, s: SwitchId) -> Option<&str> {
        self.names.get(s.index()).map(String::as_str)
    }

    /// Looks up the link `⟨u, v⟩`, if present.
    pub fn link_between(&self, u: SwitchId, v: SwitchId) -> Option<&Link> {
        self.by_endpoints
            .get(&(u, v))
            .map(|i| &self.links[i.index()])
    }

    /// Looks up the arena index of link `⟨u, v⟩`, if present.
    pub fn link_idx(&self, u: SwitchId, v: SwitchId) -> Option<LinkIdx> {
        self.by_endpoints.get(&(u, v)).copied()
    }

    /// The link stored at arena index `idx`.
    ///
    /// # Panics
    /// Panics if `idx` was not issued by this network.
    pub fn link(&self, idx: LinkIdx) -> &Link {
        &self.links[idx.index()]
    }

    /// Capacity of link `⟨u, v⟩`, or `None` if it does not exist.
    pub fn capacity(&self, u: SwitchId, v: SwitchId) -> Option<Capacity> {
        self.link_between(u, v).map(|l| l.capacity)
    }

    /// Transmission delay `σ(u, v)`, or `None` if the link is missing.
    pub fn delay(&self, u: SwitchId, v: SwitchId) -> Option<Delay> {
        self.link_between(u, v).map(|l| l.delay)
    }

    /// Outgoing links of `u`.
    pub fn out_links(&self, u: SwitchId) -> impl Iterator<Item = &Link> {
        self.out_links
            .get(u.index())
            .into_iter()
            .flatten()
            .map(|i| &self.links[i.index()])
    }

    /// Incoming links of `v`.
    pub fn in_links(&self, v: SwitchId) -> impl Iterator<Item = &Link> {
        self.in_links
            .get(v.index())
            .into_iter()
            .flatten()
            .map(|i| &self.links[i.index()])
    }

    /// Out-degree of `u` (0 for unknown switches).
    pub fn out_degree(&self, u: SwitchId) -> usize {
        self.out_links.get(u.index()).map_or(0, Vec::len)
    }

    /// In-degree of `v` (0 for unknown switches).
    pub fn in_degree(&self, v: SwitchId) -> usize {
        self.in_links.get(v.index()).map_or(0, Vec::len)
    }

    /// The maximum link delay in the network (0 if there are no links).
    pub fn max_delay(&self) -> Delay {
        self.links.iter().map(|l| l.delay).max().unwrap_or(0)
    }

    /// The minimum link capacity in the network (`None` if no links).
    pub fn min_capacity(&self) -> Option<Capacity> {
        self.links.iter().map(|l| l.capacity).min()
    }
}

impl fmt::Display for Network {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Network: {} switches, {} links",
            self.switch_count(),
            self.link_count()
        )?;
        for l in &self.links {
            writeln!(f, "  {l}")?;
        }
        Ok(())
    }
}

/// Incremental builder for [`Network`].
///
/// ```
/// use chronus_net::NetworkBuilder;
/// let mut b = NetworkBuilder::new();
/// let a = b.add_switch("a");
/// let c = b.add_switch("c");
/// b.add_link(a, c, 10, 1).unwrap();
/// let net = b.build();
/// assert_eq!(net.switch_count(), 2);
/// assert_eq!(net.capacity(a, c), Some(10));
/// ```
#[derive(Clone, Debug, Default)]
pub struct NetworkBuilder {
    names: Vec<String>,
    links: Vec<Link>,
    by_endpoints: HashMap<(SwitchId, SwitchId), LinkIdx>,
}

impl NetworkBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a builder pre-populated with `n` switches named
    /// `v1 … vn` (the paper's naming convention).
    pub fn with_switches(n: usize) -> Self {
        let mut b = Self::new();
        for i in 1..=n {
            b.add_switch(format!("v{i}"));
        }
        b
    }

    /// Creates a builder pre-populated with `n` *unnamed* switches.
    /// For derived planning views (shard instances, clamped-capacity
    /// copies) that keep another network's switch numbering: skipping
    /// `n` name allocations matters when views are minted per shard
    /// per replan round.
    pub fn with_unnamed_switches(n: usize) -> Self {
        let mut b = Self::new();
        b.names.resize(n, String::new());
        b
    }

    /// Adds a switch and returns its id.
    pub fn add_switch(&mut self, name: impl Into<String>) -> SwitchId {
        let id = SwitchId(self.names.len() as u32);
        self.names.push(name.into());
        id
    }

    /// Number of switches added so far.
    pub fn switch_count(&self) -> usize {
        self.names.len()
    }

    /// Adds a directed link `⟨u, v⟩` with the given capacity and delay.
    ///
    /// # Errors
    /// - [`NetError::UnknownSwitch`] if `u` or `v` was not added first;
    /// - [`NetError::SelfLoop`] if `u == v`;
    /// - [`NetError::DuplicateLink`] if `⟨u, v⟩` already exists;
    /// - [`NetError::ZeroDelay`] / [`NetError::ZeroCapacity`] for
    ///   non-positive parameters.
    pub fn add_link(
        &mut self,
        u: SwitchId,
        v: SwitchId,
        capacity: Capacity,
        delay: Delay,
    ) -> Result<LinkIdx, NetError> {
        if u.index() >= self.names.len() {
            return Err(NetError::UnknownSwitch(u));
        }
        if v.index() >= self.names.len() {
            return Err(NetError::UnknownSwitch(v));
        }
        if u == v {
            return Err(NetError::SelfLoop(u));
        }
        if self.by_endpoints.contains_key(&(u, v)) {
            return Err(NetError::DuplicateLink(u, v));
        }
        if delay == 0 {
            return Err(NetError::ZeroDelay(u, v));
        }
        if capacity == 0 {
            return Err(NetError::ZeroCapacity(u, v));
        }
        let idx = LinkIdx(self.links.len() as u32);
        self.links.push(Link::new(u, v, capacity, delay));
        self.by_endpoints.insert((u, v), idx);
        Ok(idx)
    }

    /// Adds links `⟨u, v⟩` and `⟨v, u⟩` with identical parameters, as a
    /// convenience for the (bidirectional) Mininet-style topologies used
    /// in the paper's evaluation.
    pub fn add_duplex_link(
        &mut self,
        u: SwitchId,
        v: SwitchId,
        capacity: Capacity,
        delay: Delay,
    ) -> Result<(LinkIdx, LinkIdx), NetError> {
        let a = self.add_link(u, v, capacity, delay)?;
        let b = self.add_link(v, u, capacity, delay)?;
        Ok((a, b))
    }

    /// Returns `true` if the link `⟨u, v⟩` was already added.
    pub fn has_link(&self, u: SwitchId, v: SwitchId) -> bool {
        self.by_endpoints.contains_key(&(u, v))
    }

    /// Freezes the builder into an immutable [`Network`].
    pub fn build(self) -> Network {
        let n = self.names.len();
        let mut out_links = vec![Vec::new(); n];
        let mut in_links = vec![Vec::new(); n];
        for (i, l) in self.links.iter().enumerate() {
            out_links[l.src.index()].push(LinkIdx(i as u32));
            in_links[l.dst.index()].push(LinkIdx(i as u32));
        }
        Network {
            names: self.names,
            links: self.links,
            out_links,
            in_links,
            by_endpoints: self.by_endpoints,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> (Network, [SwitchId; 3]) {
        let mut b = NetworkBuilder::new();
        let a = b.add_switch("a");
        let c = b.add_switch("b");
        let d = b.add_switch("c");
        b.add_link(a, c, 5, 1).unwrap();
        b.add_link(c, d, 5, 2).unwrap();
        b.add_link(a, d, 3, 4).unwrap();
        (b.build(), [a, c, d])
    }

    #[test]
    fn builds_and_queries() {
        let (net, [a, b, c]) = triangle();
        assert_eq!(net.switch_count(), 3);
        assert_eq!(net.link_count(), 3);
        assert_eq!(net.capacity(a, b), Some(5));
        assert_eq!(net.delay(b, c), Some(2));
        assert_eq!(net.delay(c, b), None);
        assert_eq!(net.out_degree(a), 2);
        assert_eq!(net.in_degree(c), 2);
        assert_eq!(net.max_delay(), 4);
        assert_eq!(net.min_capacity(), Some(3));
        assert_eq!(net.switch_name(a), Some("a"));
        assert_eq!(net.switch_name(SwitchId(9)), None);
        assert!(net.contains_switch(c));
        assert!(!net.contains_switch(SwitchId(3)));
    }

    #[test]
    fn rejects_bad_links() {
        let mut b = NetworkBuilder::new();
        let a = b.add_switch("a");
        let c = b.add_switch("b");
        assert_eq!(
            b.add_link(a, SwitchId(9), 1, 1),
            Err(NetError::UnknownSwitch(SwitchId(9)))
        );
        assert_eq!(b.add_link(a, a, 1, 1), Err(NetError::SelfLoop(a)));
        assert_eq!(b.add_link(a, c, 1, 0), Err(NetError::ZeroDelay(a, c)));
        assert_eq!(b.add_link(a, c, 0, 1), Err(NetError::ZeroCapacity(a, c)));
        b.add_link(a, c, 1, 1).unwrap();
        assert_eq!(b.add_link(a, c, 2, 2), Err(NetError::DuplicateLink(a, c)));
    }

    #[test]
    fn duplex_adds_both_directions() {
        let mut b = NetworkBuilder::with_switches(2);
        let (u, v) = (SwitchId(0), SwitchId(1));
        b.add_duplex_link(u, v, 7, 3).unwrap();
        let net = b.build();
        assert_eq!(net.capacity(u, v), Some(7));
        assert_eq!(net.capacity(v, u), Some(7));
        assert_eq!(net.switch_name(u), Some("v1"));
    }

    #[test]
    fn link_iterators_cover_all_links() {
        let (net, [a, _, c]) = triangle();
        assert_eq!(net.links().count(), 3);
        assert_eq!(net.out_links(a).count(), 2);
        assert_eq!(net.in_links(c).count(), 2);
        assert_eq!(net.switches().count(), 3);
        // Unknown switch yields empty iterators rather than a panic.
        assert_eq!(net.out_links(SwitchId(77)).count(), 0);
    }

    #[test]
    fn link_idx_roundtrip() {
        let (net, [a, b, _]) = triangle();
        let idx = net.link_idx(a, b).unwrap();
        assert_eq!(net.link(idx).endpoints(), (a, b));
    }

    #[test]
    fn display_lists_links() {
        let (net, _) = triangle();
        let s = net.to_string();
        assert!(s.contains("3 switches"));
        assert!(s.contains("<s0, s1>"));
    }
}
