//! Routing algorithms: BFS, delay-weighted Dijkstra, Yen's k-shortest
//! simple paths, and seeded random simple paths.
//!
//! The experiment harness uses [`shortest_path_delay`] for initial
//! routes and [`random_simple_path`] for the paper's "final path is
//! chosen randomly" setup (§V-B).
// Graph algorithms over dense `SwitchId`-indexed arrays: every index
// is minted from `switch_count`, so slice indexing cannot go out of
// bounds by construction.
// `expect` sites unwrap invariants the algorithms themselves
// establish (heap entries, predecessor links on reached nodes).
#![allow(clippy::indexing_slicing, clippy::expect_used)]

use crate::{Delay, Network, Path, SwitchId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet, VecDeque};

/// Shortest path by hop count (BFS). Returns `None` if `dst` is
/// unreachable from `src` or either switch is unknown.
pub fn shortest_path_hops(net: &Network, src: SwitchId, dst: SwitchId) -> Option<Path> {
    if !net.contains_switch(src) || !net.contains_switch(dst) {
        return None;
    }
    if src == dst {
        return None;
    }
    let n = net.switch_count();
    let mut prev: Vec<Option<SwitchId>> = vec![None; n];
    let mut visited = vec![false; n];
    let mut queue = VecDeque::new();
    visited[src.index()] = true;
    queue.push_back(src);
    while let Some(u) = queue.pop_front() {
        if u == dst {
            break;
        }
        for l in net.out_links(u) {
            if !visited[l.dst.index()] {
                visited[l.dst.index()] = true;
                prev[l.dst.index()] = Some(u);
                queue.push_back(l.dst);
            }
        }
    }
    reconstruct(&prev, src, dst)
}

/// Shortest path by total transmission delay (Dijkstra). Returns `None`
/// if unreachable.
pub fn shortest_path_delay(net: &Network, src: SwitchId, dst: SwitchId) -> Option<Path> {
    if !net.contains_switch(src) || !net.contains_switch(dst) || src == dst {
        return None;
    }
    let n = net.switch_count();
    let mut dist: Vec<Delay> = vec![Delay::MAX; n];
    let mut prev: Vec<Option<SwitchId>> = vec![None; n];
    let mut heap = BinaryHeap::new();
    dist[src.index()] = 0;
    heap.push(Reverse((0u64, src)));
    while let Some(Reverse((d, u))) = heap.pop() {
        if d > dist[u.index()] {
            continue;
        }
        if u == dst {
            break;
        }
        for l in net.out_links(u) {
            let nd = d.saturating_add(l.delay);
            if nd < dist[l.dst.index()] {
                dist[l.dst.index()] = nd;
                prev[l.dst.index()] = Some(u);
                heap.push(Reverse((nd, l.dst)));
            }
        }
    }
    if dist[dst.index()] == Delay::MAX {
        return None;
    }
    reconstruct(&prev, src, dst)
}

fn reconstruct(prev: &[Option<SwitchId>], src: SwitchId, dst: SwitchId) -> Option<Path> {
    let mut hops = vec![dst];
    let mut cur = dst;
    while cur != src {
        cur = prev[cur.index()]?;
        hops.push(cur);
    }
    hops.reverse();
    Some(Path::new(hops))
}

/// Yen's algorithm: the `k` delay-shortest *simple* paths from `src` to
/// `dst`, in non-decreasing delay order. Returns fewer than `k` paths
/// if the graph does not contain that many.
pub fn k_shortest_paths(net: &Network, src: SwitchId, dst: SwitchId, k: usize) -> Vec<Path> {
    let Some(first) = shortest_path_delay(net, src, dst) else {
        return Vec::new();
    };
    let mut result = vec![first];
    let mut candidates: Vec<(Delay, Path)> = Vec::new();

    while result.len() < k {
        let last = result.last().expect("result is non-empty").clone();
        for i in 0..last.len() - 1 {
            let spur = last.hops()[i];
            let root = &last.hops()[..=i];

            // Edges removed: the outgoing edge each previous path takes
            // after sharing this root, plus all root nodes except spur.
            // chronus-lint: allow(det-hash) — membership-only ban set for the filtered Dijkstra; never iterated
            let mut banned_edges: HashSet<(SwitchId, SwitchId)> = HashSet::new();
            for p in &result {
                if p.len() > i && &p.hops()[..=i] == root {
                    banned_edges.insert((p.hops()[i], p.hops()[i + 1]));
                }
            }
            // chronus-lint: allow(det-hash) — membership-only ban set for the filtered Dijkstra; never iterated
            let banned_nodes: HashSet<SwitchId> = root[..i].iter().copied().collect();

            if let Some(spur_path) =
                shortest_path_delay_filtered(net, spur, dst, &banned_nodes, &banned_edges)
            {
                let mut hops = root[..i].to_vec();
                hops.extend_from_slice(spur_path.hops());
                let total = Path::new(hops);
                if total.validate(net).is_ok() {
                    let d = total.total_delay(net).expect("validated path has delay");
                    if !result.contains(&total) && !candidates.iter().any(|(_, p)| p == &total) {
                        candidates.push((d, total));
                    }
                }
            }
        }
        if candidates.is_empty() {
            break;
        }
        // Tie-break equal-delay candidates on fewest hops first, then
        // lexicographic switch ids. Comparing hop ids alone let a
        // longer path whose first hops had smaller ids win over a
        // shorter one (0→2→3→9 beat 0→5→9), inverting the canonical
        // Yen order; a single min-select also avoids re-sorting the
        // whole pool every iteration.
        let best_idx = candidates
            .iter()
            .enumerate()
            .min_by(|(_, (da, pa)), (_, (db, pb))| {
                da.cmp(db)
                    .then(pa.len().cmp(&pb.len()))
                    .then_with(|| pa.hops().cmp(pb.hops()))
            })
            .map(|(idx, _)| idx)
            .expect("candidates is non-empty");
        let (_, best) = candidates.swap_remove(best_idx);
        result.push(best);
    }
    result
}

fn shortest_path_delay_filtered(
    net: &Network,
    src: SwitchId,
    dst: SwitchId,
    banned_nodes: &HashSet<SwitchId>,
    banned_edges: &HashSet<(SwitchId, SwitchId)>,
) -> Option<Path> {
    if src == dst {
        return None;
    }
    let n = net.switch_count();
    let mut dist: Vec<Delay> = vec![Delay::MAX; n];
    let mut prev: Vec<Option<SwitchId>> = vec![None; n];
    let mut heap = BinaryHeap::new();
    dist[src.index()] = 0;
    heap.push(Reverse((0u64, src)));
    while let Some(Reverse((d, u))) = heap.pop() {
        if d > dist[u.index()] {
            continue;
        }
        for l in net.out_links(u) {
            if banned_nodes.contains(&l.dst) || banned_edges.contains(&(u, l.dst)) {
                continue;
            }
            let nd = d.saturating_add(l.delay);
            if nd < dist[l.dst.index()] {
                dist[l.dst.index()] = nd;
                prev[l.dst.index()] = Some(u);
                heap.push(Reverse((nd, l.dst)));
            }
        }
    }
    if dist[dst.index()] == Delay::MAX {
        return None;
    }
    reconstruct(&prev, src, dst)
}

/// A seeded random *simple* path from `src` to `dst`: a loop-erased
/// random walk (whenever the walk revisits a switch, the loop it just
/// closed is erased), which terminates in polynomial expected time on
/// connected graphs — unlike backtracking DFS, whose worst case is
/// exponential. Used to draw the paper's random final routing paths.
///
/// Returns `None` only if `dst` is unreachable from `src`.
pub fn random_simple_path(
    net: &Network,
    src: SwitchId,
    dst: SwitchId,
    rng: &mut StdRng,
) -> Option<Path> {
    loop_erased_walk(net, src, dst, 0.0, rng)
}

/// Shared loop-erased random-walk core for [`random_simple_path`]
/// (`greediness = 0`) and [`biased_random_path`].
fn loop_erased_walk(
    net: &Network,
    src: SwitchId,
    dst: SwitchId,
    greediness: f64,
    rng: &mut StdRng,
) -> Option<Path> {
    if !net.contains_switch(src) || !net.contains_switch(dst) || src == dst {
        return None;
    }
    // Distance-to-destination field: restricts the walk to switches
    // that can still reach `dst` and powers the greedy bias.
    let n = net.switch_count();
    let mut dist: Vec<Delay> = vec![Delay::MAX; n];
    let mut heap = BinaryHeap::new();
    dist[dst.index()] = 0;
    heap.push(Reverse((0u64, dst)));
    while let Some(Reverse((d, u))) = heap.pop() {
        if d > dist[u.index()] {
            continue;
        }
        for l in net.in_links(u) {
            let nd = d.saturating_add(l.delay);
            if nd < dist[l.src.index()] {
                dist[l.src.index()] = nd;
                heap.push(Reverse((nd, l.src)));
            }
        }
    }
    if dist[src.index()] == Delay::MAX {
        return None;
    }

    let mut hops: Vec<SwitchId> = vec![src];
    // chronus-lint: allow(det-hash) — switch -> walk-position lookup; read by key only, never iterated
    let mut index: HashMap<SwitchId, usize> = HashMap::from([(src, 0)]);
    let max_steps = 100 * n + 1_000;
    for _ in 0..max_steps {
        let cur = *hops.last().expect("walk is non-empty");
        let mut neighbours: Vec<SwitchId> = net
            .out_links(cur)
            .map(|l| l.dst)
            .filter(|s| dist[s.index()] != Delay::MAX)
            .collect();
        if neighbours.is_empty() {
            return None; // cannot happen while dist[cur] is finite
        }
        let next = if greediness > 0.0 && rng.gen::<f64>() < greediness {
            *neighbours
                .iter()
                .min_by_key(|s| dist[s.index()])
                .expect("non-empty")
        } else if greediness < 0.0 && rng.gen::<f64>() < -greediness {
            *neighbours
                .iter()
                .max_by_key(|s| dist[s.index()])
                .expect("non-empty")
        } else {
            neighbours.shuffle(rng);
            neighbours[0]
        };
        if let Some(&pos) = index.get(&next) {
            // Loop erase: drop everything after the first visit.
            for dropped in hops.drain(pos + 1..) {
                index.remove(&dropped);
            }
        } else {
            index.insert(next, hops.len());
            hops.push(next);
        }
        if next == dst {
            return Some(Path::new(hops));
        }
    }
    // The walk wandered too long (astronomically unlikely on connected
    // graphs): fall back to the deterministic shortest path.
    shortest_path_delay(net, src, dst)
}

/// A random simple path biased toward short paths: with probability
/// `greediness` each walk step moves to the delay-closest neighbour of
/// the destination instead of a uniformly random one. Produces the
/// "random but plausible" reroutes used in experiments;
/// `greediness = 0` degenerates to [`random_simple_path`]. A
/// *negative* value biases the walk **away** from the destination with
/// probability `-greediness`, stretching the resulting path — used to
/// model long legacy routes in the scale experiments.
pub fn biased_random_path(
    net: &Network,
    src: SwitchId,
    dst: SwitchId,
    greediness: f64,
    rng: &mut StdRng,
) -> Option<Path> {
    loop_erased_walk(net, src, dst, greediness, rng)
}

/// Deterministic helper: a fresh RNG from a seed, for callers that do
/// not want to depend on `rand` directly.
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{self, LinkParams};
    use crate::NetworkBuilder;

    fn diamond_weighted() -> Network {
        // 0 ->(1) 1 ->(1) 3   and   0 ->(5) 2 ->(1) 3
        let mut b = NetworkBuilder::with_switches(4);
        b.add_link(SwitchId(0), SwitchId(1), 10, 1).unwrap();
        b.add_link(SwitchId(1), SwitchId(3), 10, 1).unwrap();
        b.add_link(SwitchId(0), SwitchId(2), 10, 5).unwrap();
        b.add_link(SwitchId(2), SwitchId(3), 10, 1).unwrap();
        b.build()
    }

    #[test]
    fn bfs_finds_fewest_hops() {
        let net = topology::line(5, LinkParams::default());
        let p = shortest_path_hops(&net, SwitchId(0), SwitchId(4)).unwrap();
        assert_eq!(p.len(), 5);
        assert_eq!(p.source(), SwitchId(0));
        assert_eq!(p.destination(), SwitchId(4));
    }

    #[test]
    fn bfs_handles_unreachable_and_bad_input() {
        let mut b = NetworkBuilder::with_switches(3);
        b.add_link(SwitchId(0), SwitchId(1), 1, 1).unwrap();
        let net = b.build();
        assert!(shortest_path_hops(&net, SwitchId(0), SwitchId(2)).is_none());
        assert!(shortest_path_hops(&net, SwitchId(0), SwitchId(0)).is_none());
        assert!(shortest_path_hops(&net, SwitchId(0), SwitchId(9)).is_none());
    }

    #[test]
    fn dijkstra_prefers_low_delay() {
        let net = diamond_weighted();
        let p = shortest_path_delay(&net, SwitchId(0), SwitchId(3)).unwrap();
        assert_eq!(p.hops(), &[SwitchId(0), SwitchId(1), SwitchId(3)]);
        assert_eq!(p.total_delay(&net), Some(2));
    }

    #[test]
    fn dijkstra_matches_petgraph() {
        let net = topology::random_connected(topology::TopologyConfig::simulation(20, 3), 15);
        let (g, nodes) = topology::to_petgraph(&net);
        let dist = petgraph::algo::dijkstra(&g, nodes[0], None, |e| *e.weight());
        for (target, node) in nodes.iter().enumerate().skip(1) {
            let ours = shortest_path_delay(&net, SwitchId(0), SwitchId(target as u32))
                .and_then(|p| p.total_delay(&net));
            let theirs = dist.get(node).copied();
            assert_eq!(ours, theirs, "distance mismatch to node {target}");
        }
    }

    #[test]
    fn yen_yields_distinct_sorted_paths() {
        let net = topology::grid(3, 3, LinkParams::default());
        let ps = k_shortest_paths(&net, SwitchId(0), SwitchId(8), 5);
        assert!(ps.len() >= 3);
        let mut last = 0;
        for p in &ps {
            assert!(p.validate(&net).is_ok());
            let d = p.total_delay(&net).unwrap();
            assert!(d >= last, "paths must be sorted by delay");
            last = d;
        }
        for i in 0..ps.len() {
            for j in i + 1..ps.len() {
                assert_ne!(ps[i], ps[j], "paths must be distinct");
            }
        }
    }

    #[test]
    fn yen_breaks_equal_delay_ties_on_hop_count_then_ids() {
        // Diamond with a tail: after the unique shortest path
        // A = 0→1→3 (delay 2), the very first Yen iteration puts TWO
        // equal-delay(4) candidates in the pool at once —
        //   B: 0→2→3    (spur at 0; 3 hops)
        //   E: 0→1→4→3  (spur at 1; 4 hops, but smaller second-hop id)
        // Comparing hop ids lexicographically picked E first (1 < 2);
        // the canonical order is fewest hops first.
        let mut b = NetworkBuilder::with_switches(5);
        b.add_link(SwitchId(0), SwitchId(1), 10, 1).unwrap();
        b.add_link(SwitchId(1), SwitchId(3), 10, 1).unwrap();
        b.add_link(SwitchId(0), SwitchId(2), 10, 2).unwrap();
        b.add_link(SwitchId(2), SwitchId(3), 10, 2).unwrap();
        b.add_link(SwitchId(1), SwitchId(4), 10, 1).unwrap();
        b.add_link(SwitchId(4), SwitchId(3), 10, 2).unwrap();
        let net = b.build();
        let ps = k_shortest_paths(&net, SwitchId(0), SwitchId(3), 3);
        let hops: Vec<&[SwitchId]> = ps.iter().map(|p| p.hops()).collect();
        assert_eq!(
            hops,
            vec![
                &[SwitchId(0), SwitchId(1), SwitchId(3)][..],
                &[SwitchId(0), SwitchId(2), SwitchId(3)][..],
                &[SwitchId(0), SwitchId(1), SwitchId(4), SwitchId(3)][..],
            ]
        );
        for p in &ps {
            assert!(p.validate(&net).is_ok());
        }
    }

    #[test]
    fn yen_on_unreachable_is_empty() {
        let mut b = NetworkBuilder::with_switches(2);
        b.add_link(SwitchId(1), SwitchId(0), 1, 1).unwrap();
        let net = b.build();
        assert!(k_shortest_paths(&net, SwitchId(0), SwitchId(1), 3).is_empty());
    }

    #[test]
    fn random_simple_path_is_valid_and_seeded() {
        let net = topology::grid(4, 4, LinkParams::default());
        let mut rng = seeded_rng(11);
        let p = random_simple_path(&net, SwitchId(0), SwitchId(15), &mut rng).unwrap();
        assert!(p.validate(&net).is_ok());
        assert_eq!(p.source(), SwitchId(0));
        assert_eq!(p.destination(), SwitchId(15));
        // Same seed, same path.
        let mut rng2 = seeded_rng(11);
        let q = random_simple_path(&net, SwitchId(0), SwitchId(15), &mut rng2).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn random_path_none_when_unreachable() {
        let mut b = NetworkBuilder::with_switches(3);
        b.add_link(SwitchId(0), SwitchId(1), 1, 1).unwrap();
        let net = b.build();
        let mut rng = seeded_rng(5);
        assert!(random_simple_path(&net, SwitchId(0), SwitchId(2), &mut rng).is_none());
    }

    #[test]
    fn biased_path_valid_and_short_when_greedy() {
        let net = topology::grid(4, 4, LinkParams::default());
        let mut rng = seeded_rng(9);
        let p = biased_random_path(&net, SwitchId(0), SwitchId(15), 1.0, &mut rng).unwrap();
        assert!(p.validate(&net).is_ok());
        // Fully greedy walk follows the distance field, i.e. a shortest path.
        assert_eq!(p.total_delay(&net), Some(6));
        let mut rng = seeded_rng(10);
        let q = biased_random_path(&net, SwitchId(0), SwitchId(15), 0.0, &mut rng).unwrap();
        assert!(q.validate(&net).is_ok());
    }
}
