//! Strongly-typed identifiers for switches, links and flows.

use std::fmt;

/// Identifier of a switch in a [`crate::Network`].
///
/// Switch ids are dense indices assigned by [`crate::NetworkBuilder`] in
/// insertion order, so they can be used to index per-switch vectors.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Default)]
pub struct SwitchId(pub u32);

impl SwitchId {
    /// Returns the id as a usize index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SwitchId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

impl From<u32> for SwitchId {
    fn from(v: u32) -> Self {
        SwitchId(v)
    }
}

/// Dense index of a link inside a [`crate::Network`].
///
/// Links are stored in a flat arena; `LinkIdx` is the handle into it.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct LinkIdx(pub u32);

impl LinkIdx {
    /// Returns the index as a usize.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for LinkIdx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// Identifier of a dynamic flow.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Default)]
pub struct FlowId(pub u32);

impl FlowId {
    /// Returns the id as a usize index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for FlowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn switch_id_display_and_index() {
        let s = SwitchId(7);
        assert_eq!(s.to_string(), "s7");
        assert_eq!(s.index(), 7);
        assert_eq!(SwitchId::from(7u32), s);
    }

    #[test]
    fn link_idx_display_and_index() {
        let l = LinkIdx(3);
        assert_eq!(l.to_string(), "e3");
        assert_eq!(l.index(), 3);
    }

    #[test]
    fn flow_id_display() {
        assert_eq!(FlowId(0).to_string(), "f0");
        assert_eq!(FlowId(0).index(), 0);
    }

    #[test]
    fn ids_are_hashable_and_ordered() {
        let mut set = HashSet::new();
        set.insert(SwitchId(1));
        set.insert(SwitchId(1));
        set.insert(SwitchId(2));
        assert_eq!(set.len(), 2);
        assert!(SwitchId(1) < SwitchId(2));
        assert!(LinkIdx(0) < LinkIdx(1));
        assert!(FlowId(4) > FlowId(3));
    }
}
