//! Topology generators.
//!
//! The paper evaluates on (a) a small 10-switch Mininet topology with
//! 500 Mbps links and (b) large synthetic topologies of up to 6 000
//! switches with random final paths. This module provides deterministic
//! generators for the classic shapes (line, ring, grid, star, binary
//! tree, full mesh, fat-tree) plus seeded random generators
//! (Erdős–Rényi-style `random_connected` and Waxman) used by the
//! experiment harness.
//!
//! All generators produce *duplex* links (both directions, identical
//! capacity/delay), matching the Mininet links of §V-A.
// Generators index freshly-built switch/adjacency vectors whose
// sizes they chose themselves; out-of-bounds is impossible by
// construction.
// Generators `expect` on builder results for shapes they define:
// a failure is a bug in the generator, not a runtime condition.
#![allow(clippy::indexing_slicing, clippy::expect_used)]

use crate::{Capacity, Delay, Network, NetworkBuilder, SwitchId};
use petgraph::graph::{DiGraph, NodeIndex};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Common parameters shared by all generators.
#[derive(Clone, Copy, Debug)]
pub struct LinkParams {
    /// Capacity of every generated link.
    pub capacity: Capacity,
    /// Delay of every generated link; random generators may widen this
    /// to a range via [`TopologyConfig::delay_range`].
    pub delay: Delay,
}

impl Default for LinkParams {
    fn default() -> Self {
        // Unit capacity / unit delay, as in the paper's running example.
        LinkParams {
            capacity: 1,
            delay: 1,
        }
    }
}

impl LinkParams {
    /// Creates link parameters.
    pub fn new(capacity: Capacity, delay: Delay) -> Self {
        LinkParams { capacity, delay }
    }

    /// The paper's Mininet setting: 500 Mbps links.
    pub fn mininet() -> Self {
        LinkParams {
            capacity: 500,
            delay: 1,
        }
    }
}

/// A line (path graph) of `n` switches: `v1 - v2 - … - vn`.
///
/// # Panics
/// Panics if `n < 2`.
pub fn line(n: usize, p: LinkParams) -> Network {
    assert!(n >= 2, "line topology needs at least two switches");
    let mut b = NetworkBuilder::with_switches(n);
    for i in 0..n - 1 {
        b.add_duplex_link(
            SwitchId(i as u32),
            SwitchId(i as u32 + 1),
            p.capacity,
            p.delay,
        )
        .expect("line links are unique");
    }
    b.build()
}

/// A ring of `n` switches.
///
/// # Panics
/// Panics if `n < 3`.
pub fn ring(n: usize, p: LinkParams) -> Network {
    assert!(n >= 3, "ring topology needs at least three switches");
    let mut b = NetworkBuilder::with_switches(n);
    for i in 0..n {
        let u = SwitchId(i as u32);
        let v = SwitchId(((i + 1) % n) as u32);
        b.add_duplex_link(u, v, p.capacity, p.delay)
            .expect("ring links are unique");
    }
    b.build()
}

/// A star: switch 0 is the hub, switches `1..n` are leaves.
///
/// # Panics
/// Panics if `n < 2`.
pub fn star(n: usize, p: LinkParams) -> Network {
    assert!(n >= 2, "star topology needs at least two switches");
    let mut b = NetworkBuilder::with_switches(n);
    for i in 1..n {
        b.add_duplex_link(SwitchId(0), SwitchId(i as u32), p.capacity, p.delay)
            .expect("star links are unique");
    }
    b.build()
}

/// A `rows × cols` grid with 4-neighbour connectivity.
///
/// # Panics
/// Panics if either dimension is zero or the grid has < 2 switches.
pub fn grid(rows: usize, cols: usize, p: LinkParams) -> Network {
    assert!(rows * cols >= 2, "grid needs at least two switches");
    let mut b = NetworkBuilder::with_switches(rows * cols);
    let id = |r: usize, c: usize| SwitchId((r * cols + c) as u32);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                b.add_duplex_link(id(r, c), id(r, c + 1), p.capacity, p.delay)
                    .expect("grid links are unique");
            }
            if r + 1 < rows {
                b.add_duplex_link(id(r, c), id(r + 1, c), p.capacity, p.delay)
                    .expect("grid links are unique");
            }
        }
    }
    b.build()
}

/// A complete binary tree with `n` switches (heap layout: children of
/// `i` are `2i+1` and `2i+2`).
///
/// # Panics
/// Panics if `n < 2`.
pub fn binary_tree(n: usize, p: LinkParams) -> Network {
    assert!(n >= 2, "binary tree needs at least two switches");
    let mut b = NetworkBuilder::with_switches(n);
    for i in 0..n {
        for child in [2 * i + 1, 2 * i + 2] {
            if child < n {
                b.add_duplex_link(
                    SwitchId(i as u32),
                    SwitchId(child as u32),
                    p.capacity,
                    p.delay,
                )
                .expect("tree links are unique");
            }
        }
    }
    b.build()
}

/// A full mesh over `n` switches (every ordered pair linked).
///
/// # Panics
/// Panics if `n < 2`.
pub fn full_mesh(n: usize, p: LinkParams) -> Network {
    assert!(n >= 2, "mesh needs at least two switches");
    let mut b = NetworkBuilder::with_switches(n);
    for i in 0..n {
        for j in i + 1..n {
            b.add_duplex_link(SwitchId(i as u32), SwitchId(j as u32), p.capacity, p.delay)
                .expect("mesh links are unique");
        }
    }
    b.build()
}

/// A `k`-ary fat-tree (Al-Fares et al.) with `k²/4` core switches,
/// `k` pods of `k/2` aggregation and `k/2` edge switches each —
/// `5k²/4` switches total.
///
/// # Panics
/// Panics if `k` is odd or `k < 2`.
pub fn fat_tree(k: usize, p: LinkParams) -> Network {
    assert!(
        k >= 2 && k.is_multiple_of(2),
        "fat-tree arity must be even and >= 2"
    );
    let half = k / 2;
    let cores = half * half;
    let aggs = k * half;
    let edges = k * half;
    let mut b = NetworkBuilder::new();
    let core_ids: Vec<_> = (0..cores)
        .map(|i| b.add_switch(format!("core{i}")))
        .collect();
    let agg_ids: Vec<_> = (0..aggs).map(|i| b.add_switch(format!("agg{i}"))).collect();
    let edge_ids: Vec<_> = (0..edges)
        .map(|i| b.add_switch(format!("edge{i}")))
        .collect();

    for pod in 0..k {
        for a in 0..half {
            let agg = agg_ids[pod * half + a];
            // Aggregation <-> core: agg `a` connects to core group `a`.
            for c in 0..half {
                let core = core_ids[a * half + c];
                b.add_duplex_link(agg, core, p.capacity, p.delay)
                    .expect("fat-tree links are unique");
            }
            // Aggregation <-> edge within the pod (complete bipartite).
            for e in 0..half {
                let edge = edge_ids[pod * half + e];
                b.add_duplex_link(agg, edge, p.capacity, p.delay)
                    .expect("fat-tree links are unique");
            }
        }
    }
    b.build()
}

/// Configuration for the seeded random generators.
#[derive(Clone, Copy, Debug)]
pub struct TopologyConfig {
    /// Number of switches.
    pub switches: usize,
    /// Inclusive capacity range; each duplex link draws one capacity
    /// (set both ends equal for uniform links). Heterogeneous
    /// capacities make some links unable to hold two flow copies
    /// (`C < 2d`) while others can — the mix that drives the paper's
    /// congestion results.
    pub capacity_range: (Capacity, Capacity),
    /// Inclusive delay range; each duplex link draws one delay.
    pub delay_range: (Delay, Delay),
    /// RNG seed for reproducibility.
    pub seed: u64,
}

impl TopologyConfig {
    /// A config with the paper's large-scale simulation flavour:
    /// `n` switches, uniform 500-capacity links, delays in `[1, 10]`.
    pub fn simulation(n: usize, seed: u64) -> Self {
        TopologyConfig {
            switches: n,
            capacity_range: (500, 500),
            delay_range: (1, 10),
            seed,
        }
    }
}

/// A connected random graph: a random spanning tree (guaranteeing
/// connectivity) plus `extra_links` random chords.
///
/// # Panics
/// Panics if `cfg.switches < 2` or the delay range is empty.
pub fn random_connected(cfg: TopologyConfig, extra_links: usize) -> Network {
    assert!(
        cfg.switches >= 2,
        "random topology needs at least two switches"
    );
    assert!(
        cfg.delay_range.0 >= 1 && cfg.delay_range.0 <= cfg.delay_range.1,
        "delay range must be non-empty and positive"
    );
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let n = cfg.switches;
    let mut b = NetworkBuilder::with_switches(n);
    let delay = |rng: &mut StdRng| rng.gen_range(cfg.delay_range.0..=cfg.delay_range.1);
    let capacity = |rng: &mut StdRng| rng.gen_range(cfg.capacity_range.0..=cfg.capacity_range.1);

    // Random spanning tree: attach each node to a random earlier node.
    for i in 1..n {
        let j = rng.gen_range(0..i);
        let d = delay(&mut rng);
        let c = capacity(&mut rng);
        b.add_duplex_link(SwitchId(i as u32), SwitchId(j as u32), c, d)
            .expect("tree links are unique");
    }
    // Random chords.
    let mut added = 0;
    let mut attempts = 0;
    while added < extra_links && attempts < extra_links * 20 + 100 {
        attempts += 1;
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u == v {
            continue;
        }
        let (su, sv) = (SwitchId(u as u32), SwitchId(v as u32));
        if b.has_link(su, sv) || b.has_link(sv, su) {
            continue;
        }
        let d = delay(&mut rng);
        let c = capacity(&mut rng);
        b.add_duplex_link(su, sv, c, d)
            .expect("chord checked for duplicates");
        added += 1;
    }
    b.build()
}

/// A Waxman random graph: nodes placed uniformly in the unit square;
/// an edge `(u, v)` appears with probability
/// `α · exp(−dist(u,v) / (β · L))` where `L = √2`. A spanning tree is
/// added first so the result is always connected.
///
/// # Panics
/// Panics if `cfg.switches < 2`, the delay range is empty, or
/// `alpha`/`beta` are outside `(0, 1]`.
pub fn waxman(cfg: TopologyConfig, alpha: f64, beta: f64) -> Network {
    assert!(
        cfg.switches >= 2,
        "waxman topology needs at least two switches"
    );
    assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
    assert!(beta > 0.0 && beta <= 1.0, "beta must be in (0, 1]");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let n = cfg.switches;
    let pos: Vec<(f64, f64)> = (0..n)
        .map(|_| (rng.gen::<f64>(), rng.gen::<f64>()))
        .collect();
    let l = std::f64::consts::SQRT_2;

    let mut b = NetworkBuilder::with_switches(n);
    let delay = |rng: &mut StdRng| rng.gen_range(cfg.delay_range.0..=cfg.delay_range.1);
    let capacity = |rng: &mut StdRng| rng.gen_range(cfg.capacity_range.0..=cfg.capacity_range.1);
    // Connectivity backbone.
    for i in 1..n {
        let j = rng.gen_range(0..i);
        let d = delay(&mut rng);
        let c = capacity(&mut rng);
        b.add_duplex_link(SwitchId(i as u32), SwitchId(j as u32), c, d)
            .expect("tree links are unique");
    }
    for i in 0..n {
        for j in i + 1..n {
            let (su, sv) = (SwitchId(i as u32), SwitchId(j as u32));
            if b.has_link(su, sv) {
                continue;
            }
            let dist = ((pos[i].0 - pos[j].0).powi(2) + (pos[i].1 - pos[j].1).powi(2)).sqrt();
            let prob = alpha * (-dist / (beta * l)).exp();
            if rng.gen::<f64>() < prob {
                let d = delay(&mut rng);
                let c = capacity(&mut rng);
                b.add_duplex_link(su, sv, c, d)
                    .expect("checked for duplicates");
            }
        }
    }
    b.build()
}

/// The 10-switch topology used for the paper's Mininet experiments
/// (§V-A): two parallel 5-hop chains between a shared source and
/// destination, cross-linked in the middle, 500 Mbps everywhere.
///
/// Returns the network plus `(source, destination)`.
pub fn mininet_ten_switch(p: LinkParams) -> (Network, (SwitchId, SwitchId)) {
    let mut b = NetworkBuilder::with_switches(10);
    let v = |i: u32| SwitchId(i);
    // Chain A: v1 v2 v3 v4 v5 v10 ; chain B: v1 v6 v7 v8 v9 v10.
    for (u, w) in [(0, 1), (1, 2), (2, 3), (3, 4), (4, 9)] {
        b.add_duplex_link(v(u), v(w), p.capacity, p.delay)
            .expect("chain A links are unique");
    }
    for (u, w) in [(0, 5), (5, 6), (6, 7), (7, 8), (8, 9)] {
        b.add_duplex_link(v(u), v(w), p.capacity, p.delay)
            .expect("chain B links are unique");
    }
    // Cross links so that mixed paths (and transient loops) exist.
    for (u, w) in [(1, 6), (2, 7), (3, 8)] {
        b.add_duplex_link(v(u), v(w), p.capacity, p.delay)
            .expect("cross links are unique");
    }
    (b.build(), (v(0), v(9)))
}

/// Converts a [`Network`] into a petgraph [`DiGraph`] whose edge
/// weights are link delays. Used by generators and tests for
/// connectivity and shortest-path cross-checks.
pub fn to_petgraph(net: &Network) -> (DiGraph<SwitchId, Delay>, Vec<NodeIndex>) {
    let mut g = DiGraph::new();
    let nodes: Vec<NodeIndex> = net.switches().map(|s| g.add_node(s)).collect();
    for l in net.links() {
        g.add_edge(nodes[l.src.index()], nodes[l.dst.index()], l.delay);
    }
    (g, nodes)
}

/// `true` if every switch can reach every other switch (strong
/// connectivity, checked through petgraph's SCC decomposition).
pub fn is_strongly_connected(net: &Network) -> bool {
    if net.switch_count() == 0 {
        return true;
    }
    let (g, _) = to_petgraph(net);
    petgraph::algo::kosaraju_scc(&g).len() == 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_shape() {
        let net = line(5, LinkParams::default());
        assert_eq!(net.switch_count(), 5);
        assert_eq!(net.link_count(), 8); // 4 duplex pairs
        assert!(net.link_between(SwitchId(0), SwitchId(1)).is_some());
        assert!(net.link_between(SwitchId(0), SwitchId(2)).is_none());
        assert!(is_strongly_connected(&net));
    }

    #[test]
    fn ring_shape() {
        let net = ring(4, LinkParams::default());
        assert_eq!(net.link_count(), 8);
        assert!(net.link_between(SwitchId(3), SwitchId(0)).is_some());
        assert!(is_strongly_connected(&net));
    }

    #[test]
    fn star_shape() {
        let net = star(5, LinkParams::default());
        assert_eq!(net.link_count(), 8);
        assert_eq!(net.out_degree(SwitchId(0)), 4);
        assert_eq!(net.out_degree(SwitchId(1)), 1);
        assert!(is_strongly_connected(&net));
    }

    #[test]
    fn grid_shape() {
        let net = grid(2, 3, LinkParams::default());
        assert_eq!(net.switch_count(), 6);
        // 2*3 grid: horizontal 2 rows * 2 = 4, vertical 3 cols * 1 = 3; 7 duplex.
        assert_eq!(net.link_count(), 14);
        assert!(is_strongly_connected(&net));
    }

    #[test]
    fn binary_tree_shape() {
        let net = binary_tree(7, LinkParams::default());
        assert_eq!(net.link_count(), 12); // 6 tree edges, duplex
        assert_eq!(net.out_degree(SwitchId(0)), 2);
        assert!(is_strongly_connected(&net));
    }

    #[test]
    fn full_mesh_shape() {
        let net = full_mesh(4, LinkParams::default());
        assert_eq!(net.link_count(), 12);
        assert!(is_strongly_connected(&net));
    }

    #[test]
    fn fat_tree_shape() {
        let net = fat_tree(4, LinkParams::default());
        // k=4: 4 cores + 8 agg + 8 edge = 20 switches.
        assert_eq!(net.switch_count(), 20);
        // links: agg-core 8 agg * 2 = 16, agg-edge 4 pods * 4 = 16; 32 duplex = 64.
        assert_eq!(net.link_count(), 64);
        assert!(is_strongly_connected(&net));
    }

    #[test]
    fn random_connected_is_connected_and_deterministic() {
        let cfg = TopologyConfig::simulation(30, 42);
        let a = random_connected(cfg, 20);
        let b = random_connected(cfg, 20);
        assert_eq!(a.link_count(), b.link_count());
        assert!(a.link_count() >= 2 * 29); // spanning tree duplex at minimum
        assert!(is_strongly_connected(&a));
        for l in a.links() {
            assert!((1..=10).contains(&l.delay));
            assert_eq!(l.capacity, 500, "uniform range pins the capacity");
        }
    }

    #[test]
    fn waxman_is_connected() {
        let cfg = TopologyConfig::simulation(25, 7);
        let net = waxman(cfg, 0.6, 0.4);
        assert!(is_strongly_connected(&net));
        assert!(net.link_count() >= 2 * 24);
    }

    #[test]
    fn mininet_topology() {
        let (net, (src, dst)) = mininet_ten_switch(LinkParams::mininet());
        assert_eq!(net.switch_count(), 10);
        assert_eq!(src, SwitchId(0));
        assert_eq!(dst, SwitchId(9));
        assert!(is_strongly_connected(&net));
        assert_eq!(net.capacity(src, SwitchId(1)), Some(500));
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn line_rejects_tiny() {
        line(1, LinkParams::default());
    }

    #[test]
    #[should_panic(expected = "arity must be even")]
    fn fat_tree_rejects_odd_k() {
        fat_tree(3, LinkParams::default());
    }
}
