//! Capacitated, delayed directed links.

use crate::{Capacity, Delay, SwitchId};
use std::fmt;

/// A directed link `⟨src, dst⟩` with capacity `C` and transmission
/// delay `σ` (paper §II-B).
///
/// If one unit of flow leaves `src` at step `t`, it arrives at `dst` at
/// step `t + σ` — this is exactly the edge-drawing rule of the
/// time-extended network (paper Definition 4).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Link {
    /// Tail switch.
    pub src: SwitchId,
    /// Head switch.
    pub dst: SwitchId,
    /// Capacity `C(src, dst)` — the maximum load at any single step.
    pub capacity: Capacity,
    /// Transmission delay `σ(src, dst)` in time steps, strictly positive.
    pub delay: Delay,
}

impl Link {
    /// Creates a new link description.
    ///
    /// Validation (positive delay/capacity, no self-loop) happens when
    /// the link is added through [`crate::NetworkBuilder::add_link`].
    pub fn new(src: SwitchId, dst: SwitchId, capacity: Capacity, delay: Delay) -> Self {
        Link {
            src,
            dst,
            capacity,
            delay,
        }
    }

    /// The `(src, dst)` endpoint pair, usable as a map key.
    #[inline]
    pub fn endpoints(&self) -> (SwitchId, SwitchId) {
        (self.src, self.dst)
    }
}

impl fmt::Display for Link {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "<{}, {}> (C={}, sigma={})",
            self.src, self.dst, self.capacity, self.delay
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_fields_and_display() {
        let l = Link::new(SwitchId(0), SwitchId(1), 500, 2);
        assert_eq!(l.endpoints(), (SwitchId(0), SwitchId(1)));
        assert_eq!(l.to_string(), "<s0, s1> (C=500, sigma=2)");
    }
}
