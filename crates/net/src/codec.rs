//! JSON codec for the network model, on the `serde_json` value model.
//!
//! The workspace has no serde derives (the `serde_json` shim is a
//! dynamic-[`Value`] parser only), so wire and journal formats are
//! built by hand here: [`Network`], [`Flow`] and [`UpdateInstance`]
//! each get an `encode`/`decode` pair with the invariant
//! `decode(encode(x)) == x`. Decoding re-runs the model's own
//! validation ([`NetworkBuilder`], [`Flow::new`],
//! [`UpdateInstance::new`]), so a hand-edited or corrupted document
//! can never materialize an instance the constructors would reject.
//!
//! Capacities and delays are `u64`; values above 2⁵³ are encoded as
//! decimal strings ([`Value::from_u64_exact`]) to survive the shim's
//! `f64` number model exactly.

use crate::{Flow, FlowId, Network, NetworkBuilder, Path, SwitchId, UpdateInstance};
use serde_json::{Map, Value};
use std::fmt;

/// A structural error while decoding a JSON document into a model
/// type: a missing field, a type mismatch, or a document that fails
/// the model's own validation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CodecError(String);

impl CodecError {
    /// Creates an error with the given context message.
    pub fn new(msg: impl Into<String>) -> Self {
        CodecError(msg.into())
    }
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "codec error: {}", self.0)
    }
}

impl std::error::Error for CodecError {}

/// Shorthand: the `key` member of an object, or a decode error naming
/// the missing field.
pub fn member<'v>(v: &'v Value, key: &str) -> Result<&'v Value, CodecError> {
    v.get(key)
        .ok_or_else(|| CodecError(format!("missing field `{key}`")))
}

/// Decodes a `u64` field encoded by [`Value::from_u64_exact`].
pub fn field_u64(v: &Value, key: &str) -> Result<u64, CodecError> {
    member(v, key)?
        .as_u64_exact()
        .ok_or_else(|| CodecError(format!("field `{key}` is not a u64")))
}

/// Decodes an `i64` field encoded by [`Value::from_i64_exact`].
pub fn field_i64(v: &Value, key: &str) -> Result<i64, CodecError> {
    member(v, key)?
        .as_i64_exact()
        .ok_or_else(|| CodecError(format!("field `{key}` is not an i64")))
}

/// Decodes a `u32` id component.
fn id_u32(v: &Value, what: &str) -> Result<u32, CodecError> {
    let raw = v
        .as_u64_exact()
        .ok_or_else(|| CodecError(format!("{what} is not an integer")))?;
    u32::try_from(raw).map_err(|_| CodecError(format!("{what} {raw} exceeds u32")))
}

fn hops_to_value(path: &Path) -> Value {
    Value::Array(
        path.hops()
            .iter()
            .map(|s| Value::Number(f64::from(s.0)))
            .collect(),
    )
}

fn hops_from_value(v: &Value, what: &str) -> Result<Path, CodecError> {
    let items = v
        .as_array()
        .ok_or_else(|| CodecError(format!("{what} is not an array")))?;
    let hops = items
        .iter()
        .map(|h| id_u32(h, "path hop").map(SwitchId))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(Path::new(hops))
}

/// Encodes a network as `{"switches": [names...], "links":
/// [[src, dst, capacity, delay], ...]}`.
pub fn network_to_value(net: &Network) -> Value {
    let switches = net
        .switches()
        .map(|s| {
            Value::String(
                net.switch_name(s)
                    .map(str::to_string)
                    .unwrap_or_else(|| s.to_string()),
            )
        })
        .collect();
    let links = net
        .links()
        .map(|l| {
            Value::Array(vec![
                Value::Number(f64::from(l.src.0)),
                Value::Number(f64::from(l.dst.0)),
                Value::from_u64_exact(l.capacity),
                Value::from_u64_exact(l.delay),
            ])
        })
        .collect();
    let mut m = Map::new();
    m.insert("switches".to_string(), Value::Array(switches));
    m.insert("links".to_string(), Value::Array(links));
    Value::Object(m)
}

/// Decodes a network written by [`network_to_value`], re-running
/// [`NetworkBuilder`] validation (no self-loops, positive delays…).
pub fn network_from_value(v: &Value) -> Result<Network, CodecError> {
    let switches = member(v, "switches")?
        .as_array()
        .ok_or_else(|| CodecError("`switches` is not an array".into()))?;
    let mut b = NetworkBuilder::new();
    for s in switches {
        let name = s
            .as_str()
            .ok_or_else(|| CodecError("switch name is not a string".into()))?;
        b.add_switch(name);
    }
    let links = member(v, "links")?
        .as_array()
        .ok_or_else(|| CodecError("`links` is not an array".into()))?;
    for l in links {
        let quad = l
            .as_array()
            .filter(|a| a.len() == 4)
            .ok_or_else(|| CodecError("link is not a [src, dst, capacity, delay] quad".into()))?;
        let get = |i: usize, what: &str| {
            quad.get(i)
                .ok_or_else(|| CodecError(format!("link missing {what}")))
        };
        let src = SwitchId(id_u32(get(0, "src")?, "link src")?);
        let dst = SwitchId(id_u32(get(1, "dst")?, "link dst")?);
        let capacity = get(2, "capacity")?
            .as_u64_exact()
            .ok_or_else(|| CodecError("link capacity is not a u64".into()))?;
        let delay = get(3, "delay")?
            .as_u64_exact()
            .ok_or_else(|| CodecError("link delay is not a u64".into()))?;
        b.add_link(src, dst, capacity, delay)
            .map_err(|e| CodecError(format!("invalid link: {e}")))?;
    }
    Ok(b.build())
}

/// Encodes a flow as `{"id", "demand", "initial", "final"}`.
pub fn flow_to_value(flow: &Flow) -> Value {
    let mut m = Map::new();
    m.insert("id".to_string(), Value::Number(f64::from(flow.id.0)));
    m.insert("demand".to_string(), Value::from_u64_exact(flow.demand));
    m.insert("initial".to_string(), hops_to_value(&flow.initial));
    m.insert("final".to_string(), hops_to_value(&flow.fin));
    Value::Object(m)
}

/// Decodes a flow written by [`flow_to_value`], re-running
/// [`Flow::new`] validation.
pub fn flow_from_value(v: &Value) -> Result<Flow, CodecError> {
    let id = FlowId(id_u32(member(v, "id")?, "flow id")?);
    let demand = field_u64(v, "demand")?;
    let initial = hops_from_value(member(v, "initial")?, "`initial`")?;
    let fin = hops_from_value(member(v, "final")?, "`final`")?;
    Flow::new(id, demand, initial, fin).map_err(|e| CodecError(format!("invalid flow: {e}")))
}

/// Encodes an update instance as `{"network", "flows"}`.
pub fn instance_to_value(instance: &UpdateInstance) -> Value {
    let mut m = Map::new();
    m.insert("network".to_string(), network_to_value(&instance.network));
    m.insert(
        "flows".to_string(),
        Value::Array(instance.flows.iter().map(flow_to_value).collect()),
    );
    Value::Object(m)
}

/// Decodes an instance written by [`instance_to_value`], re-validating
/// every flow against the decoded network.
pub fn instance_from_value(v: &Value) -> Result<UpdateInstance, CodecError> {
    let network = network_from_value(member(v, "network")?)?;
    let flows = member(v, "flows")?
        .as_array()
        .ok_or_else(|| CodecError("`flows` is not an array".into()))?
        .iter()
        .map(flow_from_value)
        .collect::<Result<Vec<_>, _>>()?;
    UpdateInstance::new(network, flows).map_err(|e| CodecError(format!("invalid instance: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{motivating_example, reversal_instance};

    #[test]
    fn instance_round_trips_exactly() {
        for inst in [
            motivating_example(),
            reversal_instance(5, u64::MAX, u64::MAX / 2),
        ] {
            let v = instance_to_value(&inst);
            let text = serde_json::to_string(&v).unwrap();
            let back = instance_from_value(&serde_json::from_str(&text).unwrap()).unwrap();
            assert_eq!(back.flows, inst.flows);
            assert_eq!(
                back.network.switch_count(),
                inst.network.switch_count(),
                "switch arena preserved"
            );
            let (a, b): (Vec<_>, Vec<_>) = (
                back.network.links().collect(),
                inst.network.links().collect(),
            );
            assert_eq!(a, b, "link arena preserved in canonical order");
            for s in inst.network.switches() {
                assert_eq!(back.network.switch_name(s), inst.network.switch_name(s));
            }
        }
    }

    #[test]
    fn decode_rejects_structural_garbage() {
        let v = serde_json::from_str(r#"{"network": {"switches": []}}"#).unwrap();
        assert!(instance_from_value(&v)
            .unwrap_err()
            .to_string()
            .contains("links"));
        // A link quad referencing a missing switch fails builder
        // validation, not just shape checks.
        let v = serde_json::from_str(r#"{"switches": ["a"], "links": [[0, 9, 1, 1]]}"#).unwrap();
        assert!(network_from_value(&v).is_err());
        // Zero demand is rejected by Flow::new.
        let v =
            serde_json::from_str(r#"{"id": 0, "demand": 0, "initial": [0, 1], "final": [0, 1]}"#)
                .unwrap();
        assert!(flow_from_value(&v)
            .unwrap_err()
            .to_string()
            .contains("invalid flow"));
    }
}
