//! Topology partitioning for sharded multi-flow planning.
//!
//! The sharded planner (`chronus-core::shard`) plans per-region
//! subproblems in parallel and coordinates shared links through
//! capacity reservations. This module supplies the region structure:
//!
//! 1. [`partition_network`] assigns every switch to a shard — by
//!    **fat-tree pod detection** when the topology is a
//!    [`crate::topology::fat_tree`] fabric (pods are the natural
//!    planning domains; core switches are spread across shards), or by
//!    a **greedy min-cut fallback** (farthest-point seeding,
//!    multi-source BFS growth, then a boundary-refinement pass that
//!    moves switches to the shard holding most of their neighbours)
//!    for arbitrary graphs.
//! 2. [`split_instance`] groups an [`UpdateInstance`]'s flows by the
//!    shard owning the majority of their touched switches and derives
//!    the **shared-link set**: every link loaded by flows of two or
//!    more shards, with the per-shard static demand bounds the
//!    reservation table needs. Links used by a single shard — even
//!    topologically cross-shard ones — need no reservation, because
//!    only flows load links and paths never change during planning.

// Shard assignments are dense `Vec`s indexed by `SwitchId` values that
// the `Network` itself hands out (always `< switch_count`), so direct
// indexing cannot go out of bounds here.
#![allow(clippy::indexing_slicing)]

use crate::{Capacity, Network, NetworkBuilder, SwitchId, UpdateInstance};
use std::collections::{BTreeMap, VecDeque};

/// How [`partition_network`] derived the shard assignment.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PartitionMethod {
    /// The whole topology fits one shard (trivial partition).
    Single,
    /// Fat-tree pods detected structurally; pods map to shards.
    FatTreePods,
    /// Greedy min-cut: BFS-grown balanced regions plus boundary
    /// refinement.
    GreedyMinCut,
}

/// A shard assignment over a topology, with its cross-shard link set.
#[derive(Clone, Debug)]
pub struct Partition {
    /// Number of shards (≥ 1; may be fewer than requested).
    pub shards: usize,
    /// Shard index per switch, indexed by `SwitchId` value.
    pub assignment: Vec<usize>,
    /// Directed links whose endpoints live in different shards.
    pub cross_links: Vec<(SwitchId, SwitchId)>,
    /// How the assignment was derived.
    pub method: PartitionMethod,
}

impl Partition {
    /// The shard `switch` belongs to.
    pub fn shard_of(&self, switch: SwitchId) -> usize {
        self.assignment.get(switch.0 as usize).copied().unwrap_or(0)
    }
}

/// A link loaded by flows of two or more shards: the coordination
/// surface of sharded planning. `needs`/`min_needs` are indexed by
/// shard.
#[derive(Clone, Debug)]
pub struct SharedLink {
    /// Link source switch.
    pub src: SwitchId,
    /// Link destination switch.
    pub dst: SwitchId,
    /// The link's true capacity in the source instance.
    pub capacity: Capacity,
    /// Per-shard static need: the sum of each of the shard's flows'
    /// demands once per path occupancy (initial and final counted
    /// separately). Because paths are simple, a shard's transient peak
    /// on the link can never exceed this bound.
    pub needs: Vec<Capacity>,
    /// Per-shard minimum viable reservation: the largest single-flow
    /// demand the shard routes over the link (below this the shard's
    /// instance fails validation).
    pub min_needs: Vec<Capacity>,
}

impl SharedLink {
    /// Shards with non-zero static need on this link.
    pub fn users(&self) -> usize {
        self.needs.iter().filter(|&&n| n > 0).count()
    }

    /// Sum of all shards' static needs.
    pub fn total_need(&self) -> Capacity {
        self.needs.iter().sum()
    }
}

/// An [`UpdateInstance`] split into per-shard flow groups plus the
/// shared links their reservations must coordinate.
#[derive(Clone, Debug)]
pub struct ShardedInstance {
    /// The topology partition the split was made over.
    pub partition: Partition,
    /// Flow indices (into the source instance's `flows`) per shard.
    pub flow_shards: Vec<Vec<usize>>,
    /// Links loaded by two or more shards, with per-shard needs.
    pub shared_links: Vec<SharedLink>,
}

impl ShardedInstance {
    /// Shards that actually own at least one flow.
    pub fn populated_shards(&self) -> usize {
        self.flow_shards.iter().filter(|f| !f.is_empty()).count()
    }
}

/// Partitions `net` into up to `target` shards.
///
/// Tries structural fat-tree pod detection first (pods become shards,
/// grouped contiguously when `target < k`; core switches are spread
/// evenly), then falls back to greedy min-cut growth. `target <= 1` or
/// a trivially small network yields the single-shard partition.
pub fn partition_network(net: &Network, target: usize) -> Partition {
    let n = net.switch_count();
    if target <= 1 || n <= 2 {
        return trivial(net);
    }
    if let Some(p) = fat_tree_pods(net, target) {
        return p;
    }
    greedy_min_cut(net, target.min(n))
}

fn trivial(net: &Network) -> Partition {
    Partition {
        shards: 1,
        assignment: vec![0; net.switch_count()],
        cross_links: Vec::new(),
        method: PartitionMethod::Single,
    }
}

fn finish(net: &Network, shards: usize, assignment: Vec<usize>, method: PartitionMethod) -> Partition {
    let cross_links = net
        .links()
        .filter(|l| assignment[l.src.0 as usize] != assignment[l.dst.0 as usize])
        .map(|l| (l.src, l.dst))
        .collect();
    Partition {
        shards,
        assignment,
        cross_links,
        method,
    }
}

/// Detects a [`crate::topology::fat_tree`] fabric by its switch-name
/// structure (`core{i}`/`agg{i}`/`edge{i}`) and cross-checks the
/// counts: `k²/4` cores, `k·k/2` aggregation and edge switches. Pod
/// membership follows the generator's layout (`agg i` and `edge i`
/// belong to pod `i / (k/2)`); cores are spread round-robin over the
/// shards since they connect to every pod anyway.
fn fat_tree_pods(net: &Network, target: usize) -> Option<Partition> {
    let n = net.switch_count();
    let mut cores = 0usize;
    let mut aggs = 0usize;
    let mut edges = 0usize;
    // role per switch: 0 = core, 1 = agg, 2 = edge, with its index.
    let mut roles: Vec<(u8, usize)> = Vec::with_capacity(n);
    for s in net.switches() {
        let name = net.switch_name(s)?;
        let (role, idx) = if let Some(i) = name.strip_prefix("core") {
            cores += 1;
            (0u8, i.parse::<usize>().ok()?)
        } else if let Some(i) = name.strip_prefix("agg") {
            aggs += 1;
            (1, i.parse::<usize>().ok()?)
        } else if let Some(i) = name.strip_prefix("edge") {
            edges += 1;
            (2, i.parse::<usize>().ok()?)
        } else {
            return None;
        };
        roles.push((role, idx));
    }
    // Counts must solve to an even arity k >= 2.
    if aggs == 0 || aggs != edges || cores == 0 {
        return None;
    }
    let half = (cores as f64).sqrt() as usize;
    if half * half != cores || half == 0 {
        return None;
    }
    let k = aggs / half;
    if k < 2 || !k.is_multiple_of(2) || k * half != aggs {
        return None;
    }
    let shards = target.min(k).max(1);
    if shards <= 1 {
        return Some(trivial(net));
    }
    // Contiguous pod grouping: pod p -> shard p * shards / k.
    let mut assignment = vec![0usize; n];
    for (sw, &(role, idx)) in roles.iter().enumerate() {
        assignment[sw] = match role {
            0 => idx * shards / cores, // cores spread evenly
            _ => {
                let pod = idx / half;
                if pod >= k {
                    return None;
                }
                pod * shards / k
            }
        };
    }
    Some(finish(net, shards, assignment, PartitionMethod::FatTreePods))
}

/// Greedy min-cut partition for arbitrary graphs: farthest-point
/// seeding, balanced multi-source BFS growth, then one refinement pass
/// moving boundary switches toward the shard holding the majority of
/// their neighbours (bounded by a 2×-balance cap so no shard absorbs
/// the graph).
fn greedy_min_cut(net: &Network, shards: usize) -> Partition {
    let n = net.switch_count();
    // Undirected adjacency over dense switch ids.
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for l in net.links() {
        let (u, v) = (l.src.0 as usize, l.dst.0 as usize);
        if !adj[u].contains(&v) {
            adj[u].push(v);
        }
        if !adj[v].contains(&u) {
            adj[v].push(u);
        }
    }
    for nbrs in &mut adj {
        nbrs.sort_unstable();
    }

    // Farthest-point seeds: start from switch 0, then repeatedly take
    // the switch maximizing its BFS distance to the chosen seed set.
    let mut seeds = vec![0usize];
    let mut dist_to_seeds = bfs_distances(&adj, 0);
    while seeds.len() < shards {
        let far = (0..n)
            .filter(|v| !seeds.contains(v))
            .max_by_key(|&v| dist_to_seeds[v])
            .unwrap_or(0);
        if seeds.contains(&far) {
            break;
        }
        seeds.push(far);
        let d = bfs_distances(&adj, far);
        for v in 0..n {
            dist_to_seeds[v] = dist_to_seeds[v].min(d[v]);
        }
    }

    // Balanced multi-source growth: shards take turns claiming one
    // frontier switch per round, so a high-degree seed cannot flood
    // the graph before the other frontiers move (dense random graphs
    // have tiny diameters; plain multi-source BFS degenerates there).
    let mut assignment = vec![usize::MAX; n];
    let mut queues: Vec<VecDeque<usize>> = vec![VecDeque::new(); seeds.len()];
    for (s, &seed) in seeds.iter().enumerate() {
        assignment[seed] = s;
        queues[s].push_back(seed);
    }
    let mut remaining = n - seeds.len();
    while remaining > 0 {
        let mut progressed = false;
        for s in 0..seeds.len() {
            // Claim exactly one unassigned neighbour of this shard's
            // frontier; exhausted frontier switches are retired.
            'claim: while let Some(&u) = queues[s].front() {
                for &v in &adj[u] {
                    if assignment[v] == usize::MAX {
                        assignment[v] = s;
                        queues[s].push_back(v);
                        remaining -= 1;
                        progressed = true;
                        break 'claim;
                    }
                }
                queues[s].pop_front();
            }
        }
        if !progressed {
            break; // disconnected leftovers
        }
    }
    // Disconnected leftovers (none for valid instances, but stay total).
    for a in &mut assignment {
        if *a == usize::MAX {
            *a = 0;
        }
    }

    // Refinement: move a switch to the neighbouring shard holding
    // strictly more of its neighbours, while keeping shards within a
    // 2× balance cap. One deterministic pass in id order.
    let cap = (2 * n).div_ceil(seeds.len());
    let mut sizes = vec![0usize; seeds.len()];
    for &a in &assignment {
        sizes[a] += 1;
    }
    let mut counts = vec![0usize; seeds.len()];
    for u in 0..n {
        for c in &mut counts {
            *c = 0;
        }
        for &v in &adj[u] {
            counts[assignment[v]] += 1;
        }
        let here = assignment[u];
        let (best, best_count) = counts
            .iter()
            .enumerate()
            .max_by_key(|&(s, &c)| (c, usize::MAX - s))
            .map(|(s, &c)| (s, c))
            .unwrap_or((here, 0));
        if best != here && best_count > counts[here] && sizes[best] < cap && sizes[here] > 1 {
            sizes[here] -= 1;
            sizes[best] += 1;
            assignment[u] = best;
        }
    }

    finish(net, seeds.len(), assignment, PartitionMethod::GreedyMinCut)
}

fn bfs_distances(adj: &[Vec<usize>], start: usize) -> Vec<usize> {
    let mut dist = vec![usize::MAX / 2; adj.len()];
    let mut queue = VecDeque::new();
    dist[start] = 0;
    queue.push_back(start);
    while let Some(u) = queue.pop_front() {
        for &v in &adj[u] {
            if dist[v] > dist[u] + 1 {
                dist[v] = dist[u] + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// Splits `instance` into per-shard flow groups over a partition of
/// its topology into up to `target` shards, deriving the shared-link
/// set (links loaded by ≥ 2 shards) with per-shard static needs.
///
/// Each flow goes to the shard owning the majority of its touched
/// switches (ties to the lowest shard id) — flows are never split.
pub fn split_instance(instance: &UpdateInstance, target: usize) -> ShardedInstance {
    let partition = partition_network(&instance.network, target);
    let shards = partition.shards;
    let mut flow_shards: Vec<Vec<usize>> = vec![Vec::new(); shards];
    let mut owner: Vec<usize> = Vec::with_capacity(instance.flows.len());
    let mut votes = vec![0usize; shards];
    for (fi, flow) in instance.flows.iter().enumerate() {
        for v in &mut votes {
            *v = 0;
        }
        for sw in flow.touched_switches() {
            votes[partition.shard_of(sw)] += 1;
        }
        let shard = votes
            .iter()
            .enumerate()
            .max_by_key(|&(s, &c)| (c, usize::MAX - s))
            .map(|(s, _)| s)
            .unwrap_or(0);
        owner.push(shard);
        flow_shards[shard].push(fi);
    }

    // Per-link static needs: demand once per path occupancy. A link
    // becomes shared when two distinct shards both need it.
    let mut needs: BTreeMap<(SwitchId, SwitchId), (Vec<Capacity>, Vec<Capacity>)> = BTreeMap::new();
    for (fi, flow) in instance.flows.iter().enumerate() {
        let shard = owner[fi];
        for path in [&flow.initial, &flow.fin] {
            for (u, v) in path.edges() {
                let entry = needs
                    .entry((u, v))
                    .or_insert_with(|| (vec![0; shards], vec![0; shards]));
                entry.0[shard] += flow.demand;
                entry.1[shard] = entry.1[shard].max(flow.demand);
            }
        }
    }
    let shared_links = needs
        .into_iter()
        .filter(|(_, (need, _))| need.iter().filter(|&&c| c > 0).count() >= 2)
        .map(|((src, dst), (needs, min_needs))| SharedLink {
            src,
            dst,
            capacity: instance.network.capacity(src, dst).unwrap_or(0),
            needs,
            min_needs,
        })
        .collect();

    ShardedInstance {
        partition,
        flow_shards,
        shared_links,
    }
}

/// Rebuilds `net` with the capacities in `overrides` replacing the
/// originals (all other links and every switch carry over verbatim,
/// preserving switch ids). This is how a shard's planning view clamps
/// shared links to the shard's reservation.
pub fn network_with_capacities(
    net: &Network,
    overrides: &BTreeMap<(SwitchId, SwitchId), Capacity>,
) -> Network {
    let mut b = NetworkBuilder::new();
    for s in net.switches() {
        b.add_switch(net.switch_name(s).unwrap_or("").to_string());
    }
    for l in net.links() {
        let capacity = overrides
            .get(&(l.src, l.dst))
            .copied()
            .unwrap_or(l.capacity)
            .max(1);
        // The source network already validated these links; a rebuild
        // with a positive capacity cannot fail.
        let _ = b.add_link(l.src, l.dst, capacity, l.delay);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{fat_tree, random_connected, LinkParams, TopologyConfig};
    use crate::{Flow, FlowId, Path};

    fn params() -> LinkParams {
        LinkParams {
            capacity: 1000,
            delay: 1,
        }
    }

    #[test]
    fn fat_tree_partition_detects_pods() {
        let net = fat_tree(4, params());
        let p = partition_network(&net, 4);
        assert_eq!(p.method, PartitionMethod::FatTreePods);
        assert_eq!(p.shards, 4);
        // Every agg/edge pair of one pod shares a shard.
        for pod in 0..4 {
            let agg = net
                .switches()
                .find(|&s| net.switch_name(s) == Some(&format!("agg{}", pod * 2)))
                .unwrap();
            let edge = net
                .switches()
                .find(|&s| net.switch_name(s) == Some(&format!("edge{}", pod * 2)))
                .unwrap();
            assert_eq!(p.shard_of(agg), p.shard_of(edge), "pod {pod}");
        }
        // Pod-interconnect (core) links cross shards; the set is
        // symmetric and non-empty.
        assert!(!p.cross_links.is_empty());
        for &(u, v) in &p.cross_links {
            assert_ne!(p.shard_of(u), p.shard_of(v));
        }
    }

    #[test]
    fn fat_tree_groups_pods_when_fewer_shards_requested() {
        let net = fat_tree(8, params());
        let p = partition_network(&net, 2);
        assert_eq!(p.method, PartitionMethod::FatTreePods);
        assert_eq!(p.shards, 2);
        let mut sizes = [0usize; 2];
        for &a in &p.assignment {
            sizes[a] += 1;
        }
        assert!(sizes[0] > 0 && sizes[1] > 0);
    }

    #[test]
    fn min_cut_fallback_balances_random_graphs() {
        let net = random_connected(TopologyConfig::simulation(64, 7), 32);
        let p = partition_network(&net, 4);
        assert_eq!(p.method, PartitionMethod::GreedyMinCut);
        assert_eq!(p.shards, 4);
        let mut sizes = [0usize; 4];
        for &a in &p.assignment {
            sizes[a] += 1;
        }
        let cap = (2 * 64usize).div_ceil(4);
        for (s, &size) in sizes.iter().enumerate() {
            assert!(size >= 1, "shard {s} empty");
            assert!(size <= cap, "shard {s} oversize: {size}");
        }
        // Cross links are consistent with the assignment.
        for &(u, v) in &p.cross_links {
            assert_ne!(p.shard_of(u), p.shard_of(v));
        }
    }

    #[test]
    fn single_shard_requests_are_trivial() {
        let net = fat_tree(4, params());
        let p = partition_network(&net, 1);
        assert_eq!(p.method, PartitionMethod::Single);
        assert_eq!(p.shards, 1);
        assert!(p.cross_links.is_empty());
    }

    /// Two pod-local flows in different pods plus one cross-pod flow:
    /// the cross-pod flow's links are shared exactly where another
    /// shard also loads them.
    #[test]
    fn split_groups_flows_and_finds_shared_links() {
        let net = fat_tree(4, params());
        let by_name = |n: &str| {
            net.switches()
                .find(|&s| net.switch_name(s) == Some(n))
                .unwrap()
        };
        // Pod 0: edge0 -> agg0 -> edge1, migrate to edge0 -> agg1 -> edge1.
        let f0 = Flow::new(
            FlowId(0),
            100,
            Path::new(vec![by_name("edge0"), by_name("agg0"), by_name("edge1")]),
            Path::new(vec![by_name("edge0"), by_name("agg1"), by_name("edge1")]),
        )
        .unwrap();
        // Pod 1, same shape — oriented so its pod-1 hops share the
        // directed links agg2->edge2 / agg3->edge2 with f2 below.
        let f1 = Flow::new(
            FlowId(1),
            100,
            Path::new(vec![by_name("edge3"), by_name("agg2"), by_name("edge2")]),
            Path::new(vec![by_name("edge3"), by_name("agg3"), by_name("edge2")]),
        )
        .unwrap();
        // Cross-pod: edge0 -> agg0 -> core0 -> agg2 -> edge2 migrating
        // to the agg1/core2/agg3 spine — overlaps f0's pod-0 edge and
        // f1's pod-1 edge.
        let f2 = Flow::new(
            FlowId(2),
            100,
            Path::new(vec![
                by_name("edge0"),
                by_name("agg0"),
                by_name("core0"),
                by_name("agg2"),
                by_name("edge2"),
            ]),
            Path::new(vec![
                by_name("edge0"),
                by_name("agg1"),
                by_name("core2"),
                by_name("agg3"),
                by_name("edge2"),
            ]),
        )
        .unwrap();
        let inst = UpdateInstance::new(net, vec![f0, f1, f2]).unwrap();
        let split = split_instance(&inst, 4);
        assert_eq!(split.partition.method, PartitionMethod::FatTreePods);
        // The pod-local flows land in different shards.
        let shard_of_flow = |fi: usize| {
            split
                .flow_shards
                .iter()
                .position(|fs| fs.contains(&fi))
                .unwrap()
        };
        assert_ne!(shard_of_flow(0), shard_of_flow(1));
        assert!(split.populated_shards() >= 2);
        // Shared links exist (the cross-pod flow overlaps both pods)
        // and carry consistent need bounds.
        assert!(!split.shared_links.is_empty());
        for sl in &split.shared_links {
            assert!(sl.users() >= 2, "{}->{} has one user", sl.src, sl.dst);
            assert!(sl.capacity > 0);
            for (n, m) in sl.needs.iter().zip(&sl.min_needs) {
                assert!(m <= n);
            }
        }
        // edge0 -> agg0 is used by f0 and f2 only; both live in pod
        // 0's shard, so the link needs no reservation and must NOT be
        // in the shared set.
        if shard_of_flow(0) == shard_of_flow(2) {
            let edge0 = by_name_in(&inst.network, "edge0");
            let agg0 = by_name_in(&inst.network, "agg0");
            assert!(!split
                .shared_links
                .iter()
                .any(|sl| sl.src == edge0 && sl.dst == agg0));
        }
    }

    fn by_name_in(net: &Network, n: &str) -> SwitchId {
        net.switches()
            .find(|&s| net.switch_name(s) == Some(n))
            .unwrap()
    }

    #[test]
    fn capacity_overrides_rebuild_preserves_structure() {
        let net = fat_tree(4, params());
        let l = *net.links().next().unwrap();
        let mut overrides = BTreeMap::new();
        overrides.insert((l.src, l.dst), 123 as Capacity);
        let rebuilt = network_with_capacities(&net, &overrides);
        assert_eq!(rebuilt.switch_count(), net.switch_count());
        assert_eq!(rebuilt.link_count(), net.link_count());
        assert_eq!(rebuilt.capacity(l.src, l.dst), Some(123));
        // Names and ids carry over.
        for s in net.switches() {
            assert_eq!(rebuilt.switch_name(s), net.switch_name(s));
        }
        // A non-overridden link keeps its capacity and delay.
        let other = net.links().find(|x| x.endpoints() != l.endpoints()).unwrap();
        assert_eq!(rebuilt.capacity(other.src, other.dst), Some(other.capacity));
        assert_eq!(rebuilt.delay(other.src, other.dst), Some(other.delay));
    }
}
