//! Update-instance generators reproducing the paper's evaluation
//! workloads (§V-B): "the initial routing path is fixed and the final
//! routing path is chosen randomly … initial and final routing paths
//! have the common source and destination."
// Instance generators build hard-coded paper examples: a panic here
// is a bug in the example itself, so `expect` with a message is the
// intended failure mode, and indexing targets paths the generator
// just constructed.
#![allow(clippy::expect_used, clippy::indexing_slicing)]

use crate::routing::{biased_random_path, shortest_path_delay};
use crate::topology::{self, TopologyConfig};
use crate::{Capacity, Flow, FlowId, Path, SwitchId, UpdateInstance};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for [`InstanceGenerator`].
#[derive(Clone, Copy, Debug)]
pub struct InstanceGeneratorConfig {
    /// Number of switches in each generated topology.
    pub switches: usize,
    /// Inclusive link-capacity range (heterogeneous capacities put a
    /// random subset of links in the contended `C < 2d` regime).
    pub capacity_range: (Capacity, Capacity),
    /// Inclusive link-delay range.
    pub delay_range: (u64, u64),
    /// Extra random links beyond the spanning tree, as a fraction of
    /// the switch count (0.5 ⇒ `n/2` chords).
    pub chord_fraction: f64,
    /// Flow demand. The paper's interesting regime is `capacity < 2·d`
    /// on some links so that old+new flow cannot share them.
    pub demand: Capacity,
    /// How strongly the random final path gravitates toward short
    /// detours (see [`biased_random_path`]); 0 = uniform random walk.
    pub greediness: f64,
    /// Same knob for the ("fixed") initial path. With 0, both routes
    /// are uniform loop-erased walks that cross each other in
    /// arbitrary order — the regime where update ordering and timing
    /// decide everything, as in the paper's random-routing workload.
    pub initial_greediness: f64,
    /// Probability that the final path is a *segment reversal*: one
    /// randomly chosen segment of the initial path is traversed in the
    /// opposite direction (entry/exit chords are added to the topology
    /// when absent) — exactly the structure of the paper's Fig. 1,
    /// where update *order and timing* decide between a clean
    /// migration and transient congestion. The remaining instances get
    /// a fully random final path.
    pub detour_fraction: f64,
    /// Base RNG seed; instance `i` derives its own stream from it.
    pub seed: u64,
}

impl InstanceGeneratorConfig {
    /// The paper's §V-B flavour at `n` switches: 500-unit links,
    /// demand 300 (so no link can hold two copies of the flow),
    /// delays in `[1, 10]`.
    pub fn paper(n: usize, seed: u64) -> Self {
        InstanceGeneratorConfig {
            switches: n,
            capacity_range: (300, 700),
            delay_range: (1, 10),
            chord_fraction: 0.2,
            demand: 300,
            greediness: 0.0,
            initial_greediness: 0.0,
            detour_fraction: 0.7,
            seed,
        }
    }
}

/// Seeded generator of single-flow update instances over random
/// connected topologies.
///
/// ```
/// use chronus_net::{InstanceGenerator, InstanceGeneratorConfig};
/// let mut g = InstanceGenerator::new(InstanceGeneratorConfig::paper(20, 1));
/// let inst = g.generate().expect("20-switch instances always exist");
/// assert_eq!(inst.network.switch_count(), 20);
/// assert_eq!(inst.flows.len(), 1);
/// ```
#[derive(Debug)]
pub struct InstanceGenerator {
    cfg: InstanceGeneratorConfig,
    counter: u64,
}

impl InstanceGenerator {
    /// Creates a generator from a config.
    pub fn new(cfg: InstanceGeneratorConfig) -> Self {
        InstanceGenerator { cfg, counter: 0 }
    }

    /// The config this generator draws from.
    pub fn config(&self) -> &InstanceGeneratorConfig {
        &self.cfg
    }

    /// Generates the next instance. Returns `None` only if no usable
    /// source/destination pair with two distinct paths could be found
    /// after a bounded number of attempts (practically impossible on
    /// connected topologies of ≥ 4 switches).
    pub fn generate(&mut self) -> Option<UpdateInstance> {
        let _span = chronus_trace::span!(
            "net.generate",
            switches = self.cfg.switches,
            seed = self.cfg.seed
        )
        .entered();
        let attempt_seed = self
            .cfg
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(self.counter);
        self.counter += 1;
        let mut rng = StdRng::seed_from_u64(attempt_seed);

        let topo_cfg = TopologyConfig {
            switches: self.cfg.switches,
            capacity_range: self.cfg.capacity_range,
            delay_range: self.cfg.delay_range,
            seed: rng.gen(),
        };
        let chords = ((self.cfg.switches as f64) * self.cfg.chord_fraction) as usize;
        let net = topology::random_connected(topo_cfg, chords);

        for _ in 0..64 {
            let src = SwitchId(rng.gen_range(0..self.cfg.switches as u32));
            let dst = SwitchId(rng.gen_range(0..self.cfg.switches as u32));
            if src == dst {
                continue;
            }
            // The initial path is an arbitrary ("fixed") route, not the
            // shortest one — otherwise no reroute could ever reach a
            // shared link faster than the incumbent and every instance
            // would be trivially congestion-free.
            let Some(initial) =
                biased_random_path(&net, src, dst, self.cfg.initial_greediness, &mut rng)
                    .or_else(|| shortest_path_delay(&net, src, dst))
            else {
                continue;
            };
            // Segment-reversal reroutes when drawn and possible (the
            // initial path needs ≥ 4 hops), otherwise a fully random
            // final path.
            if rng.gen::<f64>() < self.cfg.detour_fraction {
                if let Some((net2, fin)) = segment_reversal(
                    &net,
                    &initial,
                    self.cfg.demand,
                    self.cfg.capacity_range,
                    self.cfg.delay_range,
                    &mut rng,
                ) {
                    if let Ok(flow) = Flow::new(FlowId(0), self.cfg.demand, initial.clone(), fin) {
                        if flow.validate(&net2).is_ok() {
                            return UpdateInstance::single(net2, flow).ok();
                        }
                    }
                    continue;
                }
                // Fall through to the random-path reroute below.
            }
            let Some(fin) = biased_random_path(&net, src, dst, self.cfg.greediness, &mut rng)
            else {
                continue;
            };
            if fin == initial {
                continue; // no-op instance; draw again
            }
            let Ok(flow) = Flow::new(FlowId(0), self.cfg.demand, initial, fin) else {
                continue;
            };
            if flow.validate(&net).is_err() {
                continue;
            }
            return UpdateInstance::single(net, flow).ok();
        }
        None
    }

    /// Generates a batch of `count` instances (the paper compares "500
    /// different update instances in each run").
    pub fn generate_batch(&mut self, count: usize) -> Vec<UpdateInstance> {
        let mut out = Vec::with_capacity(count);
        let mut misses = 0;
        while out.len() < count && misses < count * 4 + 16 {
            match self.generate() {
                Some(i) => out.push(i),
                None => misses += 1,
            }
        }
        out
    }
}

/// Reverses one randomly chosen segment of `initial` (the Fig. 1
/// structure: the new route walks part of the old route backwards).
/// The interior reverse links always exist (all generated links are
/// duplex); the entry chord `init[i] → init[j−1]` and exit chord
/// `init[i+1] → init[j]` are added to a copy of the network when
/// absent, with parameters drawn from the given ranges. Returns the
/// (possibly extended) network and the final path; `None` if the
/// initial path has no reversible segment.
pub fn segment_reversal(
    net: &crate::Network,
    initial: &Path,
    demand: Capacity,
    capacity_range: (Capacity, Capacity),
    delay_range: (u64, u64),
    rng: &mut StdRng,
) -> Option<(crate::Network, Path)> {
    let hops = initial.hops();
    if hops.len() < 4 {
        return None;
    }
    // Segment [i, j] with at least two interior switches to reverse.
    let i = rng.gen_range(0..hops.len() - 3);
    let j = rng.gen_range(i + 3..hops.len());
    segment_reversal_at(net, initial, i, j, demand, capacity_range, delay_range, rng)
}

/// [`segment_reversal`] with an explicit segment `[i, j]` (both on the
/// initial path, `j ≥ i + 3`). Exposed so the scale experiments can
/// reverse the *entire* path, coupling every switch of the route.
#[allow(clippy::too_many_arguments)]
pub fn segment_reversal_at(
    net: &crate::Network,
    initial: &Path,
    i: usize,
    j: usize,
    demand: Capacity,
    capacity_range: (Capacity, Capacity),
    delay_range: (u64, u64),
    rng: &mut StdRng,
) -> Option<(crate::Network, Path)> {
    let hops = initial.hops();
    if hops.len() < 4 || i + 3 > j || j >= hops.len() {
        return None;
    }

    let mut fin: Vec<SwitchId> = hops[..=i].to_vec();
    fin.extend(hops[i + 1..j].iter().rev());
    fin.push(hops[j]);
    let fin = Path::try_new(fin).ok()?;

    // Copy the network, adding any missing link the reversal needs.
    let mut b = crate::NetworkBuilder::new();
    for s in net.switches() {
        b.add_switch(net.switch_name(s).unwrap_or("v").to_string());
    }
    for l in net.links() {
        b.add_link(l.src, l.dst, l.capacity, l.delay)
            .expect("copying a valid network");
    }
    for (u, v) in fin.edges() {
        if !b.has_link(u, v) {
            let cap = rng
                .gen_range(capacity_range.0..=capacity_range.1)
                .max(demand);
            let delay = rng.gen_range(delay_range.0..=delay_range.1);
            b.add_link(u, v, cap, delay).expect("new reversal link");
        }
    }
    Some((b.build(), fin))
}

/// Builds the paper's Fig. 1 motivating example: six switches, unit
/// capacity and unit delay, old path `v1 v2 v3 v4 v5 v6`, new path
/// `v1 v4 v3 v2 v6` (the dashed edges of the figure). Returns the
/// instance; the source is `v1`, the destination `v6`.
pub fn motivating_example() -> UpdateInstance {
    let mut b = crate::NetworkBuilder::with_switches(6);
    let v = |i: u32| SwitchId(i - 1); // name v1..v6 like the paper
    for (u, w) in [(1, 2), (2, 3), (3, 4), (4, 5), (5, 6)] {
        b.add_link(v(u), v(w), 1, 1).expect("solid chain");
    }
    // Dashed (final) edges that are not already solid.
    for (u, w) in [(2, 6), (1, 4), (4, 3), (3, 2)] {
        b.add_link(v(u), v(w), 1, 1).expect("dashed edges");
    }
    let net = b.build();
    let initial = Path::new(vec![v(1), v(2), v(3), v(4), v(5), v(6)]);
    let fin = Path::new(vec![v(1), v(4), v(3), v(2), v(6)]);
    let flow = Flow::new(FlowId(0), 1, initial, fin).expect("example flow is valid");
    UpdateInstance::single(net, flow).expect("example instance is valid")
}

/// A "reversal" instance on a line-plus-shortcuts topology where the
/// final path traverses the middle switches in the opposite order —
/// the worst case for naive orderings, guaranteed to contain potential
/// transient loops. Used by stress tests.
pub fn reversal_instance(n: usize, capacity: Capacity, demand: Capacity) -> UpdateInstance {
    assert!(n >= 4, "reversal instance needs at least 4 switches");
    let mut b = crate::NetworkBuilder::with_switches(n);
    let s = |i: usize| SwitchId(i as u32);
    // Old path: 0 -> 1 -> ... -> n-1.
    for i in 0..n - 1 {
        b.add_link(s(i), s(i + 1), capacity, 1).expect("chain");
    }
    // New path: 0 -> n-2 -> n-3 -> ... -> 1 -> n-1.
    b.add_link(s(0), s(n - 2), capacity, 1)
        .expect("entry shortcut");
    for i in (2..n - 1).rev() {
        b.add_link(s(i), s(i - 1), capacity, 1)
            .expect("reverse edges");
    }
    b.add_link(s(1), s(n - 1), capacity, 1)
        .expect("exit shortcut");
    let net = b.build();
    let initial = Path::new((0..n).map(s).collect());
    let mut fin_hops = vec![s(0)];
    fin_hops.extend((1..n - 1).rev().map(s));
    fin_hops.push(s(n - 1));
    let fin = Path::new(fin_hops);
    let flow = Flow::new(FlowId(0), demand, initial, fin).expect("reversal flow valid");
    UpdateInstance::single(net, flow).expect("reversal instance valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_is_deterministic() {
        let cfg = InstanceGeneratorConfig::paper(15, 77);
        let a = InstanceGenerator::new(cfg).generate().unwrap();
        let b = InstanceGenerator::new(cfg).generate().unwrap();
        assert_eq!(a.flow().initial, b.flow().initial);
        assert_eq!(a.flow().fin, b.flow().fin);
    }

    #[test]
    fn generated_instances_are_valid_and_distinct() {
        let mut g = InstanceGenerator::new(InstanceGeneratorConfig::paper(12, 3));
        let batch = g.generate_batch(10);
        assert_eq!(batch.len(), 10);
        for inst in &batch {
            let f = inst.flow();
            assert!(f.validate(&inst.network).is_ok());
            assert_ne!(f.initial, f.fin);
            assert_eq!(f.initial.source(), f.fin.source());
            assert_eq!(f.initial.destination(), f.fin.destination());
        }
        // At least two different path pairs across the batch.
        let distinct: std::collections::HashSet<_> = batch
            .iter()
            .map(|i| (i.flow().initial.clone(), i.flow().fin.clone()))
            .collect();
        assert!(distinct.len() > 1);
    }

    #[test]
    fn paper_config_straddles_the_contention_threshold() {
        let cfg = InstanceGeneratorConfig::paper(10, 0);
        assert!(
            cfg.capacity_range.0 < 2 * cfg.demand,
            "some links contended"
        );
        assert!(cfg.capacity_range.1 >= 2 * cfg.demand, "some links safe");
    }

    #[test]
    fn motivating_example_shape() {
        let inst = motivating_example();
        assert_eq!(inst.network.switch_count(), 6);
        let f = inst.flow();
        assert_eq!(f.initial.len(), 6);
        assert_eq!(f.fin.len(), 5);
        // v1, v2, v3, v4 change next hops; v5 keeps its old rule but is
        // abandoned by the flow; v6 is the destination.
        let ups = f.switches_to_update();
        assert_eq!(ups.len(), 4);
        assert!(ups.contains(&SwitchId(0)));
        assert!(ups.contains(&SwitchId(1)));
        assert!(ups.contains(&SwitchId(2)));
        assert!(ups.contains(&SwitchId(3)));
    }

    #[test]
    fn reversal_instance_shape() {
        let inst = reversal_instance(6, 1, 1);
        let f = inst.flow();
        assert!(f.validate(&inst.network).is_ok());
        assert_eq!(f.initial.hops().len(), 6);
        assert_eq!(f.fin.hops().len(), 6);
        assert_eq!(f.fin.hops()[1], SwitchId(4));
    }
}
