//! # chronus-net — network model substrate for the Chronus reproduction
//!
//! This crate provides the static network model used throughout the
//! workspace: switches, capacitated links with transmission delays,
//! loop-free paths, dynamic-flow descriptions, topology generators and
//! routing algorithms.
//!
//! The model follows §II-B of *Chronus: Consistent Data Plane Updates in
//! Timed SDNs* (ICDCS 2017): a network is a directed graph `G = (V, E)`
//! where every link `⟨u, v⟩` has a capacity `C(u,v)` and an integer
//! transmission delay `σ(u,v)`. A *dynamic flow* of demand `d` is routed
//! from a source to a destination along an initial path `p_init` and must
//! be migrated to a final path `p_fin` sharing the same endpoints.
//!
//! ## Quick example
//!
//! ```
//! use chronus_net::{NetworkBuilder, Path, Flow, FlowId};
//!
//! // The paper's 6-switch motivating topology (Fig. 1), unit capacity
//! // and unit delay on every link.
//! let mut b = NetworkBuilder::new();
//! let v: Vec<_> = (1..=6).map(|i| b.add_switch(format!("v{i}"))).collect();
//! for w in v.windows(2) {
//!     b.add_link(w[0], w[1], 1, 1).unwrap(); // old path chain
//! }
//! b.add_link(v[1], v[5], 1, 1).unwrap(); // v2 -> v6
//! b.add_link(v[0], v[3], 1, 1).unwrap(); // v1 -> v4
//! b.add_link(v[3], v[2], 1, 1).unwrap(); // v4 -> v3
//! b.add_link(v[2], v[1], 1, 1).unwrap(); // v3 -> v2
//! let net = b.build();
//!
//! let p_init = Path::new(vec![v[0], v[1], v[2], v[3], v[4], v[5]]);
//! let p_fin = Path::new(vec![v[0], v[3], v[2], v[1], v[5]]);
//! let flow = Flow::new(FlowId(0), 1, p_init, p_fin).unwrap();
//! assert!(flow.validate(&net).is_ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(
    not(test),
    deny(clippy::unwrap_used, clippy::expect_used, clippy::indexing_slicing)
)]

pub mod codec;
mod error;
pub mod export;
mod flow;
mod ids;
mod instance;
mod link;
mod network;
pub mod partition;
mod path;
pub mod routing;
pub mod topology;

pub use error::NetError;
pub use flow::{Flow, UpdateInstance};
pub use ids::{FlowId, LinkIdx, SwitchId};
pub use instance::{
    motivating_example, reversal_instance, segment_reversal, segment_reversal_at,
    InstanceGenerator, InstanceGeneratorConfig,
};
pub use link::Link;
pub use network::{Network, NetworkBuilder};
pub use partition::{
    network_with_capacities, partition_network, split_instance, Partition, PartitionMethod,
    SharedLink, ShardedInstance,
};
pub use path::Path;

/// Discrete time step used across the workspace.
///
/// Steps may be negative: the time-extended network (crate
/// `chronus-timenet`) models *history* steps `t₋σ, …, t₋1` before the
/// current step `t₀ = 0` so that flow already in flight when the update
/// begins can be accounted for (paper Fig. 2).
pub type TimeStep = i64;

/// Link capacity and flow demand unit.
///
/// The unit is abstract; the Mininet-replacement emulator interprets it
/// as Mbps (the paper uses 500 Mbps links).
pub type Capacity = u64;

/// Link transmission delay measured in [`TimeStep`]s.
///
/// The paper assumes positive integer delays; a delay of zero would make
/// the time-extended network collapse and is rejected by
/// [`NetworkBuilder::add_link`].
pub type Delay = u64;
