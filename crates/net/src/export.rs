//! Graphviz DOT export for networks and update instances.
//!
//! The paper's figures draw the initial path as a solid line and the
//! final path as a dashed one; [`instance_to_dot`] reproduces exactly
//! that convention so any generated instance can be rendered with
//! `dot -Tpdf` and compared against Fig. 1 visually.

use crate::{Network, Path, UpdateInstance};
use std::fmt::Write as _;

/// Renders a bare network: every switch a node, every link an edge
/// labelled `capacity/delay`.
pub fn network_to_dot(net: &Network) -> String {
    let mut out = String::from("digraph network {\n  rankdir=LR;\n  node [shape=circle];\n");
    for s in net.switches() {
        let name = net.switch_name(s).unwrap_or("?");
        let _ = writeln!(out, "  {} [label=\"{}\"];", s.index(), name);
    }
    for l in net.links() {
        let _ = writeln!(
            out,
            "  {} -> {} [label=\"{}/{}\"];",
            l.src.index(),
            l.dst.index(),
            l.capacity,
            l.delay
        );
    }
    out.push_str("}\n");
    out
}

/// Renders an update instance in the paper's visual language: links on
/// the initial path solid and bold, links on the final path dashed,
/// links on both drawn doubled, everything else grey; the source is a
/// double circle, the destination a double octagon.
pub fn instance_to_dot(instance: &UpdateInstance) -> String {
    let net = &instance.network;
    let mut out = String::from("digraph instance {\n  rankdir=LR;\n  node [shape=circle];\n");

    let on = |p: &Path, u: crate::SwitchId, v: crate::SwitchId| -> bool {
        p.edges().any(|(a, b)| (a, b) == (u, v))
    };

    for s in net.switches() {
        let name = net.switch_name(s).unwrap_or("?");
        let mut shape = "circle";
        for f in &instance.flows {
            if s == f.source() {
                shape = "doublecircle";
            } else if s == f.destination() {
                shape = "doubleoctagon";
            }
        }
        let _ = writeln!(
            out,
            "  {} [label=\"{}\", shape={}];",
            s.index(),
            name,
            shape
        );
    }

    for l in net.links() {
        let mut solid = false;
        let mut dashed = false;
        for f in &instance.flows {
            solid |= on(&f.initial, l.src, l.dst);
            dashed |= on(&f.fin, l.src, l.dst);
        }
        let style = match (solid, dashed) {
            (true, true) => "style=bold, color=\"black:black\"",
            (true, false) => "style=bold",
            (false, true) => "style=dashed",
            (false, false) => "color=grey",
        };
        let _ = writeln!(
            out,
            "  {} -> {} [{} , label=\"{}/{}\"];",
            l.src.index(),
            l.dst.index(),
            style,
            l.capacity,
            l.delay
        );
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::motivating_example;
    use crate::topology::{self, LinkParams};

    #[test]
    fn network_dot_lists_every_switch_and_link() {
        let net = topology::line(3, LinkParams::default());
        let dot = network_to_dot(&net);
        assert!(dot.starts_with("digraph network"));
        assert!(dot.contains("0 [label=\"v1\"]"));
        assert!(dot.contains("0 -> 1 [label=\"1/1\"]"));
        assert_eq!(dot.matches("->").count(), net.link_count());
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn instance_dot_uses_paper_conventions() {
        let inst = motivating_example();
        let dot = instance_to_dot(&inst);
        // Source and destination are highlighted.
        assert!(dot.contains("shape=doublecircle"));
        assert!(dot.contains("shape=doubleoctagon"));
        // Old-path links solid/bold, new-only links dashed.
        assert!(dot.contains("style=bold"));
        assert!(dot.contains("style=dashed"));
        // The old chain link v1->v2 is bold, the dashed v2->v6 dashed.
        assert!(dot.contains("0 -> 1 [style=bold"));
        assert!(dot.contains("1 -> 5 [style=dashed"));
    }
}
