//! Dynamic flows and update instances.
// Flow paths hold >= 2 hops (checked at construction of `Path`).
#![allow(clippy::indexing_slicing)]

use crate::{Capacity, FlowId, NetError, Network, Path, SwitchId};
use std::collections::BTreeSet;
use std::fmt;

/// A dynamic flow of demand `d` that must be migrated from `p_init` to
/// `p_fin` (paper §II-B).
///
/// Both paths share source and destination; the update problem is to
/// pick, for every switch whose forwarding rule changes, a time at which
/// the rule's *action* is rewritten from the old next-hop to the new one.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Flow {
    /// Flow identifier.
    pub id: FlowId,
    /// Demand `d` in capacity units, emitted every time step.
    pub demand: Capacity,
    /// The initial ("solid line") routing path.
    pub initial: Path,
    /// The final ("dashed line") routing path.
    pub fin: Path,
}

impl Flow {
    /// Creates a flow, checking both paths are simple and share
    /// endpoints and that the demand is positive.
    ///
    /// # Errors
    /// [`NetError::ZeroDemand`], [`NetError::PathTooShort`],
    /// [`NetError::PathNotSimple`] or [`NetError::EndpointMismatch`].
    pub fn new(id: FlowId, demand: Capacity, initial: Path, fin: Path) -> Result<Self, NetError> {
        if demand == 0 {
            return Err(NetError::ZeroDemand);
        }
        let initial = Path::try_new(initial.hops().to_vec())?;
        let fin = Path::try_new(fin.hops().to_vec())?;
        if initial.source() != fin.source() || initial.destination() != fin.destination() {
            return Err(NetError::EndpointMismatch {
                init: (initial.source(), initial.destination()),
                fin: (fin.source(), fin.destination()),
            });
        }
        Ok(Flow {
            id,
            demand,
            initial,
            fin,
        })
    }

    /// The common source of both paths.
    pub fn source(&self) -> SwitchId {
        self.initial.source()
    }

    /// The common destination of both paths.
    pub fn destination(&self) -> SwitchId {
        self.initial.destination()
    }

    /// Validates the flow against a network: both paths must exist and
    /// every link on either path must have capacity ≥ demand (otherwise
    /// even the static routing is congested).
    pub fn validate(&self, net: &Network) -> Result<(), NetError> {
        self.initial.validate(net)?;
        self.fin.validate(net)?;
        for (u, v) in self.initial.edges().chain(self.fin.edges()) {
            let cap = net.capacity(u, v).ok_or(NetError::MissingLink(u, v))?;
            if cap < self.demand {
                return Err(NetError::DemandExceedsCapacity { src: u, dst: v });
            }
        }
        Ok(())
    }

    /// The old forwarding rule at `v`: next hop on `p_init`, if `v` is a
    /// non-terminal hop of the initial path.
    pub fn old_rule(&self, v: SwitchId) -> Option<SwitchId> {
        self.initial.next_hop(v)
    }

    /// The new forwarding rule at `v`: next hop on `p_fin`, if `v` is a
    /// non-terminal hop of the final path.
    pub fn new_rule(&self, v: SwitchId) -> Option<SwitchId> {
        self.fin.next_hop(v)
    }

    /// The switches whose forwarding behaviour must change: every
    /// non-terminal hop of `p_fin` whose new next-hop differs from its
    /// old one (or that had no old rule at all).
    ///
    /// The destination never needs an update (paper §IV: "the
    /// destination switch does not require to be updated"). Switches on
    /// `p_init` that are *not* on `p_fin` keep their old rule — it simply
    /// stops receiving traffic once upstream switches divert the flow.
    ///
    /// The result is sorted by switch id (it is a `BTreeSet`), giving
    /// deterministic iteration order to all schedulers.
    pub fn switches_to_update(&self) -> BTreeSet<SwitchId> {
        let mut set = BTreeSet::new();
        for &v in self.fin.hops() {
            if v == self.destination() {
                continue;
            }
            let new = self.new_rule(v);
            let old = self.old_rule(v);
            if new.is_some() && new != old {
                set.insert(v);
            }
        }
        set
    }

    /// `true` if the initial and final path are hop-for-hop identical
    /// (no update needed at all).
    pub fn is_noop(&self) -> bool {
        self.initial == self.fin
    }

    /// Switches appearing on either path, sorted.
    pub fn touched_switches(&self) -> BTreeSet<SwitchId> {
        self.initial
            .hops()
            .iter()
            .chain(self.fin.hops())
            .copied()
            .collect()
    }
}

impl fmt::Display for Flow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (d={}): {} => {}",
            self.id, self.demand, self.initial, self.fin
        )
    }
}

/// One update instance: a network plus the set of flows to migrate.
///
/// This is the input to every scheduler in the workspace. The paper's
/// algorithms (§III–§IV) operate on a single flow; the ILP formulation
/// (3) and our fluid simulator handle the general multi-flow case.
#[derive(Clone, Debug)]
pub struct UpdateInstance {
    /// The (frozen) network topology.
    pub network: Network,
    /// Flows to migrate, each with its own path pair.
    pub flows: Vec<Flow>,
}

impl UpdateInstance {
    /// Creates an instance, validating every flow against the network.
    ///
    /// # Errors
    /// Any validation error from [`Flow::validate`].
    pub fn new(network: Network, flows: Vec<Flow>) -> Result<Self, NetError> {
        for f in &flows {
            f.validate(&network)?;
        }
        Ok(UpdateInstance { network, flows })
    }

    /// Convenience constructor for the single-flow case the paper's
    /// algorithms target.
    ///
    /// # Errors
    /// Any validation error from [`Flow::validate`].
    pub fn single(network: Network, flow: Flow) -> Result<Self, NetError> {
        Self::new(network, vec![flow])
    }

    /// The single flow of a single-flow instance.
    ///
    /// # Panics
    /// Panics if the instance holds zero or more than one flow; use
    /// [`UpdateInstance::flows`] directly in the multi-flow case.
    pub fn flow(&self) -> &Flow {
        assert_eq!(
            self.flows.len(),
            1,
            "UpdateInstance::flow requires exactly one flow"
        );
        &self.flows[0]
    }

    /// Union of [`Flow::switches_to_update`] across all flows.
    pub fn switches_to_update(&self) -> BTreeSet<SwitchId> {
        self.flows
            .iter()
            .flat_map(|f| f.switches_to_update())
            .collect()
    }

    /// Sum of all per-path transmission delays, an upper bound building
    /// block for schedule horizons.
    pub fn total_path_delay(&self) -> u64 {
        self.flows
            .iter()
            .map(|f| {
                f.initial.total_delay(&self.network).unwrap_or(0)
                    + f.fin.total_delay(&self.network).unwrap_or(0)
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NetworkBuilder;

    fn ids(v: &[u32]) -> Vec<SwitchId> {
        v.iter().copied().map(SwitchId).collect()
    }

    /// Diamond: 0 -> 1 -> 3 (old), 0 -> 2 -> 3 (new).
    fn diamond() -> Network {
        let mut b = NetworkBuilder::with_switches(4);
        b.add_link(SwitchId(0), SwitchId(1), 10, 1).unwrap();
        b.add_link(SwitchId(1), SwitchId(3), 10, 1).unwrap();
        b.add_link(SwitchId(0), SwitchId(2), 10, 1).unwrap();
        b.add_link(SwitchId(2), SwitchId(3), 10, 1).unwrap();
        b.build()
    }

    fn diamond_flow(demand: u64) -> Flow {
        Flow::new(
            FlowId(0),
            demand,
            Path::new(ids(&[0, 1, 3])),
            Path::new(ids(&[0, 2, 3])),
        )
        .unwrap()
    }

    #[test]
    fn flow_construction_checks() {
        let err = Flow::new(
            FlowId(0),
            0,
            Path::new(ids(&[0, 1])),
            Path::new(ids(&[0, 1])),
        )
        .unwrap_err();
        assert_eq!(err, NetError::ZeroDemand);

        let err = Flow::new(
            FlowId(0),
            1,
            Path::new(ids(&[0, 1, 3])),
            Path::new(ids(&[0, 2])),
        )
        .unwrap_err();
        assert!(matches!(err, NetError::EndpointMismatch { .. }));
    }

    #[test]
    fn rules_and_update_set() {
        let f = diamond_flow(1);
        assert_eq!(f.old_rule(SwitchId(0)), Some(SwitchId(1)));
        assert_eq!(f.new_rule(SwitchId(0)), Some(SwitchId(2)));
        assert_eq!(f.old_rule(SwitchId(2)), None);
        assert_eq!(f.new_rule(SwitchId(2)), Some(SwitchId(3)));
        // Source changes rule; fresh switch 2 needs its rule activated;
        // destination 3 never updates.
        let ups = f.switches_to_update();
        assert!(ups.contains(&SwitchId(0)));
        assert!(ups.contains(&SwitchId(2)));
        assert!(!ups.contains(&SwitchId(3)));
        assert!(!ups.contains(&SwitchId(1)));
        assert_eq!(f.source(), SwitchId(0));
        assert_eq!(f.destination(), SwitchId(3));
        assert!(!f.is_noop());
        assert_eq!(f.touched_switches().len(), 4);
    }

    #[test]
    fn noop_flow_needs_no_updates() {
        let p = Path::new(ids(&[0, 1, 3]));
        let f = Flow::new(FlowId(1), 1, p.clone(), p).unwrap();
        assert!(f.is_noop());
        assert!(f.switches_to_update().is_empty());
    }

    #[test]
    fn validate_checks_capacity() {
        let net = diamond();
        assert!(diamond_flow(10).validate(&net).is_ok());
        let err = diamond_flow(11).validate(&net).unwrap_err();
        assert!(matches!(err, NetError::DemandExceedsCapacity { .. }));
    }

    #[test]
    fn instance_construction_and_helpers() {
        let net = diamond();
        let inst = UpdateInstance::single(net, diamond_flow(5)).unwrap();
        assert_eq!(inst.flows.len(), 1);
        assert_eq!(inst.flow().id, FlowId(0));
        assert_eq!(inst.switches_to_update().len(), 2);
        assert_eq!(inst.total_path_delay(), 4);
    }

    #[test]
    fn instance_rejects_invalid_flow() {
        let net = diamond();
        let bad = Flow::new(
            FlowId(0),
            1,
            Path::new(ids(&[0, 1, 3])),
            Path::new(ids(&[0, 3])), // no link 0 -> 3
        )
        .unwrap();
        assert!(UpdateInstance::single(net, bad).is_err());
    }

    #[test]
    fn flow_display() {
        let f = diamond_flow(2);
        let s = f.to_string();
        assert!(s.contains("d=2"));
        assert!(s.contains("=>"));
    }
}
