//! The exact dynamic-flow simulator: ground truth for every scheduler.

use crate::arena::SimArena;
use crate::incremental::{trace_cohort, FlowTable, TraceEnd, VisitStamps};
use crate::ledger::{LinkInterner, LoadLedger};
use crate::report::{BlackholeEvent, CongestionEvent, LoopEvent, SimulationReport};
use crate::Schedule;
use chronus_net::{TimeStep, UpdateInstance};

/// Configuration knobs for [`FluidSimulator`].
#[derive(Clone, Copy, Debug)]
pub struct SimulatorConfig {
    /// Extra emission steps simulated past the analytical horizon, as a
    /// safety margin (default 2 — the analytical horizon already covers
    /// every possible transient overlap, see the module docs).
    pub horizon_slack: u64,
    /// Record the full per-link load series in the report (default
    /// true). Disable for large batch sweeps that only need verdicts.
    pub record_loads: bool,
    /// Stop at the first violation (default false). The report then
    /// contains at least one event and an `Inconsistent` verdict, but
    /// is not exhaustive — the mode schedulers use as a cheap gate.
    pub fail_fast: bool,
}

impl Default for SimulatorConfig {
    fn default() -> Self {
        SimulatorConfig {
            horizon_slack: 2,
            record_loads: true,
            fail_fast: false,
        }
    }
}

/// Exact discrete-time simulator of the paper's dynamic-flow model
/// (Definitions 1–3).
///
/// # Semantics
///
/// Each flow emits `d` units ("a cohort") at its source at every time
/// step. A cohort departing switch `u` at step `t` on link `⟨u, v⟩`
/// arrives at `v` at step `t + σ(u,v)` and immediately departs on the
/// rule `v` applies *at that arrival step*: the new next-hop if `v`'s
/// scheduled update time has passed, the old one otherwise. Link load
/// `x_{u,v}(t)` is the total demand departing `u` on `⟨u, v⟩` at step
/// `t`; congestion is `x > C` at any step ≥ 0 (updates cannot happen at
/// history steps, and before step 0 the network is in its feasible
/// initial steady state).
///
/// # Horizon
///
/// Cohorts are emitted from `−φ(p_init)` (the oldest cohort that can
/// still be in flight when updates begin) through
/// `makespan + φ(p_fin) + slack` (after which every cohort follows the
/// final path and the load pattern repeats verbatim, shifted in time).
/// Within that window *every* possible transient interaction is
/// simulated, so the verdict is exact, not sampled.
///
/// # Example
///
/// ```
/// use chronus_net::motivating_example;
/// use chronus_timenet::{FluidSimulator, Schedule, Verdict};
///
/// let inst = motivating_example();
/// // Updating everything at once creates transient loops (paper Fig. 2a).
/// let naive = Schedule::all_at_zero(&inst);
/// let report = FluidSimulator::new(&inst).run(&naive);
/// assert_eq!(report.verdict(), Verdict::Inconsistent);
/// assert!(!report.loop_free());
/// ```
#[derive(Clone, Debug)]
pub struct FluidSimulator<'a> {
    instance: &'a UpdateInstance,
    config: SimulatorConfig,
}

impl<'a> FluidSimulator<'a> {
    /// Creates a simulator for an instance with default config.
    pub fn new(instance: &'a UpdateInstance) -> Self {
        FluidSimulator {
            instance,
            config: SimulatorConfig::default(),
        }
    }

    /// Creates a simulator with an explicit config.
    pub fn with_config(instance: &'a UpdateInstance, config: SimulatorConfig) -> Self {
        FluidSimulator { instance, config }
    }

    /// Runs the simulation for `schedule` and returns the full report.
    ///
    /// The schedule is *not* required to cover all switches (running a
    /// deliberately broken schedule is how blackholes are studied); use
    /// [`Schedule::validate`] first if completeness matters.
    pub fn run(&self, schedule: &Schedule) -> SimulationReport {
        self.run_in(schedule, &mut SimArena::default())
    }

    /// Like [`FluidSimulator::run`], drawing every buffer (the load
    /// surface, occupancy bit rows, visit stamps, hop scratch) from
    /// `arena` and returning them on exit — back-to-back runs over the
    /// same arena allocate nothing in steady state.
    pub fn run_in(&self, schedule: &Schedule, arena: &mut SimArena) -> SimulationReport {
        let mut span = chronus_trace::span!(
            "timenet.simulate",
            flows = self.instance.flows.len(),
            fail_fast = self.config.fail_fast
        )
        .entered();
        let net = &self.instance.network;
        let interner = LinkInterner::for_instance(self.instance);
        let t_lo = self
            .instance
            .flows
            .iter()
            .map(|f| -(f.initial.total_delay(net).unwrap_or(0) as TimeStep))
            .min()
            .unwrap_or(0);
        let mut ledger = LoadLedger::with_arena(&interner, t_lo, arena);
        let mut stamps =
            VisitStamps::with_buffer(net.switch_count(), std::mem::take(&mut arena.stamps));
        let mut hops = arena.take_hops();
        let mut report = SimulationReport::default();
        let makespan = schedule.makespan().unwrap_or(0).max(0);
        // A simple walk visits at most |V| switches before it must
        // revisit one (pigeonhole); the bound is a defensive backstop.
        let max_hops = net.switch_count() + 2;
        let slack = self.config.horizon_slack as TimeStep;

        let aborted = 'trace: {
            for flow in &self.instance.flows {
                let mut table = FlowTable::build(self.instance, &interner, flow);
                table.load_schedule(schedule);
                let first_emit = -table.phi_init;
                let last_emit = makespan + table.phi_fin + slack;
                for tau in first_emit..=last_emit {
                    match trace_cohort(
                        &table,
                        tau,
                        max_hops,
                        &mut ledger,
                        &mut stamps,
                        &mut hops,
                        self.config.fail_fast,
                    ) {
                        TraceEnd::Delivered => {}
                        TraceEnd::Looped { switch, time } => report.loops.push(LoopEvent {
                            flow: flow.id,
                            emitted_at: tau,
                            switch,
                            time,
                        }),
                        TraceEnd::Blackholed { switch, time } => {
                            report.blackholes.push(BlackholeEvent {
                                flow: flow.id,
                                emitted_at: tau,
                                switch,
                                time,
                            })
                        }
                        TraceEnd::Undelivered => report.undelivered.push((flow.id, tau)),
                        TraceEnd::CongestionAbort {
                            src,
                            dst,
                            time,
                            load,
                            capacity,
                        } => {
                            report.congestion.push(CongestionEvent {
                                src,
                                dst,
                                time,
                                load,
                                capacity,
                            });
                            break 'trace true;
                        }
                    }
                    if self.config.fail_fast
                        && (!report.loops.is_empty()
                            || !report.blackholes.is_empty()
                            || !report.undelivered.is_empty())
                    {
                        break 'trace true;
                    }
                }
            }
            false
        };

        if !aborted {
            // Congestion: any cell at a step ≥ 0 above capacity. Steps
            // < 0 are the pre-update steady state, feasible by instance
            // validation. (In fail-fast mode the inline check inside
            // `trace_cohort` already recorded the first overload.)
            if !self.config.fail_fast {
                report.congestion = ledger.congestion_events(&interner);
            }
            if self.config.record_loads {
                report.link_loads = ledger.link_loads(&interner);
            }
        }

        // Teardown: every buffer returns to the arena, which also
        // refreshes the byte high-water mark and occupancy counters.
        ledger.into_arena(arena);
        arena.stamps = stamps.into_buffer();
        arena.put_hops(hops);
        arena.note_bytes(0);
        span.record("arena_bytes", arena.high_water_bytes());
        span.record("occupancy_words", arena.occupancy_words());
        report
    }

    /// Convenience one-shot check.
    pub fn check(instance: &UpdateInstance, schedule: &Schedule) -> SimulationReport {
        FluidSimulator::new(instance).run(schedule)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Verdict;
    use chronus_net::{motivating_example, Flow, FlowId, NetworkBuilder, Path, SwitchId};

    fn sid(i: u32) -> SwitchId {
        SwitchId(i)
    }

    /// Old path 0→1→2→3 (unit delays), new path 0→2→3 where the
    /// shortcut 0→2 has delay `shortcut_delay`. The shared tail link
    /// ⟨2,3⟩ has capacity 1 = demand, so old and new flow must never
    /// overlap there.
    fn shared_tail_instance(shortcut_delay: u64) -> UpdateInstance {
        let mut b = NetworkBuilder::with_switches(4);
        b.add_link(sid(0), sid(1), 1, 1).unwrap();
        b.add_link(sid(1), sid(2), 1, 1).unwrap();
        b.add_link(sid(2), sid(3), 1, 1).unwrap();
        b.add_link(sid(0), sid(2), 1, shortcut_delay).unwrap();
        let net = b.build();
        let flow = Flow::new(
            FlowId(0),
            1,
            Path::new(vec![sid(0), sid(1), sid(2), sid(3)]),
            Path::new(vec![sid(0), sid(2), sid(3)]),
        )
        .unwrap();
        UpdateInstance::single(net, flow).unwrap()
    }

    #[test]
    fn steady_state_is_consistent() {
        // A no-update schedule on a consistent instance: nothing happens.
        let inst = shared_tail_instance(1);
        let report = FluidSimulator::check(&inst, &Schedule::new());
        // The required switch 0 is never updated, so new-path cohorts
        // never appear — but old-path forwarding stays clean.
        assert!(report.congestion_free());
        assert!(report.loop_free());
        assert!(report.blackholes.is_empty());
    }

    #[test]
    fn short_shortcut_always_congests() {
        // New prefix delay to the shared link (1) is shorter than the
        // old one (2): the first new cohort catches up with the last
        // old cohort on ⟨2,3⟩ whatever the update time is.
        for t0 in 0..4 {
            let inst = shared_tail_instance(1);
            let s = Schedule::from_pairs(FlowId(0), [(sid(0), t0)]);
            let report = FluidSimulator::check(&inst, &s);
            assert!(
                !report.congestion_free(),
                "update at t{t0} must congest <2,3>"
            );
            let c = &report.congestion[0];
            assert_eq!((c.src, c.dst), (sid(2), sid(3)));
            assert_eq!(c.load, 2);
            assert_eq!(c.capacity, 1);
            assert!(report.loop_free());
        }
    }

    #[test]
    fn long_shortcut_never_congests() {
        // New prefix delay (3) exceeds the old one (2): the new stream
        // arrives at the shared link strictly after the old one drains.
        // This is the φ(p) ≥ φ(q) condition of Algorithm 1.
        let inst = shared_tail_instance(3);
        let s = Schedule::from_pairs(FlowId(0), [(sid(0), 0)]);
        let report = FluidSimulator::check(&inst, &s);
        assert_eq!(report.verdict(), Verdict::Consistent, "{report}");
    }

    #[test]
    fn loads_account_every_cohort_once() {
        let inst = shared_tail_instance(3);
        let s = Schedule::from_pairs(FlowId(0), [(sid(0), 0)]);
        let report = FluidSimulator::check(&inst, &s);
        // Old cohorts occupy <0,1> at steps -3..=-1 (emission up to the
        // last pre-update step); new cohorts occupy <0,2> from 0 on.
        let old_entry = report.load_series(sid(0), sid(1));
        assert!(old_entry.iter().all(|&(t, l)| t < 0 && l == 1));
        let new_entry = report.load_series(sid(0), sid(2));
        assert!(new_entry.iter().all(|&(t, l)| t >= 0 && l == 1));
        assert!(!new_entry.is_empty());
        // Shared tail: loaded every step in a contiguous range, never
        // above capacity.
        let tail = report.load_series(sid(2), sid(3));
        assert!(tail.iter().all(|&(_, l)| l <= 1));
    }

    #[test]
    fn motivating_example_all_at_zero_loops() {
        let inst = motivating_example();
        let report = FluidSimulator::check(&inst, &Schedule::all_at_zero(&inst));
        assert!(!report.loop_free(), "paper Fig. 2(a): loops expected");
        assert!(report.loops.len() >= 2);
    }

    #[test]
    fn motivating_example_staged_schedule_is_consistent() {
        // v2 at t0, v3 at t1, v1 and v4 at t2 — the timed-update plan
        // the paper's Fig. 1(e)-(h) illustrates (adapted to the
        // reconstructed dashed path v1→v4→v3→v2→v6).
        let inst = motivating_example();
        let s = Schedule::from_pairs(
            FlowId(0),
            [(sid(1), 0), (sid(2), 1), (sid(0), 2), (sid(3), 2)],
        );
        assert!(s.validate(&inst).is_ok());
        let report = FluidSimulator::check(&inst, &s);
        assert_eq!(report.verdict(), Verdict::Consistent, "{report}");
    }

    #[test]
    fn motivating_example_wrong_order_breaks() {
        // Updating v4 (new rule v4→v3) before v3 lets old flow bounce
        // v3→v4→v3: a transient loop.
        let inst = motivating_example();
        let s = Schedule::from_pairs(
            FlowId(0),
            [(sid(1), 0), (sid(3), 1), (sid(0), 2), (sid(2), 3)],
        );
        let report = FluidSimulator::check(&inst, &s);
        assert!(!report.loop_free());
        assert!(report
            .loops
            .iter()
            .any(|l| l.switch == sid(3) || l.switch == sid(2)));
    }

    #[test]
    fn missing_new_path_rule_blackholes() {
        // Divert at the source before the fresh switch 2 has its rule:
        // the new path crosses a switch with no old rule.
        let mut b = NetworkBuilder::with_switches(4);
        b.add_link(sid(0), sid(1), 1, 1).unwrap();
        b.add_link(sid(1), sid(3), 1, 1).unwrap();
        b.add_link(sid(0), sid(2), 1, 1).unwrap();
        b.add_link(sid(2), sid(3), 1, 1).unwrap();
        let net = b.build();
        let flow = Flow::new(
            FlowId(0),
            1,
            Path::new(vec![sid(0), sid(1), sid(3)]),
            Path::new(vec![sid(0), sid(2), sid(3)]),
        )
        .unwrap();
        let inst2 = UpdateInstance::single(net, flow).unwrap();
        let bad = Schedule::from_pairs(FlowId(0), [(sid(0), 0), (sid(2), 5)]);
        let report = FluidSimulator::check(&inst2, &bad);
        assert!(!report.blackholes.is_empty());
        assert_eq!(report.blackholes[0].switch, sid(2));
        // Updating the fresh switch no later than the diversion fixes it.
        let good = Schedule::from_pairs(FlowId(0), [(sid(0), 0), (sid(2), 0)]);
        let report = FluidSimulator::check(&inst2, &good);
        assert_eq!(report.verdict(), Verdict::Consistent, "{report}");
    }

    #[test]
    fn two_flows_share_capacity() {
        // Two unit flows move onto the same capacity-1 link: congestion
        // even though each flow alone would be fine.
        let mut b = NetworkBuilder::with_switches(4);
        b.add_link(sid(0), sid(1), 1, 1).unwrap(); // old f0
        b.add_link(sid(2), sid(1), 1, 1).unwrap(); // old f1
        b.add_link(sid(0), sid(3), 2, 1).unwrap();
        b.add_link(sid(2), sid(3), 2, 1).unwrap();
        b.add_link(sid(3), sid(1), 1, 1).unwrap(); // shared new tail, C=1
        let net = b.build();
        let f0 = Flow::new(
            FlowId(0),
            1,
            Path::new(vec![sid(0), sid(1)]),
            Path::new(vec![sid(0), sid(3), sid(1)]),
        )
        .unwrap();
        let f1 = Flow::new(
            FlowId(1),
            1,
            Path::new(vec![sid(2), sid(1)]),
            Path::new(vec![sid(2), sid(3), sid(1)]),
        )
        .unwrap();
        let inst = UpdateInstance::new(net, vec![f0, f1]).unwrap();
        let mut s = Schedule::new();
        s.set(FlowId(0), sid(0), 0);
        s.set(FlowId(0), sid(3), 0);
        s.set(FlowId(1), sid(2), 0);
        s.set(FlowId(1), sid(3), 0);
        let report = FluidSimulator::check(&inst, &s);
        assert!(!report.congestion_free());
        let c = &report.congestion[0];
        assert_eq!((c.src, c.dst), (sid(3), sid(1)));
        assert_eq!(c.load, 2);
    }

    #[test]
    fn record_loads_can_be_disabled() {
        let inst = shared_tail_instance(3);
        let cfg = SimulatorConfig {
            record_loads: false,
            ..Default::default()
        };
        let report = FluidSimulator::with_config(&inst, cfg)
            .run(&Schedule::from_pairs(FlowId(0), [(sid(0), 0)]));
        assert!(report.link_loads.is_empty());
        assert_eq!(report.verdict(), Verdict::Consistent);
    }

    #[test]
    fn congestion_events_sorted() {
        let inst = shared_tail_instance(1);
        let s = Schedule::from_pairs(FlowId(0), [(sid(0), 0)]);
        let report = FluidSimulator::check(&inst, &s);
        assert!(!report.congestion.is_empty());
        assert!(
            report.congestion.windows(2).all(|w| w[0].time <= w[1].time),
            "congestion events must come out time-sorted"
        );
    }
}
