//! Timed update schedules: the solution object `{⟨v_i, t_j⟩}` of MUTP.

use chronus_net::{FlowId, NetError, SwitchId, TimeStep, UpdateInstance};
use std::collections::BTreeMap;
use std::fmt;

/// An assignment of update time points to `(flow, switch)` pairs —
/// the output format of Algorithm 2 ("a solution `{⟨v_i, t_j⟩}` which
/// indicates that `v_i` is updated at `t_j`").
///
/// Time `0` is the current step `t₀`; the paper forbids scheduling
/// updates at history steps, so all times must be ≥ 0
/// ([`Schedule::validate`]).
///
/// For the single-flow instances the paper's algorithms target, use the
/// [`Schedule::set`]/[`Schedule::get`] accessors with the flow's id.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Schedule {
    times: BTreeMap<(FlowId, SwitchId), TimeStep>,
}

impl Schedule {
    /// An empty schedule (nothing updates).
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a single-flow schedule from `(switch, time)` pairs.
    pub fn from_pairs(flow: FlowId, pairs: impl IntoIterator<Item = (SwitchId, TimeStep)>) -> Self {
        let mut s = Self::new();
        for (v, t) in pairs {
            s.set(flow, v, t);
        }
        s
    }

    /// A schedule that updates every switch of every flow at step 0 —
    /// the "all at once" strawman of paper Fig. 2(a).
    pub fn all_at_zero(instance: &UpdateInstance) -> Self {
        let mut s = Self::new();
        for f in &instance.flows {
            for v in f.switches_to_update() {
                s.set(f.id, v, 0);
            }
        }
        s
    }

    /// Sets the update time of `switch` for `flow`, replacing any
    /// previous assignment.
    pub fn set(&mut self, flow: FlowId, switch: SwitchId, t: TimeStep) {
        self.times.insert((flow, switch), t);
    }

    /// The update time of `switch` for `flow`, if scheduled.
    pub fn get(&self, flow: FlowId, switch: SwitchId) -> Option<TimeStep> {
        self.times.get(&(flow, switch)).copied()
    }

    /// Removes an assignment, returning the previous time if any.
    pub fn unset(&mut self, flow: FlowId, switch: SwitchId) -> Option<TimeStep> {
        self.times.remove(&(flow, switch))
    }

    /// Number of scheduled updates.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// `true` if nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Iterator over all `((flow, switch), time)` assignments in
    /// deterministic (flow, switch) order.
    pub fn iter(&self) -> impl Iterator<Item = (FlowId, SwitchId, TimeStep)> + '_ {
        self.times.iter().map(|(&(f, v), &t)| (f, v, t))
    }

    /// The makespan: the latest scheduled time, or `None` for an empty
    /// schedule. The MUTP objective is `makespan + 1` time steps
    /// (`|T|` in program (3)).
    pub fn makespan(&self) -> Option<TimeStep> {
        self.times.values().copied().max()
    }

    /// Number of *distinct* time points used — the paper reports update
    /// time in rounds/steps.
    pub fn distinct_steps(&self) -> usize {
        let mut ts: Vec<TimeStep> = self.times.values().copied().collect();
        ts.sort_unstable();
        ts.dedup();
        ts.len()
    }

    /// Groups assignments by time step, ascending — the form Algorithm 5
    /// consumes ("sort `{⟨v_i, t_j⟩}` according to `t_j`").
    pub fn by_step(&self) -> BTreeMap<TimeStep, Vec<(FlowId, SwitchId)>> {
        let mut map: BTreeMap<TimeStep, Vec<(FlowId, SwitchId)>> = BTreeMap::new();
        for (&(f, v), &t) in &self.times {
            map.entry(t).or_default().push((f, v));
        }
        map
    }

    /// All switches scheduled for `flow`.
    pub fn switches_for(&self, flow: FlowId) -> Vec<(SwitchId, TimeStep)> {
        self.times
            .iter()
            .filter(|((f, _), _)| *f == flow)
            .map(|(&(_, v), &t)| (v, t))
            .collect()
    }

    /// Checks the schedule against an instance:
    ///
    /// - no update may be scheduled in the past (`t < 0`);
    /// - every switch that [`chronus_net::Flow::switches_to_update`]
    ///   requires must be scheduled (otherwise the migration never
    ///   completes and new-path switches blackhole).
    ///
    /// # Errors
    /// [`NetError::UpdateInThePast`] or [`NetError::UnknownSwitch`] for
    /// a missing required switch.
    pub fn validate(&self, instance: &UpdateInstance) -> Result<(), NetError> {
        for (&(_, v), &t) in &self.times {
            if t < 0 {
                return Err(NetError::UpdateInThePast(v, t));
            }
        }
        for f in &instance.flows {
            for v in f.switches_to_update() {
                if self.get(f.id, v).is_none() {
                    return Err(NetError::UnknownSwitch(v));
                }
            }
        }
        Ok(())
    }

    /// Shifts every assignment by `delta` steps (used to renormalize
    /// schedules so the earliest update is at step 0).
    pub fn shift(&mut self, delta: TimeStep) {
        for t in self.times.values_mut() {
            *t += delta;
        }
    }

    /// Renormalizes so the earliest update happens at step 0; returns
    /// the shift applied. No-op on empty schedules.
    pub fn normalize(&mut self) -> TimeStep {
        let Some(min) = self.times.values().copied().min() else {
            return 0;
        };
        self.shift(-min);
        -min
    }

    /// Multiplies every assigned step by `factor`, stretching the gaps
    /// between dependent updates — the slack-buying transform. A plan
    /// whose dependencies sit exactly one step apart certifies zero
    /// timing tolerance; dilating it trades makespan for certified
    /// slack (every ordering constraint that held at gap 1 holds at
    /// gap `factor`, with `factor − 1` spare steps in between).
    ///
    /// # Panics
    /// Panics if `factor < 1` (a factor of 1 is the identity).
    pub fn dilate(&mut self, factor: TimeStep) {
        assert!(factor >= 1, "dilation factor must be >= 1");
        for t in self.times.values_mut() {
            *t *= factor;
        }
    }

    /// A dilated copy (see [`Schedule::dilate`]).
    #[must_use]
    pub fn dilated(&self, factor: TimeStep) -> Self {
        let mut s = self.clone();
        s.dilate(factor);
        s
    }
}

impl fmt::Display for Schedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (t, updates) in self.by_step() {
            write!(f, "t{t}:")?;
            for (flow, v) in updates {
                write!(f, " {flow}/{v}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chronus_net::{motivating_example, Flow, FlowId, Path};

    fn sid(i: u32) -> SwitchId {
        SwitchId(i)
    }

    #[test]
    fn set_get_unset() {
        let mut s = Schedule::new();
        assert!(s.is_empty());
        s.set(FlowId(0), sid(1), 3);
        s.set(FlowId(0), sid(2), 1);
        assert_eq!(s.get(FlowId(0), sid(1)), Some(3));
        assert_eq!(s.get(FlowId(1), sid(1)), None);
        assert_eq!(s.len(), 2);
        assert_eq!(s.unset(FlowId(0), sid(1)), Some(3));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn makespan_and_steps() {
        let s = Schedule::from_pairs(FlowId(0), [(sid(1), 0), (sid(2), 2), (sid(3), 2)]);
        assert_eq!(s.makespan(), Some(2));
        assert_eq!(s.distinct_steps(), 2);
        let by = s.by_step();
        assert_eq!(by[&2].len(), 2);
        assert_eq!(by[&0], vec![(FlowId(0), sid(1))]);
        assert_eq!(Schedule::new().makespan(), None);
    }

    #[test]
    fn validate_rejects_past_and_missing() {
        let inst = motivating_example();
        let flow = inst.flow().id;
        let mut s = Schedule::all_at_zero(&inst);
        assert!(s.validate(&inst).is_ok());
        s.set(flow, sid(0), -1);
        assert!(matches!(
            s.validate(&inst),
            Err(NetError::UpdateInThePast(_, -1))
        ));
        s.unset(flow, sid(0));
        assert!(s.validate(&inst).is_err(), "missing required switch");
    }

    #[test]
    fn all_at_zero_covers_required_switches() {
        let inst = motivating_example();
        let s = Schedule::all_at_zero(&inst);
        assert_eq!(s.len(), inst.flow().switches_to_update().len());
        assert_eq!(s.makespan(), Some(0));
    }

    #[test]
    fn normalize_shifts_to_zero() {
        let mut s = Schedule::from_pairs(FlowId(0), [(sid(1), 4), (sid(2), 6)]);
        let shift = s.normalize();
        assert_eq!(shift, -4);
        assert_eq!(s.get(FlowId(0), sid(1)), Some(0));
        assert_eq!(s.get(FlowId(0), sid(2)), Some(2));
        let mut empty = Schedule::new();
        assert_eq!(empty.normalize(), 0);
    }

    #[test]
    fn dilate_stretches_gaps_preserving_order() {
        let s = Schedule::from_pairs(FlowId(0), [(sid(1), 0), (sid(2), 1), (sid(3), 2)]);
        let d = s.dilated(3);
        assert_eq!(d.get(FlowId(0), sid(1)), Some(0));
        assert_eq!(d.get(FlowId(0), sid(2)), Some(3));
        assert_eq!(d.get(FlowId(0), sid(3)), Some(6));
        assert_eq!(d.makespan(), Some(6));
        assert_eq!(d.distinct_steps(), s.distinct_steps());
        // Factor 1 is the identity.
        assert_eq!(s.dilated(1), s);
    }

    #[test]
    #[should_panic(expected = "dilation factor")]
    fn dilate_rejects_zero_factor() {
        let mut s = Schedule::from_pairs(FlowId(0), [(sid(1), 1)]);
        s.dilate(0);
    }

    #[test]
    fn switches_for_filters_by_flow() {
        let mut s = Schedule::new();
        s.set(FlowId(0), sid(1), 0);
        s.set(FlowId(1), sid(2), 1);
        assert_eq!(s.switches_for(FlowId(0)), vec![(sid(1), 0)]);
        assert_eq!(s.switches_for(FlowId(1)), vec![(sid(2), 1)]);
    }

    #[test]
    fn display_groups_by_step() {
        let s = Schedule::from_pairs(FlowId(0), [(sid(1), 0), (sid(2), 1)]);
        let out = s.to_string();
        assert!(out.contains("t0: f0/s1"));
        assert!(out.contains("t1: f0/s2"));
    }

    #[test]
    fn validate_ok_when_extra_switches_scheduled() {
        // Scheduling a switch that does not strictly need an update
        // (e.g. v5 in the paper's example, updated for garbage collection)
        // is allowed.
        let p = Path::new(vec![sid(0), sid(1), sid(2)]);
        let q = Path::new(vec![sid(0), sid(1), sid(2)]);
        let f = Flow::new(FlowId(0), 1, p, q).unwrap();
        assert!(f.switches_to_update().is_empty());
        let mut net = chronus_net::NetworkBuilder::with_switches(3);
        net.add_link(sid(0), sid(1), 1, 1).unwrap();
        net.add_link(sid(1), sid(2), 1, 1).unwrap();
        let inst = chronus_net::UpdateInstance::single(net.build(), f).unwrap();
        let s = Schedule::from_pairs(FlowId(0), [(sid(0), 5)]);
        assert!(s.validate(&inst).is_ok());
    }
}
