//! Incremental re-simulation: O(Δ) exact-gate checks.
//!
//! Schedulers probe thousands of near-identical schedules: the greedy
//! exact gate extends the current partial schedule by one candidate,
//! and the branch-and-bound search sets and unsets one item per node.
//! Re-running [`crate::FluidSimulator`] from scratch for every probe
//! costs O(flows × horizon × path) each time. The
//! [`IncrementalSimulator`] instead keeps the *complete* simulation
//! state live — every cohort trajectory, the dense
//! [`crate::LoadLedger`] and all violation counters — and updates only
//! what one `(flow, switch, time)` assignment can change:
//!
//! - the horizon window, when the makespan moves (cohorts are appended
//!   to or popped from the high end);
//! - cohorts of the updated flow that *visit the updated switch* at a
//!   step where the effective rule actually flips (tracked by a
//!   per-switch visitor index).
//!
//! Everything else is provably untouched: a cohort that never consults
//! the changed rule follows the exact same trajectory (trajectories
//! are simple walks, so each switch's rule is consulted at most once
//! per cohort).
//!
//! [`IncrementalSimulator::apply`] returns a [`Delta`] recording what
//! changed; [`IncrementalSimulator::undo`] restores it verbatim.
//! Deltas must be undone in strict LIFO order (asserted), which both
//! consumers satisfy by construction: the greedy gate undoes a
//! rejected batch immediately, and the search recursion unwinds its
//! own stack. Verdicts are O(1) ([`IncrementalSimulator::verdict`]);
//! frozen-prefix checks are O(log n) range queries
//! ([`IncrementalSimulator::has_violation_at_or_before`]).
//!
//! The differential proptests in `tests/incremental_props.rs` pin this
//! machinery to the full simulator: after arbitrary apply/undo
//! interleavings, verdicts, event counts and the whole load surface
//! must be identical to a fresh [`crate::FluidSimulator`] run of the
//! mirrored schedule.
// The incremental simulator's whole point is dense indexed state:
// cohort tables, visitor cursors and the flat ledger are all indexed
// by ids this module mints, and `expect` unwraps mirror-state
// invariants the apply/undo pair maintains.
#![allow(clippy::indexing_slicing, clippy::expect_used)]

use crate::arena::{SimArena, StepCounts};
use crate::ledger::{LinkInterner, LoadLedger};
use crate::report::Verdict;
use crate::Schedule;
use chronus_net::{Capacity, Flow, FlowId, SwitchId, TimeStep, UpdateInstance};
use std::collections::BTreeMap;

/// Sentinel in a visit row: "this cohort never consults that switch".
const NO_VISIT: TimeStep = TimeStep::MIN;

/// The horizon slack steps, mirroring
/// [`crate::SimulatorConfig::horizon_slack`]'s default.
const DEFAULT_SLACK: TimeStep = 2;

/// A resolved forwarding rule: the next hop plus the interned link
/// that carries it (`None` when the network lacks the link — a
/// guaranteed blackhole, mirroring the full simulator).
#[derive(Clone, Copy, Debug)]
pub(crate) struct HopRule {
    pub next: SwitchId,
    pub link: Option<LinkRef>,
}

/// Cached link attributes so the per-hop path is hash-free.
#[derive(Clone, Copy, Debug)]
pub(crate) struct LinkRef {
    pub idx: u32,
    pub delay: TimeStep,
    pub capacity: Capacity,
}

/// Per-switch rule state of one flow.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct RuleEntry {
    pub old: Option<HopRule>,
    pub new: Option<HopRule>,
    pub sched: Option<TimeStep>,
}

/// One flow's rules indexed densely by switch id, plus the horizon
/// parameters. Shared between the full and incremental simulators so
/// both trace through the byte-identical [`trace_cohort`].
#[derive(Clone, Debug)]
pub(crate) struct FlowTable {
    pub id: FlowId,
    pub demand: Capacity,
    pub source: SwitchId,
    pub destination: SwitchId,
    pub phi_init: TimeStep,
    pub phi_fin: TimeStep,
    pub rules: Vec<RuleEntry>,
}

impl FlowTable {
    /// Builds the rule table of `flow` over `interner`'s links.
    pub fn build(instance: &UpdateInstance, interner: &LinkInterner, flow: &Flow) -> Self {
        let net = &instance.network;
        let mut rules = vec![RuleEntry::default(); net.switch_count()];
        let resolve = |u: SwitchId, next: SwitchId| HopRule {
            next,
            link: interner.get(u, next).map(|idx| {
                let l = interner.link(idx);
                LinkRef {
                    idx,
                    delay: l.delay,
                    capacity: l.capacity,
                }
            }),
        };
        for w in flow.initial.hops().windows(2) {
            if let Some(e) = rules.get_mut(w[0].index()) {
                e.old = Some(resolve(w[0], w[1]));
            }
        }
        for w in flow.fin.hops().windows(2) {
            if let Some(e) = rules.get_mut(w[0].index()) {
                e.new = Some(resolve(w[0], w[1]));
            }
        }
        FlowTable {
            id: flow.id,
            demand: flow.demand,
            source: flow.source(),
            destination: flow.destination(),
            phi_init: flow.initial.total_delay(net).unwrap_or(0) as TimeStep,
            phi_fin: flow.fin.total_delay(net).unwrap_or(0) as TimeStep,
            rules,
        }
    }

    /// Copies this flow's assignments out of `schedule` (entries for
    /// switches beyond the network are kept off the table — they can
    /// never be consulted, exactly as in the full simulator).
    pub fn load_schedule(&mut self, schedule: &Schedule) {
        for (f, v, t) in schedule.iter() {
            if f == self.id {
                if let Some(e) = self.rules.get_mut(v.index()) {
                    e.sched = Some(t);
                }
            }
        }
    }

    /// The rule the switch applies at step `now`: the new next-hop once
    /// the scheduled update time has passed (and a new rule exists),
    /// the old next-hop otherwise — [`crate::FluidSimulator`]'s
    /// `effective_rule`, hash-free.
    #[inline]
    pub fn effective(&self, v: SwitchId, now: TimeStep) -> Option<HopRule> {
        let e = &self.rules[v.index()];
        match (e.sched, e.new) {
            (Some(tv), Some(new)) if now >= tv => Some(new),
            _ => e.old,
        }
    }
}

/// Epoch-stamped visited set: loop detection without per-cohort
/// allocation or clearing.
#[derive(Clone, Debug, Default)]
pub(crate) struct VisitStamps {
    stamp: Vec<u64>,
    epoch: u64,
}

impl VisitStamps {
    pub fn with_buffer(switch_count: usize, mut buffer: Vec<u64>) -> Self {
        buffer.clear();
        buffer.resize(switch_count, 0);
        VisitStamps {
            stamp: buffer,
            epoch: 0,
        }
    }

    /// Returns the stamp storage for arena reuse.
    pub fn into_buffer(self) -> Vec<u64> {
        self.stamp
    }

    #[inline]
    fn begin(&mut self) {
        self.epoch += 1;
    }

    #[inline]
    fn mark(&mut self, v: SwitchId) {
        self.stamp[v.index()] = self.epoch;
    }

    #[inline]
    fn marked(&self, v: SwitchId) -> bool {
        self.stamp[v.index()] == self.epoch
    }
}

/// One traversed hop: the cohort departed `from` on interned link
/// `link` at step `depart`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct HopRec {
    pub from: SwitchId,
    pub link: u32,
    pub depart: TimeStep,
}

/// How one cohort trace ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum TraceEnd {
    /// Reached the destination.
    Delivered,
    /// Revisited `switch` at `time` (forwarding loop).
    Looped { switch: SwitchId, time: TimeStep },
    /// Arrived at ruleless (or linkless) `switch` at `time`.
    Blackholed { switch: SwitchId, time: TimeStep },
    /// Exhausted the hop bound without any of the above.
    Undelivered,
    /// Fail-fast mode only: the hop overloaded a link; tracing stopped
    /// immediately with the offending cell's details.
    CongestionAbort {
        src: SwitchId,
        dst: SwitchId,
        time: TimeStep,
        load: Capacity,
        capacity: Capacity,
    },
}

/// Traces the cohort of `table`'s flow emitted at `tau`, adding every
/// hop's demand to `ledger` and recording the hops in `hops`. This is
/// the one walk both simulators share; its event semantics are
/// hop-for-hop those of the original `FluidSimulator::trace_flow`.
pub(crate) fn trace_cohort(
    table: &FlowTable,
    tau: TimeStep,
    max_hops: usize,
    ledger: &mut LoadLedger,
    stamps: &mut VisitStamps,
    hops: &mut Vec<HopRec>,
    fail_fast: bool,
) -> TraceEnd {
    hops.clear();
    stamps.begin();
    trace_cohort_resume(
        table,
        table.source,
        tau,
        max_hops,
        ledger,
        stamps,
        hops,
        fail_fast,
        |_| false,
    )
}

/// Continues a cohort walk from `at` at step `now`, appending to
/// `hops`. `budget` is the remaining hop allowance and
/// `prefix_visited` answers "was this switch already visited by the
/// kept prefix?" (loop detection) — with an empty prefix this *is*
/// [`trace_cohort`]. The incremental simulator uses it to retrace
/// only the suffix of a trajectory after the one switch whose rule
/// flipped, passing a visit-row lookup instead of re-marking the
/// prefix into `stamps`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn trace_cohort_resume(
    table: &FlowTable,
    at: SwitchId,
    now: TimeStep,
    budget: usize,
    ledger: &mut LoadLedger,
    stamps: &mut VisitStamps,
    hops: &mut Vec<HopRec>,
    fail_fast: bool,
    prefix_visited: impl Fn(SwitchId) -> bool,
) -> TraceEnd {
    let mut at = at;
    let mut now = now;
    for _ in 0..budget {
        if at == table.destination {
            return TraceEnd::Delivered;
        }
        stamps.mark(at);
        let Some(rule) = table.effective(at, now) else {
            return TraceEnd::Blackholed {
                switch: at,
                time: now,
            };
        };
        let Some(link) = rule.link else {
            // A rule pointing at a non-existent link is a blackhole
            // (cannot happen for validated flows).
            return TraceEnd::Blackholed {
                switch: at,
                time: now,
            };
        };
        let load = ledger.add(link.idx, now, table.demand);
        hops.push(HopRec {
            from: at,
            link: link.idx,
            depart: now,
        });
        if fail_fast && now >= 0 && load > link.capacity {
            return TraceEnd::CongestionAbort {
                src: at,
                dst: rule.next,
                time: now,
                load,
                capacity: link.capacity,
            };
        }
        if stamps.marked(rule.next) || prefix_visited(rule.next) {
            return TraceEnd::Looped {
                switch: rule.next,
                time: now + link.delay,
            };
        }
        now += link.delay;
        at = rule.next;
    }
    TraceEnd::Undelivered
}

/// A stored cohort outcome (no congestion variant: load state lives in
/// the ledger, not per cohort).
#[derive(Clone, Debug, PartialEq, Eq)]
enum CohortEnd {
    Delivered,
    Looped { switch: SwitchId, time: TimeStep },
    Blackholed { switch: SwitchId, time: TimeStep },
    Undelivered,
}

/// One live cohort: its full trajectory plus how it ended.
#[derive(Clone, Debug, PartialEq, Eq)]
struct Cohort {
    hops: Vec<HopRec>,
    end: CohortEnd,
}

/// Per-flow live state.
#[derive(Clone, Debug)]
struct FlowState {
    table: FlowTable,
    first_emit: TimeStep,
    /// Cohorts indexed by `tau − first_emit`, covering
    /// `first_emit ..= makespan + phi_fin + slack`.
    cohorts: Vec<Cohort>,
    /// `visit[v][slot]` = the step at which cohort `slot` consults
    /// switch `v`'s rule (its departing hop, or its blackhole
    /// terminal), or [`NO_VISIT`]. Trajectories are simple walks, so
    /// one cell per `(switch, cohort)` suffices; rows are allocated
    /// lazily (only route switches are ever consulted) and the
    /// affected-cohort computation is a flat scan of one row.
    visit: Vec<Vec<TimeStep>>,
}

impl FlowState {
    fn slot(&self, tau: TimeStep) -> usize {
        (tau - self.first_emit) as usize
    }

    fn last_emit(&self) -> TimeStep {
        self.first_emit + (self.cohorts.len() as TimeStep) - 1
    }
}

/// The record of one [`IncrementalSimulator::apply`], sufficient to
/// restore the exact prior state. Opaque; hand it back to
/// [`IncrementalSimulator::undo`] in LIFO order.
#[derive(Debug)]
pub struct Delta {
    seq: u64,
    flow: usize,
    switch: SwitchId,
    time: TimeStep,
    prev_sched: Option<TimeStep>,
    /// Per-flow counts of cohorts appended by window growth.
    grew: Vec<(usize, usize)>,
    /// Cohorts popped by window shrink, verbatim, in ascending-τ order.
    shrunk: Vec<(usize, Vec<Cohort>)>,
    /// Retraced trajectory suffixes of the updated flow.
    retraced: Vec<RetraceRec>,
}

/// One suffix retrace: cohort `tau` kept its first `pos` hops and
/// replaced everything after (the changed switch is consulted exactly
/// once, so the prefix is provably unchanged).
#[derive(Debug)]
struct RetraceRec {
    tau: TimeStep,
    pos: usize,
    old_suffix: Vec<HopRec>,
    old_end: CohortEnd,
}

/// Reusable buffers for [`IncrementalSimulator`] (and, transitively,
/// its ledger): an engine worker keeps one of these per thread so
/// batch planning stops re-allocating the load surface per request.
/// Since the arena rewrite this is a thin wrapper over [`SimArena`] —
/// one parts-bin holding the load surface, occupancy bit rows, visit
/// stamps, pooled hop vectors and the dense step multisets.
#[derive(Debug, Default)]
pub struct SimWorkspace {
    pub(crate) arena: SimArena,
}

impl SimWorkspace {
    /// Byte high-water mark of the backing arena across every
    /// simulator run that recycled this workspace.
    pub fn arena_bytes(&self) -> u64 {
        self.arena.high_water_bytes()
    }

    /// Occupancy-bitmap words (`u64`s across the ledger's loaded +
    /// overloaded row sets) the most recent run returned.
    pub fn occupancy_words(&self) -> u64 {
        self.arena.occupancy_words()
    }
}

/// Which exact-simulation backend a gate ran its checks on.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum GateBackendKind {
    /// O(Δ) [`IncrementalSimulator`] apply/undo.
    #[default]
    Incremental,
    /// Full re-simulation per check (ablation flag, or the automatic
    /// small-instance cutoff where incremental bookkeeping costs more
    /// than it saves).
    Full,
}

/// Counters describing how an exact gate spent its checks; surfaced
/// through `GreedyOutcome` and the engine's `PlanReport`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GateStats {
    /// Backend the gate ran on (most recent gate wins under
    /// [`GateStats::absorb`] aggregation).
    pub backend: GateBackendKind,
    /// Gate checks answered incrementally (O(Δ)).
    pub incremental_checks: u64,
    /// Gate checks answered by a full simulator run.
    pub full_checks: u64,
    /// `apply` calls executed on the ledger.
    pub ledger_applies: u64,
    /// `undo` calls executed on the ledger.
    pub ledger_undos: u64,
    /// Ledger cells actually touched by the incremental path.
    pub cells_touched: u64,
    /// Cells a full re-simulation would have touched for the same
    /// checks (the live trajectory size, summed per check).
    pub full_equivalent_cells: u64,
}

impl GateStats {
    /// Accumulates `other` into `self` (engine-side aggregation).
    pub fn absorb(&mut self, other: &GateStats) {
        if other.incremental_checks + other.full_checks > 0 {
            self.backend = other.backend;
        }
        self.incremental_checks += other.incremental_checks;
        self.full_checks += other.full_checks;
        self.ledger_applies += other.ledger_applies;
        self.ledger_undos += other.ledger_undos;
        self.cells_touched += other.cells_touched;
        self.full_equivalent_cells += other.full_equivalent_cells;
    }
}

/// The incremental counterpart of [`crate::FluidSimulator`]: holds a
/// live simulation of one instance under an evolving schedule and
/// re-derives consistency in time proportional to what an update
/// actually changes. See the module docs for the contract.
#[derive(Debug)]
pub struct IncrementalSimulator {
    interner: LinkInterner,
    ledger: LoadLedger,
    flows: Vec<FlowState>,
    flow_index: BTreeMap<FlowId, usize>,
    /// Multiset of scheduled times across all flows (for the global
    /// makespan, which couples every flow's horizon window).
    sched_times: StepCounts,
    loop_times: StepCounts,
    blackhole_times: StepCounts,
    loops: usize,
    blackholes: usize,
    undelivered: usize,
    max_hops: usize,
    slack: TimeStep,
    stamps: VisitStamps,
    /// The parts-bin: while the simulator is live it serves as the hop
    /// pool (tracing pops a buffer, retiring a cohort pushes its
    /// storage back — the steady-state hot path allocates nothing);
    /// at teardown every other buffer returns into it too.
    arena: SimArena,
    /// Recycled `Delta::retraced` record vectors.
    retrace_pool: Vec<Vec<RetraceRec>>,
    /// Scratch for [`Self::retrace_affected`]'s affected-slot list.
    affected_scratch: Vec<(usize, TimeStep)>,
    depth: u64,
    applies: u64,
    undos: u64,
    /// Total hops across all live cohorts — what one full
    /// re-simulation of the current schedule would traverse.
    live_cells: u64,
}

impl IncrementalSimulator {
    /// Builds the live simulation of `instance` under the empty
    /// schedule (every switch still applies its old rule).
    pub fn new(instance: &UpdateInstance) -> Self {
        Self::with_workspace(instance, SimWorkspace::default())
    }

    /// Like [`IncrementalSimulator::new`], recycling `workspace`'s
    /// buffers.
    pub fn with_workspace(instance: &UpdateInstance, workspace: SimWorkspace) -> Self {
        let _span = chronus_trace::span!(
            "timenet.incremental.build",
            flows = instance.flows.len(),
            switches = instance.network.switch_count()
        )
        .entered();
        let interner = LinkInterner::for_instance(instance);
        let net = &instance.network;
        let tables: Vec<FlowTable> = instance
            .flows
            .iter()
            .map(|f| FlowTable::build(instance, &interner, f))
            .collect();
        let t_lo = tables.iter().map(|t| -t.phi_init).min().unwrap_or(0);
        let mut arena = workspace.arena;
        let ledger = LoadLedger::with_arena(&interner, t_lo, &mut arena);
        let stamps =
            VisitStamps::with_buffer(net.switch_count(), std::mem::take(&mut arena.stamps));
        let sched_times = arena.take_step_counts();
        let loop_times = arena.take_step_counts();
        let blackhole_times = arena.take_step_counts();
        let mut sim = IncrementalSimulator {
            interner,
            ledger,
            flows: Vec::with_capacity(tables.len()),
            flow_index: BTreeMap::new(),
            sched_times,
            loop_times,
            blackhole_times,
            loops: 0,
            blackholes: 0,
            undelivered: 0,
            max_hops: net.switch_count() + 2,
            slack: DEFAULT_SLACK,
            stamps,
            arena,
            retrace_pool: Vec::new(),
            affected_scratch: Vec::new(),
            depth: 0,
            applies: 0,
            undos: 0,
            live_cells: 0,
        };
        for (fi, table) in tables.into_iter().enumerate() {
            sim.flow_index.insert(table.id, fi);
            let first_emit = -table.phi_init;
            let visit = vec![Vec::new(); net.switch_count()];
            sim.flows.push(FlowState {
                table,
                first_emit,
                cohorts: Vec::new(),
                visit,
            });
            // Initial window: makespan 0 (empty schedule).
            let last = sim.flows[fi].table.phi_fin + sim.slack;
            for tau in first_emit..=last {
                sim.trace_and_push(fi);
                debug_assert_eq!(sim.flows[fi].last_emit(), tau);
            }
        }
        sim
    }

    /// Tears the simulator down, returning its buffers for reuse.
    pub fn into_workspace(self) -> SimWorkspace {
        let IncrementalSimulator {
            ledger,
            flows,
            stamps,
            sched_times,
            loop_times,
            blackhole_times,
            mut arena,
            ..
        } = self;
        // Live trajectory storage (cohort hop vectors + visit rows) is
        // dropped here, but its footprint counts toward the run's
        // high-water mark.
        let mut live_bytes = 0u64;
        for fs in &flows {
            for c in &fs.cohorts {
                live_bytes += (c.hops.capacity() * std::mem::size_of::<HopRec>()) as u64;
            }
            for row in &fs.visit {
                live_bytes += (row.capacity() * std::mem::size_of::<TimeStep>()) as u64;
            }
        }
        ledger.into_arena(&mut arena);
        arena.stamps = stamps.stamp;
        arena.put_step_counts(sched_times);
        arena.put_step_counts(loop_times);
        arena.put_step_counts(blackhole_times);
        arena.note_bytes(live_bytes);
        SimWorkspace { arena }
    }

    /// O(1) consistency verdict of the current schedule — identical to
    /// [`crate::FluidSimulator`] on the mirrored schedule.
    pub fn verdict(&self) -> Verdict {
        if self.ledger.overloaded_cell_count() == 0
            && self.loops == 0
            && self.blackholes == 0
            && self.undelivered == 0
        {
            Verdict::Consistent
        } else {
            Verdict::Inconsistent
        }
    }

    /// `true` iff a congestion, loop or blackhole event exists at a
    /// simulated time ≤ `t` — the branch-and-bound frozen-prefix prune
    /// (undelivered cohorts are deliberately excluded, matching
    /// `has_frozen_violation`).
    pub fn has_violation_at_or_before(&self, t: TimeStep) -> bool {
        self.ledger.has_overload_at_or_before(t)
            || self.loop_times.any_at_or_before(t)
            || self.blackhole_times.any_at_or_before(t)
    }

    /// The mirrored schedule's makespan, clamped at 0 like the full
    /// simulator's horizon computation.
    pub fn makespan(&self) -> TimeStep {
        self.sched_times.max().unwrap_or(0).max(0)
    }

    /// Byte high-water mark of the backing arena so far.
    pub fn arena_bytes(&self) -> u64 {
        self.arena.high_water_bytes()
    }

    /// Number of `apply` calls so far.
    pub fn applies(&self) -> u64 {
        self.applies
    }

    /// Number of `undo` calls so far.
    pub fn undos(&self) -> u64 {
        self.undos
    }

    /// Total ledger cells touched so far (the incremental work done).
    pub fn cell_visits(&self) -> u64 {
        self.ledger.cell_visits()
    }

    /// Total hops across live cohorts — the cells a *full*
    /// re-simulation of the current schedule would touch.
    pub fn live_cells(&self) -> u64 {
        self.live_cells
    }

    /// The current sparse load surface, for differential testing
    /// against [`crate::SimulationReport::link_loads`].
    pub fn link_loads(&self) -> BTreeMap<(SwitchId, SwitchId), BTreeMap<TimeStep, Capacity>> {
        self.ledger.link_loads(&self.interner)
    }

    /// Current `(loops, blackholes, undelivered)` cohort counts.
    pub fn event_counts(&self) -> (usize, usize, usize) {
        (self.loops, self.blackholes, self.undelivered)
    }

    /// Schedules `switch` of `flow` at step `t` (replacing any prior
    /// assignment) and incrementally re-derives the simulation state.
    ///
    /// # Panics
    /// Panics if `flow` is not part of the instance.
    pub fn apply(&mut self, flow: FlowId, switch: SwitchId, t: TimeStep) -> Delta {
        let fi = *self
            .flow_index
            .get(&flow)
            .expect("apply: unknown flow for this instance");
        self.depth += 1;
        self.applies += 1;

        let old_makespan = self.makespan();
        // Entries for switches beyond the network still count toward
        // the makespan (Schedule::makespan does), but have no rule
        // table slot to flip; grow the table so the slot exists.
        let rules = &mut self.flows[fi].table.rules;
        if switch.index() >= rules.len() {
            rules.resize(switch.index() + 1, RuleEntry::default());
        }
        let prev_sched = rules[switch.index()].sched.replace(t);
        if let Some(p) = prev_sched {
            self.sched_times.dec(p);
        }
        self.sched_times.inc(t);
        let new_makespan = self.makespan();

        let mut delta = Delta {
            seq: self.depth,
            flow: fi,
            switch,
            time: t,
            prev_sched,
            grew: Vec::new(), // chronus-lint: allow(hot-alloc) — empty Vec::new is alloc-free until first push
            shrunk: Vec::new(), // chronus-lint: allow(hot-alloc) — empty Vec::new is alloc-free until first push
            retraced: self.retrace_pool.pop().unwrap_or_default(),
        };

        if new_makespan != old_makespan {
            self.resize_windows(new_makespan, &mut delta);
        }
        self.retrace_affected(fi, switch, prev_sched, Some(t), &mut delta);
        delta
    }

    /// Reverts the state change recorded by `delta`.
    ///
    /// # Panics
    /// Panics if deltas are undone out of LIFO order.
    pub fn undo(&mut self, mut delta: Delta) {
        assert_eq!(
            delta.seq, self.depth,
            "IncrementalSimulator deltas must be undone in LIFO order"
        );
        self.depth -= 1;
        self.undos += 1;

        // 1. Reverse the retraces: swap the previous suffixes back in.
        //    (Popping walks the records newest-first, the required
        //    reverse order, and leaves the vector empty for the pool.)
        while let Some(rec) = delta.retraced.pop() {
            let fi = delta.flow;
            let slot = self.flows[fi].slot(rec.tau);
            self.unindex_suffix(fi, slot, rec.pos);
            let demand = self.flows[fi].table.demand;
            {
                let (fs, ledger) = (&mut self.flows[fi], &mut self.ledger);
                let hops = &mut fs.cohorts[slot].hops;
                for hop in &hops[rec.pos..] {
                    ledger.sub(hop.link, hop.depart, demand);
                }
                hops.truncate(rec.pos);
                hops.extend_from_slice(&rec.old_suffix);
                for hop in &hops[rec.pos..] {
                    ledger.add(hop.link, hop.depart, demand);
                }
                fs.cohorts[slot].end = rec.old_end;
            }
            self.arena.put_hops(rec.old_suffix);
            self.index_suffix(fi, slot, rec.pos);
        }
        self.retrace_pool.push(delta.retraced);

        // 2. Reverse the window resize.
        for &(fi, n) in delta.grew.iter().rev() {
            for _ in 0..n {
                self.pop_cohort(fi);
            }
        }
        while let Some((fi, removed)) = delta.shrunk.pop() {
            for cohort in removed {
                let fs = &mut self.flows[fi];
                fs.cohorts.push(cohort);
                let tau = fs.last_emit();
                self.restore_loads_and_index(fi, tau);
            }
        }

        // 3. Restore the schedule entry.
        let rules = &mut self.flows[delta.flow].table.rules;
        rules[delta.switch.index()].sched = delta.prev_sched;
        self.sched_times.dec(delta.time);
        if let Some(p) = delta.prev_sched {
            self.sched_times.inc(p);
        }
    }

    /// Declares `delta` final: its assignment will never be undone, so
    /// the undo buffers it carries (retrace records, popped cohorts)
    /// go back to the pools instead of being dropped. The state change
    /// itself stays applied. Committing is optional — dropping a delta
    /// is still correct, it merely leaks the buffers to the allocator.
    pub fn commit(&mut self, mut delta: Delta) {
        while let Some(rec) = delta.retraced.pop() {
            self.arena.put_hops(rec.old_suffix);
        }
        self.retrace_pool.push(delta.retraced);
        while let Some((_, removed)) = delta.shrunk.pop() {
            for cohort in removed {
                self.arena.put_hops(cohort.hops);
            }
        }
    }

    /// Traces the cohort of flow `fi` emitted at `tau` into a pooled
    /// hop buffer (no allocation in steady state).
    fn trace_into_cohort(&mut self, fi: usize, tau: TimeStep) -> Cohort {
        let mut hops = self.arena.take_hops();
        let end = trace_cohort(
            &self.flows[fi].table,
            tau,
            self.max_hops,
            &mut self.ledger,
            &mut self.stamps,
            &mut hops,
            false,
        );
        Cohort {
            hops,
            end: cohort_end(end),
        }
    }

    /// Traces the next cohort of flow `fi` (at `last_emit + 1`) under
    /// the current rules, pushes it and indexes it.
    fn trace_and_push(&mut self, fi: usize) {
        let fs = &self.flows[fi];
        let tau = if fs.cohorts.is_empty() {
            fs.first_emit
        } else {
            fs.last_emit() + 1
        };
        let cohort = self.trace_into_cohort(fi, tau);
        let slot = self.flows[fi].cohorts.len();
        self.flows[fi].cohorts.push(cohort);
        self.index_cohort(fi, slot);
    }

    /// Removes the last cohort of flow `fi` from every index and the
    /// ledger, returning it.
    fn pop_cohort(&mut self, fi: usize) -> Cohort {
        let slot = self.flows[fi].cohorts.len() - 1;
        self.unindex_cohort(fi, slot);
        let cohort = self.flows[fi].cohorts.pop().expect("pop on empty window");
        Self::remove_loads(&mut self.ledger, &cohort.hops, self.flows[fi].table.demand);
        cohort
    }

    /// Writes `val` into row `v` at `slot`, growing the lazily sized
    /// row (and, for schedule entries beyond the network, the outer
    /// table) on first touch.
    #[inline]
    fn mark_visit(visit: &mut Vec<Vec<TimeStep>>, v: SwitchId, slot: usize, val: TimeStep) {
        if v.index() >= visit.len() {
            visit.resize(v.index() + 1, Vec::new());
        }
        let row = &mut visit[v.index()];
        if slot >= row.len() {
            row.resize(slot + 1, NO_VISIT);
        }
        row[slot] = val;
    }

    /// Clears row `v` at `slot` (no-op when the row never grew there).
    #[inline]
    fn unmark_visit(visit: &mut [Vec<TimeStep>], v: SwitchId, slot: usize) {
        if let Some(cell) = visit.get_mut(v.index()).and_then(|row| row.get_mut(slot)) {
            *cell = NO_VISIT;
        }
    }

    /// Registers cohort `slot` of flow `fi` in the visit index and
    /// the violation counters (its loads are already in the ledger).
    fn index_cohort(&mut self, fi: usize, slot: usize) {
        self.index_suffix(fi, slot, 0);
    }

    /// Inverse of [`Self::index_cohort`] (loads untouched).
    fn unindex_cohort(&mut self, fi: usize, slot: usize) {
        self.unindex_suffix(fi, slot, 0);
    }

    /// Registers the hops from `pos` onward (and the trace end, which
    /// always belongs to the suffix) of cohort `slot`.
    fn index_suffix(&mut self, fi: usize, slot: usize, pos: usize) {
        let fs = &mut self.flows[fi];
        let cohort = &fs.cohorts[slot];
        for hop in &cohort.hops[pos..] {
            Self::mark_visit(&mut fs.visit, hop.from, slot, hop.depart);
        }
        self.live_cells += (cohort.hops.len() - pos) as u64;
        match cohort.end {
            CohortEnd::Delivered => {}
            CohortEnd::Looped { time, .. } => {
                self.loops += 1;
                self.loop_times.inc(time);
            }
            CohortEnd::Blackholed { switch, time } => {
                Self::mark_visit(&mut fs.visit, switch, slot, time);
                self.blackholes += 1;
                self.blackhole_times.inc(time);
            }
            CohortEnd::Undelivered => self.undelivered += 1,
        }
    }

    /// Inverse of [`Self::index_suffix`] (loads untouched).
    fn unindex_suffix(&mut self, fi: usize, slot: usize, pos: usize) {
        let fs = &mut self.flows[fi];
        let cohort = &fs.cohorts[slot];
        for hop in &cohort.hops[pos..] {
            Self::unmark_visit(&mut fs.visit, hop.from, slot);
        }
        self.live_cells -= (cohort.hops.len() - pos) as u64;
        match cohort.end {
            CohortEnd::Delivered => {}
            CohortEnd::Looped { time, .. } => {
                self.loops -= 1;
                self.loop_times.dec(time);
            }
            CohortEnd::Blackholed { switch, time } => {
                Self::unmark_visit(&mut fs.visit, switch, slot);
                self.blackholes -= 1;
                self.blackhole_times.dec(time);
            }
            CohortEnd::Undelivered => self.undelivered -= 1,
        }
    }

    fn remove_loads(ledger: &mut LoadLedger, hops: &[HopRec], demand: Capacity) {
        for hop in hops {
            ledger.sub(hop.link, hop.depart, demand);
        }
    }

    /// Re-adds the (already stored) cohort at `tau` to the ledger and
    /// the indexes — the restore half of undo.
    fn restore_loads_and_index(&mut self, fi: usize, tau: TimeStep) {
        let slot = self.flows[fi].slot(tau);
        let demand = self.flows[fi].table.demand;
        // Split borrow: read hops while mutating the ledger.
        {
            let (fs, ledger) = (&self.flows[fi], &mut self.ledger);
            for hop in &fs.cohorts[slot].hops {
                ledger.add(hop.link, hop.depart, demand);
            }
        }
        self.index_cohort(fi, slot);
    }

    /// Grows or shrinks every flow's emission window to match
    /// `new_makespan`, recording the edits in `delta`.
    fn resize_windows(&mut self, new_makespan: TimeStep, delta: &mut Delta) {
        for fi in 0..self.flows.len() {
            let fs = &self.flows[fi];
            let new_last = new_makespan + fs.table.phi_fin + self.slack;
            let old_len = fs.cohorts.len();
            let new_len = (new_last - fs.first_emit + 1) as usize;
            if new_len > old_len {
                for _ in old_len..new_len {
                    self.trace_and_push(fi);
                }
                delta.grew.push((fi, new_len - old_len));
            } else if new_len < old_len {
                let mut removed = Vec::with_capacity(old_len - new_len);
                for _ in new_len..old_len {
                    removed.push(self.pop_cohort(fi));
                }
                removed.reverse(); // ascending τ, ready to push back
                delta.shrunk.push((fi, removed));
            }
        }
    }

    /// Retraces the cohorts of flow `fi` whose trajectory consults
    /// `switch` at a step where the effective rule flipped between the
    /// `old_cut` and `new_cut` schedule times.
    fn retrace_affected(
        &mut self,
        fi: usize,
        switch: SwitchId,
        old_cut: Option<TimeStep>,
        new_cut: Option<TimeStep>,
        delta: &mut Delta,
    ) {
        let mut affected = std::mem::take(&mut self.affected_scratch);
        affected.clear();
        {
            let fs = &self.flows[fi];
            // No new rule at this switch ⇒ the effective rule can never
            // change, whatever the schedule says.
            let has_new = fs
                .table
                .rules
                .get(switch.index())
                .is_some_and(|e| e.new.is_some());
            let row = if has_new {
                fs.visit.get(switch.index())
            } else {
                None
            };
            if let Some(row) = row {
                let flipped = |a: TimeStep| {
                    old_cut.is_some_and(|c| a >= c) != new_cut.is_some_and(|c| a >= c)
                };
                // One flat pass over the visit row: the consult step is
                // stored right there, so no cohort's hop list is
                // inspected. The slot list reuses a pooled scratch
                // vector.
                for (slot, &a) in row.iter().take(fs.cohorts.len()).enumerate() {
                    if a != NO_VISIT && flipped(a) {
                        affected.push((slot, a));
                    }
                }
            }
        }
        for &(slot, consult) in &affected {
            let tau = self.flows[fi].first_emit + (slot as TimeStep);
            // Split point: the (unique) hop departing from `switch`,
            // or the full hop count when the cohort blackholed there.
            // Everything before it consults only unchanged rules.
            // Departs are non-decreasing, so binary-search to the
            // consult step and scan the (rare) zero-delay ties.
            let pos = {
                let hops = &self.flows[fi].cohorts[slot].hops;
                let mut p = hops.partition_point(|h| h.depart < consult);
                loop {
                    match hops.get(p) {
                        Some(h) if h.depart == consult && h.from != switch => p += 1,
                        Some(h) if h.depart == consult => break p,
                        _ => break hops.len(),
                    }
                }
            };
            self.unindex_suffix(fi, slot, pos);
            let demand = self.flows[fi].table.demand;
            let mut old_suffix = self.arena.take_hops();
            let old_end = {
                let (fs, ledger, stamps) =
                    (&mut self.flows[fi], &mut self.ledger, &mut self.stamps);
                let table = &fs.table;
                // After `unindex_suffix` the visit column for this slot
                // holds exactly the kept prefix's switches, so it doubles
                // as the loop-closure set — no O(prefix) re-marking.
                let visit = &fs.visit;
                let prefix_visited = |w: SwitchId| {
                    visit
                        .get(w.index())
                        .and_then(|row| row.get(slot))
                        .is_some_and(|&a| a != NO_VISIT)
                };
                let cohort = &mut fs.cohorts[slot];
                for hop in &cohort.hops[pos..] {
                    ledger.sub(hop.link, hop.depart, demand);
                    old_suffix.push(*hop);
                }
                cohort.hops.truncate(pos);
                stamps.begin();
                let end = trace_cohort_resume(
                    table,
                    switch,
                    consult,
                    self.max_hops - pos,
                    ledger,
                    stamps,
                    &mut cohort.hops,
                    false,
                    prefix_visited,
                );
                std::mem::replace(&mut cohort.end, cohort_end(end))
            };
            self.index_suffix(fi, slot, pos);
            delta.retraced.push(RetraceRec {
                tau,
                pos,
                old_suffix,
                old_end,
            });
        }
        self.affected_scratch = affected;
    }
}

/// Converts a live [`TraceEnd`] into the stored [`CohortEnd`]
/// (incremental tracing never fail-fasts, so the congestion variant is
/// unreachable).
fn cohort_end(end: TraceEnd) -> CohortEnd {
    match end {
        TraceEnd::Delivered => CohortEnd::Delivered,
        TraceEnd::Looped { switch, time } => CohortEnd::Looped { switch, time },
        TraceEnd::Blackholed { switch, time } => CohortEnd::Blackholed { switch, time },
        TraceEnd::Undelivered => CohortEnd::Undelivered,
        TraceEnd::CongestionAbort { .. } => {
            unreachable!("incremental tracing never fail-fasts")
        }
    }
}
