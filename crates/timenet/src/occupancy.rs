//! A textual Fig. 2: per-step link occupancy during a migration.
//!
//! The paper visualizes its examples in the time-extended network,
//! marking which links carry flow at which step and where capacity is
//! violated. [`render_occupancy`] produces the same view as text: one
//! row per time step, one column per interesting link, each cell the
//! load over capacity (`!` marks an overload, `·` an idle link).

use crate::{FluidSimulator, Schedule, SimulatorConfig};
use chronus_net::{SwitchId, TimeStep, UpdateInstance};
use std::fmt::Write as _;

/// Renders the occupancy table for `schedule` over `instance`,
/// covering the steps `[from, to]` (inclusive). Only links that carry
/// load at some point appear as columns, ordered by endpoints.
pub fn render_occupancy(
    instance: &UpdateInstance,
    schedule: &Schedule,
    from: TimeStep,
    to: TimeStep,
) -> String {
    let report = FluidSimulator::with_config(
        instance,
        SimulatorConfig {
            record_loads: true,
            ..SimulatorConfig::default()
        },
    )
    .run(schedule);

    let links: Vec<(SwitchId, SwitchId)> = report.link_loads.keys().copied().collect();
    let mut out = String::new();

    // Header.
    let _ = write!(out, "{:>5} |", "t");
    for &(u, v) in &links {
        let _ = write!(out, " {:>7} |", format!("{u}>{v}"));
    }
    out.push('\n');
    let width = 8 + links.len() * 10;
    out.push_str(&"-".repeat(width));
    out.push('\n');

    for t in from..=to {
        let _ = write!(out, "{t:>5} |");
        for &(u, v) in &links {
            let load = report
                .link_loads
                .get(&(u, v))
                .and_then(|m| m.get(&t))
                .copied()
                .unwrap_or(0);
            let cap = instance.network.capacity(u, v).unwrap_or(0);
            if load == 0 {
                let _ = write!(out, " {:>7} |", "·");
            } else {
                let marker = if load > cap { "!" } else { "" };
                let _ = write!(out, " {:>7} |", format!("{load}/{cap}{marker}"));
            }
        }
        // Updates firing at this step.
        let firing: Vec<String> = schedule
            .iter()
            .filter(|&(_, _, tv)| tv == t)
            .map(|(_, v, _)| v.to_string())
            .collect();
        if !firing.is_empty() {
            let _ = write!(out, "  << update {}", firing.join(", "));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use chronus_core_shim::greedy_like_schedule;
    use chronus_net::motivating_example;

    /// The timenet crate cannot depend on chronus-core (it is the
    /// other way round), so the known-good schedule for the motivating
    /// example is written down directly.
    mod chronus_core_shim {
        use chronus_net::{FlowId, SwitchId};

        pub fn greedy_like_schedule() -> crate::Schedule {
            crate::Schedule::from_pairs(
                FlowId(0),
                [
                    (SwitchId(1), 0),
                    (SwitchId(2), 1),
                    (SwitchId(0), 2),
                    (SwitchId(3), 2),
                ],
            )
        }
    }

    #[test]
    fn occupancy_shows_loads_and_updates() {
        let inst = motivating_example();
        let schedule = greedy_like_schedule();
        let text = render_occupancy(&inst, &schedule, -2, 8);
        // Header names links in u>v form.
        assert!(text.contains("s0>s1"));
        // The pre-update steady state loads the old first link.
        assert!(text.contains("1/1"));
        // Update annotations appear at their steps.
        assert!(text.contains("<< update s1"));
        assert!(text.contains("<< update s0, s3"));
        // A consistent schedule shows no overload marker.
        assert!(!text.contains('!'));
    }

    #[test]
    fn occupancy_marks_overloads() {
        let inst = motivating_example();
        // The OR round-1 pattern (v1 and v2 together, v3/v4 pending):
        // the diverted stream meets the draining old one on <v4, v5>.
        let bad = crate::Schedule::from_pairs(
            chronus_net::FlowId(0),
            [(chronus_net::SwitchId(0), 0), (chronus_net::SwitchId(1), 0)],
        );
        let text = render_occupancy(&inst, &bad, 0, 8);
        assert!(text.contains("2/1!"), "expected an overload cell:\n{text}");
    }
}
