//! The time-extended network `G_T` (paper Definition 4, Fig. 2).

use chronus_net::{Capacity, Network, SwitchId, TimeStep};
use std::fmt;

/// A switch copy `v(t)` in the time-extended network.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct TeNode {
    /// The underlying switch.
    pub switch: SwitchId,
    /// The time step of this copy.
    pub time: TimeStep,
}

impl TeNode {
    /// Creates `v(t)`.
    pub fn new(switch: SwitchId, time: TimeStep) -> Self {
        TeNode { switch, time }
    }
}

impl fmt::Display for TeNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(t{})", self.switch, self.time)
    }
}

/// A link `u(tᵢ) → v(tⱼ)` in the time-extended network, with
/// `tⱼ = tᵢ + σ(u,v)` and the capacity of the underlying link.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TeLink {
    /// Tail copy `u(tᵢ)`.
    pub from: TeNode,
    /// Head copy `v(tⱼ)`.
    pub to: TeNode,
    /// Capacity inherited from the underlying link.
    pub capacity: Capacity,
}

impl fmt::Display for TeLink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{}, {}> (C={})", self.from, self.to, self.capacity)
    }
}

/// The time-extended network `G_T = (V_T, E_T)` over a window
/// `[t_min, t_max]` of time steps.
///
/// `V_T` contains `v(t)` for every switch `v` and every
/// `t ∈ [t_min, t_max]`; `E_T` contains `u(t) → v(t + σ(u,v))` for
/// every link `⟨u, v⟩` and every `t` such that both endpoints fall in
/// the window. Following paper Fig. 2, `t_min` is typically negative
/// (history steps needed to track flow already in flight) and `t_max`
/// grows as the greedy algorithm appends future steps.
///
/// The structure is *virtual*: nodes and links are computed on demand
/// from the underlying [`Network`], so even a 6 000-switch network with
/// a deep window costs no memory beyond the base graph. This is what
/// lets the Fig. 10 running-time experiment scale.
#[derive(Clone, Debug)]
pub struct TimeExtendedNetwork<'a> {
    base: &'a Network,
    t_min: TimeStep,
    t_max: TimeStep,
}

impl<'a> TimeExtendedNetwork<'a> {
    /// Creates `G_T` over the window `[t_min, t_max]`.
    ///
    /// # Panics
    /// Panics if `t_min > t_max`.
    pub fn new(base: &'a Network, t_min: TimeStep, t_max: TimeStep) -> Self {
        assert!(t_min <= t_max, "empty time window");
        TimeExtendedNetwork { base, t_min, t_max }
    }

    /// Creates the window the paper's Algorithm 2 starts from:
    /// history steps `t₋σ … t₋1` (σ = total initial-path delay),
    /// the current step `t₀ = 0` and one future step `t₁`.
    pub fn initial_window(base: &'a Network, history_depth: u64) -> Self {
        TimeExtendedNetwork::new(base, -(history_depth as TimeStep), 1)
    }

    /// The underlying static network.
    pub fn base(&self) -> &Network {
        self.base
    }

    /// Start of the time window (inclusive).
    pub fn t_min(&self) -> TimeStep {
        self.t_min
    }

    /// End of the time window (inclusive).
    pub fn t_max(&self) -> TimeStep {
        self.t_max
    }

    /// Appends `n` future time steps (Algorithm 2 line 17: `T = T ∪ {tᵢ}`).
    pub fn extend(&mut self, n: u64) {
        self.t_max += n as TimeStep;
    }

    /// Number of time steps in the window (`|T|`).
    pub fn step_count(&self) -> usize {
        (self.t_max - self.t_min + 1) as usize
    }

    /// Number of nodes `|V_T| = |V| · |T|`.
    pub fn node_count(&self) -> usize {
        self.base.switch_count() * self.step_count()
    }

    /// `true` if `v(t)` lies in the window.
    pub fn contains(&self, node: TeNode) -> bool {
        self.base.contains_switch(node.switch) && node.time >= self.t_min && node.time <= self.t_max
    }

    /// The time-extended copy of link `⟨u, v⟩` departing at `t`, if the
    /// base link exists and both copies fall in the window.
    pub fn link_at(&self, u: SwitchId, v: SwitchId, t: TimeStep) -> Option<TeLink> {
        let l = self.base.link_between(u, v)?;
        let to = TeNode::new(v, t + l.delay as TimeStep);
        let from = TeNode::new(u, t);
        if self.contains(from) && self.contains(to) {
            Some(TeLink {
                from,
                to,
                capacity: l.capacity,
            })
        } else {
            None
        }
    }

    /// Outgoing time-extended links of `u(t)`.
    pub fn out_links(&self, node: TeNode) -> Vec<TeLink> {
        if !self.contains(node) {
            return Vec::new();
        }
        self.base
            .out_links(node.switch)
            .filter_map(|l| self.link_at(l.src, l.dst, node.time))
            .collect()
    }

    /// Incoming time-extended links of `v(t)`: every `u(t − σ(u,v))`
    /// whose departure reaches `v` exactly at `t`.
    pub fn in_links(&self, node: TeNode) -> Vec<TeLink> {
        if !self.contains(node) {
            return Vec::new();
        }
        self.base
            .in_links(node.switch)
            .filter_map(|l| self.link_at(l.src, l.dst, node.time - l.delay as TimeStep))
            .collect()
    }

    /// Total number of links `|E_T|` in the window (each base link has
    /// one copy per departure step whose arrival stays in the window).
    pub fn link_count(&self) -> usize {
        self.base
            .links()
            .map(|l| {
                let latest_departure = self.t_max - l.delay as TimeStep;
                if latest_departure < self.t_min {
                    0
                } else {
                    (latest_departure - self.t_min + 1) as usize
                }
            })
            .sum()
    }

    /// Materializes every node in the window (mainly for tests and
    /// small-scale rendering — prefer the on-demand accessors).
    pub fn nodes(&self) -> impl Iterator<Item = TeNode> + '_ {
        (self.t_min..=self.t_max)
            .flat_map(move |t| self.base.switches().map(move |s| TeNode::new(s, t)))
    }

    /// Materializes the whole window into an owned snapshot — the
    /// representation shared across planning threads by the engine's
    /// time-extended-network cache, where the borrow of the base
    /// [`Network`] cannot be held.
    pub fn materialize(&self) -> MaterializedTimeNet {
        let nodes = self.nodes().collect();
        let mut links = Vec::with_capacity(self.link_count());
        for t in self.t_min..=self.t_max {
            for l in self.base.links() {
                if let Some(tl) = self.link_at(l.src, l.dst, t) {
                    links.push(tl);
                }
            }
        }
        MaterializedTimeNet {
            t_min: self.t_min,
            t_max: self.t_max,
            nodes,
            links,
        }
    }

    /// Renders an ASCII sketch of the window: one line per time step
    /// listing the departures at that step — a textual Fig. 2.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for t in self.t_min..=self.t_max {
            out.push_str(&format!("t{t}:"));
            for l in self.base.links() {
                if self.link_at(l.src, l.dst, t).is_some() {
                    out.push_str(&format!(" {}->{}", l.src, l.dst));
                }
            }
            out.push('\n');
        }
        out
    }
}

/// An owned snapshot of a [`TimeExtendedNetwork`] window: every node
/// and link materialized into vectors.
///
/// Unlike the virtual view, this carries no borrow of the base
/// [`Network`], so it can live inside `Arc`-shared caches and cross
/// thread boundaries — the engine memoizes one per
/// `(topology, flow, horizon)` key. Nodes are ordered by time step
/// then switch id; links by departure step in base-link order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MaterializedTimeNet {
    t_min: TimeStep,
    t_max: TimeStep,
    /// Every `v(t)` in the window.
    pub nodes: Vec<TeNode>,
    /// Every `u(t) → v(t + σ)` whose endpoints both fall in the window.
    pub links: Vec<TeLink>,
}

impl MaterializedTimeNet {
    /// Start of the time window (inclusive).
    pub fn t_min(&self) -> TimeStep {
        self.t_min
    }

    /// End of the time window (inclusive).
    pub fn t_max(&self) -> TimeStep {
        self.t_max
    }

    /// Number of time steps in the window (`|T|`).
    pub fn step_count(&self) -> usize {
        (self.t_max - self.t_min + 1) as usize
    }

    /// Outgoing links of `u(t)` (linear scan; the snapshot is meant
    /// for reuse, not asymptotics).
    pub fn out_links(&self, node: TeNode) -> impl Iterator<Item = &TeLink> + '_ {
        self.links.iter().filter(move |l| l.from == node)
    }

    /// Approximate heap footprint in bytes, used by the engine's cache
    /// accounting.
    pub fn approx_bytes(&self) -> usize {
        self.nodes.len() * std::mem::size_of::<TeNode>()
            + self.links.len() * std::mem::size_of::<TeLink>()
    }
}

impl fmt::Display for MaterializedTimeNet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "G_T[{}..={}]: {} nodes, {} links",
            self.t_min,
            self.t_max,
            self.nodes.len(),
            self.links.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chronus_net::topology::{self, LinkParams};
    use chronus_net::NetworkBuilder;

    fn sid(i: u32) -> SwitchId {
        SwitchId(i)
    }

    #[test]
    fn window_and_counts() {
        let net = topology::line(3, LinkParams::default()); // 4 duplex links
        let te = TimeExtendedNetwork::new(&net, -2, 3);
        assert_eq!(te.step_count(), 6);
        assert_eq!(te.node_count(), 18);
        // Each link has delay 1: departures from -2..=2 stay in window.
        assert_eq!(te.link_count(), 4 * 5);
        assert_eq!(te.nodes().count(), 18);
    }

    #[test]
    fn link_at_respects_delay_and_window() {
        let mut b = NetworkBuilder::with_switches(2);
        b.add_link(sid(0), sid(1), 7, 3).unwrap();
        let net = b.build();
        let te = TimeExtendedNetwork::new(&net, 0, 4);
        let l = te.link_at(sid(0), sid(1), 1).unwrap();
        assert_eq!(l.from, TeNode::new(sid(0), 1));
        assert_eq!(l.to, TeNode::new(sid(1), 4));
        assert_eq!(l.capacity, 7);
        // Departure at 2 would arrive at 5, outside the window.
        assert!(te.link_at(sid(0), sid(1), 2).is_none());
        // Missing base link.
        assert!(te.link_at(sid(1), sid(0), 0).is_none());
    }

    #[test]
    fn in_out_links_are_symmetric() {
        let net = topology::ring(4, LinkParams::default());
        let te = TimeExtendedNetwork::new(&net, -1, 5);
        let node = TeNode::new(sid(1), 2);
        for l in te.out_links(node) {
            assert_eq!(l.from, node);
            assert!(te.in_links(l.to).contains(&l));
        }
        assert_eq!(te.out_links(TeNode::new(sid(0), 99)).len(), 0);
    }

    #[test]
    fn initial_window_matches_paper() {
        let net = topology::line(4, LinkParams::default());
        let te = TimeExtendedNetwork::initial_window(&net, 3);
        assert_eq!(te.t_min(), -3);
        assert_eq!(te.t_max(), 1);
    }

    #[test]
    fn extend_appends_future_steps() {
        let net = topology::line(2, LinkParams::default());
        let mut te = TimeExtendedNetwork::initial_window(&net, 1);
        let before = te.t_max();
        te.extend(2);
        assert_eq!(te.t_max(), before + 2);
    }

    #[test]
    fn render_lists_departures() {
        let mut b = NetworkBuilder::with_switches(2);
        b.add_link(sid(0), sid(1), 1, 1).unwrap();
        let net = b.build();
        let te = TimeExtendedNetwork::new(&net, 0, 1);
        let r = te.render();
        assert!(r.contains("t0: s0->s1"));
        // Departure at t1 would land at t2, outside the window.
        assert!(r.contains("t1:\n"));
    }

    #[test]
    fn node_display() {
        assert_eq!(TeNode::new(sid(2), -1).to_string(), "s2(t-1)");
    }

    #[test]
    fn materialize_matches_virtual_view() {
        let net = topology::ring(4, LinkParams::default());
        let te = TimeExtendedNetwork::new(&net, -2, 3);
        let mat = te.materialize();
        assert_eq!(mat.t_min(), te.t_min());
        assert_eq!(mat.t_max(), te.t_max());
        assert_eq!(mat.step_count(), te.step_count());
        assert_eq!(mat.nodes.len(), te.node_count());
        assert_eq!(mat.links.len(), te.link_count());
        // Every materialized link is reproducible on demand, and
        // per-node adjacency agrees.
        for l in &mat.links {
            assert_eq!(
                te.link_at(l.from.switch, l.to.switch, l.from.time),
                Some(*l)
            );
        }
        for &n in &mat.nodes {
            let mut virt = te.out_links(n);
            let mat_out: Vec<TeLink> = mat.out_links(n).copied().collect();
            virt.sort_by_key(|l| (l.to.switch, l.to.time));
            let mut mat_sorted = mat_out;
            mat_sorted.sort_by_key(|l| (l.to.switch, l.to.time));
            assert_eq!(virt, mat_sorted);
        }
        assert!(mat.approx_bytes() > 0);
        assert!(mat.to_string().contains("nodes"));
    }

    #[test]
    #[should_panic(expected = "empty time window")]
    fn rejects_inverted_window() {
        let net = topology::line(2, LinkParams::default());
        let _ = TimeExtendedNetwork::new(&net, 1, 0);
    }
}
