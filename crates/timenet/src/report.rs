//! Simulation outcome types.

use chronus_net::{Capacity, FlowId, SwitchId, TimeStep};
use std::collections::BTreeMap;
use std::fmt;

/// One transient congestion event: at step `time`, link `⟨src, dst⟩`
/// carried `load > capacity` (violation of Definition 3 / constraint
/// (3a)).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CongestionEvent {
    /// Link tail.
    pub src: SwitchId,
    /// Link head.
    pub dst: SwitchId,
    /// Departure step at which the overload happened.
    pub time: TimeStep,
    /// Observed load.
    pub load: Capacity,
    /// Link capacity.
    pub capacity: Capacity,
}

impl fmt::Display for CongestionEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "congestion on <{}, {}> at t{}: load {} > capacity {}",
            self.src, self.dst, self.time, self.load, self.capacity
        )
    }
}

/// A forwarding loop: the cohort of `flow` emitted at `emitted_at`
/// revisited `switch` at step `time` (violation of Definition 2).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct LoopEvent {
    /// The flow whose cohort looped.
    pub flow: FlowId,
    /// Emission step of the looping cohort.
    pub emitted_at: TimeStep,
    /// The switch visited twice.
    pub switch: SwitchId,
    /// The step of the second visit.
    pub time: TimeStep,
}

impl fmt::Display for LoopEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "loop: {} cohort emitted at t{} revisited {} at t{}",
            self.flow, self.emitted_at, self.switch, self.time
        )
    }
}

/// A blackhole: a cohort arrived at a switch that had no applicable
/// rule (e.g. a final-path switch whose rule was not yet installed).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct BlackholeEvent {
    /// The flow whose cohort was dropped.
    pub flow: FlowId,
    /// Emission step of the dropped cohort.
    pub emitted_at: TimeStep,
    /// The ruleless switch.
    pub switch: SwitchId,
    /// Arrival step.
    pub time: TimeStep,
}

impl fmt::Display for BlackholeEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "blackhole: {} cohort emitted at t{} dropped at {} at t{}",
            self.flow, self.emitted_at, self.switch, self.time
        )
    }
}

/// Overall verdict of a simulation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Verdict {
    /// No congestion, loops, blackholes or undelivered cohorts: the
    /// schedule is consistent in the paper's sense.
    Consistent,
    /// At least one violation occurred; see the report's event lists.
    Inconsistent,
}

/// Full result of a [`crate::FluidSimulator`] run.
#[derive(Clone, Debug, Default)]
pub struct SimulationReport {
    /// All congestion events at steps ≥ 0, ordered by (time, link).
    pub congestion: Vec<CongestionEvent>,
    /// All forwarding loops detected.
    pub loops: Vec<LoopEvent>,
    /// All blackholes detected.
    pub blackholes: Vec<BlackholeEvent>,
    /// Cohorts (flow, emission step) that did not reach their
    /// destination within the simulation horizon for a reason other
    /// than a recorded loop/blackhole (horizon exhaustion).
    pub undelivered: Vec<(FlowId, TimeStep)>,
    /// Sparse per-link load series: `(src, dst) → (time → load)`.
    /// Only steps with non-zero load appear.
    pub link_loads: BTreeMap<(SwitchId, SwitchId), BTreeMap<TimeStep, Capacity>>,
}

impl SimulationReport {
    /// The verdict: consistent iff every event list is empty.
    pub fn verdict(&self) -> Verdict {
        if self.congestion.is_empty()
            && self.loops.is_empty()
            && self.blackholes.is_empty()
            && self.undelivered.is_empty()
        {
            Verdict::Consistent
        } else {
            Verdict::Inconsistent
        }
    }

    /// `true` if the schedule was congestion-free (it may still loop).
    pub fn congestion_free(&self) -> bool {
        self.congestion.is_empty()
    }

    /// `true` if the schedule was loop-free (it may still congest).
    pub fn loop_free(&self) -> bool {
        self.loops.is_empty()
    }

    /// Number of *distinct congested time-extended links*, i.e.
    /// distinct `(link, departure step)` pairs with an overload — the
    /// quantity plotted in paper Fig. 8 ("the sum of congested links …
    /// using the time-extended network").
    pub fn congested_te_link_count(&self) -> usize {
        self.congestion.len()
    }

    /// Number of distinct *physical* links that congested at least once.
    pub fn congested_link_count(&self) -> usize {
        let mut links: Vec<(SwitchId, SwitchId)> =
            self.congestion.iter().map(|c| (c.src, c.dst)).collect();
        links.sort_unstable();
        links.dedup();
        links.len()
    }

    /// The worst overload ratio `load / capacity` observed, or `None`
    /// if no congestion occurred. Used by the Fig. 6 emulation to
    /// report peak bandwidth consumption.
    pub fn max_overload_ratio(&self) -> Option<f64> {
        self.congestion
            .iter()
            .map(|c| c.load as f64 / c.capacity as f64)
            .max_by(f64::total_cmp)
    }

    /// Peak load ever observed on `⟨src, dst⟩` (0 if never loaded).
    pub fn peak_load(&self, src: SwitchId, dst: SwitchId) -> Capacity {
        self.link_loads
            .get(&(src, dst))
            .and_then(|m| m.values().copied().max())
            .unwrap_or(0)
    }

    /// The load series of one link as `(time, load)` pairs.
    pub fn load_series(&self, src: SwitchId, dst: SwitchId) -> Vec<(TimeStep, Capacity)> {
        self.link_loads
            .get(&(src, dst))
            .map(|m| m.iter().map(|(&t, &l)| (t, l)).collect())
            .unwrap_or_default()
    }
}

impl fmt::Display for SimulationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "verdict: {:?} ({} congestion, {} loops, {} blackholes, {} undelivered)",
            self.verdict(),
            self.congestion.len(),
            self.loops.len(),
            self.blackholes.len(),
            self.undelivered.len()
        )?;
        for c in &self.congestion {
            writeln!(f, "  {c}")?;
        }
        for l in &self.loops {
            writeln!(f, "  {l}")?;
        }
        for b in &self.blackholes {
            writeln!(f, "  {b}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(src: u32, dst: u32, t: TimeStep) -> CongestionEvent {
        CongestionEvent {
            src: SwitchId(src),
            dst: SwitchId(dst),
            time: t,
            load: 2,
            capacity: 1,
        }
    }

    #[test]
    fn verdict_reflects_events() {
        let mut r = SimulationReport::default();
        assert_eq!(r.verdict(), Verdict::Consistent);
        assert!(r.congestion_free() && r.loop_free());
        r.congestion.push(event(0, 1, 3));
        assert_eq!(r.verdict(), Verdict::Inconsistent);
        assert!(!r.congestion_free());
        assert!(r.loop_free());
    }

    #[test]
    fn congested_link_counting() {
        let mut r = SimulationReport::default();
        r.congestion.push(event(0, 1, 3));
        r.congestion.push(event(0, 1, 4));
        r.congestion.push(event(2, 3, 3));
        assert_eq!(r.congested_te_link_count(), 3);
        assert_eq!(r.congested_link_count(), 2);
        assert_eq!(r.max_overload_ratio(), Some(2.0));
    }

    #[test]
    fn load_series_and_peak() {
        let mut r = SimulationReport::default();
        r.link_loads
            .entry((SwitchId(0), SwitchId(1)))
            .or_default()
            .extend([(0, 1), (1, 2)]);
        assert_eq!(r.peak_load(SwitchId(0), SwitchId(1)), 2);
        assert_eq!(r.peak_load(SwitchId(1), SwitchId(0)), 0);
        assert_eq!(
            r.load_series(SwitchId(0), SwitchId(1)),
            vec![(0, 1), (1, 2)]
        );
    }

    #[test]
    fn displays_are_informative() {
        let c = event(0, 1, 5);
        assert!(c.to_string().contains("load 2 > capacity 1"));
        let l = LoopEvent {
            flow: FlowId(0),
            emitted_at: -1,
            switch: SwitchId(3),
            time: 2,
        };
        assert!(l.to_string().contains("revisited s3"));
        let b = BlackholeEvent {
            flow: FlowId(0),
            emitted_at: 0,
            switch: SwitchId(2),
            time: 1,
        };
        assert!(b.to_string().contains("dropped at s2"));
        let mut r = SimulationReport::default();
        r.loops.push(l);
        assert!(r.to_string().contains("Inconsistent"));
    }
}
