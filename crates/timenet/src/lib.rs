//! # chronus-timenet — time-extended networks and the dynamic-flow simulator
//!
//! This crate implements the analytical machinery of paper §II-B:
//!
//! - [`Schedule`]: an assignment of update time points to switches
//!   (per flow), the output of every scheduler in the workspace;
//! - [`TimeExtendedNetwork`]: the graph `G_T` with one copy `v(t)` of
//!   every switch per time step and links `u(t) → v(t + σ(u,v))`
//!   (Definition 4, Fig. 2);
//! - [`FluidSimulator`]: an exact discrete-time simulator of the
//!   dynamic-flow semantics (Definition 1) that, given an instance and
//!   a schedule, reports every transient congestion event
//!   (Definition 3), forwarding loop (Definition 2), blackhole and
//!   undelivered cohort.
//!
//! The simulator is the *ground truth* of the reproduction: schedules
//! produced by the Chronus greedy algorithm, the tree feasibility
//! algorithm, OPT and the baselines are all judged by it, exactly as
//! the paper judges them by the time-extended network.
//!
//! See [`FluidSimulator`] for a complete usage example.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(
    not(test),
    deny(clippy::unwrap_used, clippy::expect_used, clippy::indexing_slicing)
)]

mod arena;
pub mod codec;
mod extended;
mod incremental;
mod ledger;
pub mod occupancy;
mod report;
mod schedule;
mod simulate;

pub use arena::SimArena;
pub use codec::{schedule_from_value, schedule_to_value, ScheduleCodecError};
pub use extended::{MaterializedTimeNet, TeLink, TeNode, TimeExtendedNetwork};
pub use incremental::{Delta, GateBackendKind, GateStats, IncrementalSimulator, SimWorkspace};
pub use ledger::{InternedLink, LinkInterner, LoadLedger};
pub use occupancy::render_occupancy;
pub use report::{BlackholeEvent, CongestionEvent, LoopEvent, SimulationReport, Verdict};
pub use schedule::Schedule;
pub use simulate::{FluidSimulator, SimulatorConfig};
