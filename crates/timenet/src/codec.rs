//! JSON codec for timed schedules.
//!
//! A [`Schedule`] is encoded as `{"entries": [[flow, switch, t],
//! ...]}` in the map's canonical `(flow, switch)` order, so equal
//! schedules always serialize to byte-identical documents. Steps are
//! `i64` and may exceed the `serde_json` shim's exact-`f64` range, so
//! they go through [`Value::from_i64_exact`]; the decode side accepts
//! either form and rebuilds through [`Schedule::set`], giving the
//! round-trip invariant `decode(encode(s)) == s` for *every*
//! schedule (pinned by a proptest in `tests/codec_props.rs`).

use crate::Schedule;
use chronus_net::{FlowId, SwitchId};
use serde_json::{Map, Value};
use std::fmt;

/// A structural error while decoding a schedule document.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScheduleCodecError(String);

impl ScheduleCodecError {
    fn new(msg: impl Into<String>) -> Self {
        ScheduleCodecError(msg.into())
    }
}

impl fmt::Display for ScheduleCodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "schedule codec error: {}", self.0)
    }
}

impl std::error::Error for ScheduleCodecError {}

/// Encodes a schedule; see the module docs for the format.
pub fn schedule_to_value(schedule: &Schedule) -> Value {
    let entries = schedule
        .iter()
        .map(|(flow, switch, t)| {
            Value::Array(vec![
                Value::Number(f64::from(flow.0)),
                Value::Number(f64::from(switch.0)),
                Value::from_i64_exact(t),
            ])
        })
        .collect();
    let mut m = Map::new();
    m.insert("entries".to_string(), Value::Array(entries));
    Value::Object(m)
}

/// Decodes a schedule written by [`schedule_to_value`]. Duplicate
/// `(flow, switch)` keys are rejected rather than last-write-wins, so
/// a decoded schedule always has the same entry count as the source
/// document.
pub fn schedule_from_value(v: &Value) -> Result<Schedule, ScheduleCodecError> {
    let entries = v
        .get("entries")
        .and_then(Value::as_array)
        .ok_or_else(|| ScheduleCodecError::new("missing `entries` array"))?;
    let mut schedule = Schedule::new();
    for e in entries {
        let triple = e
            .as_array()
            .filter(|a| a.len() == 3)
            .ok_or_else(|| ScheduleCodecError::new("entry is not a [flow, switch, t] triple"))?;
        let int = |i: usize, what: &str| {
            triple
                .get(i)
                .and_then(Value::as_u64_exact)
                .and_then(|raw| u32::try_from(raw).ok())
                .ok_or_else(|| ScheduleCodecError::new(format!("{what} is not a u32")))
        };
        let flow = FlowId(int(0, "flow id")?);
        let switch = SwitchId(int(1, "switch id")?);
        let t = triple
            .get(2)
            .and_then(Value::as_i64_exact)
            .ok_or_else(|| ScheduleCodecError::new("step is not an i64"))?;
        if schedule.get(flow, switch).is_some() {
            return Err(ScheduleCodecError::new(format!(
                "duplicate entry for flow {} switch {}",
                flow.0, switch.0
            )));
        }
        schedule.set(flow, switch, t);
    }
    Ok(schedule)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_including_extreme_steps() {
        let mut s = Schedule::new();
        s.set(FlowId(0), SwitchId(1), 0);
        s.set(FlowId(0), SwitchId(2), -3);
        s.set(FlowId(7), SwitchId(0), i64::MAX);
        s.set(FlowId(7), SwitchId(3), i64::MIN);
        let text = serde_json::to_string(&schedule_to_value(&s)).unwrap();
        let back = schedule_from_value(&serde_json::from_str(&text).unwrap()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn empty_schedule_round_trips() {
        let v = schedule_to_value(&Schedule::new());
        assert_eq!(schedule_from_value(&v).unwrap(), Schedule::new());
    }

    #[test]
    fn rejects_duplicates_and_garbage() {
        let v = serde_json::from_str(r#"{"entries": [[0, 1, 2], [0, 1, 3]]}"#).unwrap();
        assert!(schedule_from_value(&v)
            .unwrap_err()
            .to_string()
            .contains("duplicate"));
        let v = serde_json::from_str(r#"{"entries": [[0, 1]]}"#).unwrap();
        assert!(schedule_from_value(&v).is_err());
        assert!(schedule_from_value(&Value::Null).is_err());
    }
}
