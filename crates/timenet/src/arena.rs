//! Flat simulation arenas: pooled per-run state + dense step multisets.
//!
//! The simulators' hot path used to spread its mutable state over
//! growable `Vec`s allocated per run and `BTreeMap` time-multisets
//! rebalanced per apply/undo. [`SimArena`] gathers every recyclable
//! buffer — the load surface, its occupancy/overload bit rows, the
//! visit stamps, pooled hop vectors and the dense [`StepCounts`]
//! multisets — into one parts-bin that survives across runs, so a
//! steady-state candidate check allocates nothing.
//!
//! Two building blocks live here:
//!
//! - [`BitRows`]: `FixedBitSet`-style `u64`-word occupancy rows, one
//!   row per time step and one bit per interned link (the
//!   berkeley-emulation-engine `NetworkPorts` busy-bitmap idiom).
//!   The ledger keeps one row set for "cell is loaded" and one for
//!   "cell is overloaded", so sweeping the surface for congestion
//!   events or load series skips empty words instead of scanning
//!   every cell.
//! - [`StepCounts`]: a dense multiset of time steps (counts indexed by
//!   `t − base` plus a presence bitset and cached min/max), replacing
//!   the `BTreeMap<TimeStep, usize>` multisets that backed
//!   `sched_times` / `loop_times` / `blackhole_times` / the ledger's
//!   overload index. `inc`/`dec` are O(1) amortized, and the verdict
//!   queries — "any entry ≤ t?", "largest entry?" — are O(1) reads of
//!   the cached extremes.
//!
//! The arena also keeps a byte high-water mark over everything it has
//! ever owned, surfaced through `timenet.simulate` spans and the
//! engine's `PlanReport` for capacity planning.
// Dense indexed state is the module's whole point: every index below
// is minted from a `t − base` offset or a link id that construction
// bounds-checked.
#![allow(clippy::indexing_slicing)]

use crate::incremental::HopRec;
use chronus_net::{Capacity, TimeStep};

/// Word width of the occupancy rows.
const WORD_BITS: usize = u64::BITS as usize;

/// `FixedBitSet`-style bit matrix: `rows × cols` bits packed into
/// `u64` words, row-major. Rows are time steps, columns are interned
/// links; the ledger keeps one instance for "cell loaded" and one for
/// "cell overloaded" so surface sweeps touch only non-empty words.
#[derive(Clone, Debug, Default)]
pub(crate) struct BitRows {
    words: Vec<u64>,
    words_per_row: usize,
}

impl BitRows {
    /// Re-initializes for `cols` columns, recycling the word storage.
    pub fn reset(&mut self, cols: usize) {
        self.words.clear();
        self.words_per_row = cols.div_ceil(WORD_BITS);
    }

    /// Grows to at least `rows` rows (new rows all-zero).
    pub fn ensure_rows(&mut self, rows: usize) {
        let needed = rows * self.words_per_row;
        if needed > self.words.len() {
            self.words.resize(needed, 0);
        }
    }

    #[inline]
    pub fn set(&mut self, row: usize, col: usize) {
        self.words[row * self.words_per_row + col / WORD_BITS] |= 1u64 << (col % WORD_BITS);
    }

    #[inline]
    pub fn clear(&mut self, row: usize, col: usize) {
        self.words[row * self.words_per_row + col / WORD_BITS] &= !(1u64 << (col % WORD_BITS));
    }

    /// Calls `f(col)` for every set column of `row`, ascending, via
    /// word-at-a-time trailing-zeros scans.
    #[inline]
    pub fn for_each_set(&self, row: usize, mut f: impl FnMut(usize)) {
        let start = row * self.words_per_row;
        if start >= self.words.len() {
            return;
        }
        for (wi, &word) in self.words[start..start + self.words_per_row]
            .iter()
            .enumerate()
        {
            let mut w = word;
            while w != 0 {
                let bit = w.trailing_zeros() as usize;
                f(wi * WORD_BITS + bit);
                w &= w - 1;
            }
        }
    }

    /// Number of words currently allocated (the occupancy-row size
    /// counter surfaced in traces).
    pub fn word_count(&self) -> usize {
        self.words.len()
    }

    fn byte_size(&self) -> u64 {
        (self.words.capacity() * std::mem::size_of::<u64>()) as u64
    }

    fn take_storage(&mut self) -> Vec<u64> {
        self.words_per_row = 0;
        std::mem::take(&mut self.words)
    }

    fn with_storage(mut storage: Vec<u64>) -> Self {
        storage.clear();
        BitRows {
            words: storage,
            words_per_row: 0,
        }
    }
}

/// Sentinel meaning "no index cached".
const NO_IDX: usize = usize::MAX;

/// Dense multiset of time steps: counts indexed by `t − base`, a
/// presence bitset over the same indices, and cached min/max set
/// indices. Replaces the `BTreeMap<TimeStep, usize>` multisets on the
/// simulators' hot path: `inc` is O(1), `dec` is O(1) amortized (an
/// extreme falling to zero triggers a word scan toward the other
/// extreme), and the two queries the verdict path needs —
/// [`StepCounts::any_at_or_before`] and [`StepCounts::max`] — are
/// O(1) reads.
#[derive(Clone, Debug)]
pub(crate) struct StepCounts {
    base: TimeStep,
    counts: Vec<u32>,
    words: Vec<u64>,
    total: u64,
    min_idx: usize,
    max_idx: usize,
}

impl Default for StepCounts {
    fn default() -> Self {
        StepCounts {
            base: 0,
            counts: Vec::new(),
            words: Vec::new(),
            total: 0,
            min_idx: NO_IDX,
            max_idx: NO_IDX,
        }
    }
}

impl StepCounts {
    /// Empties the multiset, keeping storage.
    pub fn clear(&mut self) {
        self.counts.clear();
        self.words.clear();
        self.total = 0;
        self.min_idx = NO_IDX;
        self.max_idx = NO_IDX;
    }

    /// `true` when no entry is present.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Index of step `t`, growing (and if needed re-basing) storage.
    fn index_for(&mut self, t: TimeStep) -> usize {
        if self.counts.is_empty() {
            self.base = t;
        }
        if t < self.base {
            // Grow at the front with doubling slack so repeated low
            // inserts amortize; word-aligned so set bits shift by
            // whole words.
            let shift = (self.base - t) as usize;
            let moved = shift.max(self.counts.len()).max(8).div_ceil(WORD_BITS) * WORD_BITS;
            self.counts.splice(0..0, std::iter::repeat_n(0, moved));
            self.words
                .splice(0..0, std::iter::repeat_n(0, moved / WORD_BITS));
            self.base -= moved as TimeStep;
            if self.min_idx != NO_IDX {
                self.min_idx += moved;
                self.max_idx += moved;
            }
        }
        let idx = (t - self.base) as usize;
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        let w = idx / WORD_BITS;
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        idx
    }

    /// Adds one occurrence of `t`.
    pub fn inc(&mut self, t: TimeStep) {
        let idx = self.index_for(t);
        self.counts[idx] += 1;
        self.words[idx / WORD_BITS] |= 1u64 << (idx % WORD_BITS);
        self.total += 1;
        if self.min_idx == NO_IDX || idx < self.min_idx {
            self.min_idx = idx;
        }
        if self.max_idx == NO_IDX || idx > self.max_idx {
            self.max_idx = idx;
        }
    }

    /// Removes one occurrence of `t`.
    pub fn dec(&mut self, t: TimeStep) {
        debug_assert!(
            t >= self.base && ((t - self.base) as usize) < self.counts.len(),
            "StepCounts out of sync"
        );
        let idx = (t - self.base) as usize;
        let cell = &mut self.counts[idx];
        debug_assert!(*cell > 0, "StepCounts out of sync");
        *cell -= 1;
        self.total -= 1;
        if *cell == 0 {
            self.words[idx / WORD_BITS] &= !(1u64 << (idx % WORD_BITS));
            if self.total == 0 {
                self.min_idx = NO_IDX;
                self.max_idx = NO_IDX;
            } else {
                if idx == self.min_idx {
                    self.min_idx = self.scan_up(idx);
                }
                if idx == self.max_idx {
                    self.max_idx = self.scan_down(idx);
                }
            }
        }
    }

    /// First set index at or above `from` (some set bit must exist).
    fn scan_up(&self, from: usize) -> usize {
        let mut w = from / WORD_BITS;
        let mut word = self.words[w] & !((1u64 << (from % WORD_BITS)) - 1);
        loop {
            if word != 0 {
                return w * WORD_BITS + (word.trailing_zeros() as usize);
            }
            w += 1;
            debug_assert!(w < self.words.len(), "StepCounts min scan ran off");
            word = self.words[w];
        }
    }

    /// Last set index at or below `from` (some set bit must exist).
    fn scan_down(&self, from: usize) -> usize {
        let mut w = from / WORD_BITS;
        let shift = from % WORD_BITS;
        let mut word = if shift == WORD_BITS - 1 {
            self.words[w]
        } else {
            self.words[w] & ((1u64 << (shift + 1)) - 1)
        };
        loop {
            if word != 0 {
                return w * WORD_BITS + (WORD_BITS - 1 - (word.leading_zeros() as usize));
            }
            debug_assert!(w > 0, "StepCounts max scan ran off");
            w -= 1;
            word = self.words[w];
        }
    }

    /// `true` iff some entry is ≤ `t` — O(1).
    pub fn any_at_or_before(&self, t: TimeStep) -> bool {
        self.total > 0 && self.base + (self.min_idx as TimeStep) <= t
    }

    /// The largest entry, if any — O(1).
    pub fn max(&self) -> Option<TimeStep> {
        (self.total > 0).then(|| self.base + (self.max_idx as TimeStep))
    }

    fn byte_size(&self) -> u64 {
        (self.counts.capacity() * std::mem::size_of::<u32>()
            + self.words.capacity() * std::mem::size_of::<u64>()) as u64
    }
}

/// The recyclable flat storage behind one simulator run: load surface,
/// occupancy/overload bit rows, visit stamps, pooled hop vectors and
/// the dense step multisets. An engine worker keeps one arena per
/// thread; every simulator construction drains it and every teardown
/// refills it, so the steady state allocates nothing and the arena's
/// byte high-water mark bounds the planner's per-thread memory.
#[derive(Debug, Default)]
pub struct SimArena {
    pub(crate) loads: Vec<Capacity>,
    pub(crate) occ: BitRows,
    pub(crate) over: BitRows,
    pub(crate) stamps: Vec<u64>,
    pub(crate) hop_bufs: Vec<Vec<HopRec>>,
    pub(crate) step_counts: Vec<StepCounts>,
    hwm_bytes: u64,
    occ_words: u64,
}

impl SimArena {
    /// Pops a pooled hop vector (empty), or a fresh one.
    pub(crate) fn take_hops(&mut self) -> Vec<HopRec> {
        let mut v = self.hop_bufs.pop().unwrap_or_default();
        v.clear();
        v
    }

    /// Pops a pooled step multiset (empty), or a fresh one.
    pub(crate) fn take_step_counts(&mut self) -> StepCounts {
        let mut s = self.step_counts.pop().unwrap_or_default();
        s.clear();
        s
    }

    /// Takes the occupancy row set, reset for `cols` columns.
    pub(crate) fn take_occ(&mut self, cols: usize) -> BitRows {
        let mut rows = BitRows::with_storage(self.occ.take_storage());
        rows.reset(cols);
        rows
    }

    /// Takes the overload row set, reset for `cols` columns.
    pub(crate) fn take_over(&mut self, cols: usize) -> BitRows {
        let mut rows = BitRows::with_storage(self.over.take_storage());
        rows.reset(cols);
        rows
    }

    /// Returns a step multiset to the pool, noting its size.
    pub(crate) fn put_step_counts(&mut self, s: StepCounts) {
        self.note_bytes(s.byte_size());
        self.step_counts.push(s);
    }

    /// Returns a hop vector to the pool. O(1) — this runs on the
    /// apply/undo hot path; byte accounting happens at teardown via
    /// [`SimArena::note_bytes`].
    pub(crate) fn put_hops(&mut self, mut v: Vec<HopRec>) {
        v.clear();
        self.hop_bufs.push(v);
    }

    /// Returns the occupancy/overload rows, noting sizes and the
    /// occupancy-word counter.
    pub(crate) fn put_rows(&mut self, occ: BitRows, over: BitRows) {
        self.occ_words = (occ.word_count() + over.word_count()) as u64;
        self.note_bytes(occ.byte_size() + over.byte_size());
        self.occ = occ;
        self.over = over;
    }

    /// Folds `bytes` plus the arena-resident buffers into the
    /// high-water mark.
    pub(crate) fn note_bytes(&mut self, bytes: u64) {
        let resident = ((self.loads.capacity() * std::mem::size_of::<Capacity>()
            + self.stamps.capacity() * std::mem::size_of::<u64>()) as u64)
            + self
                .hop_bufs
                .iter()
                .map(|v| (v.capacity() * std::mem::size_of::<HopRec>()) as u64)
                .sum::<u64>()
            + self
                .step_counts
                .iter()
                .map(StepCounts::byte_size)
                .sum::<u64>();
        self.hwm_bytes = self.hwm_bytes.max(resident + bytes);
    }

    /// Byte high-water mark over everything this arena has owned.
    pub fn high_water_bytes(&self) -> u64 {
        self.hwm_bytes
    }

    /// Occupancy words (`u64`s across both bit-row sets) the last run
    /// returned — the dense footprint of the load surface's bitmap.
    pub fn occupancy_words(&self) -> u64 {
        self.occ_words
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_counts_multiset_semantics() {
        let mut s = StepCounts::default();
        assert!(s.is_empty());
        assert!(!s.any_at_or_before(100));
        assert_eq!(s.max(), None);

        s.inc(5);
        s.inc(5);
        s.inc(9);
        assert!(!s.is_empty());
        assert_eq!(s.max(), Some(9));
        assert!(s.any_at_or_before(5));
        assert!(!s.any_at_or_before(4));

        s.dec(5);
        assert!(s.any_at_or_before(5), "one occurrence of 5 remains");
        s.dec(5);
        assert!(!s.any_at_or_before(8));
        assert!(s.any_at_or_before(9));
        assert_eq!(s.max(), Some(9));
        s.dec(9);
        assert!(s.is_empty());
        assert_eq!(s.max(), None);
    }

    #[test]
    fn step_counts_negative_and_rebase() {
        let mut s = StepCounts::default();
        s.inc(3);
        s.inc(-7); // forces a front re-base
        assert!(s.any_at_or_before(-7));
        assert!(!s.any_at_or_before(-8));
        assert_eq!(s.max(), Some(3));
        s.inc(-200);
        assert_eq!(s.max(), Some(3));
        assert!(s.any_at_or_before(-200));
        s.dec(-200);
        s.dec(-7);
        assert!(s.any_at_or_before(3));
        assert!(!s.any_at_or_before(2));
        s.dec(3);
        assert!(s.is_empty());
    }

    #[test]
    fn step_counts_extreme_rescans_cross_words() {
        let mut s = StepCounts::default();
        // Entries far apart so min/max live in different words.
        for t in [0, 70, 140, 700] {
            s.inc(t);
        }
        s.dec(0);
        assert!(!s.any_at_or_before(69));
        assert!(s.any_at_or_before(70));
        s.dec(700);
        assert_eq!(s.max(), Some(140));
        s.dec(140);
        assert_eq!(s.max(), Some(70));
        s.dec(70);
        assert!(s.is_empty());
    }

    #[test]
    fn step_counts_matches_btreemap_reference() {
        use std::collections::BTreeMap;
        // Deterministic pseudo-random op sequence.
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut dense = StepCounts::default();
        let mut reference: BTreeMap<TimeStep, usize> = BTreeMap::new();
        for _ in 0..4000 {
            let t = (next() % 301) as TimeStep - 100;
            if next() % 3 != 0 || reference.is_empty() {
                dense.inc(t);
                *reference.entry(t).or_insert(0) += 1;
            } else {
                // Remove a random present key.
                let keys: Vec<TimeStep> = reference.keys().copied().collect();
                let k = keys[(next() as usize) % keys.len()];
                dense.dec(k);
                match reference.get_mut(&k) {
                    Some(n) if *n > 1 => *n -= 1,
                    _ => {
                        reference.remove(&k);
                    }
                }
            }
            let probe = (next() % 301) as TimeStep - 100;
            assert_eq!(
                dense.any_at_or_before(probe),
                reference.range(..=probe).next().is_some(),
                "any_at_or_before({probe}) diverged"
            );
            assert_eq!(
                dense.max(),
                reference.keys().next_back().copied(),
                "max diverged"
            );
            assert_eq!(dense.is_empty(), reference.is_empty());
        }
    }

    #[test]
    fn bit_rows_set_clear_scan() {
        let mut rows = BitRows::default();
        rows.reset(130); // 3 words per row
        rows.ensure_rows(4);
        rows.set(0, 0);
        rows.set(0, 64);
        rows.set(0, 129);
        rows.set(3, 7);
        let mut seen = Vec::new();
        rows.for_each_set(0, |c| seen.push(c));
        assert_eq!(seen, vec![0, 64, 129]);
        rows.clear(0, 64);
        seen.clear();
        rows.for_each_set(0, |c| seen.push(c));
        assert_eq!(seen, vec![0, 129]);
        seen.clear();
        rows.for_each_set(2, |c| seen.push(c));
        assert!(seen.is_empty());
        seen.clear();
        rows.for_each_set(3, |c| seen.push(c));
        assert_eq!(seen, vec![7]);
        assert_eq!(rows.word_count(), 12);
    }

    #[test]
    fn arena_pools_round_trip_and_track_high_water() {
        let mut arena = SimArena::default();
        assert_eq!(arena.high_water_bytes(), 0);
        let mut hops = arena.take_hops();
        hops.reserve(64);
        arena.put_hops(hops);
        arena.note_bytes(0);
        assert!(arena.high_water_bytes() >= 64 * std::mem::size_of::<HopRec>() as u64);
        let hwm = arena.high_water_bytes();
        let h2 = arena.take_hops();
        assert!(h2.capacity() >= 64, "pooled buffer is recycled");
        arena.put_hops(h2);
        assert_eq!(arena.high_water_bytes(), hwm, "high-water is monotone");

        let mut sc = arena.take_step_counts();
        sc.inc(4);
        arena.put_step_counts(sc);
        let sc2 = arena.take_step_counts();
        assert!(sc2.is_empty(), "recycled multiset comes back empty");
        arena.put_step_counts(sc2);

        let mut occ = arena.take_occ(100);
        occ.ensure_rows(10);
        occ.set(2, 99);
        let over = arena.take_over(100);
        arena.put_rows(occ, over);
        assert!(arena.occupancy_words() >= 20);
    }
}
