//! Dense `link × time` load accounting.
//!
//! The fluid model only ever loads links that lie on some flow's
//! initial or final path, so a [`LinkInterner`] built once per instance
//! maps those few links to small dense ids. A [`LoadLedger`] then keeps
//! the whole load surface `x_{u,v}(t)` as a single flat
//! `Vec<Capacity>` indexed by `(t − t_lo) · n_links + link`, replacing
//! the nested `HashMap<(SwitchId, SwitchId), HashMap<TimeStep, _>>` of
//! the original simulator. Besides being allocation- and hash-free on
//! the hot path, the ledger maintains overload counters as loads are
//! added and removed, so the *verdict-relevant* congestion state is
//! available in O(1) at any point of an incremental apply/undo
//! sequence (see [`crate::IncrementalSimulator`]).
// The flat `(time, link)` cell indexing is the module's invariant:
// interner ids and window offsets are minted here and bounds-checked
// at construction.
#![allow(clippy::indexing_slicing)]

use crate::arena::{BitRows, SimArena, StepCounts};
use crate::report::CongestionEvent;
use chronus_net::{Capacity, SwitchId, TimeStep, UpdateInstance};
use std::collections::{BTreeMap, HashMap};

/// One link as seen by the ledger: endpoints plus the two attributes
/// the simulator needs on every hop.
#[derive(Clone, Copy, Debug)]
pub struct InternedLink {
    /// Link tail.
    pub src: SwitchId,
    /// Link head.
    pub dst: SwitchId,
    /// Capacity `C(src, dst)`.
    pub capacity: Capacity,
    /// Transmission delay `σ(src, dst)`, widened for time arithmetic.
    pub delay: TimeStep,
}

/// Dense ids for the links a set of flows can ever load: the union of
/// all initial- and final-path edges that exist in the network. Built
/// once per instance; lookups afterwards are a single hash probe (and
/// the simulators cache the resolved id inside their rule tables, so
/// even that probe leaves the per-hop path).
#[derive(Clone, Debug, Default)]
pub struct LinkInterner {
    // chronus-lint: allow(det-hash) — endpoint -> id lookup; read by key only, never iterated
    by_endpoints: HashMap<(SwitchId, SwitchId), u32>,
    links: Vec<InternedLink>,
}

impl LinkInterner {
    /// Interns every network-backed path edge of every flow.
    pub fn for_instance(instance: &UpdateInstance) -> Self {
        let mut interner = LinkInterner::default();
        for flow in &instance.flows {
            for (u, v) in flow.initial.edges().chain(flow.fin.edges()) {
                if interner.by_endpoints.contains_key(&(u, v)) {
                    continue;
                }
                if let Some(link) = instance.network.link_between(u, v) {
                    let id = interner.links.len() as u32;
                    interner.by_endpoints.insert((u, v), id);
                    interner.links.push(InternedLink {
                        src: u,
                        dst: v,
                        capacity: link.capacity,
                        delay: link.delay as TimeStep,
                    });
                }
            }
        }
        interner
    }

    /// Number of interned links.
    pub fn len(&self) -> usize {
        self.links.len()
    }

    /// `true` when no link was interned (no-op instances).
    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
    }

    /// The dense id of `⟨u, v⟩`, if that link was interned.
    pub fn get(&self, u: SwitchId, v: SwitchId) -> Option<u32> {
        self.by_endpoints.get(&(u, v)).copied()
    }

    /// The link stored under dense id `id`.
    ///
    /// # Panics
    /// Panics if `id` was not issued by this interner.
    pub fn link(&self, id: u32) -> &InternedLink {
        &self.links[id as usize]
    }
}

/// The dense load surface plus congestion bookkeeping.
///
/// Cell `(link, t)` lives at flat index `(t − t_lo) · n_links + link`
/// (time-major, so extending the simulation horizon appends at the
/// high end). Two `u64`-word bit-row sets shadow the surface — one bit
/// per cell for "loaded" and one for "overloaded" — so sweeps for
/// congestion events or load series skip empty words instead of
/// visiting every cell. [`LoadLedger::add`] and [`LoadLedger::sub`]
/// keep a count of overloaded cells and a dense per-step overload
/// multiset ([`StepCounts`]), giving O(1) congestion verdicts and O(1)
/// "any overload at time ≤ t" range queries without rescanning the
/// surface.
#[derive(Debug)]
pub struct LoadLedger {
    n_links: usize,
    t_lo: TimeStep,
    steps: usize,
    loads: Vec<Capacity>,
    capacities: Vec<Capacity>,
    /// Bit per cell: load > 0 (any step).
    occ: BitRows,
    /// Bit per cell: load > capacity at a step ≥ 0.
    over: BitRows,
    overloaded_cells: usize,
    overload_steps: StepCounts,
    cell_visits: u64,
}

impl LoadLedger {
    /// An empty ledger whose window starts at `t_lo` (the earliest
    /// emission step of any flow; loads before it cannot occur).
    pub fn new(interner: &LinkInterner, t_lo: TimeStep) -> Self {
        Self::with_arena(interner, t_lo, &mut SimArena::default())
    }

    /// Like [`LoadLedger::new`], recycling `arena`'s flat buffers as
    /// storage (see [`crate::SimWorkspace`]).
    pub(crate) fn with_arena(
        interner: &LinkInterner,
        t_lo: TimeStep,
        arena: &mut SimArena,
    ) -> Self {
        let mut loads = std::mem::take(&mut arena.loads);
        loads.clear();
        LoadLedger {
            n_links: interner.len(),
            t_lo,
            steps: 0,
            loads,
            capacities: interner.links.iter().map(|l| l.capacity).collect(),
            occ: arena.take_occ(interner.len()),
            over: arena.take_over(interner.len()),
            overloaded_cells: 0,
            overload_steps: arena.take_step_counts(),
            cell_visits: 0,
        }
    }

    #[inline]
    fn idx(&self, link: u32, t: TimeStep) -> usize {
        debug_assert!(t >= self.t_lo, "load before the ledger window");
        ((t - self.t_lo) as usize) * self.n_links + (link as usize)
    }

    /// Grows the window to include step `t` (zero-filled).
    fn ensure_step(&mut self, t: TimeStep) {
        let needed = ((t - self.t_lo) as usize) + 1;
        if needed > self.steps {
            self.steps = needed;
            self.loads.resize(needed * self.n_links, 0);
            self.occ.ensure_rows(needed);
            self.over.ensure_rows(needed);
        }
    }

    /// Adds `demand` to cell `(link, t)`; returns the new load.
    pub fn add(&mut self, link: u32, t: TimeStep, demand: Capacity) -> Capacity {
        self.cell_visits += 1;
        self.ensure_step(t);
        let step = (t - self.t_lo) as usize;
        let cap = self.capacities[link as usize];
        let cell = &mut self.loads[step * self.n_links + (link as usize)];
        let before = *cell;
        *cell += demand;
        let after = *cell;
        if before == 0 && after > 0 {
            self.occ.set(step, link as usize);
        }
        if t >= 0 && before <= cap && after > cap {
            self.overloaded_cells += 1;
            self.overload_steps.inc(t);
            self.over.set(step, link as usize);
        }
        after
    }

    /// Removes `demand` from cell `(link, t)`; returns the new load.
    ///
    /// # Panics
    /// Debug-panics if the cell held less than `demand` (an apply/undo
    /// pairing bug).
    pub fn sub(&mut self, link: u32, t: TimeStep, demand: Capacity) -> Capacity {
        self.cell_visits += 1;
        let i = self.idx(link, t);
        let step = (t - self.t_lo) as usize;
        let cap = self.capacities[link as usize];
        let cell = &mut self.loads[i];
        debug_assert!(*cell >= demand, "ledger underflow: unpaired sub");
        let before = *cell;
        *cell -= demand;
        let after = *cell;
        if before > 0 && after == 0 {
            self.occ.clear(step, link as usize);
        }
        if t >= 0 && before > cap && after <= cap {
            self.overloaded_cells -= 1;
            self.overload_steps.dec(t);
            self.over.clear(step, link as usize);
        }
        after
    }

    /// The load of cell `(link, t)` (0 outside the window).
    pub fn load(&self, link: u32, t: TimeStep) -> Capacity {
        if t < self.t_lo || (t - self.t_lo) as usize >= self.steps {
            return 0;
        }
        self.loads[self.idx(link, t)]
    }

    /// Number of currently overloaded cells at steps ≥ 0.
    pub fn overloaded_cell_count(&self) -> usize {
        self.overloaded_cells
    }

    /// `true` iff some cell at a step in `[0, t]` is overloaded — O(1)
    /// via the dense overload multiset's cached minimum.
    pub fn has_overload_at_or_before(&self, t: TimeStep) -> bool {
        self.overload_steps.any_at_or_before(t)
    }

    /// Total `add`/`sub` cell touches over the ledger's lifetime — the
    /// work metric the incremental gate reports against full
    /// re-simulation.
    pub fn cell_visits(&self) -> u64 {
        self.cell_visits
    }

    /// All congestion events currently on the surface, ordered by
    /// `(time, src, dst)` exactly like [`crate::FluidSimulator`].
    /// Sweeps only the overload bit rows, so the cost is proportional
    /// to the occupancy words plus the events themselves, not the
    /// whole surface.
    pub fn congestion_events(&self, interner: &LinkInterner) -> Vec<CongestionEvent> {
        let mut events = Vec::new();
        let first = self.t_lo.max(0);
        for t in first..self.t_lo + (self.steps as TimeStep) {
            let step = (t - self.t_lo) as usize;
            let row = step * self.n_links;
            self.over.for_each_set(step, |link| {
                let load = self.loads[row + link];
                let cap = self.capacities[link];
                debug_assert!(load > cap, "overload bit out of sync");
                let l = interner.link(link as u32);
                events.push(CongestionEvent {
                    src: l.src,
                    dst: l.dst,
                    time: t,
                    load,
                    capacity: cap,
                });
            });
        }
        events.sort_by_key(|c| (c.time, c.src, c.dst));
        events
    }

    /// The sparse per-link load series in the
    /// [`crate::SimulationReport::link_loads`] format (non-zero cells
    /// only, found by sweeping the occupancy bit rows).
    pub fn link_loads(
        &self,
        interner: &LinkInterner,
    ) -> BTreeMap<(SwitchId, SwitchId), BTreeMap<TimeStep, Capacity>> {
        let mut out: BTreeMap<(SwitchId, SwitchId), BTreeMap<TimeStep, Capacity>> = BTreeMap::new();
        for step in 0..self.steps {
            let t = self.t_lo + (step as TimeStep);
            let row = step * self.n_links;
            self.occ.for_each_set(step, |link| {
                let load = self.loads[row + link];
                debug_assert!(load > 0, "occupancy bit out of sync");
                let l = interner.link(link as u32);
                out.entry((l.src, l.dst)).or_default().insert(t, load);
            });
        }
        out
    }

    /// Occupancy words (`u64`s) across the ledger's two bit-row sets.
    pub fn occupancy_words(&self) -> u64 {
        (self.occ.word_count() + self.over.word_count()) as u64
    }

    /// Returns the flat buffers to `arena` for reuse (see
    /// [`crate::SimWorkspace`]).
    pub(crate) fn into_arena(mut self, arena: &mut SimArena) {
        self.loads.clear();
        arena.loads = self.loads;
        arena.put_rows(self.occ, self.over);
        arena.put_step_counts(self.overload_steps);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chronus_net::{motivating_example, Flow, FlowId, NetworkBuilder, Path};

    fn sid(i: u32) -> SwitchId {
        SwitchId(i)
    }

    fn diamond_instance() -> UpdateInstance {
        let mut b = NetworkBuilder::with_switches(4);
        b.add_link(sid(0), sid(1), 2, 1).unwrap();
        b.add_link(sid(1), sid(3), 2, 1).unwrap();
        b.add_link(sid(0), sid(2), 2, 1).unwrap();
        b.add_link(sid(2), sid(3), 2, 1).unwrap();
        let flow = Flow::new(
            FlowId(0),
            1,
            Path::new(vec![sid(0), sid(1), sid(3)]),
            Path::new(vec![sid(0), sid(2), sid(3)]),
        )
        .unwrap();
        UpdateInstance::single(b.build(), flow).unwrap()
    }

    #[test]
    fn interner_covers_exactly_the_path_links() {
        let inst = diamond_instance();
        let it = LinkInterner::for_instance(&inst);
        assert_eq!(it.len(), 4);
        assert!(!it.is_empty());
        for (u, v) in [(0, 1), (1, 3), (0, 2), (2, 3)] {
            let id = it.get(sid(u), sid(v)).expect("path link interned");
            let l = it.link(id);
            assert_eq!((l.src, l.dst), (sid(u), sid(v)));
            assert_eq!(l.capacity, 2);
            assert_eq!(l.delay, 1);
        }
        assert_eq!(it.get(sid(1), sid(0)), None);
    }

    #[test]
    fn interner_skips_off_network_edges_and_dedups() {
        let inst = motivating_example();
        let it = LinkInterner::for_instance(&inst);
        // Every interned link must exist in the network.
        for id in 0..it.len() as u32 {
            let l = it.link(id);
            assert!(inst.network.link_between(l.src, l.dst).is_some());
            assert_eq!(it.get(l.src, l.dst), Some(id));
        }
    }

    #[test]
    fn overload_accounting_tracks_adds_and_subs() {
        let inst = diamond_instance();
        let it = LinkInterner::for_instance(&inst);
        let mut ledger = LoadLedger::new(&it, -3);
        let link = it.get(sid(0), sid(1)).unwrap();

        assert_eq!(ledger.add(link, 2, 2), 2);
        assert_eq!(ledger.overloaded_cell_count(), 0);
        assert_eq!(ledger.add(link, 2, 1), 3); // 3 > capacity 2
        assert_eq!(ledger.overloaded_cell_count(), 1);
        assert!(ledger.has_overload_at_or_before(2));
        assert!(!ledger.has_overload_at_or_before(1));

        // Pre-step-0 overloads are steady state and never counted.
        assert_eq!(ledger.add(link, -2, 5), 5);
        assert_eq!(ledger.overloaded_cell_count(), 1);

        assert_eq!(ledger.sub(link, 2, 1), 2);
        assert_eq!(ledger.overloaded_cell_count(), 0);
        assert!(!ledger.has_overload_at_or_before(100));
        assert_eq!(ledger.load(link, 2), 2);
        assert_eq!(ledger.load(link, 99), 0);
        assert!(ledger.cell_visits() >= 4);
    }

    #[test]
    fn congestion_events_and_link_loads_round_trip() {
        let inst = diamond_instance();
        let it = LinkInterner::for_instance(&inst);
        let mut ledger = LoadLedger::new(&it, 0);
        let a = it.get(sid(0), sid(1)).unwrap();
        let b = it.get(sid(2), sid(3)).unwrap();
        ledger.add(a, 1, 3);
        ledger.add(b, 0, 3);
        ledger.add(b, 1, 1);

        let events = ledger.congestion_events(&it);
        assert_eq!(events.len(), 2);
        assert_eq!((events[0].time, events[0].src), (0, sid(2)));
        assert_eq!((events[1].time, events[1].src), (1, sid(0)));

        let loads = ledger.link_loads(&it);
        assert_eq!(loads[&(sid(0), sid(1))][&1], 3);
        assert_eq!(loads[&(sid(2), sid(3))].len(), 2);
        assert!(!loads.contains_key(&(sid(0), sid(2))));
    }
}
