//! Differential testing: the incremental simulator must be
//! indistinguishable from a fresh full simulation after *arbitrary*
//! apply/undo interleavings — same verdict, same event counts, same
//! frozen-prefix answers, and a byte-identical load surface.

use chronus_net::{
    motivating_example, reversal_instance, Flow, FlowId, InstanceGenerator,
    InstanceGeneratorConfig, NetworkBuilder, Path, SwitchId, TimeStep, UpdateInstance,
};
use chronus_timenet::{Delta, FluidSimulator, IncrementalSimulator, Schedule};
use proptest::prelude::*;

fn sid(i: u32) -> SwitchId {
    SwitchId(i)
}

/// One apply step's bookkeeping for the mirrored plain schedule.
struct MirrorOp {
    flow: FlowId,
    switch: SwitchId,
    prev: Option<TimeStep>,
    delta: Delta,
}

/// Asserts the incremental state equals a fresh full simulation of
/// `schedule` in every observable dimension.
fn assert_matches_full(inst: &UpdateInstance, inc: &IncrementalSimulator, schedule: &Schedule) {
    let report = FluidSimulator::new(inst).run(schedule);
    assert_eq!(inc.verdict(), report.verdict(), "verdict diverged");
    let (loops, blackholes, undelivered) = inc.event_counts();
    assert_eq!(loops, report.loops.len(), "loop count diverged");
    assert_eq!(
        blackholes,
        report.blackholes.len(),
        "blackhole count diverged"
    );
    assert_eq!(
        undelivered,
        report.undelivered.len(),
        "undelivered diverged"
    );
    assert_eq!(inc.link_loads(), report.link_loads, "load surface diverged");
    assert_eq!(inc.makespan(), schedule.makespan().unwrap_or(0).max(0));
    for t in [-2, -1, 0, 1, 2, 3, 5, 8, 13, 30] {
        let frozen_full = report.congestion.iter().any(|c| c.time <= t)
            || report.loops.iter().any(|l| l.time <= t)
            || report.blackholes.iter().any(|b| b.time <= t);
        assert_eq!(
            inc.has_violation_at_or_before(t),
            frozen_full,
            "frozen-prefix query diverged at t={t}"
        );
    }
}

/// Drives a random op sequence against one instance, checking the
/// differential invariant after every single operation.
fn drive(inst: &UpdateInstance, ops: &[(u8, u8, i8)]) {
    let pool: Vec<(FlowId, SwitchId)> = inst
        .flows
        .iter()
        .flat_map(|f| f.touched_switches().into_iter().map(move |v| (f.id, v)))
        .collect();
    if pool.is_empty() {
        return;
    }
    let mut inc = IncrementalSimulator::new(inst);
    let mut schedule = Schedule::new();
    let mut stack: Vec<MirrorOp> = Vec::new();

    assert_matches_full(inst, &inc, &schedule);
    for &(kind, pick, t_raw) in ops {
        if kind % 3 == 0 && !stack.is_empty() {
            let op = stack.pop().unwrap();
            inc.undo(op.delta);
            match op.prev {
                Some(p) => schedule.set(op.flow, op.switch, p),
                None => {
                    schedule.unset(op.flow, op.switch);
                }
            }
        } else {
            let (flow, switch) = pool[pick as usize % pool.len()];
            let t = t_raw as TimeStep; // −128..=127 stresses window moves
            let prev = schedule.get(flow, switch);
            let delta = inc.apply(flow, switch, t);
            schedule.set(flow, switch, t);
            stack.push(MirrorOp {
                flow,
                switch,
                prev,
                delta,
            });
        }
        assert_matches_full(inst, &inc, &schedule);
    }
    // Unwind completely: the state must return to the empty schedule.
    while let Some(op) = stack.pop() {
        inc.undo(op.delta);
        match op.prev {
            Some(p) => schedule.set(op.flow, op.switch, p),
            None => {
                schedule.unset(op.flow, op.switch);
            }
        }
    }
    assert_matches_full(inst, &inc, &Schedule::new());
}

/// Two flows whose new paths share a tail link — exercises the
/// multi-flow window coupling (one flow's makespan moves every flow's
/// horizon).
fn two_flow_instance() -> UpdateInstance {
    let mut b = NetworkBuilder::with_switches(5);
    b.add_link(sid(0), sid(1), 1, 1).unwrap();
    b.add_link(sid(2), sid(1), 1, 1).unwrap();
    b.add_link(sid(0), sid(3), 2, 1).unwrap();
    b.add_link(sid(2), sid(3), 2, 2).unwrap();
    b.add_link(sid(3), sid(1), 1, 1).unwrap();
    let f0 = Flow::new(
        FlowId(0),
        1,
        Path::new(vec![sid(0), sid(1)]),
        Path::new(vec![sid(0), sid(3), sid(1)]),
    )
    .unwrap();
    let f1 = Flow::new(
        FlowId(1),
        1,
        Path::new(vec![sid(2), sid(1)]),
        Path::new(vec![sid(2), sid(3), sid(1)]),
    )
    .unwrap();
    UpdateInstance::new(b.build(), vec![f0, f1]).unwrap()
}

#[test]
fn motivating_example_step_by_step() {
    let inst = motivating_example();
    // The staged consistent schedule, applied one update at a time,
    // then fully unwound — with a re-assignment thrown in.
    let ops: Vec<(FlowId, SwitchId, TimeStep)> = vec![
        (FlowId(0), sid(1), 0),
        (FlowId(0), sid(2), 1),
        (FlowId(0), sid(0), 2),
        (FlowId(0), sid(3), 2),
        (FlowId(0), sid(3), 9), // re-assign: makespan jumps
    ];
    let mut inc = IncrementalSimulator::new(&inst);
    let mut schedule = Schedule::new();
    let mut stack = Vec::new();
    for (f, v, t) in ops {
        let prev = schedule.get(f, v);
        stack.push((f, v, prev, inc.apply(f, v, t)));
        schedule.set(f, v, t);
        assert_matches_full(&inst, &inc, &schedule);
    }
    while let Some((f, v, prev, delta)) = stack.pop() {
        inc.undo(delta);
        match prev {
            Some(p) => schedule.set(f, v, p),
            None => {
                schedule.unset(f, v);
            }
        }
        assert_matches_full(&inst, &inc, &schedule);
    }
}

#[test]
fn reversal_instance_full_walk() {
    for n in [4, 6, 8] {
        let inst = reversal_instance(n, 2, 1);
        let flow = inst.flow().clone();
        let mut inc = IncrementalSimulator::new(&inst);
        let mut schedule = Schedule::new();
        let mut deltas = Vec::new();
        // Serialize every required update at consecutive steps.
        for (i, v) in flow.switches_to_update().into_iter().enumerate() {
            deltas.push(inc.apply(flow.id, v, i as TimeStep));
            schedule.set(flow.id, v, i as TimeStep);
            assert_matches_full(&inst, &inc, &schedule);
        }
        while let Some(d) = deltas.pop() {
            inc.undo(d);
        }
        assert_matches_full(&inst, &inc, &Schedule::new());
    }
}

#[test]
fn two_flow_window_coupling() {
    let inst = two_flow_instance();
    let ops: &[(u8, u8, i8)] = &[
        (1, 0, 0),
        (1, 3, 4),
        (2, 5, 1),
        (0, 0, 0), // undo
        (1, 2, 7),
        (1, 6, 2),
        (0, 0, 0), // undo
        (0, 0, 0), // undo
        (1, 1, 3),
    ];
    drive(&inst, ops);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random paper-style instances, random apply/undo interleavings:
    /// every intermediate state must be byte-identical to a fresh full
    /// simulation of the mirrored schedule.
    #[test]
    fn incremental_equals_full_on_random_instances(
        switches in 6usize..20,
        seed in 0u64..10_000,
        ops in prop::collection::vec((0u8..4, 0u8..32, -3i8..14), 0..24),
    ) {
        let cfg = InstanceGeneratorConfig::paper(switches, seed);
        let Some(inst) = InstanceGenerator::new(cfg).generate() else { return Ok(()); };
        drive(&inst, &ops);
    }

    /// Same property on the multi-flow instance (global makespan
    /// coupling between flows).
    #[test]
    fn incremental_equals_full_on_two_flows(
        ops in prop::collection::vec((0u8..4, 0u8..32, -3i8..14), 0..24),
    ) {
        drive(&two_flow_instance(), &ops);
    }
}
