//! Property tests pinning the schedule codec's round-trip invariant:
//! `decode(encode(s)) == s` through both the value model and the
//! serialized text, for arbitrary entry sets including steps far
//! outside the `f64`-exact integer range.

use chronus_net::{FlowId, SwitchId};
use chronus_timenet::{schedule_from_value, schedule_to_value, Schedule};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    fn schedule_round_trips(
        entries in prop::collection::vec(
            (0u32..16, 0u32..64, i64::MIN..i64::MAX),
            0..48,
        ),
    ) {
        let mut schedule = Schedule::new();
        for &(flow, switch, t) in &entries {
            schedule.set(FlowId(flow), SwitchId(switch), t);
        }
        // Value-level round trip.
        let v = schedule_to_value(&schedule);
        let back = schedule_from_value(&v);
        prop_assert!(back.is_ok(), "decode failed: {back:?}");
        prop_assert_eq!(back.unwrap(), schedule.clone());
        // Text-level round trip (through the strict parser).
        let text = serde_json::to_string(&v).unwrap();
        let reparsed = serde_json::from_str(&text).unwrap();
        let back = schedule_from_value(&reparsed).unwrap();
        prop_assert_eq!(back, schedule);
    }

    fn encoding_is_canonical(
        entries in prop::collection::vec((0u32..8, 0u32..8, -100i64..100), 0..20),
    ) {
        // Insertion order never leaks into the document: building the
        // same entry set in reverse yields byte-identical JSON.
        let mut fwd = Schedule::new();
        for &(f, s, t) in &entries {
            fwd.set(FlowId(f), SwitchId(s), t);
        }
        let mut rev = Schedule::new();
        for &(f, s, t) in entries.iter().rev() {
            rev.set(FlowId(f), SwitchId(s), t);
        }
        if fwd == rev {
            let a = serde_json::to_string(&schedule_to_value(&fwd)).unwrap();
            let b = serde_json::to_string(&schedule_to_value(&rev)).unwrap();
            prop_assert_eq!(a, b);
        }
    }
}
