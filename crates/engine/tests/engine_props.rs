//! Engine-level properties: concurrent planning is observationally
//! equivalent to sequential planning, deadlines degrade rather than
//! fail, and batches leave fully certified.

use chronus_engine::{
    plan_sequential, Engine, EngineConfig, PlanKind, Stage, StageOutcome, UpdateRequest,
};
use chronus_net::{motivating_example, reversal_instance, UpdateInstance};
use chronus_timenet::{FluidSimulator, Verdict};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::Duration;

/// A batch of known-feasible single-flow instances drawn from `seed`:
/// path reversals of varying length mixed with the paper's worked
/// example.
fn seeded_batch(seed: u64, len: usize) -> Vec<UpdateRequest> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len)
        .map(|i| {
            let inst = if rng.gen_bool(0.25) {
                motivating_example()
            } else {
                let n = rng.gen_range(4usize..=8);
                reversal_instance(n, 2, 1)
            };
            UpdateRequest::new(i as u64, Arc::new(inst), Duration::from_secs(30))
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Planning a batch on N workers yields byte-identical schedules
    /// to planning the same requests sequentially in request order.
    fn concurrent_batch_equals_sequential(seed in 0u64..10_000, workers in 1usize..5) {
        let requests = seeded_batch(seed, 10);
        let sequential = plan_sequential(&requests);
        let engine = Engine::new(EngineConfig::with_workers(workers));
        let concurrent = engine.plan_batch(requests);
        prop_assert_eq!(concurrent.len(), sequential.len());
        for (c, s) in concurrent.iter().zip(&sequential) {
            prop_assert_eq!(c.id, s.id);
            prop_assert_eq!(c.winner, s.winner);
            // Byte-identical: the rendered schedules match exactly.
            let (cs, ss) = (c.plan.schedule(), s.plan.schedule());
            prop_assert_eq!(cs.is_some(), ss.is_some());
            if let (Some(cs), Some(ss)) = (cs, ss) {
                prop_assert_eq!(cs, ss);
                prop_assert_eq!(cs.to_string(), ss.to_string());
            }
        }
    }

    /// Every schedule the engine emits is certified consistent by the
    /// exact simulator.
    fn engine_schedules_are_consistent(seed in 0u64..10_000) {
        let requests = seeded_batch(seed, 6);
        let instances: Vec<Arc<UpdateInstance>> =
            requests.iter().map(|r| r.instance.clone()).collect();
        let engine = Engine::new(EngineConfig::with_workers(3));
        let plans = engine.plan_batch(requests);
        for (plan, inst) in plans.iter().zip(&instances) {
            let schedule = plan.plan.schedule().expect("feasible batch plans timed");
            let report = FluidSimulator::check(inst, schedule);
            prop_assert_eq!(report.verdict(), Verdict::Consistent);
        }
    }
}

#[test]
fn induced_timeout_falls_back_to_two_phase() {
    // Deadline already spent: the optimizing stages are skipped and
    // every request still leaves with a consistent two-phase plan —
    // a timeout is a degradation, not an error.
    let engine = Engine::new(EngineConfig::with_workers(2));
    let requests: Vec<UpdateRequest> = (0..6)
        .map(|i| UpdateRequest::new(i, Arc::new(motivating_example()), Duration::ZERO))
        .collect();
    let plans = engine.plan_batch(requests);
    assert_eq!(plans.len(), 6);
    for p in &plans {
        assert_eq!(p.winner, Stage::TwoPhase);
        assert!(p.deadline_exceeded);
        assert!(matches!(p.plan, PlanKind::TwoPhase(_)));
        for stage in [Stage::Greedy, Stage::Tree] {
            assert!(
                matches!(p.attempt(stage).unwrap().outcome, StageOutcome::Skipped(_)),
                "optimizing stages skipped under a spent deadline"
            );
        }
    }
    let report = engine.report();
    assert_eq!(report.timeouts, 6);
    assert_eq!(report.two_phase.wins, 6);
}

#[test]
fn fifty_flow_batch_plans_and_certifies() {
    // The acceptance batch: 50 flows through the fallback chain on a
    // worker pool, every schedule certified Consistent by the exact
    // simulator.
    let instances: Vec<Arc<UpdateInstance>> = (0..50)
        .map(|i| match i % 6 {
            0 => Arc::new(motivating_example()),
            r => Arc::new(reversal_instance(3 + r, 2, 1)),
        })
        .collect();
    let engine = Engine::new(EngineConfig::with_workers(4));
    let plans = engine.plan_instances(instances.clone());
    assert_eq!(plans.len(), 50);
    for (i, (plan, inst)) in plans.iter().zip(&instances).enumerate() {
        assert_eq!(plan.id.0, i as u64, "submission order");
        let schedule = plan
            .plan
            .schedule()
            .expect("all batch members are greedy-feasible");
        let report = FluidSimulator::check(inst, schedule);
        assert_eq!(report.verdict(), Verdict::Consistent, "flow {i}");
    }
    let report = engine.report();
    assert_eq!(report.completed, 50);
    assert_eq!(report.greedy.wins, 50);
    // Six distinct shapes → six memoized windows. Workers racing on
    // a cold key may each materialize it once (the cache trades a
    // duplicate build for lock-free materialization), so the miss
    // count is bounded by shapes × workers rather than exact.
    assert_eq!(report.cache_entries, 6);
    assert_eq!(report.cache_hits + report.cache_misses, 50);
    assert!(report.cache_misses >= 6);
    assert!(
        report.cache_misses <= 6 * 4,
        "misses {}",
        report.cache_misses
    );
    assert!(
        report.cache_hit_rate() > 0.5,
        "rate {}",
        report.cache_hit_rate()
    );
}
