//! Loom model checks for the engine's concurrency skeleton.
//!
//! Compiled only under `RUSTFLAGS="--cfg loom"` (the `loom` CI job).
//! The offline shim in `shims/loom` runs each model body as many
//! real-thread iterations; swapping in the real loom gives exhaustive
//! interleaving enumeration with the same model code.
//!
//! Each model isolates one concurrency invariant the engine relies on:
//!
//! 1. **publish/steal** — every job popped off the shared queue is
//!    answered exactly once, no matter which worker steals it;
//! 2. **cache insert race** — two workers racing a cold cache key both
//!    leave with an identical window and the map keeps one entry;
//! 3. **shutdown vs enqueue** — closing the job channel after a burst
//!    of sends loses nothing: workers drain the backlog, then exit.

#![cfg(loom)]

use chronus_engine::{CacheKey, TimeNetCache};
use chronus_net::motivating_example;
use loom::sync::atomic::{AtomicUsize, Ordering};
use loom::sync::{Arc, Mutex};
use loom::thread;

const JOBS: usize = 4;
const WORKERS: usize = 2;

#[test]
fn workers_answer_each_stolen_job_exactly_once() {
    loom::model(|| {
        // The engine's MPMC queue, reduced to its invariant: a shared
        // pop-front queue and a shared answer board.
        let queue = Arc::new(Mutex::new((0..JOBS).collect::<Vec<usize>>()));
        let answers = Arc::new(Mutex::new(Vec::new()));
        let handles: Vec<_> = (0..WORKERS)
            .map(|_| {
                let queue = queue.clone();
                let answers = answers.clone();
                thread::spawn(move || loop {
                    let job = queue.lock().unwrap().pop();
                    match job {
                        Some(seq) => answers.lock().unwrap().push(seq),
                        None => break,
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let mut seen = answers.lock().unwrap().clone();
        seen.sort_unstable();
        assert_eq!(seen, (0..JOBS).collect::<Vec<usize>>());
    });
}

#[test]
fn cache_insert_race_keeps_one_entry_and_identical_windows() {
    loom::model(|| {
        let inst = Arc::new(motivating_example());
        let cache = Arc::new(TimeNetCache::new());
        let key = CacheKey::for_instance(&inst, 4);
        let handles: Vec<_> = (0..WORKERS)
            .map(|_| {
                let inst = inst.clone();
                let cache = cache.clone();
                thread::spawn(move || {
                    let (window, _hit) = cache.get_or_materialize(key, &inst);
                    window.t_max()
                })
            })
            .collect();
        let t_maxes: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        // Racing materializations may both build, but they build the
        // same snapshot and the map converges to one entry.
        assert!(t_maxes.windows(2).all(|w| w[0] == w[1]));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.hits() + cache.misses(), WORKERS as u64);
        assert!(cache.misses() >= 1);
    });
}

#[test]
fn shutdown_after_enqueue_drains_the_backlog() {
    loom::model(|| {
        let (tx, rx) = loom::sync::mpsc::channel::<usize>();
        let rx = Arc::new(Mutex::new(rx));
        let processed = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..WORKERS)
            .map(|_| {
                let rx = rx.clone();
                let processed = processed.clone();
                thread::spawn(move || loop {
                    // Lock-then-recv models the engine's shared
                    // receiver; disconnect is the shutdown signal.
                    let msg = rx.lock().unwrap().try_recv();
                    match msg {
                        Ok(_) => {
                            processed.fetch_add(1, Ordering::SeqCst);
                        }
                        Err(std::sync::mpsc::TryRecvError::Empty) => thread::yield_now(),
                        Err(std::sync::mpsc::TryRecvError::Disconnected) => break,
                    }
                })
            })
            .collect();
        for seq in 0..JOBS {
            tx.send(seq).unwrap();
        }
        // Dropping the sender races the workers still draining: the
        // invariant is that disconnect is only observed after the
        // backlog is empty.
        drop(tx);
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(processed.load(Ordering::SeqCst), JOBS);
    });
}
