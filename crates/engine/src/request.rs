//! Update requests: the unit of work the engine plans.

use chronus_net::UpdateInstance;
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

/// Engine-assigned identifier of one planning request.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct RequestId(pub u64);

impl fmt::Display for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "req{}", self.0)
    }
}

/// One flow-migration planning request.
///
/// The instance is `Arc`-shared so that batches over the same topology
/// do not clone the network per request, and so workers can hold it
/// without lifetimes.
#[derive(Clone, Debug)]
pub struct UpdateRequest {
    /// Request identifier (echoed in the [`crate::PlannedUpdate`]).
    pub id: RequestId,
    /// The single-flow instance to plan.
    pub instance: Arc<UpdateInstance>,
    /// Wall-clock budget for the *optimizing* stages. When the budget
    /// is exhausted, remaining optimizing stages are skipped and the
    /// chain falls through to the always-available two-phase plan —
    /// a request never fails for lack of time, it degrades.
    pub deadline: Duration,
}

impl UpdateRequest {
    /// Creates a request with an explicit deadline.
    pub fn new(id: u64, instance: Arc<UpdateInstance>, deadline: Duration) -> Self {
        UpdateRequest {
            id: RequestId(id),
            instance,
            deadline,
        }
    }
}
