//! # chronus-engine — a concurrent batched update-planning engine
//!
//! The paper's algorithms plan one flow migration at a time; a timed
//! SDN controller faces a *stream* of them. This crate turns the
//! workspace's planners into a long-lived service:
//!
//! - [`Engine`]: a crossbeam-channel worker pool accepting batches of
//!   [`UpdateRequest`]s, answering each in submission order;
//! - the **fallback chain** ([`plan_with_chain`]): greedy scheduler →
//!   tree feasibility search → two-phase baseline, so every request
//!   leaves with a consistency-preserving plan — deadline pressure
//!   degrades plan *quality* (rule overhead), never correctness;
//! - [`TimeNetCache`]: shared memoization of materialized
//!   time-extended windows, keyed by `(topology hash, flow, horizon)`;
//! - the **slack stage** ([`SlackPolicy`]): timed winners ship with a
//!   slack certificate — the certified timing tolerance ±Δ — dilating
//!   the schedule to buy tolerance when the planner's packing
//!   certifies none;
//! - [`UpdateWatchdog`]: the deployment-side deadline tracker turning
//!   that certified tolerance into re-arm-or-rollback decisions;
//! - [`PlanReport`]: per-stage latencies and win counts, cache hit
//!   rates, queue depths and deadline casualties.
//!
//! Concurrency is observationally pure: every chain stage is
//! deterministic, so a batch planned on N workers yields exactly the
//! plans of [`plan_sequential`] whenever deadlines do not bite — a
//! property pinned by this crate's tests.
//!
//! ```
//! use chronus_engine::{Engine, EngineConfig, Stage};
//! use chronus_net::motivating_example;
//! use std::sync::Arc;
//!
//! let engine = Engine::new(EngineConfig::with_workers(2));
//! let plans = engine.plan_instances(vec![Arc::new(motivating_example()); 4]);
//! assert!(plans.iter().all(|p| p.winner == Stage::Greedy));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(
    not(test),
    deny(clippy::unwrap_used, clippy::expect_used, clippy::indexing_slicing)
)]

mod cache;
mod fallback;
mod metrics;
mod pool;
mod request;
mod watchdog;

pub use cache::{flow_signature, topology_hash, CacheKey, TimeNetCache};
pub use fallback::{
    plan_sequential, plan_with_chain, plan_with_chain_cfg, plan_with_chain_in,
    plan_with_chain_sharded, plan_with_chain_slack, planning_horizon, tp_flip_time, PlanError,
    PlanKind, PlannedUpdate, SlackPolicy, Stage, StageAttempt, StageOutcome, TpBatchPlan,
};
pub use metrics::{CertStats, EngineMetrics, PlanReport, ShardStats, SlackStats, StageStats};
pub use pool::{DrainReport, Engine, EngineConfig, PlanTicket};
// The sharded pre-stage's knobs travel with the engine config; re-export
// them so `EngineConfig::with_sharding` callers need no chronus-core dep.
pub use chronus_core::shard::ShardingConfig;
pub use request::{RequestId, UpdateRequest};
pub use watchdog::{UpdateWatchdog, WatchdogVerdict};
