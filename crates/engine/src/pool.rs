//! The engine proper: a long-lived worker pool planning request
//! batches over crossbeam channels.
// `expect` sites assert engine-lifecycle invariants (workers outlive
// the sender; one answer per request); a failure is a bug, and
// panicking the caller is the designed response.
#![allow(clippy::expect_used)]

use crate::cache::TimeNetCache;
use crate::fallback::{plan_with_chain_sharded, PlannedUpdate, SlackPolicy};
use crate::metrics::{EngineMetrics, PlanReport};
use crate::request::{RequestId, UpdateRequest};
use chronus_core::shard::ShardingConfig;
use chronus_net::UpdateInstance;
use chronus_timenet::SimWorkspace;
use chronus_verify::VerifyConfig;
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// Engine construction parameters.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Worker threads planning concurrently.
    pub workers: usize,
    /// Deadline given to requests submitted without one.
    pub default_deadline: Duration,
    /// Independent post-hoc certification of every winning plan.
    /// Enabled by default; benchmarks measuring raw planning latency
    /// can opt out with [`VerifyConfig::disabled`].
    pub verify: VerifyConfig,
    /// Slack policy for timed winners: when set, every timed plan is
    /// shipped with a slack certificate, dilating the schedule within
    /// the policy's factor cap until the certified tolerance meets the
    /// target. `None` (the default) skips the stage — plans ship
    /// exactly as the planners produced them.
    pub slack: Option<SlackPolicy>,
    /// Bound on the shared time-extended-network cache, in windows;
    /// the oldest window is evicted past it (see
    /// [`TimeNetCache::bounded`]). `None` (the default) keeps the
    /// cache unbounded, which suits batch runs; long-running services
    /// should bound it.
    pub cache_capacity: Option<usize>,
    /// Sharded multi-flow planning: when set, multi-flow requests run
    /// the sharded pre-stage — topology partitioning plus per-shard
    /// parallel planning over a shared-link capacity-reservation
    /// table — before the joint greedy. `None` (the default) plans
    /// every request jointly.
    pub sharding: Option<ShardingConfig>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: thread::available_parallelism().map_or(2, |n| n.get().min(8)),
            default_deadline: Duration::from_secs(5),
            verify: VerifyConfig::default(),
            slack: None,
            cache_capacity: None,
            sharding: None,
        }
    }
}

impl EngineConfig {
    /// A config with `workers` threads and the default deadline.
    pub fn with_workers(workers: usize) -> Self {
        EngineConfig {
            workers,
            ..EngineConfig::default()
        }
    }

    /// Enables the slack stage with `policy` (builder style).
    #[must_use]
    pub fn with_slack(mut self, policy: SlackPolicy) -> Self {
        self.slack = Some(policy);
        self
    }

    /// Bounds the time-extended-network cache (builder style).
    #[must_use]
    pub fn with_cache_capacity(mut self, windows: usize) -> Self {
        self.cache_capacity = Some(windows);
        self
    }

    /// Enables the sharded multi-flow pre-stage (builder style).
    #[must_use]
    pub fn with_sharding(mut self, sharding: ShardingConfig) -> Self {
        self.sharding = Some(sharding);
        self
    }
}

/// One queued unit of work: the request plus its position in the
/// submitting batch and the reply channel to land the answer on.
struct Job {
    seq: usize,
    request: UpdateRequest,
    reply: Sender<(usize, PlannedUpdate)>,
}

/// A concurrent batched update-planning engine.
///
/// Workers are spawned once and live until the engine is dropped;
/// batches stream through a shared MPMC queue. All workers share one
/// time-extended-network cache and one metrics sink.
///
/// ```
/// use chronus_engine::{Engine, EngineConfig};
/// use chronus_net::motivating_example;
/// use std::sync::Arc;
///
/// let engine = Engine::new(EngineConfig::with_workers(2));
/// let plans = engine.plan_instances(vec![Arc::new(motivating_example())]);
/// assert_eq!(plans.len(), 1);
/// println!("{}", engine.report());
/// ```
pub struct Engine {
    tx: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    cache: Arc<TimeNetCache>,
    metrics: Arc<EngineMetrics>,
    config: EngineConfig,
    draining: Arc<AtomicBool>,
    leftovers: Arc<Mutex<Vec<RequestId>>>,
}

/// Receipt for one asynchronously [`Engine::submit`]ted request.
#[must_use = "dropping a ticket abandons its answer"]
pub struct PlanTicket {
    rx: Receiver<(usize, PlannedUpdate)>,
}

impl PlanTicket {
    /// Blocks until the request is planned. Returns `None` when the
    /// request was shed by a concurrent [`Engine::drain`] (it then
    /// appears in the drain report's leftovers).
    pub fn wait(self) -> Option<PlannedUpdate> {
        self.rx.recv().ok().map(|(_, planned)| planned)
    }
}

/// Outcome of a graceful [`Engine::drain`]: intake stopped, in-flight
/// requests finished, queued-but-unstarted requests shed and reported.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DrainReport {
    /// Requests fully planned over the engine's lifetime.
    pub planned: u64,
    /// Requests that were still queued when the drain began; they
    /// were never planned and their tickets resolve to `None`.
    pub leftovers: Vec<RequestId>,
}

impl Engine {
    /// Spawns the worker pool.
    ///
    /// # Panics
    /// Panics if `config.workers` is zero.
    pub fn new(config: EngineConfig) -> Self {
        assert!(config.workers > 0, "engine needs at least one worker");
        let (tx, rx) = unbounded::<Job>();
        let cache = Arc::new(match config.cache_capacity {
            Some(cap) => TimeNetCache::bounded(cap),
            None => TimeNetCache::new(),
        });
        let metrics = Arc::new(EngineMetrics::new());
        let draining = Arc::new(AtomicBool::new(false));
        let leftovers = Arc::new(Mutex::new(Vec::new()));
        let workers = (0..config.workers)
            .map(|i| {
                let rx: Receiver<Job> = rx.clone();
                let cache = cache.clone();
                let metrics = metrics.clone();
                let verify = config.verify;
                let slack = config.slack;
                let sharding = config.sharding;
                let draining = draining.clone();
                let leftovers = leftovers.clone();
                thread::Builder::new()
                    .name(format!("chronus-engine-{i}"))
                    .spawn(move || {
                        // One simulation workspace per worker thread:
                        // the greedy gate's ledger and trace buffers
                        // are recycled across every request this
                        // worker ever plans.
                        let mut ws = SimWorkspace::default();
                        while let Ok(job) = rx.recv() {
                            metrics.record_dequeue();
                            // A drain in progress sheds everything
                            // still queued: record the id, drop the
                            // reply channel unanswered.
                            if draining.load(Ordering::Acquire) {
                                leftovers.lock().push(job.request.id);
                                continue;
                            }
                            let _job_span = chronus_trace::span!(
                                "engine.worker",
                                worker = i,
                                request = job.request.id.0
                            )
                            .entered();
                            let planned = plan_with_chain_sharded(
                                &job.request,
                                &cache,
                                &metrics,
                                &mut ws,
                                &verify,
                                slack.as_ref(),
                                sharding.as_ref(),
                            );
                            // A dead reply channel means the batch was
                            // abandoned; planning the rest of the queue
                            // is still correct, so just keep going.
                            let _ = job.reply.send((job.seq, planned));
                        }
                    })
                    .expect("spawn engine worker")
            })
            .collect();
        Engine {
            tx: Some(tx),
            workers,
            cache,
            metrics,
            config,
            draining,
            leftovers,
        }
    }

    /// The configuration the engine was built with.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Plans a batch, blocking until every request is answered.
    /// Results come back in submission order regardless of which
    /// worker finished first.
    pub fn plan_batch(&self, requests: Vec<UpdateRequest>) -> Vec<PlannedUpdate> {
        let n = requests.len();
        let (reply_tx, reply_rx) = unbounded();
        let tx = self.tx.as_ref().expect("engine running");
        for (seq, request) in requests.into_iter().enumerate() {
            self.metrics.record_enqueue();
            tx.send(Job {
                seq,
                request,
                reply: reply_tx.clone(),
            })
            .expect("workers alive while engine is alive");
        }
        drop(reply_tx);
        let mut answers: Vec<(usize, PlannedUpdate)> = reply_rx.iter().collect();
        debug_assert_eq!(answers.len(), n);
        answers.sort_by_key(|(seq, _)| *seq);
        answers.into_iter().map(|(_, planned)| planned).collect()
    }

    /// Convenience wrapper: one request per instance, ids by batch
    /// position, all with the default deadline.
    pub fn plan_instances(&self, instances: Vec<Arc<UpdateInstance>>) -> Vec<PlannedUpdate> {
        let deadline = self.config.default_deadline;
        let requests = instances
            .into_iter()
            .enumerate()
            .map(|(i, inst)| UpdateRequest::new(i as u64, inst, deadline))
            .collect();
        self.plan_batch(requests)
    }

    /// Plans a single request.
    pub fn plan_one(&self, request: UpdateRequest) -> PlannedUpdate {
        self.plan_batch(vec![request])
            .pop()
            .expect("one answer for one request")
    }

    /// Snapshot of the engine's planning metrics and cache state.
    pub fn report(&self) -> PlanReport {
        self.metrics.report(&self.cache)
    }

    /// The engine's live metrics (its scoped registry lives inside;
    /// see [`EngineMetrics::registry`] for Prometheus/JSON exposition).
    pub fn metrics(&self) -> &EngineMetrics {
        &self.metrics
    }

    /// The shared time-extended-network cache (for inspection).
    pub fn cache(&self) -> &TimeNetCache {
        &self.cache
    }

    /// Submits one request without blocking; the answer is claimed
    /// later through the returned [`PlanTicket`]. This is the intake
    /// the `chronusd` daemon streams through.
    pub fn submit(&self, request: UpdateRequest) -> PlanTicket {
        let (reply_tx, reply_rx) = unbounded();
        self.metrics.record_enqueue();
        self.tx
            .as_ref()
            .expect("engine running")
            .send(Job {
                seq: 0,
                request,
                reply: reply_tx,
            })
            .expect("workers alive while engine is alive");
        PlanTicket { rx: reply_rx }
    }

    /// Requests currently queued (the `chronus_engine_queue_depth`
    /// gauge).
    pub fn queue_depth(&self) -> u64 {
        self.report().queue_depth
    }

    /// Gracefully shuts the pool down: stops intake, lets every
    /// worker finish the request it is planning, sheds whatever is
    /// still queued and reports it. Consuming `self` means no other
    /// caller can be blocked inside [`Engine::plan_batch`] while the
    /// drain runs, so every outstanding request is either finished or
    /// in the report's leftovers — never silently dropped.
    pub fn drain(mut self) -> DrainReport {
        // Flag first, then close the channel: workers observe the
        // flag for everything they dequeue after this point.
        self.draining.store(true, Ordering::Release);
        self.tx.take();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        let mut leftovers = std::mem::take(&mut *self.leftovers.lock());
        leftovers.sort_by_key(|id| id.0);
        DrainReport {
            planned: self.metrics.report(&self.cache).completed,
            leftovers,
        }
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        // Closing the job channel is the shutdown signal; workers
        // drain what is queued and exit on disconnect.
        self.tx.take();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fallback::Stage;
    use chronus_net::motivating_example;
    use chronus_timenet::{FluidSimulator, Verdict};

    #[test]
    fn plans_a_batch_in_submission_order() {
        let engine = Engine::new(EngineConfig::with_workers(3));
        let inst = Arc::new(motivating_example());
        let plans = engine.plan_instances(vec![inst.clone(); 8]);
        assert_eq!(plans.len(), 8);
        for (i, p) in plans.iter().enumerate() {
            assert_eq!(p.id.0, i as u64, "submission order preserved");
            assert_eq!(p.winner, Stage::Greedy);
            let schedule = p.timed_schedule().expect("greedy plans carry a schedule");
            let report = FluidSimulator::check(&inst, schedule);
            assert_eq!(report.verdict(), Verdict::Consistent);
            let cert = p.certificate.as_ref().expect("certified by default");
            assert_eq!(cert.check(&inst), Ok(()));
        }
        let report = engine.report();
        assert_eq!(report.completed, 8);
        assert_eq!(report.certs.issued, 8);
        assert_eq!(report.certs.failed + report.certs.skipped, 0);
        // All requests share one cache key; only workers racing on the
        // cold key materialize more than once.
        assert_eq!(report.cache_entries, 1);
        assert_eq!(report.cache_hits + report.cache_misses, 8);
        assert!(
            (1..=3).contains(&report.cache_misses),
            "misses {}",
            report.cache_misses
        );
        assert!(report.queue_peak >= 1);
    }

    #[test]
    fn engine_survives_multiple_batches() {
        let engine = Engine::new(EngineConfig::with_workers(2));
        let inst = Arc::new(motivating_example());
        for round in 1..=3 {
            let plans = engine.plan_instances(vec![inst.clone(); 4]);
            assert_eq!(plans.len(), 4);
            assert_eq!(engine.report().completed, round * 4);
        }
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn rejects_zero_workers() {
        let _ = Engine::new(EngineConfig::with_workers(0));
    }

    #[test]
    fn submit_tickets_resolve_out_of_band() {
        let engine = Engine::new(EngineConfig::with_workers(2));
        let inst = Arc::new(motivating_example());
        let deadline = engine.config().default_deadline;
        let tickets: Vec<_> = (0..6)
            .map(|i| engine.submit(UpdateRequest::new(i, inst.clone(), deadline)))
            .collect();
        for (i, t) in tickets.into_iter().enumerate() {
            let planned = t.wait().expect("no drain in progress");
            assert_eq!(planned.id.0, i as u64);
        }
        assert_eq!(engine.report().completed, 6);
        assert_eq!(engine.queue_depth(), 0);
    }

    #[test]
    fn drain_accounts_for_every_submitted_request() {
        use chronus_net::reversal_instance;
        let n = 24;
        let engine = Engine::new(EngineConfig::with_workers(1));
        let inst = Arc::new(reversal_instance(8, 2, 1));
        let deadline = engine.config().default_deadline;
        let tickets: Vec<_> = (0..n)
            .map(|i| engine.submit(UpdateRequest::new(i, inst.clone(), deadline)))
            .collect();
        // Drain immediately: the single worker is mid-queue, so some
        // requests finish and the rest come back as leftovers.
        let report = engine.drain();
        assert_eq!(
            report.planned + report.leftovers.len() as u64,
            n,
            "planned + shed covers every submission"
        );
        let shed: Vec<_> = tickets
            .into_iter()
            .enumerate()
            .filter_map(|(i, t)| t.wait().is_none().then_some(i as u64))
            .collect();
        assert_eq!(
            shed,
            report.leftovers.iter().map(|id| id.0).collect::<Vec<_>>(),
            "tickets and drain report agree on who was shed"
        );
    }

    #[test]
    fn drain_on_idle_engine_reports_no_leftovers() {
        let engine = Engine::new(EngineConfig::with_workers(2));
        let inst = Arc::new(motivating_example());
        let plans = engine.plan_instances(vec![inst; 3]);
        assert_eq!(plans.len(), 3);
        let report = engine.drain();
        assert_eq!(report.planned, 3);
        assert!(report.leftovers.is_empty());
    }

    #[test]
    fn bounded_cache_keeps_resident_state_capped() {
        use chronus_net::reversal_instance;
        let engine = Engine::new(EngineConfig::with_workers(1).with_cache_capacity(2));
        // Distinct topologies -> distinct cache keys.
        for n in [4, 5, 6, 7] {
            let inst = Arc::new(reversal_instance(n, 2, 1));
            let plans = engine.plan_instances(vec![inst]);
            assert_eq!(plans.len(), 1);
        }
        let report = engine.report();
        assert!(
            report.cache_entries <= 2,
            "entries {}",
            report.cache_entries
        );
        assert!(
            report.cache_evictions >= 2,
            "evictions {}",
            report.cache_evictions
        );
        assert!(report.to_string().contains("evicted"));
    }

    #[test]
    fn slack_policy_dilates_plans_to_the_target() {
        use crate::fallback::SlackPolicy;
        let engine = Engine::new(EngineConfig::with_workers(2).with_slack(SlackPolicy::default()));
        let inst = Arc::new(motivating_example());
        let plans = engine.plan_instances(vec![inst.clone(); 4]);
        for p in &plans {
            assert_eq!(p.winner, Stage::Greedy);
            let slack = p.slack.as_ref().expect("slack certificate attached");
            assert!(
                slack.slack_steps >= 1,
                "policy target reached: {}",
                slack.slack_steps
            );
            // The greedy packing is tight (slack 0); reaching the
            // target takes an actual dilation.
            assert!(p.dilation > 1, "dilated by {}", p.dilation);
            // The shipped (dilated) schedule still certifies and the
            // consistency certificate matches it.
            let schedule = p.timed_schedule().expect("timed plan");
            let report = FluidSimulator::check(&inst, schedule);
            assert_eq!(report.verdict(), Verdict::Consistent);
            let cert = p.certificate.as_ref().expect("certified");
            assert_eq!(cert.check(&inst), Ok(()));
            // The slack budget is honored end to end: a watchdog built
            // from this certificate tolerates a sub-Δ delay.
            let wd =
                crate::watchdog::UpdateWatchdog::from_certificate(slack, 100_000_000, 1_000_000);
            assert!(wd.slack().covers(50_000_000));
        }
        let report = engine.report();
        assert_eq!(report.slack.certified, 4);
        assert_eq!(report.slack.dilated, 4);
        assert_eq!(report.slack.target_missed, 0);
        assert_eq!(report.slack.uncertifiable, 0);
        assert!(report.slack.schedules_checked > 0);
        assert!(report.to_string().contains("slack: 4 certified"));
    }

    #[test]
    fn sharded_engine_plans_multi_flow_batches() {
        use chronus_net::topology::{fat_tree, LinkParams};
        use chronus_net::{Flow, FlowId, Path, UpdateInstance};
        let net = fat_tree(
            4,
            LinkParams {
                capacity: 1000,
                delay: 1,
            },
        );
        let by_name = |n: &str| {
            net.switches()
                .find(|&s| net.switch_name(s) == Some(n))
                .unwrap()
        };
        let flows: Vec<_> = (0..4u32)
            .map(|pod| {
                Flow::new(
                    FlowId(pod),
                    100,
                    Path::new(vec![
                        by_name(&format!("edge{}", 2 * pod)),
                        by_name(&format!("agg{}", 2 * pod)),
                        by_name(&format!("edge{}", 2 * pod + 1)),
                    ]),
                    Path::new(vec![
                        by_name(&format!("edge{}", 2 * pod)),
                        by_name(&format!("agg{}", 2 * pod + 1)),
                        by_name(&format!("edge{}", 2 * pod + 1)),
                    ]),
                )
                .unwrap()
            })
            .collect();
        let inst = Arc::new(UpdateInstance::new(net, flows).unwrap());
        let engine =
            Engine::new(EngineConfig::with_workers(2).with_sharding(ShardingConfig::default()));
        let plans = engine.plan_instances(vec![inst.clone(); 3]);
        for p in &plans {
            assert_eq!(p.winner, Stage::Sharded);
            let schedule = p.timed_schedule().expect("timed plan");
            assert_eq!(
                FluidSimulator::check(&inst, schedule).verdict(),
                Verdict::Consistent
            );
            let cert = p.certificate.as_ref().expect("composed certificate");
            assert_eq!(cert.check(&inst), Ok(()));
        }
        let report = engine.report();
        assert_eq!(report.sharded.wins, 3);
        assert!(report.shard.shards_planned >= 6, "{:?}", report.shard);
        assert!(report.to_string().contains("sharded"));
        // Single-flow requests under the same engine skip the stage
        // and fall to greedy unchanged.
        let single = engine.plan_instances(vec![Arc::new(motivating_example())]);
        assert_eq!(single[0].winner, Stage::Greedy);
    }

    #[test]
    fn without_slack_policy_plans_ship_undilated() {
        let engine = Engine::new(EngineConfig::with_workers(1));
        let inst = Arc::new(motivating_example());
        let plans = engine.plan_instances(vec![inst]);
        assert!(plans[0].slack.is_none());
        assert_eq!(plans[0].dilation, 1);
        let report = engine.report();
        assert_eq!(report.slack, crate::metrics::SlackStats::default());
        assert!(!report.to_string().contains("slack:"));
    }
}
