//! The planning fallback chain: sharded → greedy → tree → two-phase.
//!
//! Every request walks the same chain, cheapest-best first:
//!
//! 0. **Sharded** (opt-in, multi-flow only) — partitions the topology,
//!    reserves shared-link capacity per shard, and plans the shards in
//!    parallel, composing their certificates into one sealed proof.
//!    Runs only when the engine was configured with a
//!    [`ShardingConfig`] and the request carries more than one flow.
//! 1. **Greedy** (paper Algorithm 2) — the Chronus scheduler; when it
//!    succeeds the flow migrates with no rule-space overhead.
//! 2. **Tree** (paper Algorithm 1) — the feasibility search; slower,
//!    but it can find witness schedules on instances where the greedy
//!    round structure stalls, and it proves infeasibility.
//! 3. **Two-phase** — the per-packet-consistency baseline. It ignores
//!    the timing dimension entirely, always exists, and preserves
//!    consistency at the cost of doubled rules; the chain's
//!    consistency-preserving last resort.
//!
//! The deadline governs the *optimizing* stages only: a request whose
//! budget runs out before greedy or tree finishes skips ahead and
//! still leaves with a consistent two-phase plan — deadline pressure
//! degrades plan quality, never correctness.
// `flows[0]`: the chain plans single-flow instances; multi-flow
// batches are split into one request per flow upstream.
#![allow(clippy::indexing_slicing)]

use crate::cache::{CacheKey, TimeNetCache};
use crate::metrics::EngineMetrics;
use crate::request::{RequestId, UpdateRequest};
use chronus_baselines::tp::{tp_plan, TpPlan};
use chronus_core::greedy::{greedy_schedule_in, GreedyConfig};
use chronus_core::shard::{shard_schedule_in, ShardingConfig};
use chronus_core::tree::{check_feasibility, Feasibility};
use chronus_net::{TimeStep, UpdateInstance};
use chronus_timenet::{Schedule, SimWorkspace};
use chronus_verify::{
    certify_two_phase, certify_with_slack, Certificate, SlackCertificate, SlackConfig, VerifyConfig,
};
use std::fmt;
use std::time::{Duration, Instant};

/// The engine's slack policy: how much certified timing tolerance a
/// timed plan should carry before it ships, and how far the engine may
/// dilate the schedule to buy it.
///
/// A greedy/tree schedule packs dependent updates onto adjacent steps,
/// which certifies zero slack — any single-step displacement of one
/// switch can recreate the transient loop. Dilating the schedule
/// (multiplying every step by a factor) stretches those gaps: the same
/// ordering constraints hold with spare steps in between, so the slack
/// certificate's tolerance grows with the factor — makespan traded for
/// robustness against exactly the timing faults `chronus-faults`
/// injects.
#[derive(Clone, Copy, Debug)]
pub struct SlackPolicy {
    /// Certified tolerance (in steps) a plan should reach; the engine
    /// stops dilating once a factor certifies at least this much.
    pub target_steps: TimeStep,
    /// Largest dilation factor to try (1 = never dilate). When even
    /// this factor misses the target, the best-slack candidate ships
    /// anyway and the miss is counted in the metrics.
    pub max_dilation: TimeStep,
    /// Budget knobs for each slack-certificate search.
    pub search: SlackConfig,
}

impl Default for SlackPolicy {
    fn default() -> Self {
        SlackPolicy {
            target_steps: 1,
            max_dilation: 4,
            search: SlackConfig::default(),
        }
    }
}

/// A stage of the fallback chain, in chain order.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Stage {
    /// The sharded multi-flow planner (opt-in; multi-flow requests
    /// under an engine configured with a [`ShardingConfig`]).
    Sharded,
    /// The greedy scheduler (paper Algorithm 2).
    Greedy,
    /// The tree feasibility search (paper Algorithm 1).
    Tree,
    /// The two-phase commit baseline.
    TwoPhase,
}

impl Stage {
    /// All stages in chain order.
    pub const CHAIN: [Stage; 4] = [Stage::Sharded, Stage::Greedy, Stage::Tree, Stage::TwoPhase];
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Stage::Sharded => "sharded",
            Stage::Greedy => "greedy",
            Stage::Tree => "tree",
            Stage::TwoPhase => "two-phase",
        })
    }
}

/// How one stage of the chain ended.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum StageOutcome {
    /// The stage produced the winning plan.
    Won,
    /// The stage ran and could not plan; the payload says why.
    Failed(String),
    /// The stage never ran; the payload says why (deadline exhausted,
    /// or an earlier stage already won).
    Skipped(String),
}

/// One stage's record in a [`PlannedUpdate`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct StageAttempt {
    /// Which stage.
    pub stage: Stage,
    /// How it ended.
    pub outcome: StageOutcome,
    /// Wall-clock time spent inside the stage (zero when skipped).
    pub elapsed: Duration,
}

/// A two-phase plan for a batch member: the per-flow rule plan plus
/// the ingress flip time the engine chose for it.
#[derive(Clone, Debug)]
pub struct TpBatchPlan {
    /// The duplicate-rules + stamp-flip plan.
    pub plan: TpPlan,
    /// When the ingress stamp flips, in time steps: after the old
    /// generation's in-flight packets can no longer interleave.
    pub flip_time: TimeStep,
}

/// The plan a request leaves the chain with.
#[derive(Clone, Debug)]
pub enum PlanKind {
    /// A timed per-switch schedule (greedy or tree won) — zero rule
    /// overhead, certified consistent by construction.
    Timed(Schedule),
    /// The two-phase fallback — consistent, but transiently doubles
    /// the flow's rules.
    TwoPhase(TpBatchPlan),
}

impl PlanKind {
    /// The timed schedule, when one was found.
    pub fn schedule(&self) -> Option<&Schedule> {
        match self {
            PlanKind::Timed(s) => Some(s),
            PlanKind::TwoPhase(_) => None,
        }
    }
}

/// The engine's answer to one [`UpdateRequest`].
#[derive(Clone, Debug)]
pub struct PlannedUpdate {
    /// The request this answers.
    pub id: RequestId,
    /// The winning plan.
    pub plan: PlanKind,
    /// The stage that produced it.
    pub winner: Stage,
    /// Per-stage records, in chain order.
    pub attempts: Vec<StageAttempt>,
    /// Total planning wall-clock time for this request.
    pub elapsed: Duration,
    /// `true` when the time-extended window came from the shared cache.
    pub cache_hit: bool,
    /// `|V_T|` of the request's time-extended window.
    pub te_nodes: usize,
    /// `|E_T|` of the request's time-extended window.
    pub te_links: usize,
    /// `true` when the deadline expired before every optimizing stage
    /// could run (the plan is then the two-phase fallback).
    pub deadline_exceeded: bool,
    /// The independent certifier's proof that the winning plan is
    /// consistent. `None` when certification was disabled in the
    /// engine config, or when the certifier could not vouch for the
    /// plan (a two-phase fallback whose flip window congests — the
    /// cases [`crate::PlanReport`]'s `certs.failed` counts).
    pub certificate: Option<Certificate>,
    /// The slack certificate for the shipped timed schedule: the
    /// largest per-switch timing tolerance ±Δ under which consistency
    /// still holds. `None` when no [`SlackPolicy`] was configured or
    /// the plan is the two-phase fallback (which has no timed
    /// schedule to perturb).
    pub slack: Option<SlackCertificate>,
    /// The dilation factor applied to the shipped schedule by the
    /// slack stage (1 = the planner's schedule, undilated).
    pub dilation: TimeStep,
    /// The `engine.plan` trace-span id this plan was produced under
    /// (0 when neither the trace collector nor the flight recorder
    /// was on). Callers persist it so forensic dumps and SLO
    /// histogram exemplars can point back at the exact planning span.
    pub span_id: u64,
}

impl PlannedUpdate {
    /// The attempt record for `stage`, if the chain reached it.
    pub fn attempt(&self, stage: Stage) -> Option<&StageAttempt> {
        self.attempts.iter().find(|a| a.stage == stage)
    }

    /// The winning timed schedule, or a [`PlanError`] naming the
    /// request and winning stage when the plan legitimately has none
    /// (the two-phase fallback won) — the non-panicking accessor to
    /// reach for where a timed schedule is assumed.
    pub fn timed_schedule(&self) -> Result<&Schedule, PlanError> {
        self.plan.schedule().ok_or(PlanError {
            id: self.id,
            winner: self.winner,
        })
    }
}

/// A plan was asked for something its winning stage did not produce:
/// [`PlannedUpdate::timed_schedule`] on a two-phase fallback plan.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PlanError {
    /// The request whose plan was interrogated.
    pub id: RequestId,
    /// The stage that won without a timed schedule.
    pub winner: Stage,
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: the {} stage won without a timed schedule",
            self.id, self.winner
        )
    }
}

impl std::error::Error for PlanError {}

/// The planning horizon used for the cached time-extended window: the
/// instance's total path delay, the natural upper bound on how far
/// into past and future a consistent migration can reach.
pub fn planning_horizon(instance: &UpdateInstance) -> TimeStep {
    instance.total_path_delay().max(1) as TimeStep
}

/// The ingress flip time the engine assigns to two-phase plans: one
/// step past the initial path's total delay, so every old-generation
/// packet in flight at the flip has drained past any shared link.
pub fn tp_flip_time(instance: &UpdateInstance) -> TimeStep {
    let phi_init = instance.flows[0]
        .initial
        .total_delay(&instance.network)
        .unwrap_or(0);
    (phi_init + 1) as TimeStep
}

/// Walks the fallback chain for one request against a shared cache,
/// recording per-stage metrics. This is the worker-side entry point;
/// it is deterministic for a fixed request whenever the deadline does
/// not bite (every stage is itself deterministic).
pub fn plan_with_chain(
    req: &UpdateRequest,
    cache: &TimeNetCache,
    metrics: &EngineMetrics,
) -> PlannedUpdate {
    let mut ws = SimWorkspace::default();
    plan_with_chain_in(req, cache, metrics, &mut ws)
}

/// Like [`plan_with_chain_in`], with an explicit certification config
/// (the engine passes [`crate::EngineConfig::verify`] through here).
pub fn plan_with_chain_cfg(
    req: &UpdateRequest,
    cache: &TimeNetCache,
    metrics: &EngineMetrics,
    ws: &mut SimWorkspace,
    verify: &VerifyConfig,
) -> PlannedUpdate {
    plan_chain_impl(req, cache, metrics, ws, verify, None, None)
}

/// The full worker-side entry point: certification config plus an
/// optional [`SlackPolicy`] driving the post-win slack stage.
pub fn plan_with_chain_slack(
    req: &UpdateRequest,
    cache: &TimeNetCache,
    metrics: &EngineMetrics,
    ws: &mut SimWorkspace,
    verify: &VerifyConfig,
    slack: Option<&SlackPolicy>,
) -> PlannedUpdate {
    plan_chain_impl(req, cache, metrics, ws, verify, slack, None)
}

/// The complete worker-side entry point: certification config, slack
/// policy, and the opt-in sharded multi-flow pre-stage. With
/// `sharding: None` this is exactly [`plan_with_chain_slack`].
pub fn plan_with_chain_sharded(
    req: &UpdateRequest,
    cache: &TimeNetCache,
    metrics: &EngineMetrics,
    ws: &mut SimWorkspace,
    verify: &VerifyConfig,
    slack: Option<&SlackPolicy>,
    sharding: Option<&ShardingConfig>,
) -> PlannedUpdate {
    plan_chain_impl(req, cache, metrics, ws, verify, slack, sharding)
}

/// Like [`plan_with_chain`], but reuses caller-owned simulation
/// buffers for the greedy stage's exact gate. Each engine worker keeps
/// one [`SimWorkspace`] for its whole life, so steady-state planning
/// does not re-allocate the load ledger per request.
pub fn plan_with_chain_in(
    req: &UpdateRequest,
    cache: &TimeNetCache,
    metrics: &EngineMetrics,
    ws: &mut SimWorkspace,
) -> PlannedUpdate {
    plan_chain_impl(req, cache, metrics, ws, &VerifyConfig::default(), None, None)
}

/// The static span name for one stage's attempt.
fn stage_span_name(stage: Stage) -> &'static str {
    match stage {
        Stage::Sharded => "engine.stage.sharded",
        Stage::Greedy => "engine.stage.greedy",
        Stage::Tree => "engine.stage.tree",
        Stage::TwoPhase => "engine.stage.two_phase",
    }
}

/// The slack stage: dilates a winning timed schedule until its slack
/// certificate meets the policy target (or the factor cap), returning
/// the schedule to ship, its slack certificate, the consistency
/// certificate matching it, and the factor applied.
fn buy_slack(
    instance: &UpdateInstance,
    schedule: &Schedule,
    policy: &SlackPolicy,
) -> Option<(Schedule, SlackCertificate, Certificate, TimeStep)> {
    let mut best: Option<(Schedule, SlackCertificate, Certificate, TimeStep)> = None;
    for factor in 1..=policy.max_dilation.max(1) {
        let candidate = schedule.dilated(factor);
        let Ok((cert, slack)) = certify_with_slack(instance, &candidate, &policy.search) else {
            // A dilation should never break a consistent plan, but if
            // a factor fails to certify, skip it rather than ship it.
            continue;
        };
        let reached = slack.slack_steps >= policy.target_steps;
        let improves = best
            .as_ref()
            .is_none_or(|(_, b, _, _)| slack.slack_steps > b.slack_steps);
        if improves {
            best = Some((candidate, slack, cert, factor));
        }
        if reached {
            break;
        }
    }
    best
}

fn plan_chain_impl(
    req: &UpdateRequest,
    cache: &TimeNetCache,
    metrics: &EngineMetrics,
    ws: &mut SimWorkspace,
    verify: &VerifyConfig,
    slack_policy: Option<&SlackPolicy>,
    sharding: Option<&ShardingConfig>,
) -> PlannedUpdate {
    let started = Instant::now();
    let instance = &req.instance;
    let mut plan_span = chronus_trace::span!(
        "engine.plan",
        request = req.id.0,
        flows = instance.flows.len()
    )
    .entered();

    // Memoized time-extended window: the planning context shared by
    // identical re-plans of the same (topology, flow, horizon).
    let key = CacheKey::for_instance(instance, planning_horizon(instance));
    let (timenet, cache_hit) = cache.get_or_materialize(key, instance);

    let mut attempts = Vec::with_capacity(Stage::CHAIN.len());
    let mut winner: Option<(Stage, PlanKind, Option<Certificate>)> = None;
    let mut deadline_exceeded = false;

    // The opt-in sharded pre-stage: multi-flow requests are split by
    // topology partition and planned shard-by-shard over a shared-link
    // capacity-reservation table. The attempt is recorded only when
    // sharding is configured, so unsharded engines keep the familiar
    // three-stage attempt list.
    if let Some(shard_cfg) = sharding {
        let stage = Stage::Sharded;
        if instance.flows.len() < 2 {
            attempts.push(StageAttempt {
                stage,
                outcome: StageOutcome::Skipped("single-flow request".into()),
                elapsed: Duration::ZERO,
            });
        } else if started.elapsed() >= req.deadline {
            deadline_exceeded = true;
            metrics.record_skip(stage);
            attempts.push(StageAttempt {
                stage,
                outcome: StageOutcome::Skipped("deadline exhausted".into()),
                elapsed: Duration::ZERO,
            });
        } else {
            let stage_start = Instant::now();
            let mut stage_span = chronus_trace::span!(stage_span_name(stage)).entered();
            let mut cfg = *shard_cfg;
            cfg.greedy.verify = *verify;
            let outcome = match shard_schedule_in(instance, cfg, ws) {
                Ok(out) => {
                    metrics.record_shard(&out.stats);
                    if stage_span.is_recording() {
                        stage_span.record("shards", out.stats.shards as u64);
                        stage_span.record("fell_back_joint", out.stats.fell_back_joint);
                    }
                    winner = Some((stage, PlanKind::Timed(out.schedule), out.certificate));
                    StageOutcome::Won
                }
                Err(e) => StageOutcome::Failed(e.to_string()),
            };
            let elapsed = stage_start.elapsed();
            if stage_span.is_recording() {
                stage_span.record(
                    "outcome",
                    match &outcome {
                        StageOutcome::Won => "won",
                        StageOutcome::Failed(_) => "failed",
                        StageOutcome::Skipped(_) => "skipped",
                    },
                );
            }
            drop(stage_span);
            metrics.record_attempt(stage, &outcome, elapsed);
            attempts.push(StageAttempt {
                stage,
                outcome,
                elapsed,
            });
        }
    }

    for stage in [Stage::Greedy, Stage::Tree] {
        if winner.is_some() {
            attempts.push(StageAttempt {
                stage,
                outcome: StageOutcome::Skipped("earlier stage won".into()),
                elapsed: Duration::ZERO,
            });
            continue;
        }
        if started.elapsed() >= req.deadline {
            deadline_exceeded = true;
            metrics.record_skip(stage);
            attempts.push(StageAttempt {
                stage,
                outcome: StageOutcome::Skipped("deadline exhausted".into()),
                elapsed: Duration::ZERO,
            });
            continue;
        }
        let stage_start = Instant::now();
        let mut stage_span = chronus_trace::span!(stage_span_name(stage)).entered();
        let outcome = match stage {
            Stage::Greedy => {
                let cfg = GreedyConfig {
                    verify: *verify,
                    ..GreedyConfig::default()
                };
                match greedy_schedule_in(instance, cfg, ws) {
                    Ok(out) => {
                        metrics.record_gate(&out.gate);
                        metrics.record_greedy_resources(out.arena_bytes, out.parallel_candidates);
                        winner = Some((stage, PlanKind::Timed(out.schedule), out.certificate));
                        StageOutcome::Won
                    }
                    Err(e) => StageOutcome::Failed(e.to_string()),
                }
            }
            Stage::Tree => match check_feasibility(instance) {
                Feasibility::Feasible {
                    schedule,
                    certificate,
                } => {
                    let cert = verify.enabled.then_some(*certificate);
                    winner = Some((stage, PlanKind::Timed(schedule), cert));
                    StageOutcome::Won
                }
                Feasibility::Infeasible { witness } => StageOutcome::Failed(match witness {
                    Some(w) => format!("infeasible: {w:?}"),
                    None => "infeasible".into(),
                }),
                Feasibility::Unknown => StageOutcome::Failed("search budget exhausted".into()),
            },
            Stage::Sharded | Stage::TwoPhase => {
                unreachable!("sharded handled above, two-phase below")
            }
        };
        let elapsed = stage_start.elapsed();
        if stage_span.is_recording() {
            stage_span.record(
                "outcome",
                match &outcome {
                    StageOutcome::Won => "won",
                    StageOutcome::Failed(_) => "failed",
                    StageOutcome::Skipped(_) => "skipped",
                },
            );
        }
        drop(stage_span);
        metrics.record_attempt(stage, &outcome, elapsed);
        attempts.push(StageAttempt {
            stage,
            outcome,
            elapsed,
        });
    }

    // The consistency-preserving last resort: two-phase always plans,
    // deadline or not — it is the reason a request cannot fail.
    let (winner_stage, plan, certificate) = match winner {
        Some(found) => {
            attempts.push(StageAttempt {
                stage: Stage::TwoPhase,
                outcome: StageOutcome::Skipped("earlier stage won".into()),
                elapsed: Duration::ZERO,
            });
            found
        }
        None => {
            let stage_start = Instant::now();
            let mut stage_span = chronus_trace::span!(stage_span_name(Stage::TwoPhase)).entered();
            let flip_time = tp_flip_time(instance);
            let tp = TpBatchPlan {
                plan: tp_plan(&instance.flows[0]),
                flip_time,
            };
            // The two-phase fallback is consistency-preserving by
            // construction, but the certifier can still refuse to vouch
            // for a flip window that transiently congests a shared
            // link; that legitimate `None` is what `certs.failed`
            // counts — the refusal itself is preserved on the trace
            // via the violation's `Display` rendering.
            let certificate = if verify.enabled {
                match certify_two_phase(instance, flip_time) {
                    Ok(cert) => Some(cert),
                    Err(violation) => {
                        chronus_trace::instant!(
                            "engine.cert_refused",
                            request = req.id.0,
                            violation = violation.to_string()
                        );
                        // A refused certificate is a planner/certifier
                        // disagreement worth a forensic dump (rate
                        // limited and inert unless the recorder is on).
                        chronus_trace::FlightRecorder::trigger("cert-refused");
                        None
                    }
                }
            } else {
                None
            };
            stage_span.record("outcome", "won");
            drop(stage_span);
            let elapsed = stage_start.elapsed();
            metrics.record_attempt(Stage::TwoPhase, &StageOutcome::Won, elapsed);
            attempts.push(StageAttempt {
                stage: Stage::TwoPhase,
                outcome: StageOutcome::Won,
                elapsed,
            });
            (Stage::TwoPhase, PlanKind::TwoPhase(tp), certificate)
        }
    };

    // The slack stage: timed winners get a certified timing tolerance,
    // dilated as allowed until the policy target is met. Two-phase
    // plans have no timed schedule to perturb and skip the stage.
    let mut plan = plan;
    let mut certificate = certificate;
    let mut slack = None;
    let mut dilation = 1;
    if let (Some(policy), PlanKind::Timed(schedule)) = (slack_policy, &plan) {
        let stage_start = Instant::now();
        let mut slack_span = chronus_trace::span!("engine.stage.slack").entered();
        match buy_slack(instance, schedule, policy) {
            Some((shipped, slack_cert, cert, factor)) => {
                let target_met = slack_cert.slack_steps >= policy.target_steps;
                if slack_span.is_recording() {
                    slack_span.record("slack_steps", slack_cert.slack_steps);
                    slack_span.record("dilation", factor);
                    slack_span.record("target_met", target_met);
                }
                metrics.record_slack(&slack_cert, factor, target_met);
                plan = PlanKind::Timed(shipped);
                if verify.enabled {
                    certificate = Some(cert);
                }
                slack = Some(slack_cert);
                dilation = factor;
            }
            None => {
                // Even the undilated winner failed to re-certify — a
                // planner/certifier disagreement worth surfacing.
                slack_span.record("outcome", "uncertifiable");
                metrics.record_slack_failure();
            }
        }
        drop(slack_span);
        metrics.record_slack_elapsed(stage_start.elapsed());
    }

    metrics.record_certification(verify.enabled, certificate.is_some());
    if deadline_exceeded {
        chronus_trace::instant!("engine.deadline_expired", request = req.id.0);
        chronus_trace::FlightRecorder::trigger("deadline-expired");
    }
    if plan_span.is_recording() {
        plan_span.record("winner", winner_stage.to_string());
        plan_span.record("cache_hit", cache_hit);
        plan_span.record("deadline_exceeded", deadline_exceeded);
        plan_span.record("certified", certificate.is_some());
    }
    let span_id = plan_span.id().unwrap_or(0);
    drop(plan_span);
    let planned = PlannedUpdate {
        id: req.id,
        plan,
        winner: winner_stage,
        attempts,
        elapsed: started.elapsed(),
        cache_hit,
        te_nodes: timenet.nodes.len(),
        te_links: timenet.links.len(),
        deadline_exceeded,
        certificate,
        slack,
        dilation,
        span_id,
    };
    metrics.record_completion(&planned);
    planned
}

/// Plans `requests` one by one on the calling thread against a fresh
/// cache — the reference behaviour the concurrent engine must
/// reproduce plan-for-plan (see the equivalence property test).
pub fn plan_sequential(requests: &[UpdateRequest]) -> Vec<PlannedUpdate> {
    let cache = TimeNetCache::new();
    let metrics = EngineMetrics::new();
    let mut ws = SimWorkspace::default();
    requests
        .iter()
        .map(|r| plan_with_chain_in(r, &cache, &metrics, &mut ws))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use chronus_net::motivating_example;
    use chronus_timenet::{FluidSimulator, Verdict};
    use std::sync::Arc;

    fn req(deadline: Duration) -> UpdateRequest {
        UpdateRequest::new(0, Arc::new(motivating_example()), deadline)
    }

    /// k=4 fat tree with one pod-local migration per pod — fully
    /// pod-separable, so the sharded stage plans it without
    /// reservations (mirrors `chronus_core::shard`'s fixture).
    fn separable_instance() -> UpdateInstance {
        use chronus_net::topology::{fat_tree, LinkParams};
        use chronus_net::{Flow, FlowId, Path};
        let net = fat_tree(
            4,
            LinkParams {
                capacity: 1000,
                delay: 1,
            },
        );
        let by_name = |n: &str| {
            net.switches()
                .find(|&s| net.switch_name(s) == Some(n))
                .unwrap()
        };
        let mut flows = Vec::new();
        for pod in 0..4u32 {
            let e0 = by_name(&format!("edge{}", 2 * pod));
            let e1 = by_name(&format!("edge{}", 2 * pod + 1));
            let a0 = by_name(&format!("agg{}", 2 * pod));
            let a1 = by_name(&format!("agg{}", 2 * pod + 1));
            flows.push(
                Flow::new(
                    FlowId(pod),
                    100,
                    Path::new(vec![e0, a0, e1]),
                    Path::new(vec![e0, a1, e1]),
                )
                .unwrap(),
            );
        }
        UpdateInstance::new(net, flows).unwrap()
    }

    #[test]
    fn sharded_stage_wins_multi_flow_requests_when_configured() {
        let inst = separable_instance();
        let cache = TimeNetCache::new();
        let metrics = EngineMetrics::new();
        let mut ws = SimWorkspace::default();
        let request = UpdateRequest::new(1, Arc::new(inst.clone()), Duration::from_secs(30));
        let sharding = ShardingConfig::default();
        let planned = plan_with_chain_sharded(
            &request,
            &cache,
            &metrics,
            &mut ws,
            &VerifyConfig::default(),
            None,
            Some(&sharding),
        );
        assert_eq!(planned.winner, Stage::Sharded);
        assert_eq!(planned.attempts.len(), 4);
        for stage in [Stage::Greedy, Stage::Tree, Stage::TwoPhase] {
            assert!(matches!(
                planned.attempt(stage).unwrap().outcome,
                StageOutcome::Skipped(_)
            ));
        }
        // The composed certificate seals the schedule against the
        // original joint instance.
        let cert = planned.certificate.as_ref().expect("composed certificate");
        assert_eq!(cert.check(&inst), Ok(()));
        let schedule = planned.timed_schedule().expect("timed plan");
        assert_eq!(
            FluidSimulator::check(&inst, schedule).verdict(),
            Verdict::Consistent
        );
        // Without a sharding config the attempt list stays three-stage.
        let unsharded = plan_with_chain_slack(
            &request,
            &cache,
            &metrics,
            &mut ws,
            &VerifyConfig::default(),
            None,
        );
        assert!(unsharded.attempt(Stage::Sharded).is_none());
        assert_eq!(unsharded.attempts.len(), 3);
    }

    #[test]
    fn sharded_stage_skips_single_flow_requests() {
        let cache = TimeNetCache::new();
        let metrics = EngineMetrics::new();
        let mut ws = SimWorkspace::default();
        let sharding = ShardingConfig::default();
        let planned = plan_with_chain_sharded(
            &req(Duration::from_secs(30)),
            &cache,
            &metrics,
            &mut ws,
            &VerifyConfig::default(),
            None,
            Some(&sharding),
        );
        assert_eq!(planned.winner, Stage::Greedy);
        assert_eq!(planned.attempts.len(), 4);
        assert_eq!(
            planned.attempt(Stage::Sharded).unwrap().outcome,
            StageOutcome::Skipped("single-flow request".into())
        );
    }

    #[test]
    fn greedy_wins_the_motivating_example() {
        let cache = TimeNetCache::new();
        let metrics = EngineMetrics::new();
        let planned = plan_with_chain(&req(Duration::from_secs(30)), &cache, &metrics);
        assert_eq!(planned.winner, Stage::Greedy);
        assert!(!planned.deadline_exceeded);
        let schedule = planned.timed_schedule().expect("timed plan");
        let inst = motivating_example();
        let report = FluidSimulator::check(&inst, schedule);
        assert_eq!(report.verdict(), Verdict::Consistent);
        // The winning plan ships with an independent certificate that
        // re-validates against the instance.
        let cert = planned.certificate.as_ref().expect("certificate");
        assert_eq!(cert.check(&inst), Ok(()));
        // Later stages are recorded as skipped, in chain order.
        assert_eq!(planned.attempts.len(), 3);
        assert!(matches!(
            planned.attempt(Stage::Tree).unwrap().outcome,
            StageOutcome::Skipped(_)
        ));
        assert!(matches!(
            planned.attempt(Stage::TwoPhase).unwrap().outcome,
            StageOutcome::Skipped(_)
        ));
    }

    #[test]
    fn zero_deadline_degrades_to_two_phase() {
        let cache = TimeNetCache::new();
        let metrics = EngineMetrics::new();
        let planned = plan_with_chain(&req(Duration::ZERO), &cache, &metrics);
        assert_eq!(planned.winner, Stage::TwoPhase);
        assert!(planned.deadline_exceeded);
        assert!(matches!(planned.plan, PlanKind::TwoPhase(_)));
        for stage in [Stage::Greedy, Stage::Tree] {
            assert_eq!(
                planned.attempt(stage).unwrap().outcome,
                StageOutcome::Skipped("deadline exhausted".into())
            );
        }
    }

    #[test]
    fn two_phase_plan_reports_plan_error_instead_of_panicking() {
        let cache = TimeNetCache::new();
        let metrics = EngineMetrics::new();
        let planned = plan_with_chain(&req(Duration::ZERO), &cache, &metrics);
        assert_eq!(planned.winner, Stage::TwoPhase);
        let err = planned
            .timed_schedule()
            .expect_err("two-phase plans carry no timed schedule");
        assert_eq!(
            err,
            PlanError {
                id: planned.id,
                winner: Stage::TwoPhase,
            }
        );
        assert!(err.to_string().contains("two-phase"));
    }

    #[test]
    fn disabled_verification_skips_certificates() {
        let cache = TimeNetCache::new();
        let metrics = EngineMetrics::new();
        let mut ws = SimWorkspace::default();
        let planned = plan_with_chain_cfg(
            &req(Duration::from_secs(30)),
            &cache,
            &metrics,
            &mut ws,
            &VerifyConfig::disabled(),
        );
        assert_eq!(planned.winner, Stage::Greedy);
        assert!(planned.certificate.is_none());
        assert_eq!(metrics.report(&cache).certs.skipped, 1);
    }

    #[test]
    fn sequential_planning_is_deterministic() {
        let requests: Vec<UpdateRequest> = (0..3)
            .map(|i| UpdateRequest::new(i, Arc::new(motivating_example()), Duration::from_secs(30)))
            .collect();
        let a = plan_sequential(&requests);
        let b = plan_sequential(&requests);
        assert_eq!(a.len(), 3);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.winner, y.winner);
            assert_eq!(x.plan.schedule(), y.plan.schedule());
        }
    }
}
