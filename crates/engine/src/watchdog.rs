//! Runtime watchdog for deployed timed plans.
//!
//! Planning ends with a [`crate::PlannedUpdate`]; deployment is where
//! timing faults live. This module is the controller-side tracker a
//! deployer drives while a timed plan is in flight: register each
//! scheduled update's nominal firing instant, report applies as their
//! confirmations arrive, and poll [`UpdateWatchdog::check`] — overdue
//! tasks come back as re-arm verdicts while the certified slack window
//! can still absorb the delay, and as a single rollback verdict once
//! it cannot.
//!
//! The decision logic is `chronus-faults`' [`RecoveryPolicy`] and the
//! tolerance is a [`SlackBudget`] — typically derived from the slack
//! certificate the engine's slack stage attached to the plan
//! ([`UpdateWatchdog::from_certificate`]), closing the loop from
//! *certified* tolerance to *enforced* tolerance. Counters flow
//! through a [`FaultStats`] scoped registry, so a deployment's
//! re-arm/rollback history exports next to the engine's planning
//! metrics.

use chronus_clock::Nanos;
use chronus_faults::{FaultStats, FaultSummary, RecoveryAction, RecoveryPolicy, SlackBudget};
use chronus_verify::SlackCertificate;

/// One tracked task: a scheduled update's nominal firing instant and
/// whether its apply has been confirmed.
#[derive(Clone, Copy, Debug)]
struct Tracked {
    nominal_ns: Nanos,
    applied: bool,
}

/// What the watchdog asks the deployer to do about the plan's overdue
/// tasks.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WatchdogVerdict {
    /// Re-send `task` so it applies at `at` (true time, ns) — the
    /// delay stays inside the certified slack window.
    Rearm {
        /// The task to re-send (the id [`UpdateWatchdog::track`]
        /// returned).
        task: usize,
        /// When the re-sent update should apply (true time, ns).
        at: Nanos,
    },
    /// The slack window cannot absorb the delay: abandon the timed
    /// plan and complete the update through two-phase rollback.
    Rollback,
}

/// Controller-side deadline tracker for one deployed timed plan.
#[derive(Debug)]
pub struct UpdateWatchdog {
    policy: RecoveryPolicy,
    slack: SlackBudget,
    stats: FaultStats,
    tasks: Vec<Tracked>,
    rolled_back: bool,
}

impl UpdateWatchdog {
    /// A watchdog with an explicit re-arm margin (how long a re-sent
    /// update takes to land and apply) and slack budget.
    pub fn new(margin_ns: Nanos, slack: SlackBudget) -> Self {
        UpdateWatchdog {
            policy: RecoveryPolicy::new(margin_ns),
            slack,
            stats: FaultStats::new(),
            tasks: Vec::new(),
            rolled_back: false,
        }
    }

    /// A watchdog whose slack budget is taken from a slack
    /// certificate under the deployment's step length — the intended
    /// pairing with [`crate::PlannedUpdate::slack`].
    pub fn from_certificate(
        certificate: &SlackCertificate,
        step_ns: Nanos,
        margin_ns: Nanos,
    ) -> Self {
        Self::new(margin_ns, SlackBudget::new(certificate.delta_ns(step_ns)))
    }

    /// The slack budget recoveries are held to.
    pub fn slack(&self) -> SlackBudget {
        self.slack
    }

    /// Registers one scheduled update by its nominal firing instant
    /// (true time, ns), returning its task id.
    pub fn track(&mut self, nominal_ns: Nanos) -> usize {
        self.stats.record_armed();
        self.tasks.push(Tracked {
            nominal_ns,
            applied: false,
        });
        self.tasks.len() - 1
    }

    /// Confirms `task` applied at `at_ns`, recording its firing
    /// deviation. Returns `false` for an unknown or already-confirmed
    /// task (late duplicate confirmations are absorbed, not recounted).
    pub fn note_applied(&mut self, task: usize, at_ns: Nanos) -> bool {
        match self.tasks.get_mut(task) {
            Some(t) if !t.applied => {
                t.applied = true;
                self.stats.record_fired(at_ns - t.nominal_ns);
                true
            }
            _ => false,
        }
    }

    /// Polls the deadline check at true time `now`: every unconfirmed
    /// task past its margin gets a verdict. One rollback verdict
    /// replaces everything else — once any task's delay exceeds the
    /// slack window the whole timed plan is abandoned, and subsequent
    /// polls return nothing.
    pub fn check(&mut self, now: Nanos) -> Vec<WatchdogVerdict> {
        if self.rolled_back {
            return Vec::new();
        }
        let mut verdicts = Vec::new();
        for (task, t) in self.tasks.iter().enumerate() {
            if t.applied || now < t.nominal_ns + self.policy.margin_ns {
                continue;
            }
            match self.policy.decide(t.nominal_ns, now, self.slack) {
                RecoveryAction::Rearm { at } => {
                    self.stats.record_rearm();
                    verdicts.push(WatchdogVerdict::Rearm { task, at });
                }
                RecoveryAction::Rollback => {
                    self.rolled_back = true;
                    self.stats.record_rollback();
                    return vec![WatchdogVerdict::Rollback];
                }
            }
        }
        verdicts
    }

    /// Tasks registered but not yet confirmed applied.
    pub fn pending(&self) -> usize {
        self.tasks.iter().filter(|t| !t.applied).count()
    }

    /// `true` once a poll has abandoned the timed plan.
    pub fn rolled_back(&self) -> bool {
        self.rolled_back
    }

    /// The watchdog's live instruments (a `chronus_faults_*` scoped
    /// registry; see [`FaultStats::registry`] for exposition).
    pub fn stats(&self) -> &FaultStats {
        &self.stats
    }

    /// Snapshot of the deployment's fault/recovery counters.
    pub fn summary(&self) -> FaultSummary {
        self.stats.summary()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS: Nanos = 1_000_000;

    #[test]
    fn on_time_applies_draw_no_verdicts() {
        let mut wd = UpdateWatchdog::new(10 * MS, SlackBudget::new(100 * MS));
        let a = wd.track(1_000 * MS);
        let b = wd.track(1_100 * MS);
        assert_eq!(wd.pending(), 2);
        assert!(wd.note_applied(a, 1_000 * MS + 20_000));
        assert!(wd.note_applied(b, 1_100 * MS - 15_000));
        assert!(!wd.note_applied(b, 1_100 * MS), "double confirm absorbed");
        assert!(!wd.note_applied(99, 0), "unknown task rejected");
        assert_eq!(wd.pending(), 0);
        assert!(wd.check(2_000 * MS).is_empty());
        let s = wd.summary();
        assert_eq!(s.triggers_armed, 2);
        assert_eq!(s.triggers_fired, 2);
        assert_eq!(s.max_fire_deviation_ns, 20_000);
        assert_eq!(s.rearms + s.rollbacks, 0);
    }

    #[test]
    fn overdue_task_rearms_within_slack_then_rolls_back() {
        let mut wd = UpdateWatchdog::new(10 * MS, SlackBudget::new(100 * MS));
        let task = wd.track(1_000 * MS);
        // Before the margin elapses: no verdict yet.
        assert!(wd.check(1_005 * MS).is_empty());
        // Past the margin, inside slack: re-arm as soon as possible.
        let v = wd.check(1_050 * MS);
        assert_eq!(
            v,
            vec![WatchdogVerdict::Rearm {
                task,
                at: 1_060 * MS
            }],
            "earliest landing = now + margin"
        );
        // Far past slack: the plan is abandoned — once.
        assert_eq!(wd.check(1_200 * MS), vec![WatchdogVerdict::Rollback]);
        assert!(wd.rolled_back());
        assert!(wd.check(1_300 * MS).is_empty(), "rollback is terminal");
        let s = wd.summary();
        assert_eq!(s.rearms, 1);
        assert_eq!(s.rollbacks, 1);
    }

    #[test]
    fn rollback_preempts_other_rearms_in_the_same_poll() {
        let mut wd = UpdateWatchdog::new(10 * MS, SlackBudget::new(20 * MS));
        wd.track(2_000 * MS); // will still be rearmable
        wd.track(1_000 * MS); // hopelessly late at poll time
        let v = wd.check(2_005 * MS);
        assert_eq!(v, vec![WatchdogVerdict::Rollback]);
        assert_eq!(wd.summary().rollbacks, 1);
    }

    #[test]
    fn certificate_derived_budget_matches_delta() {
        let wd = UpdateWatchdog::from_certificate(
            &SlackCertificate {
                slack_steps: 1,
                schedules_checked: 1,
                budget_exhausted: false,
                per_switch: Vec::new(),
                counterexample: None,
            },
            100 * MS,
            10 * MS,
        );
        // One step of slack at a 100 ms step is Δ = step − 1 ns.
        assert_eq!(wd.slack().delta_ns, 100 * MS - 1);
    }
}
