//! Memoized time-extended-network construction.
//!
//! Materializing `G_T` is the one piece of planning work that is a
//! pure function of `(topology, flow, horizon)`: batches that replan
//! the same flow (retries, deadline re-submissions, emulator reruns)
//! rebuild an identical window every time. The engine shares one
//! [`TimeNetCache`] across all workers and memoizes the owned
//! [`MaterializedTimeNet`] snapshot per key.
//!
//! A long-running service (the `chronusd` daemon) keeps one engine —
//! and hence one cache — resident across its whole lifetime, so the
//! cache optionally takes a capacity bound: when set, inserting past
//! it evicts the oldest window (FIFO), counted by
//! [`TimeNetCache::evictions`]. Unbounded remains the default for
//! batch use.
// `flows[0]`: the engine plans single-flow instances (the cache key
// is per-flow by design).
#![allow(clippy::indexing_slicing)]

use chronus_net::{Flow, Network, TimeStep, UpdateInstance};
use chronus_timenet::{MaterializedTimeNet, TimeExtendedNetwork};
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental FNV-1a over 8-byte words.
#[derive(Clone, Copy)]
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(FNV_OFFSET)
    }

    fn write_u64(&mut self, v: u64) {
        for byte in v.to_le_bytes() {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    fn finish(self) -> u64 {
        self.0
    }
}

/// Structural hash of a topology: switch count plus every link's
/// endpoints, capacity and delay, in the network's canonical link
/// order.
pub fn topology_hash(net: &Network) -> u64 {
    let mut h = Fnv::new();
    h.write_u64(net.switch_count() as u64);
    for l in net.links() {
        h.write_u64(u64::from(l.src.0));
        h.write_u64(u64::from(l.dst.0));
        h.write_u64(l.capacity);
        h.write_u64(l.delay);
    }
    h.finish()
}

/// Structural hash of a flow: id, demand and both paths hop by hop.
pub fn flow_signature(flow: &Flow) -> u64 {
    let mut h = Fnv::new();
    h.write_u64(u64::from(flow.id.0));
    h.write_u64(flow.demand);
    for path in [&flow.initial, &flow.fin] {
        h.write_u64(path.hops().len() as u64);
        for hop in path.hops() {
            h.write_u64(u64::from(hop.0));
        }
    }
    h.finish()
}

/// Key of one memoized `G_T` window.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct CacheKey {
    /// [`topology_hash`] of the instance's network.
    pub topo_hash: u64,
    /// [`flow_signature`] of the flow being migrated.
    pub flow_sig: u64,
    /// `t_max` of the window (its `t_min` is `-horizon`, mirroring
    /// [`TimeExtendedNetwork::initial_window`]).
    pub horizon: TimeStep,
}

impl CacheKey {
    /// The key for a single-flow instance with the given horizon.
    pub fn for_instance(instance: &UpdateInstance, horizon: TimeStep) -> Self {
        CacheKey {
            topo_hash: topology_hash(&instance.network),
            flow_sig: flow_signature(&instance.flows[0]),
            horizon,
        }
    }
}

/// Map plus FIFO insertion order, under one lock so eviction and
/// lookup agree on membership.
#[derive(Default)]
struct CacheState {
    map: HashMap<CacheKey, Arc<MaterializedTimeNet>>,
    order: VecDeque<CacheKey>,
}

/// Shared, thread-safe memoization of materialized `G_T` windows,
/// optionally bounded with FIFO eviction.
#[derive(Default)]
pub struct TimeNetCache {
    entries: Mutex<CacheState>,
    capacity: Option<usize>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl TimeNetCache {
    /// An empty, unbounded cache.
    pub fn new() -> Self {
        TimeNetCache::default()
    }

    /// An empty cache holding at most `capacity` windows (clamped to
    /// ≥ 1); the oldest window is evicted on overflow.
    pub fn bounded(capacity: usize) -> Self {
        TimeNetCache {
            capacity: Some(capacity.max(1)),
            ..TimeNetCache::default()
        }
    }

    /// The capacity bound, `None` when unbounded.
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// Returns the memoized window for `key`, materializing it from
    /// `instance` on first use. The bool is `true` on a cache hit.
    pub fn get_or_materialize(
        &self,
        key: CacheKey,
        instance: &UpdateInstance,
    ) -> (Arc<MaterializedTimeNet>, bool) {
        if let Some(found) = self.entries.lock().map.get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return (found.clone(), true);
        }
        // Materialize outside the lock: windows can be large, and two
        // threads racing on the same key simply build it twice, with
        // the second insert winning (both snapshots are identical).
        let reach = key.horizon.max(1);
        let te = TimeExtendedNetwork::new(&instance.network, -reach, reach);
        let built = Arc::new(te.materialize());
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut state = self.entries.lock();
        if state.map.insert(key, built.clone()).is_none() {
            state.order.push_back(key);
        }
        if let Some(cap) = self.capacity {
            while state.map.len() > cap {
                match state.order.pop_front() {
                    Some(oldest) => {
                        state.map.remove(&oldest);
                        self.evictions.fetch_add(1, Ordering::Relaxed);
                    }
                    None => break,
                }
            }
        }
        (built, false)
    }

    /// Number of lookups that found a memoized window.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of lookups that had to materialize.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of windows evicted by the capacity bound.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Number of distinct memoized windows.
    pub fn len(&self) -> usize {
        self.entries.lock().map.len()
    }

    /// `true` when nothing has been memoized yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total approximate heap footprint of the memoized windows.
    pub fn approx_bytes(&self) -> usize {
        self.entries
            .lock()
            .map
            .values()
            .map(|m| m.approx_bytes())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chronus_net::motivating_example;

    #[test]
    fn hashes_are_stable_and_discriminating() {
        let a = motivating_example();
        let b = motivating_example();
        assert_eq!(topology_hash(&a.network), topology_hash(&b.network));
        assert_eq!(flow_signature(&a.flows[0]), flow_signature(&b.flows[0]));
        let mut c = motivating_example();
        c.flows[0].demand += 1;
        assert_ne!(flow_signature(&a.flows[0]), flow_signature(&c.flows[0]));
    }

    #[test]
    fn memoizes_by_key() {
        let inst = motivating_example();
        let cache = TimeNetCache::new();
        let key = CacheKey::for_instance(&inst, 4);
        let (first, hit1) = cache.get_or_materialize(key, &inst);
        assert!(!hit1);
        let (second, hit2) = cache.get_or_materialize(key, &inst);
        assert!(hit2);
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(cache.len(), 1);
        // A different horizon is a different window.
        let (third, hit3) = cache.get_or_materialize(CacheKey::for_instance(&inst, 6), &inst);
        assert!(!hit3);
        assert_ne!(third.t_max(), first.t_max());
        assert_eq!(cache.len(), 2);
        assert!(cache.approx_bytes() > 0);
        assert_eq!(cache.evictions(), 0, "unbounded caches never evict");
    }

    #[test]
    fn bounded_cache_evicts_fifo() {
        let inst = motivating_example();
        let cache = TimeNetCache::bounded(2);
        assert_eq!(cache.capacity(), Some(2));
        for horizon in [3, 4, 5] {
            let key = CacheKey::for_instance(&inst, horizon);
            let (_, hit) = cache.get_or_materialize(key, &inst);
            assert!(!hit);
        }
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evictions(), 1);
        // Oldest (horizon 3) was evicted; newest two still hit.
        let (_, hit) = cache.get_or_materialize(CacheKey::for_instance(&inst, 5), &inst);
        assert!(hit);
        let (_, hit) = cache.get_or_materialize(CacheKey::for_instance(&inst, 4), &inst);
        assert!(hit);
        let (_, miss) = cache.get_or_materialize(CacheKey::for_instance(&inst, 3), &inst);
        assert!(!miss, "horizon 3 was evicted and re-materializes");
        assert_eq!(cache.evictions(), 2);
    }
}
