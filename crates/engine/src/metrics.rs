//! Engine-level planning metrics.
//!
//! Workers record into lock-free atomic counters; [`PlanReport`] is a
//! point-in-time snapshot with derived rates and mean latencies,
//! printable as the engine's operational summary.

use crate::cache::TimeNetCache;
use crate::fallback::{PlannedUpdate, Stage, StageOutcome};
use chronus_timenet::GateStats;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Per-stage atomic counters.
#[derive(Default, Debug)]
struct StageCounters {
    attempts: AtomicU64,
    wins: AtomicU64,
    failures: AtomicU64,
    skips: AtomicU64,
    nanos: AtomicU64,
}

/// Exact-gate counters, mirroring [`GateStats`] atomically.
#[derive(Default, Debug)]
struct GateCounters {
    incremental_checks: AtomicU64,
    full_checks: AtomicU64,
    ledger_applies: AtomicU64,
    ledger_undos: AtomicU64,
    cells_touched: AtomicU64,
    full_equivalent_cells: AtomicU64,
}

/// Independent-certifier counters, mirroring [`CertStats`] atomically.
#[derive(Default, Debug)]
struct CertCounters {
    issued: AtomicU64,
    failed: AtomicU64,
    skipped: AtomicU64,
}

/// Shared counters every worker records into.
#[derive(Default, Debug)]
pub struct EngineMetrics {
    greedy: StageCounters,
    tree: StageCounters,
    tp: StageCounters,
    gate: GateCounters,
    certs: CertCounters,
    submitted: AtomicU64,
    completed: AtomicU64,
    timeouts: AtomicU64,
    queue_depth: AtomicU64,
    queue_peak: AtomicU64,
}

impl EngineMetrics {
    /// Fresh, zeroed metrics.
    pub fn new() -> Self {
        EngineMetrics::default()
    }

    fn stage(&self, stage: Stage) -> &StageCounters {
        match stage {
            Stage::Greedy => &self.greedy,
            Stage::Tree => &self.tree,
            Stage::TwoPhase => &self.tp,
        }
    }

    /// Records a stage that ran to an outcome.
    pub fn record_attempt(&self, stage: Stage, outcome: &StageOutcome, elapsed: Duration) {
        let c = self.stage(stage);
        c.attempts.fetch_add(1, Ordering::Relaxed);
        c.nanos
            .fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
        match outcome {
            StageOutcome::Won => c.wins.fetch_add(1, Ordering::Relaxed),
            StageOutcome::Failed(_) => c.failures.fetch_add(1, Ordering::Relaxed),
            StageOutcome::Skipped(_) => c.skips.fetch_add(1, Ordering::Relaxed),
        };
    }

    /// Records a stage skipped by deadline pressure.
    pub fn record_skip(&self, stage: Stage) {
        self.stage(stage).skips.fetch_add(1, Ordering::Relaxed);
    }

    /// Folds one planning run's exact-gate counters into the engine
    /// totals.
    pub fn record_gate(&self, stats: &GateStats) {
        let g = &self.gate;
        g.incremental_checks
            .fetch_add(stats.incremental_checks, Ordering::Relaxed);
        g.full_checks
            .fetch_add(stats.full_checks, Ordering::Relaxed);
        g.ledger_applies
            .fetch_add(stats.ledger_applies, Ordering::Relaxed);
        g.ledger_undos
            .fetch_add(stats.ledger_undos, Ordering::Relaxed);
        g.cells_touched
            .fetch_add(stats.cells_touched, Ordering::Relaxed);
        g.full_equivalent_cells
            .fetch_add(stats.full_equivalent_cells, Ordering::Relaxed);
    }

    /// Records one request's certification outcome: `skipped` when
    /// verification was disabled, `issued` when the certifier vouched
    /// for the winning plan, `failed` when it ran and could not.
    pub fn record_certification(&self, enabled: bool, issued: bool) {
        let c = &self.certs;
        match (enabled, issued) {
            (false, _) => c.skipped.fetch_add(1, Ordering::Relaxed),
            (true, true) => c.issued.fetch_add(1, Ordering::Relaxed),
            (true, false) => c.failed.fetch_add(1, Ordering::Relaxed),
        };
    }

    /// Records a finished request.
    pub fn record_completion(&self, planned: &PlannedUpdate) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        if planned.deadline_exceeded {
            self.timeouts.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records a request entering the queue; returns nothing but keeps
    /// the running and peak depth.
    pub fn record_enqueue(&self) {
        self.submitted.fetch_add(1, Ordering::Relaxed);
        let depth = self.queue_depth.fetch_add(1, Ordering::Relaxed) + 1;
        self.queue_peak.fetch_max(depth, Ordering::Relaxed);
    }

    /// Records a worker picking a request off the queue.
    pub fn record_dequeue(&self) {
        self.queue_depth.fetch_sub(1, Ordering::Relaxed);
    }

    /// Snapshots everything into a [`PlanReport`], folding in the
    /// shared cache's counters.
    pub fn report(&self, cache: &TimeNetCache) -> PlanReport {
        let snap = |c: &StageCounters| StageStats {
            attempts: c.attempts.load(Ordering::Relaxed),
            wins: c.wins.load(Ordering::Relaxed),
            failures: c.failures.load(Ordering::Relaxed),
            skips: c.skips.load(Ordering::Relaxed),
            total: Duration::from_nanos(c.nanos.load(Ordering::Relaxed)),
        };
        PlanReport {
            greedy: snap(&self.greedy),
            tree: snap(&self.tree),
            two_phase: snap(&self.tp),
            gate: GateStats {
                incremental_checks: self.gate.incremental_checks.load(Ordering::Relaxed),
                full_checks: self.gate.full_checks.load(Ordering::Relaxed),
                ledger_applies: self.gate.ledger_applies.load(Ordering::Relaxed),
                ledger_undos: self.gate.ledger_undos.load(Ordering::Relaxed),
                cells_touched: self.gate.cells_touched.load(Ordering::Relaxed),
                full_equivalent_cells: self.gate.full_equivalent_cells.load(Ordering::Relaxed),
            },
            certs: CertStats {
                issued: self.certs.issued.load(Ordering::Relaxed),
                failed: self.certs.failed.load(Ordering::Relaxed),
                skipped: self.certs.skipped.load(Ordering::Relaxed),
            },
            submitted: self.submitted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            queue_peak: self.queue_peak.load(Ordering::Relaxed),
            cache_hits: cache.hits(),
            cache_misses: cache.misses(),
            cache_entries: cache.len() as u64,
            cache_bytes: cache.approx_bytes() as u64,
        }
    }
}

/// Snapshot of one stage's counters.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct StageStats {
    /// Times the stage ran.
    pub attempts: u64,
    /// Times it produced the winning plan.
    pub wins: u64,
    /// Times it ran and could not plan.
    pub failures: u64,
    /// Times it was skipped (deadline or earlier winner).
    pub skips: u64,
    /// Total wall-clock time spent inside the stage.
    pub total: Duration,
}

impl StageStats {
    /// Mean latency per attempt, zero when the stage never ran.
    pub fn mean_latency(&self) -> Duration {
        if self.attempts == 0 {
            Duration::ZERO
        } else {
            self.total / self.attempts as u32
        }
    }
}

/// Snapshot of the independent certifier's counters across completed
/// requests.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct CertStats {
    /// Winning plans the certifier vouched for.
    pub issued: u64,
    /// Winning plans the certifier ran on and refused to vouch for
    /// (e.g. a two-phase fallback whose flip window congests).
    pub failed: u64,
    /// Requests planned with certification disabled.
    pub skipped: u64,
}

/// Point-in-time engine report: per-stage latencies and win counts,
/// cache effectiveness, queue pressure and deadline casualties.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PlanReport {
    /// Greedy-stage counters.
    pub greedy: StageStats,
    /// Tree-stage counters.
    pub tree: StageStats,
    /// Two-phase-stage counters.
    pub two_phase: StageStats,
    /// Aggregated exact-gate counters across all greedy-stage runs:
    /// incremental vs full checks, ledger traffic, and the cell-visit
    /// volume a full re-simulation would have cost instead.
    pub gate: GateStats,
    /// Independent-certifier counters across completed requests.
    pub certs: CertStats,
    /// Requests accepted into the queue.
    pub submitted: u64,
    /// Requests fully planned.
    pub completed: u64,
    /// Requests whose deadline expired before every optimizing stage
    /// could run.
    pub timeouts: u64,
    /// Requests currently queued.
    pub queue_depth: u64,
    /// Largest queue depth observed.
    pub queue_peak: u64,
    /// Time-extended-window cache hits.
    pub cache_hits: u64,
    /// Time-extended-window cache misses (materializations).
    pub cache_misses: u64,
    /// Distinct memoized windows.
    pub cache_entries: u64,
    /// Approximate bytes held by the cache.
    pub cache_bytes: u64,
}

impl PlanReport {
    /// Cache hit rate in `[0, 1]`; zero before any lookup.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Fraction of completed requests that fell through to the
    /// two-phase fallback.
    pub fn fallback_rate(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.two_phase.wins as f64 / self.completed as f64
        }
    }
}

impl fmt::Display for PlanReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "engine: {}/{} planned, {} deadline-degraded, queue {} (peak {})",
            self.completed, self.submitted, self.timeouts, self.queue_depth, self.queue_peak
        )?;
        for (name, s) in [
            ("greedy", &self.greedy),
            ("tree", &self.tree),
            ("two-phase", &self.two_phase),
        ] {
            writeln!(
                f,
                "  {name:<9} {} attempts, {} wins, {} failures, {} skips, mean {:?}",
                s.attempts,
                s.wins,
                s.failures,
                s.skips,
                s.mean_latency()
            )?;
        }
        writeln!(
            f,
            "  certifier: {} issued, {} failed, {} skipped",
            self.certs.issued, self.certs.failed, self.certs.skipped
        )?;
        writeln!(
            f,
            "  exact gate: {} incremental / {} full checks, \
             {} applies, {} undos, {} cells touched (full-sim equivalent {})",
            self.gate.incremental_checks,
            self.gate.full_checks,
            self.gate.ledger_applies,
            self.gate.ledger_undos,
            self.gate.cells_touched,
            self.gate.full_equivalent_cells
        )?;
        write!(
            f,
            "  timenet cache: {} hits / {} misses ({:.0}% hit), {} windows, ~{} B",
            self.cache_hits,
            self.cache_misses,
            self.cache_hit_rate() * 100.0,
            self.cache_entries,
            self.cache_bytes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_bookkeeping_and_rates() {
        let m = EngineMetrics::new();
        let cache = TimeNetCache::new();
        m.record_attempt(Stage::Greedy, &StageOutcome::Won, Duration::from_micros(10));
        m.record_attempt(
            Stage::Greedy,
            &StageOutcome::Failed("x".into()),
            Duration::from_micros(30),
        );
        m.record_skip(Stage::Tree);
        m.record_certification(true, true);
        m.record_certification(true, false);
        m.record_certification(false, false);
        m.record_enqueue();
        m.record_enqueue();
        m.record_dequeue();
        let r = m.report(&cache);
        assert_eq!(r.greedy.attempts, 2);
        assert_eq!(r.greedy.wins, 1);
        assert_eq!(r.greedy.failures, 1);
        assert_eq!(r.tree.skips, 1);
        assert_eq!(r.greedy.mean_latency(), Duration::from_micros(20));
        assert_eq!(r.submitted, 2);
        assert_eq!(r.queue_depth, 1);
        assert_eq!(r.queue_peak, 2);
        assert_eq!(r.cache_hit_rate(), 0.0);
        assert_eq!(
            r.certs,
            CertStats {
                issued: 1,
                failed: 1,
                skipped: 1
            }
        );
        let text = r.to_string();
        assert!(text.contains("greedy"), "{text}");
        assert!(text.contains("certifier: 1 issued"), "{text}");
        assert!(text.contains("timenet cache"), "{text}");
    }
}
