//! Engine-level planning metrics.
//!
//! The counters live in a per-engine [`MetricsRegistry`]
//! (`chronus-trace`), under `chronus_engine_*` names; the recording
//! methods write through cached lock-free handles, so the hot path
//! never takes the registry lock. [`PlanReport`] is a derived view
//! over the registry — the same numbers are exportable as Prometheus
//! text or a JSON snapshot via [`EngineMetrics::registry`].
//!
//! One registry per [`crate::Engine`] instance (not process-global)
//! keeps concurrent engines — and the test suite's parallel engine
//! tests — from bleeding counts into each other; callers that want a
//! whole-process rollup absorb each snapshot into
//! [`MetricsRegistry::global`].

use crate::cache::TimeNetCache;
use crate::fallback::{PlannedUpdate, Stage, StageOutcome};
use chronus_net::TimeStep;
use chronus_timenet::GateStats;
use chronus_trace::{Counter, Gauge, Histogram, MetricsRegistry, MetricsSnapshot};
use chronus_verify::SlackCertificate;
use std::fmt;
use std::time::Duration;

/// Cached handles for one fallback stage's instruments.
struct StageHandles {
    attempts: Counter,
    wins: Counter,
    failures: Counter,
    skips: Counter,
    nanos: Histogram,
}

impl StageHandles {
    fn new(registry: &MetricsRegistry, stage: &str) -> Self {
        let name = |suffix: &str| format!("chronus_engine_{stage}_{suffix}");
        StageHandles {
            attempts: registry.counter(&name("attempts_total")),
            wins: registry.counter(&name("wins_total")),
            failures: registry.counter(&name("failures_total")),
            skips: registry.counter(&name("skips_total")),
            nanos: registry.histogram(&name("stage_ns")),
        }
    }

    fn stats(&self) -> StageStats {
        StageStats {
            attempts: self.attempts.get(),
            wins: self.wins.get(),
            failures: self.failures.get(),
            skips: self.skips.get(),
            total: Duration::from_nanos(self.nanos.sum()),
        }
    }
}

/// Shared instruments every worker records into, backed by one
/// registry per engine.
pub struct EngineMetrics {
    registry: MetricsRegistry,
    sharded: StageHandles,
    greedy: StageHandles,
    tree: StageHandles,
    tp: StageHandles,
    shard_shards_planned: Counter,
    shard_replan_rounds: Counter,
    shard_conflicts: Counter,
    shard_joint_fallbacks: Counter,
    shard_cross_links: Gauge,
    shard_shared_links: Gauge,
    gate_incremental_checks: Counter,
    gate_full_checks: Counter,
    gate_incremental_runs: Counter,
    gate_full_runs: Counter,
    greedy_arena_bytes: Gauge,
    greedy_parallel_candidates: Gauge,
    gate_ledger_applies: Counter,
    gate_ledger_undos: Counter,
    gate_cells_touched: Counter,
    gate_full_equivalent_cells: Counter,
    certs_issued: Counter,
    certs_failed: Counter,
    certs_skipped: Counter,
    slack_certified: Counter,
    slack_dilated: Counter,
    slack_target_missed: Counter,
    slack_uncertifiable: Counter,
    slack_schedules_checked: Counter,
    slack_steps: Histogram,
    slack_nanos: Histogram,
    submitted: Counter,
    completed: Counter,
    timeouts: Counter,
    queue_depth: Gauge,
    queue_peak: Gauge,
}

impl Default for EngineMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for EngineMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EngineMetrics")
            .field("snapshot", &self.registry.snapshot())
            .finish()
    }
}

impl EngineMetrics {
    /// Fresh, zeroed metrics over a new scoped registry.
    pub fn new() -> Self {
        let registry = MetricsRegistry::new();
        let counter = |name: &str| registry.counter(name);
        EngineMetrics {
            sharded: StageHandles::new(&registry, "sharded"),
            greedy: StageHandles::new(&registry, "greedy"),
            tree: StageHandles::new(&registry, "tree"),
            tp: StageHandles::new(&registry, "two_phase"),
            shard_shards_planned: counter("chronus_engine_shard_shards_planned_total"),
            shard_replan_rounds: counter("chronus_engine_shard_replan_rounds_total"),
            shard_conflicts: counter("chronus_engine_shard_conflicts_total"),
            shard_joint_fallbacks: counter("chronus_engine_shard_joint_fallbacks_total"),
            shard_cross_links: registry.gauge("chronus_engine_shard_cross_links"),
            shard_shared_links: registry.gauge("chronus_engine_shard_shared_links"),
            gate_incremental_checks: counter("chronus_engine_gate_incremental_checks_total"),
            gate_full_checks: counter("chronus_engine_gate_full_checks_total"),
            gate_incremental_runs: counter("chronus_engine_gate_incremental_runs_total"),
            gate_full_runs: counter("chronus_engine_gate_full_runs_total"),
            greedy_arena_bytes: registry.gauge("chronus_engine_greedy_arena_bytes"),
            greedy_parallel_candidates: registry.gauge("chronus_engine_greedy_parallel_candidates"),
            gate_ledger_applies: counter("chronus_engine_gate_ledger_applies_total"),
            gate_ledger_undos: counter("chronus_engine_gate_ledger_undos_total"),
            gate_cells_touched: counter("chronus_engine_gate_cells_touched_total"),
            gate_full_equivalent_cells: counter("chronus_engine_gate_full_equivalent_cells_total"),
            certs_issued: counter("chronus_engine_certs_issued_total"),
            certs_failed: counter("chronus_engine_certs_failed_total"),
            certs_skipped: counter("chronus_engine_certs_skipped_total"),
            slack_certified: counter("chronus_engine_slack_certified_total"),
            slack_dilated: counter("chronus_engine_slack_dilated_total"),
            slack_target_missed: counter("chronus_engine_slack_target_missed_total"),
            slack_uncertifiable: counter("chronus_engine_slack_uncertifiable_total"),
            slack_schedules_checked: counter("chronus_engine_slack_schedules_checked_total"),
            slack_steps: registry.histogram("chronus_engine_slack_steps"),
            slack_nanos: registry.histogram("chronus_engine_slack_stage_ns"),
            submitted: counter("chronus_engine_requests_submitted_total"),
            completed: counter("chronus_engine_requests_completed_total"),
            timeouts: counter("chronus_engine_deadline_timeouts_total"),
            queue_depth: registry.gauge("chronus_engine_queue_depth"),
            queue_peak: registry.gauge("chronus_engine_queue_peak"),
            registry,
        }
    }

    /// The engine-scoped metrics registry backing every counter here,
    /// for Prometheus text exposition
    /// ([`MetricsRegistry::to_prometheus`]), JSON snapshots, or
    /// absorption into [`MetricsRegistry::global`].
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Point-in-time snapshot of every `chronus_engine_*` instrument.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.registry.snapshot()
    }

    fn stage(&self, stage: Stage) -> &StageHandles {
        match stage {
            Stage::Sharded => &self.sharded,
            Stage::Greedy => &self.greedy,
            Stage::Tree => &self.tree,
            Stage::TwoPhase => &self.tp,
        }
    }

    /// Folds one sharded-stage run's statistics into the engine
    /// totals: shards planned, replan rounds burned, reservation
    /// conflicts, and joint fallbacks; the gauges keep the largest
    /// partition-complexity seen.
    pub fn record_shard(&self, stats: &chronus_core::shard::ShardStats) {
        self.shard_shards_planned.add(stats.shards as u64);
        self.shard_replan_rounds.add(stats.replan_rounds as u64);
        self.shard_conflicts.add(stats.conflicts as u64);
        if stats.fell_back_joint {
            self.shard_joint_fallbacks.inc();
        }
        self.shard_cross_links
            .max(stats.cross_links.min(i64::MAX as usize) as i64);
        self.shard_shared_links
            .max(stats.shared_links.min(i64::MAX as usize) as i64);
    }

    /// Records a stage that ran to an outcome.
    pub fn record_attempt(&self, stage: Stage, outcome: &StageOutcome, elapsed: Duration) {
        let s = self.stage(stage);
        s.attempts.inc();
        s.nanos.record(elapsed.as_nanos() as u64);
        match outcome {
            StageOutcome::Won => s.wins.inc(),
            StageOutcome::Failed(_) => s.failures.inc(),
            StageOutcome::Skipped(_) => s.skips.inc(),
        }
    }

    /// Records a stage skipped by deadline pressure.
    pub fn record_skip(&self, stage: Stage) {
        self.stage(stage).skips.inc();
    }

    /// Folds one planning run's exact-gate counters into the engine
    /// totals.
    pub fn record_gate(&self, stats: &GateStats) {
        self.gate_incremental_checks.add(stats.incremental_checks);
        self.gate_full_checks.add(stats.full_checks);
        match stats.backend {
            chronus_timenet::GateBackendKind::Incremental => self.gate_incremental_runs.inc(),
            chronus_timenet::GateBackendKind::Full => self.gate_full_runs.inc(),
        }
        self.gate_ledger_applies.add(stats.ledger_applies);
        self.gate_ledger_undos.add(stats.ledger_undos);
        self.gate_cells_touched.add(stats.cells_touched);
        self.gate_full_equivalent_cells
            .add(stats.full_equivalent_cells);
    }

    /// Records one greedy run's resource telemetry: the simulation-
    /// arena high-water mark (the gauge keeps the largest seen) and
    /// the worker count that scored its candidate waves.
    pub fn record_greedy_resources(&self, arena_bytes: u64, parallel_candidates: usize) {
        self.greedy_arena_bytes
            .max(arena_bytes.min(i64::MAX as u64) as i64);
        self.greedy_parallel_candidates
            .max(parallel_candidates.min(i64::MAX as usize) as i64);
    }

    /// Records one request's certification outcome: `skipped` when
    /// verification was disabled, `issued` when the certifier vouched
    /// for the winning plan, `failed` when it ran and could not.
    pub fn record_certification(&self, enabled: bool, issued: bool) {
        match (enabled, issued) {
            (false, _) => self.certs_skipped.inc(),
            (true, true) => self.certs_issued.inc(),
            (true, false) => self.certs_failed.inc(),
        }
    }

    /// Records one slack-stage success: a timed plan shipped with a
    /// slack certificate, dilated by `factor` (1 = undilated), with
    /// `target_met` saying whether the policy target was reached.
    pub fn record_slack(&self, cert: &SlackCertificate, factor: TimeStep, target_met: bool) {
        self.slack_certified.inc();
        if factor > 1 {
            self.slack_dilated.inc();
        }
        if !target_met {
            self.slack_target_missed.inc();
        }
        self.slack_schedules_checked
            .add(cert.schedules_checked as u64);
        self.slack_steps.record(cert.slack_steps.max(0) as u64);
    }

    /// Records a slack stage where even the undilated winner failed to
    /// re-certify (a planner/certifier disagreement).
    pub fn record_slack_failure(&self) {
        self.slack_uncertifiable.inc();
    }

    /// Records the wall-clock cost of one slack stage.
    pub fn record_slack_elapsed(&self, elapsed: Duration) {
        self.slack_nanos.record(elapsed.as_nanos() as u64);
    }

    /// Records a finished request.
    pub fn record_completion(&self, planned: &PlannedUpdate) {
        self.completed.inc();
        if planned.deadline_exceeded {
            self.timeouts.inc();
        }
    }

    /// Records a request entering the queue, keeping the running and
    /// peak depth.
    pub fn record_enqueue(&self) {
        self.submitted.inc();
        let depth = self.queue_depth.add(1);
        self.queue_peak.max(depth);
    }

    /// Records a worker picking a request off the queue.
    pub fn record_dequeue(&self) {
        self.queue_depth.add(-1);
    }

    /// Derives a [`PlanReport`] view over the registry, folding in the
    /// shared cache's counters.
    pub fn report(&self, cache: &TimeNetCache) -> PlanReport {
        PlanReport {
            sharded: self.sharded.stats(),
            greedy: self.greedy.stats(),
            tree: self.tree.stats(),
            two_phase: self.tp.stats(),
            shard: ShardStats {
                shards_planned: self.shard_shards_planned.get(),
                replan_rounds: self.shard_replan_rounds.get(),
                conflicts: self.shard_conflicts.get(),
                joint_fallbacks: self.shard_joint_fallbacks.get(),
                cross_links_peak: self.shard_cross_links.get().max(0) as u64,
                shared_links_peak: self.shard_shared_links.get().max(0) as u64,
            },
            gate: GateStats {
                // A rollup has no single backend; report Full only
                // when every recorded run used the full resimulator.
                backend: if self.gate_full_runs.get() > 0 && self.gate_incremental_runs.get() == 0 {
                    chronus_timenet::GateBackendKind::Full
                } else {
                    chronus_timenet::GateBackendKind::Incremental
                },
                incremental_checks: self.gate_incremental_checks.get(),
                full_checks: self.gate_full_checks.get(),
                ledger_applies: self.gate_ledger_applies.get(),
                ledger_undos: self.gate_ledger_undos.get(),
                cells_touched: self.gate_cells_touched.get(),
                full_equivalent_cells: self.gate_full_equivalent_cells.get(),
            },
            certs: CertStats {
                issued: self.certs_issued.get(),
                failed: self.certs_failed.get(),
                skipped: self.certs_skipped.get(),
            },
            slack: SlackStats {
                certified: self.slack_certified.get(),
                dilated: self.slack_dilated.get(),
                target_missed: self.slack_target_missed.get(),
                uncertifiable: self.slack_uncertifiable.get(),
                schedules_checked: self.slack_schedules_checked.get(),
            },
            arena_bytes: self.greedy_arena_bytes.get().max(0) as u64,
            parallel_candidates: self.greedy_parallel_candidates.get().max(0) as u64,
            submitted: self.submitted.get(),
            completed: self.completed.get(),
            timeouts: self.timeouts.get(),
            queue_depth: self.queue_depth.get().max(0) as u64,
            queue_peak: self.queue_peak.get().max(0) as u64,
            cache_hits: cache.hits(),
            cache_misses: cache.misses(),
            cache_evictions: cache.evictions(),
            cache_entries: cache.len() as u64,
            cache_bytes: cache.approx_bytes() as u64,
        }
    }
}

/// Snapshot of one stage's counters.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct StageStats {
    /// Times the stage ran.
    pub attempts: u64,
    /// Times it produced the winning plan.
    pub wins: u64,
    /// Times it ran and could not plan.
    pub failures: u64,
    /// Times it was skipped (deadline or earlier winner).
    pub skips: u64,
    /// Total wall-clock time spent inside the stage.
    pub total: Duration,
}

impl StageStats {
    /// Mean latency per attempt, zero when the stage never ran.
    pub fn mean_latency(&self) -> Duration {
        if self.attempts == 0 {
            Duration::ZERO
        } else {
            self.total / self.attempts as u32
        }
    }
}

/// Snapshot of the independent certifier's counters across completed
/// requests.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct CertStats {
    /// Winning plans the certifier vouched for.
    pub issued: u64,
    /// Winning plans the certifier ran on and refused to vouch for
    /// (e.g. a two-phase fallback whose flip window congests).
    pub failed: u64,
    /// Requests planned with certification disabled.
    pub skipped: u64,
}

/// Snapshot of the sharded stage's reservation counters across
/// completed requests (all zero unless the engine was configured with
/// a [`chronus_core::shard::ShardingConfig`]).
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct ShardStats {
    /// Populated shards planned across all sharded runs.
    pub shards_planned: u64,
    /// Replan rounds burned beyond each run's first attempt.
    pub replan_rounds: u64,
    /// Reservation conflicts caught by certificate composition.
    pub conflicts: u64,
    /// Runs that gave up on sharding and planned jointly.
    pub joint_fallbacks: u64,
    /// Largest cross-shard link count any partition produced.
    pub cross_links_peak: u64,
    /// Largest shared-link (reservation) count any run needed.
    pub shared_links_peak: u64,
}

/// Snapshot of the slack stage's counters across completed requests
/// (all zero unless the engine was configured with a
/// [`crate::SlackPolicy`]).
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct SlackStats {
    /// Timed plans shipped with a slack certificate.
    pub certified: u64,
    /// Plans whose schedule was dilated (factor > 1) to buy slack.
    pub dilated: u64,
    /// Plans that shipped below the policy's slack target even at the
    /// maximum dilation factor.
    pub target_missed: u64,
    /// Slack stages where even the undilated winner failed to
    /// re-certify.
    pub uncertifiable: u64,
    /// Perturbed schedules certified across all slack searches.
    pub schedules_checked: u64,
}

/// Point-in-time engine report: per-stage latencies and win counts,
/// cache effectiveness, queue pressure and deadline casualties.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PlanReport {
    /// Sharded-stage counters (all zero on unsharded engines).
    pub sharded: StageStats,
    /// Greedy-stage counters.
    pub greedy: StageStats,
    /// Tree-stage counters.
    pub tree: StageStats,
    /// Two-phase-stage counters.
    pub two_phase: StageStats,
    /// Sharded-stage reservation counters.
    pub shard: ShardStats,
    /// Aggregated exact-gate counters across all greedy-stage runs:
    /// incremental vs full checks, ledger traffic, and the cell-visit
    /// volume a full re-simulation would have cost instead.
    pub gate: GateStats,
    /// Independent-certifier counters across completed requests.
    pub certs: CertStats,
    /// Slack-stage counters across completed requests.
    pub slack: SlackStats,
    /// Largest simulation-arena high-water mark (bytes) any greedy run
    /// reported — the flat pool footprint of the planning hot path.
    pub arena_bytes: u64,
    /// Largest candidate-scoring worker count any greedy run used
    /// (1 = sequential, 0 = no greedy run recorded yet).
    pub parallel_candidates: u64,
    /// Requests accepted into the queue.
    pub submitted: u64,
    /// Requests fully planned.
    pub completed: u64,
    /// Requests whose deadline expired before every optimizing stage
    /// could run.
    pub timeouts: u64,
    /// Requests currently queued.
    pub queue_depth: u64,
    /// Largest queue depth observed.
    pub queue_peak: u64,
    /// Time-extended-window cache hits.
    pub cache_hits: u64,
    /// Time-extended-window cache misses (materializations).
    pub cache_misses: u64,
    /// Windows evicted by the cache's capacity bound (zero when
    /// unbounded).
    pub cache_evictions: u64,
    /// Distinct memoized windows.
    pub cache_entries: u64,
    /// Approximate bytes held by the cache.
    pub cache_bytes: u64,
}

impl PlanReport {
    /// Cache hit rate in `[0, 1]`; zero before any lookup.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Fraction of completed requests that fell through to the
    /// two-phase fallback.
    pub fn fallback_rate(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.two_phase.wins as f64 / self.completed as f64
        }
    }
}

impl fmt::Display for PlanReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "engine: {}/{} planned, {} deadline-degraded, queue {} (peak {})",
            self.completed, self.submitted, self.timeouts, self.queue_depth, self.queue_peak
        )?;
        let show_sharded = self.sharded.attempts > 0 || self.sharded.skips > 0;
        for (name, s) in [
            ("sharded", &self.sharded),
            ("greedy", &self.greedy),
            ("tree", &self.tree),
            ("two-phase", &self.two_phase),
        ] {
            if name == "sharded" && !show_sharded {
                continue;
            }
            writeln!(
                f,
                "  {name:<9} {} attempts, {} wins, {} failures, {} skips, mean {:?}",
                s.attempts,
                s.wins,
                s.failures,
                s.skips,
                s.mean_latency()
            )?;
        }
        if self.shard != ShardStats::default() {
            writeln!(
                f,
                "  shards: {} planned, {} replan rounds, {} conflicts, \
                 {} joint fallbacks (peaks: {} cross links, {} shared links)",
                self.shard.shards_planned,
                self.shard.replan_rounds,
                self.shard.conflicts,
                self.shard.joint_fallbacks,
                self.shard.cross_links_peak,
                self.shard.shared_links_peak
            )?;
        }
        writeln!(
            f,
            "  certifier: {} issued, {} failed, {} skipped",
            self.certs.issued, self.certs.failed, self.certs.skipped
        )?;
        if self.slack != SlackStats::default() {
            writeln!(
                f,
                "  slack: {} certified ({} dilated, {} below target, \
                 {} uncertifiable), {} perturbed schedules checked",
                self.slack.certified,
                self.slack.dilated,
                self.slack.target_missed,
                self.slack.uncertifiable,
                self.slack.schedules_checked
            )?;
        }
        writeln!(
            f,
            "  exact gate: {} incremental / {} full checks, \
             {} applies, {} undos, {} cells touched (full-sim equivalent {})",
            self.gate.incremental_checks,
            self.gate.full_checks,
            self.gate.ledger_applies,
            self.gate.ledger_undos,
            self.gate.cells_touched,
            self.gate.full_equivalent_cells
        )?;
        writeln!(
            f,
            "  greedy resources: arena high-water ~{} B, \
             {} candidate-scoring worker(s)",
            self.arena_bytes, self.parallel_candidates
        )?;
        write!(
            f,
            "  timenet cache: {} hits / {} misses ({:.0}% hit), {} windows \
             ({} evicted), ~{} B",
            self.cache_hits,
            self.cache_misses,
            self.cache_hit_rate() * 100.0,
            self.cache_entries,
            self.cache_evictions,
            self.cache_bytes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_bookkeeping_and_rates() {
        let m = EngineMetrics::new();
        let cache = TimeNetCache::new();
        m.record_attempt(Stage::Greedy, &StageOutcome::Won, Duration::from_micros(10));
        m.record_attempt(
            Stage::Greedy,
            &StageOutcome::Failed("x".into()),
            Duration::from_micros(30),
        );
        m.record_skip(Stage::Tree);
        m.record_certification(true, true);
        m.record_certification(true, false);
        m.record_certification(false, false);
        m.record_enqueue();
        m.record_enqueue();
        m.record_dequeue();
        let r = m.report(&cache);
        assert_eq!(r.greedy.attempts, 2);
        assert_eq!(r.greedy.wins, 1);
        assert_eq!(r.greedy.failures, 1);
        assert_eq!(r.tree.skips, 1);
        assert_eq!(r.greedy.mean_latency(), Duration::from_micros(20));
        assert_eq!(r.submitted, 2);
        assert_eq!(r.queue_depth, 1);
        assert_eq!(r.queue_peak, 2);
        assert_eq!(r.cache_hit_rate(), 0.0);
        assert_eq!(
            r.certs,
            CertStats {
                issued: 1,
                failed: 1,
                skipped: 1
            }
        );
        let text = r.to_string();
        assert!(text.contains("greedy"), "{text}");
        assert!(text.contains("certifier: 1 issued"), "{text}");
        assert!(text.contains("timenet cache"), "{text}");
    }

    #[test]
    fn shard_counters_roll_up_and_render_conditionally() {
        let m = EngineMetrics::new();
        let cache = TimeNetCache::new();
        // An unsharded engine's report hides the sharded rows.
        let quiet = m.report(&cache).to_string();
        assert!(!quiet.contains("sharded"), "{quiet}");
        assert!(!quiet.contains("shards:"), "{quiet}");

        m.record_attempt(Stage::Sharded, &StageOutcome::Won, Duration::from_micros(5));
        m.record_shard(&chronus_core::shard::ShardStats {
            shards: 4,
            cross_links: 16,
            shared_links: 2,
            replan_rounds: 1,
            conflicts: 1,
            fell_back_joint: false,
        });
        m.record_shard(&chronus_core::shard::ShardStats {
            shards: 2,
            cross_links: 8,
            shared_links: 3,
            replan_rounds: 0,
            conflicts: 0,
            fell_back_joint: true,
        });
        let r = m.report(&cache);
        assert_eq!(r.sharded.attempts, 1);
        assert_eq!(r.sharded.wins, 1);
        assert_eq!(
            r.shard,
            ShardStats {
                shards_planned: 6,
                replan_rounds: 1,
                conflicts: 1,
                joint_fallbacks: 1,
                cross_links_peak: 16,
                shared_links_peak: 3,
            }
        );
        let text = r.to_string();
        assert!(text.contains("sharded"), "{text}");
        assert!(text.contains("shards: 6 planned"), "{text}");
        // The registry sees the same counters under their full names.
        let snap = m.snapshot();
        assert_eq!(
            snap.counter("chronus_engine_shard_shards_planned_total"),
            Some(6)
        );
        assert_eq!(
            snap.counter("chronus_engine_shard_joint_fallbacks_total"),
            Some(1)
        );
        assert_eq!(
            snap.counter("chronus_engine_sharded_wins_total"),
            Some(1)
        );
    }

    #[test]
    fn report_is_a_view_over_the_registry() {
        let m = EngineMetrics::new();
        let cache = TimeNetCache::new();
        m.record_attempt(Stage::Greedy, &StageOutcome::Won, Duration::from_micros(10));
        m.record_certification(true, true);
        m.record_enqueue();

        // The exact same numbers are visible through the registry.
        let snap = m.snapshot();
        assert_eq!(
            snap.counter("chronus_engine_greedy_attempts_total"),
            Some(1)
        );
        assert_eq!(snap.counter("chronus_engine_greedy_wins_total"), Some(1));
        assert_eq!(snap.counter("chronus_engine_certs_issued_total"), Some(1));
        assert_eq!(
            snap.counter("chronus_engine_requests_submitted_total"),
            Some(1)
        );
        assert_eq!(snap.gauge("chronus_engine_queue_depth"), Some(1));
        assert_eq!(
            snap.histogram("chronus_engine_greedy_stage_ns"),
            Some((10_000, 1))
        );
        let r = m.report(&cache);
        assert_eq!(r.greedy.attempts, 1);
        assert_eq!(r.greedy.total, Duration::from_micros(10));

        // And the Prometheus rendering carries them too.
        let prom = m.registry().to_prometheus();
        assert!(
            prom.contains("chronus_engine_greedy_attempts_total 1"),
            "{prom}"
        );
        assert!(
            prom.contains("chronus_engine_greedy_stage_ns_count 1"),
            "{prom}"
        );

        // Two engines' registries are fully isolated.
        let other = EngineMetrics::new();
        assert_eq!(
            other
                .snapshot()
                .counter("chronus_engine_greedy_attempts_total"),
            Some(0)
        );
    }
}
