//! Two-way time transfer (PTP / ReversePTP flavour).
//!
//! The controller (grandmaster) and a switch exchange timestamped
//! messages over the control channel:
//!
//! ```text
//!   master sends   at true t1   (master stamp: t1)
//!   switch receives at true t1+δ₁ (local stamp: t2)
//!   switch sends   at true t3'  (local stamp: t3)
//!   master receives at true t3'+δ₂ (master stamp: t4)
//! ```
//!
//! Under symmetric delays the classic estimator
//! `offset ≈ ((t2 − t1) − (t4 − t3)) / 2` recovers the switch's clock
//! error exactly; channel jitter makes δ₁ ≠ δ₂ and leaves a residual
//! error of at most half the jitter spread per round. Repeated rounds
//! with a min-filter (taking the exchange with the smallest round-trip
//! time, as hardware PTP stacks do) push the residual toward the
//! microsecond regime Time4 reports.

use crate::clock::{HardwareClock, Nanos};
use rand::rngs::StdRng;
use rand::Rng;

/// Sync-protocol parameters.
#[derive(Clone, Copy, Debug)]
pub struct SyncConfig {
    /// Base one-way control-channel delay (ns).
    pub base_delay: Nanos,
    /// Maximum extra jitter per direction (ns); each leg draws
    /// uniformly from `[0, jitter]`.
    pub jitter: Nanos,
    /// Number of exchange rounds; the best (smallest-RTT) round wins.
    pub rounds: usize,
    /// Spacing between rounds in true time (ns).
    pub round_spacing: Nanos,
}

impl Default for SyncConfig {
    fn default() -> Self {
        SyncConfig {
            base_delay: 10_000, // 10 µs one-way
            jitter: 2_000,      // ±2 µs
            rounds: 8,
            round_spacing: 1_000_000, // 1 ms
        }
    }
}

/// Result of a synchronization run.
#[derive(Clone, Copy, Debug)]
pub struct SyncOutcome {
    /// The offset estimate that was applied to the clock (ns).
    pub applied_estimate: Nanos,
    /// Residual clock error right after correction (ns).
    pub residual_error: Nanos,
    /// Round-trip time of the winning exchange (ns).
    pub best_rtt: Nanos,
}

/// Halves `x` with floor division. Rust's `/ 2` truncates toward
/// zero, which biases the estimator asymmetrically for fast vs slow
/// clocks: the numerator is `2·off + j` (with `j = δ₁ − δ₂` the jitter
/// difference), so truncation rounds fast clocks (`off > 0`) down but
/// slow clocks (`off < 0`) up whenever `j` is odd (3/2 → 1 but
/// −3/2 → −1), skewing residuals by up to 1 ns per round depending on
/// the *sign* of the clock error. Floor division makes the estimator
/// error exactly `floor(j/2)` for either sign.
fn half_floor(x: Nanos) -> Nanos {
    x.div_euclid(2)
}

/// Runs `cfg.rounds` two-way exchanges starting at true time
/// `start`, applies the best round's offset estimate to `clock`, and
/// reports the residual error.
pub fn two_way_sync(
    clock: &mut HardwareClock,
    start: Nanos,
    cfg: SyncConfig,
    rng: &mut StdRng,
) -> SyncOutcome {
    assert!(cfg.rounds > 0, "at least one exchange round");
    let mut span = chronus_trace::span!("clock.sync", rounds = cfg.rounds as u64).entered();
    let mut best: Option<(Nanos, Nanos)> = None; // (rtt, estimate)
    for round in 0..cfg.rounds {
        let t1 = start + round as Nanos * cfg.round_spacing;
        let d1 = cfg.base_delay + rng.gen_range(0..=cfg.jitter.max(0)) as Nanos;
        let d2 = cfg.base_delay + rng.gen_range(0..=cfg.jitter.max(0)) as Nanos;
        let t2_true = t1 + d1;
        let t2 = clock.read(t2_true); // switch local stamp on receive
        let t3_true = t2_true + 1_000; // 1 µs turnaround
        let t3 = clock.read(t3_true); // switch local stamp on send
        let t4 = t3_true + d2; // master stamp on receive (true time)

        let estimate = half_floor((t2 - t1) - (t4 - t3));
        let rtt = (t4 - t1) - (t3 - t2);
        let better = best.is_none_or(|(b, _)| rtt < b);
        if better {
            best = Some((rtt, estimate));
        }
    }
    // `cfg.rounds` is validated non-zero above, so a best exists.
    #[allow(clippy::expect_used)]
    let (best_rtt, estimate) = best.expect("rounds > 0");
    clock.correct_offset(estimate);
    let after = start + cfg.rounds as Nanos * cfg.round_spacing;
    if span.is_recording() {
        span.record("best_rtt_ns", best_rtt as i64);
        span.record("residual_ns", clock.error_at(after) as i64);
    }
    SyncOutcome {
        applied_estimate: estimate,
        residual_error: clock.error_at(after),
        best_rtt,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn symmetric_channel_syncs_exactly() {
        let mut clock = HardwareClock::new(123_456, 0);
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = SyncConfig {
            jitter: 0,
            ..Default::default()
        };
        let out = two_way_sync(&mut clock, 0, cfg, &mut rng);
        assert_eq!(out.residual_error, 0, "no jitter, no drift ⇒ exact");
        assert_eq!(out.applied_estimate, 123_456);
    }

    #[test]
    fn jitter_bounds_residual_error() {
        let cfg = SyncConfig::default();
        for seed in 0..20 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut clock = HardwareClock::new(987_654, 0);
            let out = two_way_sync(&mut clock, 0, cfg, &mut rng);
            // Estimator error is at most half the jitter asymmetry.
            assert!(
                out.residual_error.abs() <= cfg.jitter / 2 + 1,
                "seed {seed}: residual {} ns",
                out.residual_error
            );
            assert!(out.best_rtt >= 2 * cfg.base_delay);
        }
    }

    #[test]
    fn more_rounds_do_not_hurt() {
        // Min-filtering over more rounds can only pick a better (or
        // equal) exchange in distribution; check a single seed pair.
        let mut rng1 = StdRng::seed_from_u64(42);
        let mut rng2 = StdRng::seed_from_u64(42);
        let mut c1 = HardwareClock::new(50_000, 0);
        let mut c8 = HardwareClock::new(50_000, 0);
        let one = two_way_sync(
            &mut c1,
            0,
            SyncConfig {
                rounds: 1,
                ..Default::default()
            },
            &mut rng1,
        );
        let eight = two_way_sync(
            &mut c8,
            0,
            SyncConfig {
                rounds: 8,
                ..Default::default()
            },
            &mut rng2,
        );
        assert!(eight.best_rtt <= one.best_rtt);
    }

    #[test]
    fn estimator_is_symmetric_for_fast_and_slow_clocks() {
        // Regression: truncating division rounded the estimator toward
        // zero, i.e. *down* for fast clocks but *up* for slow ones, so
        // two clocks off by ±off under identical jitter draws ended up
        // with different residuals whenever the winning round's jitter
        // difference δ₁ − δ₂ was odd. Floor division makes the
        // estimator error floor(j/2) regardless of the offset's sign.
        let off: Nanos = 777_777;
        let cfg = SyncConfig {
            jitter: 3, // odd jitter differences exercise the rounding
            ..Default::default()
        };
        for seed in 0..40 {
            let mut fast = HardwareClock::new(off, 0);
            let mut slow = HardwareClock::new(-off, 0);
            let mut rng_f = StdRng::seed_from_u64(seed);
            let mut rng_s = StdRng::seed_from_u64(seed);
            let out_f = two_way_sync(&mut fast, 0, cfg, &mut rng_f);
            let out_s = two_way_sync(&mut slow, 0, cfg, &mut rng_s);
            // Same jitter draws ⇒ same estimator error for both signs.
            let err_f = out_f.applied_estimate - off;
            let err_s = out_s.applied_estimate + off;
            assert_eq!(err_f, err_s, "seed {seed}: ±offset estimator bias");
            assert_eq!(
                out_f.residual_error, out_s.residual_error,
                "seed {seed}: ±offset residual asymmetry"
            );
        }
    }

    #[test]
    fn halving_rounds_the_same_direction_for_both_signs() {
        // The exact rule the estimator relies on: floor, not
        // truncation (which maps −3 → −1 but 3 → 1).
        assert_eq!(half_floor(3), 1);
        assert_eq!(half_floor(-3), -2);
        assert_eq!(half_floor(4), 2);
        assert_eq!(half_floor(-4), -2);
        assert_eq!(half_floor(0), 0);
        // Shifting the numerator by a whole offset shifts the estimate
        // by exactly that offset — the property truncation violates.
        for j in -7i128..=7 {
            assert_eq!(half_floor(2 * 1_000 + j), 1_000 + half_floor(j));
            assert_eq!(half_floor(-2 * 1_000 + j), -1_000 + half_floor(j));
        }
    }

    #[test]
    fn drifting_clock_keeps_small_error_right_after_sync() {
        let mut clock = HardwareClock::new(1_000_000, 10_000); // 10 ppm
        let mut rng = StdRng::seed_from_u64(3);
        let out = two_way_sync(&mut clock, 0, SyncConfig::default(), &mut rng);
        // Residual = jitter effect + drift accumulated over the sync
        // window (8 ms × 10 ppm = 80 ns).
        assert!(
            out.residual_error.abs() < 10_000,
            "residual {} ns",
            out.residual_error
        );
    }
}
