//! Hardware clock model: offset plus frequency drift.

/// Simulated nanoseconds. Signed and wide: drift math can briefly
/// leave the `u64` range.
pub type Nanos = i128;

/// A switch's hardware clock.
///
/// The local reading at true time `t` is
/// `local(t) = t + offset + drift_ppb · t / 10⁹` — a fixed offset plus
/// a frequency error in parts-per-billion (real switch oscillators
/// drift on the order of ±10 ppm = ±10 000 ppb; hardware-assisted
/// sync as assumed by Time4 keeps the *corrected* clock within a
/// microsecond).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HardwareClock {
    offset: Nanos,
    drift_ppb: i64,
}

impl HardwareClock {
    /// A perfect clock.
    pub fn perfect() -> Self {
        HardwareClock {
            offset: 0,
            drift_ppb: 0,
        }
    }

    /// A clock with the given initial offset (ns) and frequency error
    /// (parts per billion).
    pub fn new(offset: Nanos, drift_ppb: i64) -> Self {
        HardwareClock { offset, drift_ppb }
    }

    /// The current offset component (ns).
    pub fn offset(&self) -> Nanos {
        self.offset
    }

    /// The frequency error in ppb.
    pub fn drift_ppb(&self) -> i64 {
        self.drift_ppb
    }

    /// Local reading at true time `t`.
    pub fn read(&self, t: Nanos) -> Nanos {
        t + self.offset + (self.drift_ppb as Nanos * t) / 1_000_000_000
    }

    /// Clock error at true time `t`: `local(t) − t`.
    pub fn error_at(&self, t: Nanos) -> Nanos {
        self.read(t) - t
    }

    /// The true time at which the local clock shows `local` —
    /// inverting [`HardwareClock::read`]. This is when a trigger armed
    /// for local time `local` actually fires.
    pub fn true_time_of_local(&self, local: Nanos) -> Nanos {
        // local = t (1 + d) + offset  with d = drift_ppb / 1e9
        // ⇒ t = (local − offset) · 1e9 / (1e9 + drift_ppb)
        (local - self.offset) * 1_000_000_000 / (1_000_000_000 + self.drift_ppb as Nanos)
    }

    /// Applies a correction: subtracts `estimate` from the offset (the
    /// servo step of a sync protocol).
    pub fn correct_offset(&mut self, estimate: Nanos) {
        self.offset -= estimate;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_clock_reads_true_time() {
        let c = HardwareClock::perfect();
        assert_eq!(c.read(123_456), 123_456);
        assert_eq!(c.error_at(1_000_000_000), 0);
    }

    #[test]
    fn offset_shifts_reading() {
        let c = HardwareClock::new(500, 0);
        assert_eq!(c.read(1_000), 1_500);
        assert_eq!(c.error_at(0), 500);
        assert_eq!(c.true_time_of_local(1_500), 1_000);
    }

    #[test]
    fn drift_accumulates_with_time() {
        // +10 ppm = +10_000 ppb: one second of true time gains 10 µs.
        let c = HardwareClock::new(0, 10_000);
        assert_eq!(c.error_at(1_000_000_000), 10_000);
        assert_eq!(c.error_at(2_000_000_000), 20_000);
    }

    #[test]
    fn true_time_inverts_read() {
        let c = HardwareClock::new(-300, 25_000);
        for t in [0i128, 1_000_000, 1_000_000_000, 60_000_000_000] {
            let local = c.read(t);
            let back = c.true_time_of_local(local);
            assert!((back - t).abs() <= 1, "inversion error at {t}: {back}");
        }
    }

    #[test]
    fn correction_reduces_error() {
        let mut c = HardwareClock::new(2_000, 0);
        let est = c.error_at(0);
        c.correct_offset(est);
        assert_eq!(c.error_at(0), 0);
    }
}
