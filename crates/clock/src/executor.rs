//! Timed-trigger execution: fire scheduled updates when the *local*
//! clock passes the trigger time.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::clock::{HardwareClock, Nanos};

/// A scheduled trigger: an opaque payload armed for a local-clock
/// time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Trigger<T> {
    /// Local-clock time at which the switch should act.
    pub local_time: Nanos,
    /// What to do (e.g. a FlowMod to apply).
    pub payload: T,
}

/// Heap entry: a [`Trigger`] plus the bookkeeping the executor needs —
/// an arming sequence number (FIFO among equal trigger times) and
/// whether the trigger was armed for a local time that had already
/// passed (a *late* arm, whose reported firing instant is clamped).
#[derive(Clone, Debug)]
struct Armed<T> {
    local_time: Nanos,
    seq: u64,
    late: bool,
    payload: T,
}

impl<T> PartialEq for Armed<T> {
    fn eq(&self, other: &Self) -> bool {
        self.local_time == other.local_time && self.seq == other.seq
    }
}

impl<T> Eq for Armed<T> {}

impl<T> Ord for Armed<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: `BinaryHeap` is a max-heap, we want the earliest
        // (local_time, seq) on top.
        (other.local_time, other.seq).cmp(&(self.local_time, self.seq))
    }
}

impl<T> PartialOrd for Armed<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A per-switch trigger list driven by that switch's hardware clock —
/// the Time4 execution model: the controller distributes update
/// messages ahead of time, each carrying its scheduled execution
/// time, and the switch fires them by its own (synchronized) clock.
///
/// Triggers live in a binary heap keyed on `(local_time, arming seq)`,
/// so [`arm`](ScheduledExecutor::arm) and each pop in
/// [`advance_to`](ScheduledExecutor::advance_to) are `O(log n)` — the
/// earlier `Vec` implementation re-sorted on every insert and drained
/// with `remove(0)`, an `O(n²)` pattern that dominated large fan-outs.
#[derive(Clone, Debug)]
pub struct ScheduledExecutor<T> {
    clock: HardwareClock,
    triggers: BinaryHeap<Armed<T>>,
    next_seq: u64,
    /// Highest true time ever passed to `advance_to`, if any — the
    /// executor's notion of "now", used to detect late arming.
    advanced_to: Option<Nanos>,
}

impl<T> ScheduledExecutor<T> {
    /// Creates an executor for a switch with the given clock.
    pub fn new(clock: HardwareClock) -> Self {
        ScheduledExecutor {
            clock,
            triggers: BinaryHeap::new(),
            next_seq: 0,
            advanced_to: None,
        }
    }

    /// The switch's clock.
    pub fn clock(&self) -> &HardwareClock {
        &self.clock
    }

    /// Mutable access to the switch's clock (sync corrections, desync
    /// spikes).
    pub fn clock_mut(&mut self) -> &mut HardwareClock {
        &mut self.clock
    }

    /// Arms a trigger for local-clock time `local_time`. Triggers with
    /// equal times fire in arming order.
    pub fn arm(&mut self, local_time: Nanos, payload: T) {
        // Armed for a local time the clock has already passed? Then it
        // cannot fire at its nominal instant — it fires at the next
        // advance, and is reported as such (see `advance_to`).
        let late = self
            .advanced_to
            .is_some_and(|now| self.clock.read(now) >= local_time);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.triggers.push(Armed {
            local_time,
            seq,
            late,
            payload,
        });
    }

    /// Number of armed (not yet fired) triggers.
    pub fn armed(&self) -> usize {
        self.triggers.len()
    }

    /// Local-clock time of the earliest armed trigger, if any.
    pub fn next_local_time(&self) -> Option<Nanos> {
        self.triggers.peek().map(|t| t.local_time)
    }

    /// Disarms every pending trigger (a switch reboot loses its armed
    /// triggers; an abort cancels them), returning how many were lost.
    pub fn clear(&mut self) -> usize {
        let lost = self.triggers.len();
        self.triggers.clear();
        lost
    }

    /// The true time at which an armed trigger will fire — local
    /// trigger time translated through the clock error.
    pub fn true_fire_time(&self, local_time: Nanos) -> Nanos {
        self.clock.true_time_of_local(local_time)
    }

    /// Advances true time to `now` and returns every trigger whose
    /// local time has passed, in firing order, each paired with its
    /// *true* firing instant (so callers can measure scheduling
    /// error). A trigger that was armed late (local time already in
    /// the past at arming) reports `now` — it fires when first
    /// noticed, never before it existed.
    pub fn advance_to(&mut self, now: Nanos) -> Vec<(Nanos, T)> {
        let local_now = self.clock.read(now);
        let mut fired = Vec::new();
        while let Some(first) = self.triggers.peek() {
            if first.local_time > local_now {
                break;
            }
            let t = match self.triggers.pop() {
                Some(t) => t,
                None => break,
            };
            let true_at = if t.late {
                now
            } else {
                self.clock.true_time_of_local(t.local_time)
            };
            fired.push((true_at, t.payload));
        }
        self.advanced_to = Some(self.advanced_to.map_or(now, |prev| prev.max(now)));
        fired
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_clock_fires_exactly_on_time() {
        let mut ex = ScheduledExecutor::new(HardwareClock::perfect());
        ex.arm(1_000, "update-v2");
        ex.arm(2_000, "update-v3");
        assert_eq!(ex.armed(), 2);
        assert!(ex.advance_to(999).is_empty());
        let fired = ex.advance_to(1_500);
        assert_eq!(fired, vec![(1_000, "update-v2")]);
        let fired = ex.advance_to(5_000);
        assert_eq!(fired, vec![(2_000, "update-v3")]);
        assert_eq!(ex.armed(), 0);
    }

    #[test]
    fn skewed_clock_fires_early_or_late_by_its_error() {
        // Clock running 500 ns fast: local time reaches the trigger
        // 500 ns of true time early.
        let fast = HardwareClock::new(500, 0);
        let mut ex = ScheduledExecutor::new(fast);
        ex.arm(10_000, ());
        let fired = ex.advance_to(9_500);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].0, 9_500);

        let slow = HardwareClock::new(-500, 0);
        let mut ex = ScheduledExecutor::new(slow);
        ex.arm(10_000, ());
        assert!(ex.advance_to(10_000).is_empty());
        let fired = ex.advance_to(10_500);
        assert_eq!(fired[0].0, 10_500);
    }

    #[test]
    fn triggers_fire_in_order_regardless_of_arming_order() {
        let mut ex = ScheduledExecutor::new(HardwareClock::perfect());
        ex.arm(3_000, 'c');
        ex.arm(1_000, 'a');
        ex.arm(2_000, 'b');
        let fired: Vec<char> = ex.advance_to(10_000).into_iter().map(|(_, p)| p).collect();
        assert_eq!(fired, vec!['a', 'b', 'c']);
    }

    #[test]
    fn equal_times_fire_in_arming_order() {
        let mut ex = ScheduledExecutor::new(HardwareClock::perfect());
        ex.arm(1_000, 'x');
        ex.arm(1_000, 'y');
        ex.arm(1_000, 'z');
        let fired: Vec<char> = ex.advance_to(1_000).into_iter().map(|(_, p)| p).collect();
        assert_eq!(fired, vec!['x', 'y', 'z']);
    }

    #[test]
    fn true_fire_time_matches_clock_inversion() {
        let clock = HardwareClock::new(250, 5_000);
        let ex: ScheduledExecutor<()> = ScheduledExecutor::new(clock);
        assert_eq!(
            ex.true_fire_time(1_000_000),
            clock.true_time_of_local(1_000_000)
        );
    }

    #[test]
    fn late_arming_clamps_reported_fire_time_to_the_advance() {
        // Regression: a trigger armed for a local time already in the
        // past used to report a *true* fire time earlier than `now` —
        // before the trigger even existed.
        let mut ex = ScheduledExecutor::new(HardwareClock::perfect());
        assert!(ex.advance_to(5_000).is_empty());
        ex.arm(1_000, "late");
        let fired = ex.advance_to(6_000);
        assert_eq!(fired, vec![(6_000, "late")]);

        // A trigger armed in time still reports its nominal instant,
        // even when the advance lands well past it.
        ex.arm(7_000, "on-time");
        let fired = ex.advance_to(9_000);
        assert_eq!(fired, vec![(7_000, "on-time")]);
    }

    #[test]
    fn clear_disarms_everything() {
        let mut ex = ScheduledExecutor::new(HardwareClock::perfect());
        ex.arm(1_000, ());
        ex.arm(2_000, ());
        assert_eq!(ex.clear(), 2);
        assert_eq!(ex.armed(), 0);
        assert!(ex.advance_to(10_000).is_empty());
        assert_eq!(ex.next_local_time(), None);
    }

    #[test]
    fn next_local_time_tracks_the_heap_top() {
        let mut ex = ScheduledExecutor::new(HardwareClock::perfect());
        assert_eq!(ex.next_local_time(), None);
        ex.arm(2_000, ());
        ex.arm(1_000, ());
        assert_eq!(ex.next_local_time(), Some(1_000));
        ex.advance_to(1_500);
        assert_eq!(ex.next_local_time(), Some(2_000));
    }

    #[test]
    fn ten_thousand_triggers_drain_quickly() {
        // Smoke guard for the O(n log n) heap path: arm 10k triggers in
        // adversarial (descending) order and drain them; the old
        // sort-per-arm + remove(0) implementation made this quadratic.
        let mut ex = ScheduledExecutor::new(HardwareClock::perfect());
        for i in (0..10_000i128).rev() {
            ex.arm(i, i);
        }
        let fired = ex.advance_to(20_000);
        assert_eq!(fired.len(), 10_000);
        assert!(fired.windows(2).all(|w| w[0].0 <= w[1].0));
    }
}
