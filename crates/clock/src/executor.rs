//! Timed-trigger execution: fire scheduled updates when the *local*
//! clock passes the trigger time.

use crate::clock::{HardwareClock, Nanos};

/// A scheduled trigger: an opaque payload armed for a local-clock
/// time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Trigger<T> {
    /// Local-clock time at which the switch should act.
    pub local_time: Nanos,
    /// What to do (e.g. a FlowMod to apply).
    pub payload: T,
}

/// A per-switch trigger list driven by that switch's hardware clock —
/// the Time4 execution model: the controller distributes update
/// messages ahead of time, each carrying its scheduled execution
/// time, and the switch fires them by its own (synchronized) clock.
#[derive(Clone, Debug)]
pub struct ScheduledExecutor<T> {
    clock: HardwareClock,
    triggers: Vec<Trigger<T>>,
}

impl<T> ScheduledExecutor<T> {
    /// Creates an executor for a switch with the given clock.
    pub fn new(clock: HardwareClock) -> Self {
        ScheduledExecutor {
            clock,
            triggers: Vec::new(),
        }
    }

    /// The switch's clock.
    pub fn clock(&self) -> &HardwareClock {
        &self.clock
    }

    /// Arms a trigger for local-clock time `local_time`.
    pub fn arm(&mut self, local_time: Nanos, payload: T) {
        self.triggers.push(Trigger {
            local_time,
            payload,
        });
        self.triggers.sort_by_key(|t| t.local_time);
    }

    /// Number of armed (not yet fired) triggers.
    pub fn armed(&self) -> usize {
        self.triggers.len()
    }

    /// The true time at which an armed trigger will fire — local
    /// trigger time translated through the clock error.
    pub fn true_fire_time(&self, local_time: Nanos) -> Nanos {
        self.clock.true_time_of_local(local_time)
    }

    /// Advances true time to `now` and returns every trigger whose
    /// local time has passed, in firing order, each paired with its
    /// *true* firing instant (so callers can measure scheduling
    /// error).
    pub fn advance_to(&mut self, now: Nanos) -> Vec<(Nanos, T)> {
        let local_now = self.clock.read(now);
        let mut fired = Vec::new();
        while let Some(first) = self.triggers.first() {
            if first.local_time <= local_now {
                let t = self.triggers.remove(0);
                let true_at = self.clock.true_time_of_local(t.local_time);
                fired.push((true_at, t.payload));
            } else {
                break;
            }
        }
        fired
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_clock_fires_exactly_on_time() {
        let mut ex = ScheduledExecutor::new(HardwareClock::perfect());
        ex.arm(1_000, "update-v2");
        ex.arm(2_000, "update-v3");
        assert_eq!(ex.armed(), 2);
        assert!(ex.advance_to(999).is_empty());
        let fired = ex.advance_to(1_500);
        assert_eq!(fired, vec![(1_000, "update-v2")]);
        let fired = ex.advance_to(5_000);
        assert_eq!(fired, vec![(2_000, "update-v3")]);
        assert_eq!(ex.armed(), 0);
    }

    #[test]
    fn skewed_clock_fires_early_or_late_by_its_error() {
        // Clock running 500 ns fast: local time reaches the trigger
        // 500 ns of true time early.
        let fast = HardwareClock::new(500, 0);
        let mut ex = ScheduledExecutor::new(fast);
        ex.arm(10_000, ());
        let fired = ex.advance_to(9_500);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].0, 9_500);

        let slow = HardwareClock::new(-500, 0);
        let mut ex = ScheduledExecutor::new(slow);
        ex.arm(10_000, ());
        assert!(ex.advance_to(10_000).is_empty());
        let fired = ex.advance_to(10_500);
        assert_eq!(fired[0].0, 10_500);
    }

    #[test]
    fn triggers_fire_in_order_regardless_of_arming_order() {
        let mut ex = ScheduledExecutor::new(HardwareClock::perfect());
        ex.arm(3_000, 'c');
        ex.arm(1_000, 'a');
        ex.arm(2_000, 'b');
        let fired: Vec<char> = ex.advance_to(10_000).into_iter().map(|(_, p)| p).collect();
        assert_eq!(fired, vec!['a', 'b', 'c']);
    }

    #[test]
    fn true_fire_time_matches_clock_inversion() {
        let clock = HardwareClock::new(250, 5_000);
        let ex: ScheduledExecutor<()> = ScheduledExecutor::new(clock);
        assert_eq!(
            ex.true_fire_time(1_000_000),
            clock.true_time_of_local(1_000_000)
        );
    }
}
