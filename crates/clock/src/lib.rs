//! # chronus-clock — a Time4-style synchronized-clock substrate
//!
//! Timed SDN updates presuppose switches that can apply a rule at a
//! scheduled time with microsecond accuracy (Mizrahi et al., Time4
//! [16][18], TimeFlip [17]). This crate simulates that substrate:
//!
//! - [`clock`] — per-switch hardware clocks with an offset and a
//!   frequency-drift error model;
//! - [`sync`] — a two-way time-transfer protocol (PTP/ReversePTP
//!   flavour) that estimates and corrects each clock's offset over a
//!   jittery control channel, leaving a bounded residual error;
//! - [`executor`] — a trigger list that fires scheduled updates when a
//!   switch's *local* clock passes the trigger time, exposing the true
//!   firing time so tests can bound scheduling error and verify that
//!   Chronus schedules stay consistent under realistic skew.
//!
//! Time is simulated (nanosecond `i128` timestamps), never wall-clock:
//! every result is deterministic and test-friendly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(
    not(test),
    deny(clippy::unwrap_used, clippy::expect_used, clippy::indexing_slicing)
)]

pub mod clock;
pub mod executor;
pub mod sync;

pub use clock::{HardwareClock, Nanos};
pub use executor::{ScheduledExecutor, Trigger};
pub use sync::{two_way_sync, SyncConfig, SyncOutcome};
