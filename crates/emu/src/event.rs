//! The discrete-event queue.

use chronus_clock::Nanos;
use chronus_net::{LinkIdx, SwitchId};
use chronus_openflow::{FlowMod, Packet};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Everything that can happen in the emulation.
#[derive(Clone, Debug)]
pub enum Event {
    /// A traffic source emits one chunk.
    ChunkEmit {
        /// Index into the emulator's flow list.
        flow: usize,
    },
    /// A packet arrives at a switch (after traversing a link or being
    /// injected by a host).
    PacketArrive {
        /// Receiving switch.
        switch: SwitchId,
        /// The packet.
        packet: Packet,
        /// Remaining hop budget; 0 ⇒ counted as a TTL drop (loop!).
        ttl: u8,
    },
    /// A link finishes serializing a chunk onto the wire; the chunk
    /// will arrive after the propagation delay.
    LinkDeliver {
        /// Which link.
        link: LinkIdx,
        /// Destination switch (the link's head).
        switch: SwitchId,
        /// The packet.
        packet: Packet,
        /// Remaining hop budget.
        ttl: u8,
    },
    /// A FlowMod takes effect at a switch (control-channel delivery or
    /// a timed trigger firing).
    ApplyFlowMod {
        /// Target switch.
        switch: SwitchId,
        /// The modification.
        flowmod: FlowMod,
    },
    /// The statistics module samples all byte counters.
    StatsSample,
    /// End of the run.
    Stop,
}

/// A timestamped event; `seq` makes ordering total and FIFO-stable.
#[derive(Clone, Debug)]
pub struct Scheduled {
    /// Simulated time (true time, ns).
    pub at: Nanos,
    /// Tie-breaking sequence number.
    pub seq: u64,
    /// The event.
    pub event: Event,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: invert so the earliest pops first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// A min-ordered event queue.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Scheduled>,
    seq: u64,
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `event` at time `at`.
    pub fn push(&mut self, at: Nanos, event: Event) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Scheduled { at, seq, event });
    }

    /// Pops the earliest event.
    pub fn pop(&mut self) -> Option<Scheduled> {
        self.heap.pop()
    }

    /// Events still pending.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order_fifo_on_ties() {
        let mut q = EventQueue::new();
        q.push(20, Event::StatsSample);
        q.push(10, Event::Stop);
        q.push(20, Event::ChunkEmit { flow: 1 });
        let a = q.pop().unwrap();
        assert_eq!(a.at, 10);
        assert!(matches!(a.event, Event::Stop));
        let b = q.pop().unwrap();
        assert_eq!(b.at, 20);
        assert!(matches!(b.event, Event::StatsSample), "FIFO on equal time");
        let c = q.pop().unwrap();
        assert!(matches!(c.event, Event::ChunkEmit { flow: 1 }));
        assert!(q.pop().is_none());
        assert!(q.is_empty());
    }

    #[test]
    fn len_tracks_pending() {
        let mut q = EventQueue::new();
        assert_eq!(q.len(), 0);
        q.push(1, Event::Stop);
        q.push(2, Event::Stop);
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
    }
}
