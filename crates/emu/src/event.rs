//! The discrete-event queue.

use crate::ctrl::CtrlPayload;
use chronus_clock::Nanos;
use chronus_faults::{Envelope, MsgId};
use chronus_net::{LinkIdx, SwitchId};
use chronus_openflow::{FlowMod, Packet};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// How many recent hops a packet remembers for loop forensics.
pub const HOP_RING_CAPACITY: usize = 8;

/// A fixed-capacity ring of the last [`HOP_RING_CAPACITY`] switches a
/// packet visited. `Copy` so it travels inside events for free; once
/// full, each push evicts the oldest hop. When a packet dies of TTL
/// exhaustion the ring is the forensic record: a forwarding loop shows
/// up as a repeating cycle in the tail.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HopRing {
    hops: [SwitchId; HOP_RING_CAPACITY],
    /// Total hops ever pushed (saturating at `u32::MAX`); the ring
    /// holds the last `min(pushed, HOP_RING_CAPACITY)` of them.
    pushed: u32,
}

impl HopRing {
    /// An empty ring.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a visit to `switch`, evicting the oldest hop if full.
    pub fn push(&mut self, switch: SwitchId) {
        let slot = self.pushed as usize % HOP_RING_CAPACITY;
        if let Some(h) = self.hops.get_mut(slot) {
            *h = switch;
        }
        self.pushed = self.pushed.saturating_add(1);
    }

    /// Hops currently remembered.
    pub fn len(&self) -> usize {
        (self.pushed as usize).min(HOP_RING_CAPACITY)
    }

    /// `true` when nothing was recorded yet.
    pub fn is_empty(&self) -> bool {
        self.pushed == 0
    }

    /// The remembered hops, oldest first.
    pub fn hops(&self) -> Vec<SwitchId> {
        let n = self.len();
        let start = self.pushed as usize - n;
        (start..self.pushed as usize)
            .filter_map(|i| self.hops.get(i % HOP_RING_CAPACITY).copied())
            .collect()
    }

    /// `true` when the remembered tail revisits a switch — the
    /// signature of a forwarding loop (a loop-free walk never repeats
    /// a node within the ring window).
    pub fn has_revisit(&self) -> bool {
        let hops = self.hops();
        hops.iter()
            .enumerate()
            .any(|(i, h)| hops.iter().skip(i + 1).any(|other| other == h))
    }
}

/// Everything that can happen in the emulation.
#[derive(Clone, Debug)]
pub enum Event {
    /// A traffic source emits one chunk.
    ChunkEmit {
        /// Index into the emulator's flow list.
        flow: usize,
    },
    /// A packet arrives at a switch (after traversing a link or being
    /// injected by a host).
    PacketArrive {
        /// Receiving switch.
        switch: SwitchId,
        /// The packet.
        packet: Packet,
        /// Remaining hop budget; 0 ⇒ counted as a TTL drop (loop!).
        ttl: u8,
        /// Recently visited switches (loop forensics).
        hops: HopRing,
    },
    /// A link finishes serializing a chunk onto the wire; the chunk
    /// will arrive after the propagation delay.
    LinkDeliver {
        /// Which link.
        link: LinkIdx,
        /// Destination switch (the link's head).
        switch: SwitchId,
        /// The packet.
        packet: Packet,
        /// Remaining hop budget.
        ttl: u8,
        /// Recently visited switches (loop forensics).
        hops: HopRing,
    },
    /// A FlowMod takes effect at a switch (control-channel delivery or
    /// a timed trigger firing).
    ApplyFlowMod {
        /// Target switch.
        switch: SwitchId,
        /// The modification.
        flowmod: FlowMod,
    },
    /// The statistics module samples all byte counters.
    StatsSample,
    /// A control-plane message (one transmission attempt) reaches its
    /// switch — only used when faults are installed.
    CtrlDeliver {
        /// Receiving switch.
        switch: SwitchId,
        /// The attempt (logical id + epoch + payload).
        envelope: Envelope<CtrlPayload>,
    },
    /// An acknowledgement reaches the controller.
    CtrlAck {
        /// The acknowledged logical message.
        id: MsgId,
    },
    /// A retransmission timer fires at the controller.
    CtrlTimeout {
        /// The timed-out logical message.
        id: MsgId,
    },
    /// A switch agent checks its timed-trigger executor (scheduled at
    /// each trigger's predicted true firing instant).
    TriggerPoll {
        /// The polling switch.
        switch: SwitchId,
    },
    /// The controller's deadline check for one timed update: if it has
    /// not applied by now, recovery (re-arm within slack or rollback)
    /// kicks in.
    WatchdogCheck {
        /// Index into the controller's task table.
        task: usize,
    },
    /// A switch's control agent reboots: armed triggers are lost and
    /// the control channel is down until the matching
    /// [`Event::SwitchRecover`].
    SwitchReboot {
        /// Rebooting switch.
        switch: SwitchId,
        /// Control-plane outage length (ns).
        outage_ns: Nanos,
    },
    /// A rebooted switch reconnects; the controller re-arms its
    /// unapplied updates.
    SwitchRecover {
        /// Recovering switch.
        switch: SwitchId,
    },
    /// A clock-desync spike: the switch's local clock jumps.
    ClockSpike {
        /// Afflicted switch.
        switch: SwitchId,
        /// Offset jump (ns, positive = clock leaps ahead).
        offset_ns: Nanos,
    },
    /// End of the run.
    Stop,
}

/// A timestamped event; `seq` makes ordering total and FIFO-stable.
#[derive(Clone, Debug)]
pub struct Scheduled {
    /// Simulated time (true time, ns).
    pub at: Nanos,
    /// Tie-breaking sequence number.
    pub seq: u64,
    /// The event.
    pub event: Event,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: invert so the earliest pops first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// A min-ordered event queue.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Scheduled>,
    seq: u64,
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `event` at time `at`.
    pub fn push(&mut self, at: Nanos, event: Event) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Scheduled { at, seq, event });
    }

    /// Pops the earliest event.
    pub fn pop(&mut self) -> Option<Scheduled> {
        self.heap.pop()
    }

    /// Events still pending.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order_fifo_on_ties() {
        let mut q = EventQueue::new();
        q.push(20, Event::StatsSample);
        q.push(10, Event::Stop);
        q.push(20, Event::ChunkEmit { flow: 1 });
        let a = q.pop().unwrap();
        assert_eq!(a.at, 10);
        assert!(matches!(a.event, Event::Stop));
        let b = q.pop().unwrap();
        assert_eq!(b.at, 20);
        assert!(matches!(b.event, Event::StatsSample), "FIFO on equal time");
        let c = q.pop().unwrap();
        assert!(matches!(c.event, Event::ChunkEmit { flow: 1 }));
        assert!(q.pop().is_none());
        assert!(q.is_empty());
    }

    #[test]
    fn hop_ring_keeps_last_n_in_order() {
        let mut r = HopRing::new();
        assert!(r.is_empty());
        assert!(!r.has_revisit());
        for i in 0..3 {
            r.push(SwitchId(i));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.hops(), vec![SwitchId(0), SwitchId(1), SwitchId(2)]);
        assert!(!r.has_revisit(), "distinct hops are loop-free");
        // Overflow evicts the oldest: after 12 pushes of distinct ids
        // only the last HOP_RING_CAPACITY remain, oldest first.
        let mut r = HopRing::new();
        for i in 0..12 {
            r.push(SwitchId(i));
        }
        assert_eq!(r.len(), HOP_RING_CAPACITY);
        let expect: Vec<SwitchId> = (4..12).map(SwitchId).collect();
        assert_eq!(r.hops(), expect);
        assert!(!r.has_revisit());
    }

    #[test]
    fn hop_ring_flags_revisits() {
        let mut r = HopRing::new();
        r.push(SwitchId(2));
        r.push(SwitchId(3));
        r.push(SwitchId(2));
        assert!(r.has_revisit(), "a two-switch bounce repeats a node");
    }

    #[test]
    fn len_tracks_pending() {
        let mut q = EventQueue::new();
        assert_eq!(q.len(), 0);
        q.push(1, Event::Stop);
        q.push(2, Event::Stop);
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
    }
}
