//! Emulated links: capacity, serialization, propagation, drop-tail
//! buffer, and per-window byte counters.

use chronus_clock::Nanos;

/// Counters one link accumulates within the current stats window —
/// what the Floodlight statistics module reads ("The difference
/// between these two counters divided by the time intervals yields
/// the bandwidth consumption", §V-A).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WindowCounters {
    /// Bytes offered to the link (arrivals, before any drop).
    pub offered: u64,
    /// Bytes accepted and serialized.
    pub delivered: u64,
    /// Bytes dropped at the buffer.
    pub dropped: u64,
}

/// One emulated link.
#[derive(Clone, Debug)]
pub struct EmuLink {
    /// Capacity in bits per second.
    pub capacity_bps: u64,
    /// Propagation delay (ns).
    pub prop_delay: Nanos,
    /// Maximum queueing delay the buffer absorbs (ns); beyond this,
    /// arriving chunks are dropped (drop-tail).
    pub buffer_delay: Nanos,
    busy_until: Nanos,
    window: WindowCounters,
    total: WindowCounters,
}

impl EmuLink {
    /// Creates a link.
    pub fn new(capacity_bps: u64, prop_delay: Nanos, buffer_delay: Nanos) -> Self {
        EmuLink {
            capacity_bps,
            prop_delay,
            buffer_delay,
            busy_until: 0,
            window: WindowCounters::default(),
            total: WindowCounters::default(),
        }
    }

    /// Offers `bytes` to the link at time `now`. Returns the arrival
    /// time at the far end, or `None` if the chunk was dropped
    /// (buffer overflow).
    pub fn transmit(&mut self, now: Nanos, bytes: u64) -> Option<Nanos> {
        self.window.offered += bytes;
        self.total.offered += bytes;
        let start = self.busy_until.max(now);
        let queueing = start - now;
        if queueing > self.buffer_delay {
            self.window.dropped += bytes;
            self.total.dropped += bytes;
            return None;
        }
        let ser = (bytes as Nanos * 8 * 1_000_000_000) / self.capacity_bps as Nanos;
        self.busy_until = start + ser;
        self.window.delivered += bytes;
        self.total.delivered += bytes;
        Some(start + ser + self.prop_delay)
    }

    /// Reads and resets the current window counters (one stats
    /// sample).
    pub fn sample_window(&mut self) -> WindowCounters {
        std::mem::take(&mut self.window)
    }

    /// Lifetime counters.
    pub fn totals(&self) -> WindowCounters {
        self.total
    }

    /// The instantaneous queueing delay a chunk arriving at `now`
    /// would experience.
    pub fn backlog_at(&self, now: Nanos) -> Nanos {
        (self.busy_until - now).max(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MBPS: u64 = 1_000_000;

    #[test]
    fn serialization_and_propagation() {
        // 8 Mbps, 1 ms propagation: 1000 bytes = 8000 bits = 1 ms ser.
        let mut l = EmuLink::new(8 * MBPS, 1_000_000, 10_000_000);
        let arrival = l.transmit(0, 1_000).unwrap();
        assert_eq!(arrival, 1_000_000 + 1_000_000);
        // Second chunk right away queues behind the first.
        let arrival2 = l.transmit(0, 1_000).unwrap();
        assert_eq!(arrival2, 2_000_000 + 1_000_000);
        assert_eq!(l.backlog_at(0), 2_000_000);
    }

    #[test]
    fn idle_link_does_not_queue() {
        let mut l = EmuLink::new(8 * MBPS, 0, 0);
        let a = l.transmit(0, 1_000).unwrap();
        assert_eq!(a, 1_000_000);
        // After the wire went idle, no queueing.
        let b = l.transmit(5_000_000, 1_000).unwrap();
        assert_eq!(b, 6_000_000);
    }

    #[test]
    fn overload_drops_at_the_buffer() {
        // Tiny buffer: the third back-to-back chunk exceeds it.
        let mut l = EmuLink::new(8 * MBPS, 0, 1_500_000);
        assert!(l.transmit(0, 1_000).is_some()); // queue 0
        assert!(l.transmit(0, 1_000).is_some()); // queue 1 ms
        assert!(l.transmit(0, 1_000).is_none()); // queue 2 ms > 1.5 ms
        let w = l.sample_window();
        assert_eq!(w.offered, 3_000);
        assert_eq!(w.delivered, 2_000);
        assert_eq!(w.dropped, 1_000);
    }

    #[test]
    fn window_sampling_resets() {
        let mut l = EmuLink::new(8 * MBPS, 0, 10_000_000);
        l.transmit(0, 500).unwrap();
        let w1 = l.sample_window();
        assert_eq!(w1.offered, 500);
        let w2 = l.sample_window();
        assert_eq!(w2.offered, 0);
        assert_eq!(l.totals().offered, 500);
    }
}
