//! Constant-bit-rate traffic sources.

use chronus_clock::Nanos;
use chronus_net::SwitchId;

/// A CBR aggregate between a source and a destination switch ("In our
/// experiments, a flow is a traffic aggregate between source and
/// destination switch", §V-A).
#[derive(Clone, Copy, Debug)]
pub struct CbrSource {
    /// Injecting switch.
    pub src_switch: SwitchId,
    /// Destination IPv4 address the packets carry.
    pub dst_ip: u32,
    /// Source IPv4 address.
    pub src_ip: u32,
    /// Aggregate rate in bits per second.
    pub rate_bps: u64,
    /// Chunk size in bytes (one emission event per chunk).
    pub chunk_bytes: u64,
}

impl CbrSource {
    /// The emission interval that realizes `rate_bps` with
    /// `chunk_bytes`-sized chunks.
    pub fn interval(&self) -> Nanos {
        (self.chunk_bytes as Nanos * 8 * 1_000_000_000) / self.rate_bps as Nanos
    }

    /// Number of chunks emitted in `duration` ns.
    pub fn chunks_in(&self, duration: Nanos) -> u64 {
        (duration / self.interval()) as u64
    }
}

/// Picks a chunk size giving roughly `chunks_per_unit` emissions per
/// `unit_ns` of simulated time at `rate_bps` — keeping the packet
/// approximation close to the paper's fluid model while bounding the
/// event count.
pub fn chunk_size_for(rate_bps: u64, unit_ns: Nanos, chunks_per_unit: u64) -> u64 {
    let per_unit_bytes = (rate_bps as Nanos * unit_ns / 8 / 1_000_000_000) as u64;
    (per_unit_bytes / chunks_per_unit.max(1)).max(125)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_matches_rate() {
        let s = CbrSource {
            src_switch: SwitchId(0),
            dst_ip: 1,
            src_ip: 2,
            rate_bps: 8_000_000, // 1 MB/s
            chunk_bytes: 10_000, // 10 KB -> 100 chunks/s
        };
        assert_eq!(s.interval(), 10_000_000); // 10 ms
        assert_eq!(s.chunks_in(1_000_000_000), 100);
    }

    #[test]
    fn chunk_size_targets_event_rate() {
        // 500 Mbps over a 100 ms unit with 8 chunks per unit:
        // 500e6 bps * 0.1 s / 8 bits = 6.25 MB per unit → 781 KB chunks.
        let c = chunk_size_for(500_000_000, 100_000_000, 8);
        assert_eq!(c, 781_250);
        // Tiny rates floor at 125 bytes.
        assert_eq!(chunk_size_for(1, 1_000, 8), 125);
    }
}
