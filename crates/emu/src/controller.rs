//! Update drivers: how each scheme issues its FlowMods.
//!
//! A driver is a *specification*; [`crate::Emulator::install_driver`]
//! translates it into timed `ApplyFlowMod` events using its knowledge
//! of installed rule ids, port maps and per-switch clocks.
// Drivers index the instance's own flow list.
#![allow(clippy::indexing_slicing, clippy::expect_used)]

use chronus_clock::Nanos;
use chronus_net::{SwitchId, UpdateInstance};
use chronus_timenet::Schedule;
use std::sync::Arc;
use std::time::Duration;

/// The Chronus execution model: timed updates fired by each switch's
/// synchronized clock (Algorithm 5 over Time4 triggers).
#[derive(Clone, Debug)]
pub struct ChronusDriver {
    /// The MUTP solution.
    pub schedule: Schedule,
}

/// The OR execution model: rounds fired over the control channel,
/// landing after a random installation latency; a barrier separates
/// rounds ("our algorithm sleeps for a while, which is a random number
/// from the data of [9], so as to simulate the asynchronous nature of
/// data plane", §V-A).
#[derive(Clone, Debug)]
pub struct OrDriver {
    /// Rounds of switches.
    pub rounds: Vec<Vec<SwitchId>>,
    /// Per-switch installation latency range (ns).
    pub latency_range: (Nanos, Nanos),
}

/// The TP execution model: install the tagged generation, barrier,
/// flip the ingress stamp, and garbage-collect later.
#[derive(Clone, Debug)]
pub struct TpDriver {
    /// Per-switch installation latency range for phase 1 (ns).
    pub latency_range: (Nanos, Nanos),
    /// Delay between the phase-1 barrier and the stamp flip (ns).
    pub flip_gap: Nanos,
    /// Delay between the flip and old-rule garbage collection (ns).
    pub cleanup_gap: Nanos,
}

impl Default for TpDriver {
    fn default() -> Self {
        TpDriver {
            latency_range: (10_000_000, 100_000_000),
            flip_gap: 50_000_000,
            cleanup_gap: 2_000_000_000,
        }
    }
}

/// The engine execution model: the update plan is not handed in but
/// *produced* at install time by a [`chronus_engine::Engine`] walking
/// its fallback chain under a deadline. A timed plan installs exactly
/// like [`ChronusDriver`]; a two-phase fallback installs like
/// [`TpDriver`] — so deadline pressure degrades the data-plane
/// mechanism, never its consistency.
#[derive(Clone, Debug)]
pub struct EngineDriver {
    /// The instance to plan (must match the instance the emulator was
    /// built from; [`crate::Emulator::install_driver`] asserts this).
    pub instance: Arc<UpdateInstance>,
    /// Planning worker threads.
    pub workers: usize,
    /// Planning deadline for the optimizing stages.
    pub deadline: Duration,
}

/// An update driver specification.
#[derive(Clone, Debug)]
pub enum UpdateDriver {
    /// No update: steady-state baseline run.
    None,
    /// Chronus timed updates.
    Chronus(ChronusDriver),
    /// Order-replacement rounds.
    Or(OrDriver),
    /// Two-phase commit.
    Tp(TpDriver),
    /// Plan-on-install via the chronus-engine fallback chain.
    Engine(EngineDriver),
}

impl UpdateDriver {
    /// Chronus driver from a schedule; `instance` is taken to assert
    /// that the schedule covers it (catching mixed-up arguments
    /// early).
    ///
    /// # Panics
    /// Panics if the schedule does not cover the instance's required
    /// updates.
    pub fn chronus(schedule: Schedule, instance: &UpdateInstance) -> Self {
        schedule
            .validate(instance)
            .expect("schedule must cover the instance");
        UpdateDriver::Chronus(ChronusDriver { schedule })
    }

    /// OR driver with the default Dionysus-flavoured latency range:
    /// rule installations take 100 ms to 1.5 s (Dionysus measured
    /// switch update latencies from tens of milliseconds to multiple
    /// seconds under load).
    pub fn or_rounds(rounds: Vec<Vec<SwitchId>>) -> Self {
        UpdateDriver::Or(OrDriver {
            rounds,
            latency_range: (100_000_000, 1_500_000_000),
        })
    }

    /// TP driver with default gaps.
    pub fn two_phase() -> Self {
        UpdateDriver::Tp(TpDriver::default())
    }

    /// Engine driver with a generous default deadline (the optimizing
    /// stages on emulator-scale instances finish in microseconds).
    pub fn engine(instance: Arc<UpdateInstance>, workers: usize) -> Self {
        UpdateDriver::Engine(EngineDriver {
            instance,
            workers,
            deadline: Duration::from_secs(5),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chronus_net::motivating_example;
    use chronus_timenet::Schedule as Sched;

    #[test]
    fn chronus_driver_validates_schedule() {
        let inst = motivating_example();
        let good = Sched::all_at_zero(&inst);
        let d = UpdateDriver::chronus(good, &inst);
        assert!(matches!(d, UpdateDriver::Chronus(_)));
    }

    #[test]
    #[should_panic(expected = "must cover")]
    fn chronus_driver_rejects_incomplete_schedule() {
        let inst = motivating_example();
        let _ = UpdateDriver::chronus(Sched::new(), &inst);
    }

    #[test]
    fn defaults_are_sane() {
        let or = UpdateDriver::or_rounds(vec![vec![SwitchId(1)]]);
        if let UpdateDriver::Or(d) = or {
            assert!(d.latency_range.0 < d.latency_range.1);
        } else {
            panic!("expected OR driver");
        }
        let tp = UpdateDriver::two_phase();
        if let UpdateDriver::Tp(d) = tp {
            assert!(d.flip_gap > 0);
            assert!(d.cleanup_gap > d.flip_gap);
        } else {
            panic!("expected TP driver");
        }
    }
}
