//! # chronus-emu — a discrete-event network emulator (the Mininet
//! replacement)
//!
//! The paper prototypes Chronus on Mininet + OpenVSwitch driven by a
//! Floodlight controller (§V-A). This crate reproduces that testbed as
//! a deterministic discrete-event simulation:
//!
//! - [`event`] — the event queue (nanosecond timestamps, stable order);
//! - [`link`] — links with capacity, propagation delay, serialization,
//!   a drop-tail buffer, and per-window byte counters (what the
//!   Floodlight statistics module polls for Fig. 6);
//! - [`switchdev`] — emulated switches: a `chronus-openflow` flow
//!   table, ports mapped to links, and a Time4-style scheduled-update
//!   executor driven by a `chronus-clock` hardware clock;
//! - [`traffic`] — constant-bit-rate traffic sources ("a flow is a
//!   traffic aggregate between source and destination switch");
//! - [`controller`] — the three update drivers: Chronus timed updates
//!   (Algorithm 5 over synchronized clocks), OR rounds with random
//!   installation latencies and barriers, and TP's two phases;
//! - [`ctrl`] — the faulty control plane: when a `chronus-faults`
//!   plan is installed, timed updates travel as reliable (acked,
//!   retransmitted, deduplicated) Arm messages, switches fire them
//!   from their own trigger executors, and a controller watchdog
//!   re-sends missed updates within the certified slack window or
//!   falls back to two-phase rollback;
//! - [`emulator`] — the simulation loop tying everything together;
//! - [`report`] — bandwidth series and loss accounting, the data
//!   behind Fig. 6.
//!
//! ## Example: reproducing the shape of Fig. 6
//!
//! ```
//! use chronus_emu::{Emulator, EmuConfig, UpdateDriver};
//! use chronus_net::motivating_example;
//! use chronus_core::greedy::greedy_schedule;
//!
//! let instance = motivating_example();
//! let schedule = greedy_schedule(&instance).unwrap().schedule;
//! let mut emu = Emulator::new(&instance, EmuConfig::default(), 42);
//! emu.install_driver(UpdateDriver::chronus(schedule, &instance));
//! let report = emu.run();
//! assert_eq!(report.ttl_drops, 0, "no forwarding loops");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(
    not(test),
    deny(clippy::unwrap_used, clippy::expect_used, clippy::indexing_slicing)
)]

pub mod analysis;
pub mod controller;
pub mod ctrl;
pub mod emulator;
pub mod event;
pub mod link;
pub mod report;
pub mod switchdev;
pub mod traffic;

pub use analysis::{skew_tolerance, SkewTolerance};
pub use controller::{EngineDriver, UpdateDriver};
pub use ctrl::CtrlPayload;
pub use emulator::{EmuConfig, Emulator};
pub use event::{HopRing, HOP_RING_CAPACITY};
pub use report::{EmuReport, TtlDrop, MAX_TTL_DROP_RECORDS};
pub use switchdev::SwitchAgent;
