//! Schedule robustness analysis: how much clock skew a timed update
//! plan tolerates on the wire.
//!
//! Time4 promises microsecond-accurate triggers; Chronus schedules are
//! spaced in whole time steps (hundreds of milliseconds on the
//! emulated testbed), so there is a five-orders-of-magnitude safety
//! margin — but *how much* margin exactly depends on the schedule's
//! structure. [`skew_tolerance`] measures it empirically: it replays
//! the schedule under growing per-switch clock error until runs start
//! breaking, returning the largest error bound that stayed clean
//! across every seed. This is the quantitative version of the paper's
//! "updates can be scheduled accurately on the order of one
//! microsecond" argument (§II-A): the tolerance is vastly larger than
//! the sync residual, so scheduling error never threatens consistency.

use crate::{EmuConfig, Emulator, UpdateDriver};
use chronus_clock::Nanos;
use chronus_net::UpdateInstance;
use chronus_timenet::Schedule;

/// Result of a skew-tolerance probe.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SkewTolerance {
    /// The largest tested per-switch clock error (± ns) for which
    /// every seed replayed clean.
    pub tolerated_ns: Nanos,
    /// The smallest tested error at which some seed broke, if the
    /// probe reached one.
    pub breaking_ns: Option<Nanos>,
    /// Emulation runs spent.
    pub runs: usize,
}

/// Is the run clean and still at nominal bandwidth?
fn replay_clean(
    instance: &UpdateInstance,
    schedule: &Schedule,
    base: EmuConfig,
    skew_ns: Nanos,
    seed: u64,
) -> bool {
    let cfg = EmuConfig {
        clock_error_ns: skew_ns as i64,
        // Fine sampling so short overload windows are visible.
        stats_interval: (base.delay_unit_ns * 2).max(1),
        ..base
    };
    let mut emu = Emulator::new(instance, cfg, seed);
    emu.install_driver(UpdateDriver::Chronus(crate::controller::ChronusDriver {
        schedule: schedule.clone(),
    }));
    let report = emu.run();
    if !report.clean() {
        return false;
    }
    // Overload is a failure even when buffers absorb it. The margin
    // leaves room for chunk-quantization jitter at window boundaries
    // (one extra chunk per window) while catching real double-stream
    // overlaps (2x the nominal rate).
    let capacity_mbps = instance
        .network
        .min_capacity()
        .map(|c| c * base.capacity_unit_bps / 1_000_000)
        .unwrap_or(u64::MAX) as f64;
    report.global_peak_offered_mbps() <= capacity_mbps * 1.25
}

/// Doubles the per-switch clock error from `start_ns` until a replay
/// breaks (or `max_ns` is reached), checking `seeds_per_level`
/// different error draws per level. Returns the bracketing interval.
///
/// # Panics
/// Panics if `start_ns` is not positive.
pub fn skew_tolerance(
    instance: &UpdateInstance,
    schedule: &Schedule,
    base: EmuConfig,
    start_ns: Nanos,
    max_ns: Nanos,
    seeds_per_level: u64,
) -> SkewTolerance {
    assert!(start_ns > 0, "start_ns must be positive");
    let mut tolerated = 0;
    let mut runs = 0;
    let mut level = start_ns;
    while level <= max_ns {
        let mut all_clean = true;
        for seed in 0..seeds_per_level {
            runs += 1;
            if !replay_clean(instance, schedule, base, level, seed) {
                all_clean = false;
                break;
            }
        }
        if !all_clean {
            return SkewTolerance {
                tolerated_ns: tolerated,
                breaking_ns: Some(level),
                runs,
            };
        }
        tolerated = level;
        level *= 2;
    }
    SkewTolerance {
        tolerated_ns: tolerated,
        breaking_ns: None,
        runs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chronus_core::greedy::greedy_schedule;
    use chronus_net::motivating_example;

    fn quick() -> EmuConfig {
        EmuConfig {
            run_for: 8_000_000_000,
            update_at: 2_000_000_000,
            ..EmuConfig::default()
        }
    }

    #[test]
    fn motivating_schedule_tolerates_time4_scale_error() {
        let inst = motivating_example();
        let schedule = greedy_schedule(&inst).expect("feasible").schedule;
        // Probe 1 µs … 1 s of per-switch error.
        let t = skew_tolerance(&inst, &schedule, quick(), 1_000, 1_000_000_000, 3);
        // Time4's microsecond residual must be tolerated with orders
        // of magnitude to spare (steps are 100 ms here).
        assert!(
            t.tolerated_ns >= 1_000_000,
            "tolerated only {} ns",
            t.tolerated_ns
        );
        // And a full-second error (10 steps) must break the plan.
        assert!(
            t.breaking_ns.is_some(),
            "second-scale skew should break ordering"
        );
        assert!(t.runs > 0);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn rejects_zero_start() {
        let inst = motivating_example();
        let schedule = greedy_schedule(&inst).expect("feasible").schedule;
        let _ = skew_tolerance(&inst, &schedule, quick(), 0, 10, 1);
    }
}
