//! The faulty control plane: reliable delivery state for timed
//! updates under an injected [`FaultPlan`].
//!
//! Without faults installed, the emulator's Chronus driver pushes each
//! timed `ApplyFlowMod` straight onto the event queue — an idealized
//! control channel. [`crate::Emulator::install_faults`] replaces that
//! with the full Time4 distribution protocol: every update becomes a
//! [`CtrlPayload::Arm`] message sent ahead of its trigger time through
//! a lossy channel (the [`FaultInjector`] decides each message's
//! fate), retransmitted with exponential backoff until acknowledged
//! ([`ReliableOutbox`]), deduplicated at the switch agent, fired by
//! the switch's own [`ScheduledExecutor`], and watched over by a
//! controller-side deadline check that re-sends within the certified
//! slack window or falls back to the two-phase rollback path.

use chronus_clock::Nanos;
use chronus_faults::{
    FaultInjector, FaultStats, MsgId, RecoveryPolicy, ReliableConfig, ReliableOutbox, SlackBudget,
};
use chronus_net::SwitchId;
use chronus_openflow::FlowMod;
use std::collections::HashMap;

/// A control-plane message body, carried inside a
/// [`chronus_faults::Envelope`] on the (lossy) controller↔switch
/// channel.
#[derive(Clone, Debug)]
pub enum CtrlPayload {
    /// Arm a timed trigger: fire `flowmod` when the switch's local
    /// clock reaches `local_time` (the Time4 distribution message).
    Arm {
        /// Index into the controller's task table.
        task: usize,
        /// Target switch.
        switch: SwitchId,
        /// Local-clock firing time (ns).
        local_time: Nanos,
        /// The update to apply.
        flowmod: FlowMod,
    },
    /// Apply `flowmod` immediately on delivery — the watchdog's
    /// slack-certified re-send for a missed trigger.
    Apply {
        /// Index into the controller's task table.
        task: usize,
        /// Target switch.
        switch: SwitchId,
        /// The update to apply.
        flowmod: FlowMod,
    },
    /// Disarm every pending trigger on the switch — the first step of
    /// the two-phase rollback fallback.
    Abort {
        /// Target switch.
        switch: SwitchId,
    },
}

impl CtrlPayload {
    /// The switch this message is addressed to.
    pub fn switch(&self) -> SwitchId {
        match *self {
            CtrlPayload::Arm { switch, .. }
            | CtrlPayload::Apply { switch, .. }
            | CtrlPayload::Abort { switch } => switch,
        }
    }
}

/// Controller-side state of one timed update: a single `(flow,
/// switch, step)` schedule entry turned into a distributable task.
#[derive(Clone, Debug)]
pub(crate) struct TaskState {
    /// Target switch.
    pub switch: SwitchId,
    /// Local-clock firing time the trigger is armed for (ns).
    pub local_target: Nanos,
    /// The schedule's intent in true time: `update_at + t · step` (ns).
    /// Fire deviations are measured against this instant.
    pub nominal_true: Nanos,
    /// The update to apply.
    pub flowmod: FlowMod,
    /// The update has been applied (or its apply event is scheduled
    /// and can no longer be lost).
    pub applied: bool,
}

/// Everything the emulator tracks when faults are installed.
pub(crate) struct FaultLayer {
    /// Executes the fault plan (owns its own seeded RNG).
    pub injector: FaultInjector,
    /// Sender half of the reliable channel.
    pub outbox: ReliableOutbox<CtrlPayload>,
    /// Retransmission policy (also read for lead time / base delay).
    pub reliable: ReliableConfig,
    /// The watchdog's recovery decision policy.
    pub policy: RecoveryPolicy,
    /// Certified timing tolerance ±Δ for re-arm decisions.
    pub slack: SlackBudget,
    /// `chronus_faults_*` instruments for the run.
    pub stats: FaultStats,
    /// All timed-update tasks, indexed by the ids in [`CtrlPayload`].
    pub tasks: Vec<TaskState>,
    /// Logical message → task (for escalating exhausted retries);
    /// `None` for task-less messages (aborts).
    pub msg_task: HashMap<MsgId, Option<usize>>,
    /// The watchdog gave up on the timed plan and the two-phase
    /// rollback has been initiated.
    pub rollback_started: bool,
}

impl FaultLayer {
    /// A fresh layer; `margin` is the watchdog's re-arm margin —
    /// how long a re-sent update takes to land and apply.
    pub fn new(injector: FaultInjector, reliable: ReliableConfig, slack: SlackBudget) -> Self {
        let margin = reliable.base_delay_ns + 2 * reliable.ack_timeout_ns;
        FaultLayer {
            injector,
            outbox: ReliableOutbox::new(reliable),
            reliable,
            policy: RecoveryPolicy::new(margin),
            slack,
            stats: FaultStats::new(),
            tasks: Vec::new(),
            msg_task: HashMap::new(),
            rollback_started: false,
        }
    }

    /// Tasks not yet applied (0 means the timed plan completed).
    pub fn pending_tasks(&self) -> usize {
        self.tasks.iter().filter(|t| !t.applied).count()
    }
}
