//! Emulation results: bandwidth series and loss accounting.

use crate::link::WindowCounters;
use chronus_clock::Nanos;
use chronus_net::SwitchId;
use std::collections::BTreeMap;

/// One bandwidth sample on one link.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BandwidthSample {
    /// Window end time (ns).
    pub at: Nanos,
    /// Offered load over the window, Mbps — the paper's "bandwidth
    /// consumption" (byte-counter delta over the interval).
    pub offered_mbps: f64,
    /// Successfully serialized load, Mbps.
    pub delivered_mbps: f64,
    /// Dropped load, Mbps.
    pub dropped_mbps: f64,
}

/// Forensic record of one TTL expiry: where the packet died and the
/// trail of switches it bounced through right before. A forwarding
/// loop shows up as a repeating cycle in `last_hops`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TtlDrop {
    /// When the packet died (true time, ns).
    pub at: Nanos,
    /// The switch where the hop budget ran out.
    pub switch: SwitchId,
    /// The last few switches visited, oldest first (bounded by the
    /// packet's hop ring capacity).
    pub last_hops: Vec<SwitchId>,
}

impl TtlDrop {
    /// `true` when the recorded trail revisits a switch — the
    /// signature of a forwarding loop rather than a long path.
    pub fn looped(&self) -> bool {
        self.last_hops
            .iter()
            .enumerate()
            .any(|(i, h)| self.last_hops.iter().skip(i + 1).any(|other| other == h))
    }
}

/// Cap on retained [`TtlDrop`] records: a standing loop kills every
/// arriving packet, and the counter (`ttl_drops`) already carries the
/// magnitude — the per-drop forensics only need enough examples to
/// localise the cycle.
pub const MAX_TTL_DROP_RECORDS: usize = 64;

/// The full emulation report.
#[derive(Clone, Debug, Default)]
pub struct EmuReport {
    /// Per-link bandwidth series (keyed by link endpoints).
    pub bandwidth: BTreeMap<(SwitchId, SwitchId), Vec<BandwidthSample>>,
    /// Bytes delivered to the destination host, per flow index.
    pub delivered_bytes: Vec<u64>,
    /// Bytes dropped at link buffers, total.
    pub buffer_drops: u64,
    /// Packets dropped because their TTL expired — a TTL drop is the
    /// packet-level signature of a transient forwarding loop.
    pub ttl_drops: u64,
    /// Forensics for the first [`MAX_TTL_DROP_RECORDS`] TTL drops:
    /// drop site plus the trail of recently visited switches.
    pub ttl_drop_records: Vec<TtlDrop>,
    /// Packets that missed every table rule (blackholes).
    pub table_misses: u64,
    /// FlowMods applied, as `(true time, switch)` pairs.
    pub applied_updates: Vec<(Nanos, SwitchId)>,
    /// Highest total rule count observed across all switches at any
    /// point of the run — the Fig. 9 flow-table-space metric.
    pub peak_rule_count: usize,
    /// Fault and recovery counters when faults were installed
    /// ([`crate::Emulator::install_faults`]); `None` on fault-free
    /// runs.
    pub faults: Option<chronus_faults::FaultSummary>,
    /// Snapshot of the fault layer's `chronus_faults_*` instruments,
    /// ready to absorb into a process-global
    /// [`chronus_trace::MetricsRegistry`] for exposition; `None` on
    /// fault-free runs.
    pub fault_metrics: Option<chronus_trace::MetricsSnapshot>,
    /// The watchdog abandoned the timed plan and completed the update
    /// through the two-phase rollback path.
    pub rolled_back: bool,
    /// Timed-update tasks the controller never saw applied by the end
    /// of the run (only meaningful with faults installed; the
    /// rollback path re-issues pending tasks through two-phase, so a
    /// rolled-back run reports what the *timed* plan left behind).
    pub timed_tasks_pending: usize,
}

impl EmuReport {
    /// Records one sampled window for a link.
    pub fn push_sample(
        &mut self,
        link: (SwitchId, SwitchId),
        at: Nanos,
        w: WindowCounters,
        interval: Nanos,
    ) {
        let to_mbps = |bytes: u64| (bytes as f64 * 8.0) / (interval as f64 / 1e9) / 1e6;
        self.bandwidth
            .entry(link)
            .or_default()
            .push(BandwidthSample {
                at,
                offered_mbps: to_mbps(w.offered),
                delivered_mbps: to_mbps(w.delivered),
                dropped_mbps: to_mbps(w.dropped),
            });
    }

    /// Counts a TTL expiry and retains its forensics while under the
    /// [`MAX_TTL_DROP_RECORDS`] cap.
    pub fn record_ttl_drop(&mut self, drop: TtlDrop) {
        self.ttl_drops += 1;
        if self.ttl_drop_records.len() < MAX_TTL_DROP_RECORDS {
            self.ttl_drop_records.push(drop);
        }
    }

    /// Peak offered bandwidth ever sampled on a link (0.0 if never).
    pub fn peak_offered_mbps(&self, link: (SwitchId, SwitchId)) -> f64 {
        self.bandwidth
            .get(&link)
            .map(|v| v.iter().map(|s| s.offered_mbps).fold(0.0, f64::max))
            .unwrap_or(0.0)
    }

    /// Peak offered bandwidth across all links.
    pub fn global_peak_offered_mbps(&self) -> f64 {
        self.bandwidth
            .keys()
            .map(|&k| self.peak_offered_mbps(k))
            .fold(0.0, f64::max)
    }

    /// Total bytes delivered across flows.
    pub fn total_delivered(&self) -> u64 {
        self.delivered_bytes.iter().sum()
    }

    /// `true` if the run saw neither loops, blackholes nor drops —
    /// the emulator-level analogue of a `Consistent` verdict.
    pub fn clean(&self) -> bool {
        self.ttl_drops == 0 && self.table_misses == 0 && self.buffer_drops == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_conversion_to_mbps() {
        let mut r = EmuReport::default();
        let w = WindowCounters {
            offered: 125_000_000, // 1 Gbit
            delivered: 62_500_000,
            dropped: 62_500_000,
        };
        r.push_sample((SwitchId(0), SwitchId(1)), 1_000_000_000, w, 1_000_000_000);
        let s = &r.bandwidth[&(SwitchId(0), SwitchId(1))][0];
        assert!((s.offered_mbps - 1000.0).abs() < 1e-9);
        assert!((s.delivered_mbps - 500.0).abs() < 1e-9);
        assert!((s.dropped_mbps - 500.0).abs() < 1e-9);
        assert_eq!(
            r.peak_offered_mbps((SwitchId(0), SwitchId(1))),
            s.offered_mbps
        );
        assert!(r.global_peak_offered_mbps() > 999.0);
        assert_eq!(r.peak_offered_mbps((SwitchId(5), SwitchId(6))), 0.0);
    }

    #[test]
    fn clean_accounting() {
        let mut r = EmuReport::default();
        assert!(r.clean());
        r.ttl_drops = 1;
        assert!(!r.clean());
        r.ttl_drops = 0;
        r.delivered_bytes = vec![10, 20];
        assert_eq!(r.total_delivered(), 30);
    }

    #[test]
    fn ttl_drop_records_are_capped_and_classified() {
        let mut r = EmuReport::default();
        for i in 0..(MAX_TTL_DROP_RECORDS as u64 + 10) {
            r.record_ttl_drop(TtlDrop {
                at: i as Nanos,
                switch: SwitchId(3),
                last_hops: vec![SwitchId(2), SwitchId(3), SwitchId(2)],
            });
        }
        // Every drop is counted; only the first cap-many keep forensics.
        assert_eq!(r.ttl_drops, MAX_TTL_DROP_RECORDS as u64 + 10);
        assert_eq!(r.ttl_drop_records.len(), MAX_TTL_DROP_RECORDS);
        assert!(r.ttl_drop_records[0].looped());
        let straight = TtlDrop {
            at: 0,
            switch: SwitchId(5),
            last_hops: vec![SwitchId(1), SwitchId(2), SwitchId(3)],
        };
        assert!(!straight.looped(), "distinct hops are a path, not a loop");
    }
}
