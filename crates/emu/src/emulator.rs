//! The emulation loop.
// The emulator's switch/port/rule tables are dense and indexed by
// ids it minted at install time; `expect` unwraps those same
// install-time invariants.
#![allow(clippy::indexing_slicing, clippy::expect_used)]

use crate::controller::{ChronusDriver, EngineDriver, OrDriver, TpDriver, UpdateDriver};
use crate::ctrl::{CtrlPayload, FaultLayer, TaskState};
use crate::event::{Event, EventQueue, HopRing};
use crate::link::EmuLink;
use crate::report::{EmuReport, TtlDrop};
use crate::switchdev::{EmuSwitch, HOST_PORT};
use crate::traffic::{chunk_size_for, CbrSource};
use chronus_clock::{HardwareClock, Nanos};
use chronus_faults::{
    Envelope, FaultInjector, FaultPlan, MsgId, RecoveryAction, ReliableConfig, SlackBudget,
    TimeoutVerdict,
};
use chronus_net::{LinkIdx, SwitchId, UpdateInstance};
use chronus_openflow::{Action, FlowMod, Ipv4Prefix, Match, Packet, RuleId};
use chronus_verify::SlackCertificate;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Emulator parameters mapping the abstract model onto wall-clock
/// quantities (defaults follow the paper's Mininet setup: 1 model
/// capacity unit = 1 Mbps, 1 model delay unit = 100 ms, 1 s statistics
/// sampling, updates start at the 5 s mark of a 20 s run).
#[derive(Clone, Copy, Debug)]
pub struct EmuConfig {
    /// Bits per second per model capacity unit.
    pub capacity_unit_bps: u64,
    /// Nanoseconds per model delay unit.
    pub delay_unit_ns: Nanos,
    /// Nanoseconds per schedule time step (keep equal to
    /// `delay_unit_ns` for fidelity to the analysis).
    pub step_ns: Nanos,
    /// Target chunk emissions per delay unit per flow.
    pub chunks_per_step: u64,
    /// Statistics sampling interval.
    pub stats_interval: Nanos,
    /// Total run length.
    pub run_for: Nanos,
    /// When the update plan starts.
    pub update_at: Nanos,
    /// Drop-tail buffer depth, expressed as queueing delay.
    pub buffer_delay: Nanos,
    /// Max absolute clock offset drawn per switch (± ns) — the Time4
    /// synchronization residual.
    pub clock_error_ns: i64,
    /// Max absolute frequency error drawn per switch (± ppb).
    pub clock_drift_ppb: i64,
    /// Initial packet TTL (loop guard).
    pub ttl: u8,
    /// Probability that a fire-and-forget control message (an OR or TP
    /// FlowMod) is lost in the control channel. Chronus messages are
    /// unaffected: Time4 distributes them ahead of the trigger time
    /// and retransmits until acknowledged, so loss only costs latency
    /// it has already budgeted for.
    pub control_loss_prob: f64,
}

impl Default for EmuConfig {
    fn default() -> Self {
        EmuConfig {
            capacity_unit_bps: 1_000_000,
            delay_unit_ns: 100_000_000,
            step_ns: 100_000_000,
            chunks_per_step: 8,
            stats_interval: 1_000_000_000,
            run_for: 20_000_000_000,
            update_at: 5_000_000_000,
            buffer_delay: 200_000_000,
            clock_error_ns: 1_000,
            clock_drift_ppb: 10_000,
            ttl: 64,
            control_loss_prob: 0.0,
        }
    }
}

/// The discrete-event emulator.
pub struct Emulator {
    config: EmuConfig,
    switches: Vec<EmuSwitch>,
    links: Vec<EmuLink>,
    link_endpoints: Vec<(SwitchId, SwitchId)>,
    queue: EventQueue,
    flows: Vec<CbrSource>,
    /// Initial-path rule ids: (flow, switch) → installed rule.
    rule_ids: HashMap<(usize, SwitchId), RuleId>,
    dst_ip_to_flow: HashMap<u32, usize>,
    instance_paths: Vec<(Vec<SwitchId>, Vec<SwitchId>)>, // (init, fin) hops
    report: EmuReport,
    rng: StdRng,
    xid: u64,
    peak_rules: usize,
    faults: Option<FaultLayer>,
}

impl Emulator {
    /// Builds the testbed for an instance: switches with drawn clock
    /// errors, links, initial-path rules, and CBR sources.
    pub fn new(instance: &UpdateInstance, config: EmuConfig, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let net = &instance.network;

        let mut switches: Vec<EmuSwitch> = net
            .switches()
            .map(|id| {
                let offset = rng.gen_range(-config.clock_error_ns..=config.clock_error_ns);
                let drift = rng.gen_range(-config.clock_drift_ppb..=config.clock_drift_ppb);
                EmuSwitch::new(id, HardwareClock::new(offset as Nanos, drift))
            })
            .collect();

        let mut links = Vec::with_capacity(net.link_count());
        let mut link_endpoints = Vec::with_capacity(net.link_count());
        for (i, l) in net.links().enumerate() {
            links.push(EmuLink::new(
                l.capacity * config.capacity_unit_bps,
                l.delay as Nanos * config.delay_unit_ns,
                config.buffer_delay,
            ));
            link_endpoints.push((l.src, l.dst));
            switches[l.src.index()].attach_link(l.dst, LinkIdx(i as u32));
        }

        let mut emu = Emulator {
            config,
            switches,
            links,
            link_endpoints,
            queue: EventQueue::new(),
            flows: Vec::new(),
            rule_ids: HashMap::new(),
            dst_ip_to_flow: HashMap::new(),
            instance_paths: Vec::new(),
            report: EmuReport::default(),
            rng,
            xid: 0,
            peak_rules: 0,
            faults: None,
        };

        for (fi, flow) in instance.flows.iter().enumerate() {
            emu.attach_flow(fi, flow, instance);
        }
        emu.report.delivered_bytes = vec![0; instance.flows.len()];

        // Traffic from t = 0, staggered a little per flow.
        for fi in 0..emu.flows.len() {
            emu.queue
                .push(fi as Nanos * 1_000_000, Event::ChunkEmit { flow: fi });
        }
        // Statistics sampling and the stop event.
        emu.queue.push(config.stats_interval, Event::StatsSample);
        emu.queue.push(config.run_for, Event::Stop);
        emu.track_rule_peak();
        emu
    }

    fn flow_ip(fi: usize, host: u8) -> u32 {
        u32::from_be_bytes([10, host, (fi >> 8) as u8, fi as u8])
    }

    fn attach_flow(&mut self, fi: usize, flow: &chronus_net::Flow, instance: &UpdateInstance) {
        let dst_ip = Self::flow_ip(fi, 0);
        let src_ip = Self::flow_ip(fi, 1);
        self.dst_ip_to_flow.insert(dst_ip, fi);
        self.instance_paths
            .push((flow.initial.hops().to_vec(), flow.fin.hops().to_vec()));

        // Forwarding rules along the initial path.
        let hops = flow.initial.hops();
        for w in hops.windows(2) {
            let port = self.switches[w[0].index()]
                .port_towards(w[1])
                .expect("initial path links exist");
            let id = self.switches[w[0].index()]
                .table
                .add(
                    10,
                    Match::dst_prefix(Ipv4Prefix::host(dst_ip)),
                    vec![Action::Output(port)],
                )
                .expect("unbounded tables");
            self.rule_ids.insert((fi, w[0]), id);
        }
        // Delivery rule at the destination.
        let dst = flow.destination();
        let id = self.switches[dst.index()]
            .table
            .add(
                10,
                Match::dst_prefix(Ipv4Prefix::host(dst_ip)),
                vec![Action::Output(HOST_PORT)],
            )
            .expect("unbounded tables");
        self.rule_ids.insert((fi, dst), id);

        let rate_bps = flow.demand * self.config.capacity_unit_bps;
        let chunk = chunk_size_for(
            rate_bps,
            self.config.delay_unit_ns,
            self.config.chunks_per_step,
        );
        self.flows.push(CbrSource {
            src_switch: flow.source(),
            dst_ip,
            src_ip,
            rate_bps,
            chunk_bytes: chunk,
        });
        let _ = instance;
    }

    fn next_xid(&mut self) -> u64 {
        self.xid += 1;
        self.xid
    }

    /// The FlowMod moving `switch` to its final-path next hop for flow
    /// `fi`: an in-place action modify when an old rule exists, an add
    /// for fresh switches.
    fn update_flowmod(&mut self, fi: usize, switch: SwitchId) -> FlowMod {
        let (_, fin) = self.instance_paths[fi].clone();
        let pos = fin
            .iter()
            .position(|&v| v == switch)
            .expect("updates only target final-path switches");
        let next = fin[pos + 1];
        let port = self.switches[switch.index()]
            .port_towards(next)
            .expect("final path links exist");
        let xid = self.next_xid();
        match self.rule_ids.get(&(fi, switch)) {
            Some(&id) => FlowMod::modify(xid, id, vec![Action::Output(port)]),
            None => FlowMod::add(
                xid,
                10,
                Match::dst_prefix(Ipv4Prefix::host(self.flows[fi].dst_ip)),
                vec![Action::Output(port)],
            ),
        }
    }

    /// Translates a driver into timed `ApplyFlowMod` events.
    pub fn install_driver(&mut self, driver: UpdateDriver) {
        match driver {
            UpdateDriver::None => {}
            UpdateDriver::Chronus(d) => self.install_chronus(d),
            UpdateDriver::Or(d) => self.install_or(d),
            UpdateDriver::Tp(d) => self.install_tp(d),
            UpdateDriver::Engine(d) => self.install_engine(d),
        }
    }

    /// Plans the update through the chronus-engine fallback chain at
    /// install time, then installs the result as timed (Chronus-style)
    /// or two-phase events depending on which stage won.
    fn install_engine(&mut self, d: EngineDriver) {
        // The driver re-states the instance; make sure it describes
        // the testbed this emulator was actually built from.
        assert_eq!(
            d.instance.flows.len(),
            self.instance_paths.len(),
            "engine driver instance must match the emulated instance"
        );
        for (flow, (init, fin)) in d.instance.flows.iter().zip(&self.instance_paths) {
            assert!(
                flow.initial.hops() == &init[..] && flow.fin.hops() == &fin[..],
                "engine driver instance must match the emulated instance"
            );
        }
        let engine = chronus_engine::Engine::new(chronus_engine::EngineConfig {
            workers: d.workers,
            default_deadline: d.deadline,
            ..chronus_engine::EngineConfig::default()
        });
        let planned = engine.plan_one(chronus_engine::UpdateRequest::new(
            0,
            d.instance.clone(),
            d.deadline,
        ));
        match planned.plan {
            chronus_engine::PlanKind::Timed(schedule) => {
                self.install_chronus(ChronusDriver { schedule });
            }
            chronus_engine::PlanKind::TwoPhase(_) => {
                self.install_tp(TpDriver::default());
            }
        }
    }

    fn install_chronus(&mut self, d: ChronusDriver) {
        if self.faults.is_some() {
            self.install_chronus_reliable(d);
            return;
        }
        let assignments: Vec<(chronus_net::FlowId, SwitchId, i64)> = d.schedule.iter().collect();
        for (flow_id, switch, t) in assignments {
            let fi = flow_id.index();
            let fm = self.update_flowmod(fi, switch);
            // The controller arms a Time4 trigger for the nominal
            // local time; the switch's clock error shifts the true
            // firing instant.
            let local_target = self.config.update_at + t as Nanos * self.config.step_ns;
            let true_fire = self.switches[switch.index()]
                .clock
                .true_time_of_local(local_target)
                .max(0);
            self.queue.push(
                true_fire,
                Event::ApplyFlowMod {
                    switch,
                    flowmod: fm,
                },
            );
        }
    }

    /// Installs a fault plan plus the reliable-delivery protocol that
    /// defends against it. Must be called before
    /// [`install_driver`](Self::install_driver): a Chronus (or
    /// engine-planned timed) driver then travels over the faulty
    /// control channel — Arm messages with acks, retransmission and
    /// receiver dedup, switch-local trigger executors, and the
    /// controller watchdog deciding between a slack-certified re-send
    /// and the two-phase rollback.
    ///
    /// `slack` is the certified timing tolerance ±Δ (see
    /// [`install_faults_certified`](Self::install_faults_certified)
    /// to derive it from a `chronus-verify` slack certificate).
    pub fn install_faults(
        &mut self,
        plan: FaultPlan,
        reliable: ReliableConfig,
        slack: SlackBudget,
    ) {
        let injector = FaultInjector::new(plan);
        for r in injector.reboots() {
            self.queue.push(
                r.at.max(0),
                Event::SwitchReboot {
                    switch: r.switch,
                    outage_ns: r.outage_ns.max(0),
                },
            );
        }
        for s in injector.spikes() {
            self.queue.push(
                s.at.max(0),
                Event::ClockSpike {
                    switch: s.switch,
                    offset_ns: s.offset_ns,
                },
            );
        }
        self.faults = Some(FaultLayer::new(injector, reliable, slack));
    }

    /// [`install_faults`](Self::install_faults) with the slack budget
    /// taken from a `chronus-verify` [`SlackCertificate`] under this
    /// emulator's step length.
    pub fn install_faults_certified(
        &mut self,
        plan: FaultPlan,
        reliable: ReliableConfig,
        certificate: &SlackCertificate,
    ) {
        let delta = certificate.delta_ns(self.config.step_ns);
        self.install_faults(plan, reliable, SlackBudget::new(delta));
    }

    /// The Chronus install path over the faulty control channel: each
    /// schedule entry becomes a task distributed as a reliable Arm
    /// message `lead_time` ahead of its trigger, with a watchdog
    /// deadline check shortly after its nominal firing instant.
    fn install_chronus_reliable(&mut self, d: ChronusDriver) {
        let assignments: Vec<(chronus_net::FlowId, SwitchId, i64)> = d.schedule.iter().collect();
        for (flow_id, switch, t) in assignments {
            let fi = flow_id.index();
            let fm = self.update_flowmod(fi, switch);
            let local_target = self.config.update_at + t as Nanos * self.config.step_ns;
            let nominal_true = local_target; // the schedule's intent in true time
            let fl = self.faults.as_mut().expect("reliable path requires faults");
            let task = fl.tasks.len();
            fl.tasks.push(TaskState {
                switch,
                local_target,
                nominal_true,
                flowmod: fm.clone(),
                applied: false,
            });
            let send_at = (nominal_true - fl.reliable.lead_time_ns).max(0);
            let watchdog_at = nominal_true + fl.policy.margin_ns;
            self.ctrl_send(
                CtrlPayload::Arm {
                    task,
                    switch,
                    local_time: local_target,
                    flowmod: fm,
                },
                send_at,
                Some(task),
            );
            self.queue.push(watchdog_at, Event::WatchdogCheck { task });
        }
    }

    /// Puts one reliable control message on the (lossy) wire at true
    /// time `at`: registers it with the outbox, lets the injector
    /// decide each copy's fate, and schedules the retransmission
    /// timer.
    fn ctrl_send(&mut self, payload: CtrlPayload, at: Nanos, task: Option<usize>) {
        let Some(fl) = self.faults.as_mut() else {
            return;
        };
        let switch = payload.switch();
        let (envelope, timeout_at) = fl.outbox.send(payload, at);
        fl.msg_task.insert(envelope.id, task);
        fl.stats.outstanding_add(1);
        let id = envelope.id;
        Self::transmit(fl, &mut self.queue, switch, envelope, at);
        self.queue.push(timeout_at, Event::CtrlTimeout { id });
    }

    /// One transmission attempt through the fault injector: pushes a
    /// `CtrlDeliver` per surviving copy (base delay + injected extra).
    fn transmit(
        fl: &mut FaultLayer,
        queue: &mut EventQueue,
        switch: SwitchId,
        envelope: Envelope<CtrlPayload>,
        at: Nanos,
    ) {
        let fate = fl.injector.channel_fate();
        if fate.lost() {
            fl.stats.record_drop();
            return;
        }
        if fate.deliveries.len() > 1 {
            fl.stats.record_dup();
        }
        for &extra in &fate.deliveries {
            if extra > 0 {
                fl.stats.record_delay();
            }
            queue.push(
                at + fl.reliable.base_delay_ns + extra,
                Event::CtrlDeliver {
                    switch,
                    envelope: envelope.clone(),
                },
            );
        }
    }

    /// Sends an acknowledgement back through the same faulty channel.
    fn send_ack(fl: &mut FaultLayer, queue: &mut EventQueue, id: MsgId, now: Nanos) {
        let fate = fl.injector.channel_fate();
        if fate.lost() {
            fl.stats.record_drop();
            return;
        }
        if fate.deliveries.len() > 1 {
            fl.stats.record_dup();
        }
        for &extra in &fate.deliveries {
            if extra > 0 {
                fl.stats.record_delay();
            }
            queue.push(
                now + fl.reliable.base_delay_ns + extra,
                Event::CtrlAck { id },
            );
        }
    }

    fn install_or(&mut self, d: OrDriver) {
        // Single-flow semantics (the paper's OR baseline is per flow).
        let fi = 0;
        let mut round_start = self.config.update_at;
        for round in &d.rounds {
            let mut latest = round_start;
            for &switch in round {
                let latency = self.rng.gen_range(d.latency_range.0..=d.latency_range.1);
                let at = round_start + latency;
                latest = latest.max(at);
                if self.control_message_lost() {
                    continue; // fire-and-forget FlowMod vanished
                }
                let fm = self.update_flowmod(fi, switch);
                self.queue.push(
                    at,
                    Event::ApplyFlowMod {
                        switch,
                        flowmod: fm,
                    },
                );
            }
            // Barrier: next round only after every reply.
            round_start = latest + 1_000_000;
        }
    }

    /// Draws whether a fire-and-forget control message is lost.
    fn control_message_lost(&mut self) -> bool {
        self.config.control_loss_prob > 0.0 && self.rng.gen::<f64>() < self.config.control_loss_prob
    }

    fn install_tp(&mut self, d: TpDriver) {
        let base = self.config.update_at;
        self.install_tp_at(d, base);
    }

    /// The two-phase install sequence starting at `base` — the normal
    /// TP driver uses `config.update_at`; the watchdog's rollback
    /// fallback re-enters here at the abort instant.
    fn install_tp_at(&mut self, d: TpDriver, base: Nanos) {
        let fi = 0;
        let (_, fin) = self.instance_paths[fi].clone();
        let dst_ip = self.flows[fi].dst_ip;
        let source = fin[0];
        let dst = *fin.last().expect("paths have a destination");

        // Phase 1: tagged generation at priority 20 on every
        // final-path switch except the source (whose stamp rule is the
        // flip itself).
        let mut latest = base;
        for (pos, &v) in fin.iter().enumerate() {
            if v == source {
                continue;
            }
            let actions = if v == dst {
                vec![Action::StripVlan, Action::Output(HOST_PORT)]
            } else {
                let next = fin[pos + 1];
                let port = self.switches[v.index()]
                    .port_towards(next)
                    .expect("final path links exist");
                vec![Action::Output(port)]
            };
            let mat = Match {
                dst: Some(Ipv4Prefix::host(dst_ip)),
                vlan: Some(2),
                ..Default::default()
            };
            let xid = self.next_xid();
            let latency = self.rng.gen_range(d.latency_range.0..=d.latency_range.1);
            let at = base + latency;
            latest = latest.max(at);
            if self.control_message_lost() {
                continue; // the tagged duplicate never arrives
            }
            self.queue.push(
                at,
                Event::ApplyFlowMod {
                    switch: v,
                    flowmod: FlowMod::add(xid, 20, mat, actions),
                },
            );
        }

        // Phase 2: flip the ingress stamp after the phase-1 barrier.
        let flip_at = latest + d.flip_gap;
        let next = fin[1];
        let port = self.switches[source.index()]
            .port_towards(next)
            .expect("final path links exist");
        let src_rule = self.rule_ids[&(fi, source)];
        let xid = self.next_xid();
        self.queue.push(
            flip_at,
            Event::ApplyFlowMod {
                switch: source,
                flowmod: FlowMod::modify(
                    xid,
                    src_rule,
                    vec![Action::SetVlan(2), Action::Output(port)],
                ),
            },
        );

        // Cleanup: delete old rules that are no longer on the final
        // path once old-tag packets drained.
        let cleanup_at = flip_at + d.cleanup_gap;
        let (init, fin_hops) = self.instance_paths[fi].clone();
        for &v in &init {
            if fin_hops.contains(&v) {
                continue;
            }
            if let Some(&id) = self.rule_ids.get(&(fi, v)) {
                let xid = self.next_xid();
                self.queue.push(
                    cleanup_at,
                    Event::ApplyFlowMod {
                        switch: v,
                        flowmod: FlowMod::delete(xid, id),
                    },
                );
            }
        }
    }

    fn track_rule_peak(&mut self) {
        let total: usize = self.switches.iter().map(|s| s.table.len()).sum();
        self.peak_rules = self.peak_rules.max(total);
    }

    /// The highest total rule count observed so far (Fig. 9 metric).
    pub fn peak_rule_count(&self) -> usize {
        self.peak_rules
    }

    /// Current total rule count across all switches.
    pub fn current_rule_count(&self) -> usize {
        self.switches.iter().map(|s| s.table.len()).sum()
    }

    /// Runs the emulation to completion and returns the report.
    pub fn run(mut self) -> EmuReport {
        let mut span = chronus_trace::span!(
            "emu.run",
            switches = self.switches.len(),
            flows = self.flows.len(),
            run_for_ns = self.config.run_for as i64
        )
        .entered();
        while let Some(ev) = self.queue.pop() {
            let now = ev.at;
            match ev.event {
                Event::Stop => break,
                Event::ChunkEmit { flow } => {
                    let f = self.flows[flow];
                    let pkt = Packet {
                        in_port: HOST_PORT,
                        src: f.src_ip,
                        dst: f.dst_ip,
                        vlan: None,
                        bytes: f.chunk_bytes,
                    };
                    self.queue.push(
                        now,
                        Event::PacketArrive {
                            switch: f.src_switch,
                            packet: pkt,
                            ttl: self.config.ttl,
                            hops: HopRing::new(),
                        },
                    );
                    let next = now + f.interval();
                    if next < self.config.run_for {
                        self.queue.push(next, Event::ChunkEmit { flow });
                    }
                }
                Event::PacketArrive {
                    switch,
                    packet,
                    ttl,
                    hops,
                } => {
                    self.handle_packet(now, switch, packet, ttl, hops);
                }
                Event::LinkDeliver {
                    switch,
                    packet,
                    ttl,
                    hops,
                    ..
                } => {
                    self.handle_packet(now, switch, packet, ttl, hops);
                }
                Event::ApplyFlowMod { switch, flowmod } => {
                    if let Ok(maybe_id) = self.switches[switch.index()].apply_flowmod(&flowmod) {
                        // Remember ids of rules added during updates so
                        // later drivers could address them.
                        if let Some(id) = maybe_id {
                            if let Some(fi) = flowmod
                                .mat
                                .dst
                                .map(|p| p.network())
                                .and_then(|ip| self.dst_ip_to_flow.get(&ip).copied())
                            {
                                self.rule_ids.entry((fi, switch)).or_insert(id);
                            }
                        }
                        self.report.applied_updates.push((now, switch));
                    }
                    self.track_rule_peak();
                }
                Event::StatsSample => {
                    for (i, link) in self.links.iter_mut().enumerate() {
                        let w = link.sample_window();
                        self.report.push_sample(
                            self.link_endpoints[i],
                            now,
                            w,
                            self.config.stats_interval,
                        );
                    }
                    let next = now + self.config.stats_interval;
                    if next <= self.config.run_for {
                        self.queue.push(next, Event::StatsSample);
                    }
                }
                Event::CtrlDeliver { switch, envelope } => {
                    self.handle_ctrl_deliver(now, switch, envelope);
                }
                Event::CtrlAck { id } => {
                    if let Some(fl) = self.faults.as_mut() {
                        if fl.outbox.on_ack(id) {
                            fl.stats.record_ack();
                            fl.stats.outstanding_add(-1);
                        }
                    }
                }
                Event::CtrlTimeout { id } => self.handle_ctrl_timeout(now, id),
                Event::TriggerPoll { switch } => self.handle_trigger_poll(now, switch),
                Event::WatchdogCheck { task } => self.handle_watchdog(now, task),
                Event::SwitchReboot { switch, outage_ns } => {
                    let sw = &mut self.switches[switch.index()];
                    sw.agent.online = false;
                    let lost = sw.agent.executor.clear();
                    if let Some(fl) = self.faults.as_mut() {
                        fl.stats.record_reboot(lost as u64);
                    }
                    self.queue
                        .push(now + outage_ns.max(0), Event::SwitchRecover { switch });
                }
                Event::SwitchRecover { switch } => self.handle_switch_recover(now, switch),
                Event::ClockSpike { switch, offset_ns } => {
                    let sw = &mut self.switches[switch.index()];
                    // `correct_offset` subtracts its estimate, so a
                    // spike of +x is a correction of −x.
                    sw.clock.correct_offset(-offset_ns);
                    sw.agent.spike_clock(offset_ns);
                    if let Some(fl) = self.faults.as_mut() {
                        fl.stats.record_spike();
                    }
                    // The predicted firing instants moved; re-poll.
                    if let Some(lt) = sw.agent.executor.next_local_time() {
                        let predicted = sw.agent.executor.true_fire_time(lt).max(now + 1);
                        self.queue.push(predicted, Event::TriggerPoll { switch });
                    }
                }
            }
        }
        if let Some(fl) = &self.faults {
            self.report.faults = Some(fl.stats.summary());
            self.report.fault_metrics = Some(fl.stats.snapshot());
            self.report.timed_tasks_pending = fl.pending_tasks();
        }
        self.report.buffer_drops = self.links.iter().map(|l| l.totals().dropped).sum();
        self.report.peak_rule_count = self.peak_rules;
        if span.is_recording() {
            span.record("delivered_bytes", self.report.total_delivered());
            span.record("ttl_drops", self.report.ttl_drops);
            span.record("buffer_drops", self.report.buffer_drops);
            span.record("table_misses", self.report.table_misses);
        }
        self.report
    }

    fn handle_packet(
        &mut self,
        now: Nanos,
        switch: SwitchId,
        packet: Packet,
        ttl: u8,
        mut hops: HopRing,
    ) {
        hops.push(switch);
        let (pkt, ports) = self.switches[switch.index()].forward(packet);
        if ports.is_empty() {
            self.report.table_misses += 1;
            return;
        }
        for port in ports {
            if port == HOST_PORT {
                if let Some(&fi) = self.dst_ip_to_flow.get(&pkt.dst) {
                    self.report.delivered_bytes[fi] += pkt.bytes;
                }
                continue;
            }
            if ttl == 0 {
                let drop = TtlDrop {
                    at: now,
                    switch,
                    last_hops: hops.hops(),
                };
                chronus_trace::instant!(
                    "emu.ttl_drop",
                    switch = switch.0 as u64,
                    looped = drop.looped()
                );
                self.report.record_ttl_drop(drop);
                continue;
            }
            let Some(link_idx) = self.switches[switch.index()].link_behind(port) else {
                self.report.table_misses += 1;
                continue;
            };
            let head = self.link_endpoints[link_idx.index()].1;
            if let Some(arrival) = self.links[link_idx.index()].transmit(now, pkt.bytes) {
                // The receiving in-port: the head's port towards us if
                // a reverse link exists, otherwise a synthetic port.
                let in_port = self.switches[head.index()]
                    .port_towards(switch)
                    .unwrap_or(u16::MAX);
                let mut arrived = pkt;
                arrived.in_port = in_port;
                self.queue.push(
                    arrival,
                    Event::PacketArrive {
                        switch: head,
                        packet: arrived,
                        ttl: ttl - 1,
                        hops,
                    },
                );
            }
        }
    }

    /// A control-message copy reaches its switch agent: dedup, ack,
    /// and execute fresh payloads (arm a trigger / apply now / abort).
    fn handle_ctrl_deliver(
        &mut self,
        now: Nanos,
        switch: SwitchId,
        envelope: Envelope<CtrlPayload>,
    ) {
        let Some(fl) = self.faults.as_mut() else {
            return;
        };
        let sw = &mut self.switches[switch.index()];
        if !sw.agent.online {
            return; // agent down: the attempt is lost, no ack
        }
        let fresh = sw.agent.dedup.accept(envelope.id);
        Self::send_ack(fl, &mut self.queue, envelope.id, now);
        if !fresh {
            return; // retransmission or wire duplicate: re-acked only
        }
        match envelope.payload {
            CtrlPayload::Arm {
                task,
                local_time,
                flowmod,
                ..
            } => {
                if fl.tasks[task].applied {
                    return; // recovery already applied this update
                }
                sw.agent.executor.arm(local_time, (task, flowmod));
                fl.stats.record_armed();
                let predicted = sw.agent.executor.true_fire_time(local_time).max(now);
                self.queue.push(predicted, Event::TriggerPoll { switch });
            }
            CtrlPayload::Apply { task, flowmod, .. } => {
                if fl.tasks[task].applied {
                    return;
                }
                let extra = fl.injector.install_extra(switch);
                if extra > 0 {
                    fl.stats.record_straggler_install();
                }
                let apply_at = now + extra;
                fl.tasks[task].applied = true;
                fl.stats
                    .record_fired(apply_at - fl.tasks[task].nominal_true);
                self.queue
                    .push(apply_at, Event::ApplyFlowMod { switch, flowmod });
            }
            CtrlPayload::Abort { .. } => {
                sw.agent.executor.clear();
            }
        }
    }

    /// A retransmission timer fires at the controller.
    fn handle_ctrl_timeout(&mut self, now: Nanos, id: MsgId) {
        let Some(fl) = self.faults.as_mut() else {
            return;
        };
        match fl.outbox.on_timeout(id, now) {
            TimeoutVerdict::AlreadyAcked => {}
            TimeoutVerdict::Retransmit {
                envelope,
                next_timeout_at,
            } => {
                fl.stats.record_retransmit();
                let switch = envelope.payload.switch();
                Self::transmit(fl, &mut self.queue, switch, envelope, now);
                self.queue.push(next_timeout_at, Event::CtrlTimeout { id });
            }
            TimeoutVerdict::Exhausted => {
                fl.stats.record_exhausted();
                fl.stats.outstanding_add(-1);
                // Escalate straight to the watchdog — the nominal
                // deadline check may be far away (or already past).
                if let Some(Some(task)) = fl.msg_task.get(&id).copied() {
                    self.queue.push(now, Event::WatchdogCheck { task });
                }
            }
        }
    }

    /// A switch agent checks its trigger executor at a predicted
    /// firing instant, applying everything whose local time passed.
    fn handle_trigger_poll(&mut self, now: Nanos, switch: SwitchId) {
        let Some(fl) = self.faults.as_mut() else {
            return;
        };
        let sw = &mut self.switches[switch.index()];
        if !sw.agent.online {
            return; // a reboot cleared the triggers anyway
        }
        for (true_at, (task, flowmod)) in sw.agent.executor.advance_to(now) {
            if fl.tasks[task].applied {
                continue; // double-armed after a recovery re-send
            }
            let extra = fl.injector.install_extra(switch);
            if extra > 0 {
                fl.stats.record_straggler_install();
            }
            // `true_at` is the nominal firing instant for on-time
            // triggers (it may trail `now` by the poll's rounding
            // nanosecond — the heap handles a push into the past) and
            // the clamped `now` for late re-arms.
            let apply_at = true_at + extra;
            fl.tasks[task].applied = true;
            fl.stats
                .record_fired(apply_at - fl.tasks[task].nominal_true);
            self.queue
                .push(apply_at, Event::ApplyFlowMod { switch, flowmod });
        }
        if let Some(lt) = sw.agent.executor.next_local_time() {
            let predicted = sw.agent.executor.true_fire_time(lt).max(now + 1);
            self.queue.push(predicted, Event::TriggerPoll { switch });
        }
    }

    /// The controller's deadline check for one timed update: decide
    /// between a slack-certified re-send and the two-phase rollback.
    fn handle_watchdog(&mut self, now: Nanos, task: usize) {
        let decision = {
            let Some(fl) = self.faults.as_mut() else {
                return;
            };
            let t = &fl.tasks[task];
            if t.applied || fl.rollback_started {
                return;
            }
            let d = fl.policy.decide(t.nominal_true, now, fl.slack);
            if matches!(d, RecoveryAction::Rearm { .. }) {
                fl.stats.record_rearm();
            }
            (d, t.switch, t.flowmod.clone())
        };
        match decision {
            (RecoveryAction::Rearm { at }, switch, flowmod) => {
                let (margin, base_delay) = {
                    let fl = self.faults.as_ref().expect("checked above");
                    (fl.policy.margin_ns, fl.reliable.base_delay_ns)
                };
                // An immediate-apply re-send, timed so the first
                // attempt lands as close to `at` as the channel
                // allows; re-check in case it dies on the wire too.
                let send_at = (at - base_delay).max(now);
                self.ctrl_send(
                    CtrlPayload::Apply {
                        task,
                        switch,
                        flowmod,
                    },
                    send_at,
                    Some(task),
                );
                self.queue.push(at + margin, Event::WatchdogCheck { task });
            }
            (RecoveryAction::Rollback, _, _) => self.start_rollback(now),
        }
    }

    /// The certified window is unreachable: abort the timed plan and
    /// complete the update through the two-phase path from `now`.
    fn start_rollback(&mut self, now: Nanos) {
        let targets: Vec<SwitchId> = {
            let Some(fl) = self.faults.as_mut() else {
                return;
            };
            if fl.rollback_started {
                return;
            }
            fl.rollback_started = true;
            fl.stats.record_rollback();
            // A watchdog rollback is exactly the moment a forensic
            // dump pays for itself: capture the ring before the
            // two-phase path overwrites it (inert unless the flight
            // recorder is on, rate limited when it is).
            chronus_trace::FlightRecorder::trigger("watchdog-rollback");
            let mut s: Vec<SwitchId> = fl
                .tasks
                .iter()
                .filter(|t| !t.applied)
                .map(|t| t.switch)
                .collect();
            s.sort_unstable_by_key(|v| v.0);
            s.dedup();
            s
        };
        self.report.rolled_back = true;
        for switch in targets {
            self.ctrl_send(CtrlPayload::Abort { switch }, now, None);
        }
        let margin = self
            .faults
            .as_ref()
            .map(|fl| fl.policy.margin_ns)
            .unwrap_or(0);
        self.install_tp_at(TpDriver::default(), now + margin);
    }

    /// A rebooted agent reconnects: the controller re-arms every
    /// unapplied update targeting it (fresh message ids; the
    /// per-task `applied` guard absorbs any double-arm from an old
    /// retransmission that lands later).
    fn handle_switch_recover(&mut self, now: Nanos, switch: SwitchId) {
        self.switches[switch.index()].agent.online = true;
        let pending: Vec<(usize, Nanos, FlowMod)> = {
            let Some(fl) = self.faults.as_ref() else {
                return;
            };
            if fl.rollback_started {
                return;
            }
            fl.tasks
                .iter()
                .enumerate()
                .filter(|(_, t)| !t.applied && t.switch == switch)
                .map(|(i, t)| (i, t.local_target, t.flowmod.clone()))
                .collect()
        };
        for (task, local_time, flowmod) in pending {
            self.ctrl_send(
                CtrlPayload::Arm {
                    task,
                    switch,
                    local_time,
                    flowmod,
                },
                now,
                Some(task),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chronus_core::greedy::greedy_schedule;
    use chronus_net::motivating_example;

    fn short_config() -> EmuConfig {
        EmuConfig {
            run_for: 8_000_000_000,
            update_at: 2_000_000_000,
            ..Default::default()
        }
    }

    #[test]
    fn steady_state_delivers_everything() {
        let inst = motivating_example();
        let emu = Emulator::new(&inst, short_config(), 1);
        let report = emu.run();
        assert!(report.clean(), "drops: {report:?}");
        // 1 Mbps for 8 s ≈ 1 MB delivered (minus in-flight tail).
        let delivered = report.total_delivered();
        assert!(
            delivered > 800_000 && delivered <= 1_000_000,
            "delivered {delivered}"
        );
        // The old path carries ≈1 Mbps in every sampled window.
        let s0s1 = &report.bandwidth[&(SwitchId(0), SwitchId(1))];
        assert!(!s0s1.is_empty());
        for s in &s0s1[1..] {
            assert!((s.offered_mbps - 1.0).abs() < 0.3, "{s:?}");
        }
    }

    #[test]
    fn chronus_update_stays_clean_and_migrates() {
        let inst = motivating_example();
        let schedule = greedy_schedule(&inst).unwrap().schedule;
        let mut emu = Emulator::new(&inst, short_config(), 2);
        emu.install_driver(UpdateDriver::chronus(schedule, &inst));
        let report = emu.run();
        assert_eq!(report.ttl_drops, 0, "no loops under Chronus");
        assert_eq!(report.table_misses, 0);
        assert_eq!(report.applied_updates.len(), 4);
        // After the update, traffic flows on the new first link <v1,v4>.
        let new_link = &report.bandwidth[&(SwitchId(0), SwitchId(3))];
        let late = new_link.last().unwrap();
        assert!(late.offered_mbps > 0.7, "migrated traffic: {late:?}");
        // And the old second link <v2,v3> is quiet at the end.
        let old_link = &report.bandwidth[&(SwitchId(1), SwitchId(2))];
        let late_old = old_link.last().unwrap();
        assert!(
            late_old.offered_mbps < 0.3,
            "old path drained: {late_old:?}"
        );
    }

    #[test]
    fn engine_driver_plans_and_migrates_cleanly() {
        // The engine's greedy stage wins on the motivating example, so
        // the install reduces to Chronus-style timed events — same
        // clean migration as the handed-in schedule, but planned at
        // install time.
        let inst = motivating_example();
        let mut emu = Emulator::new(&inst, short_config(), 2);
        emu.install_driver(UpdateDriver::engine(std::sync::Arc::new(inst), 2));
        let report = emu.run();
        assert_eq!(report.ttl_drops, 0, "no loops under the engine plan");
        assert_eq!(report.table_misses, 0);
        assert_eq!(report.applied_updates.len(), 4);
        let new_link = &report.bandwidth[&(SwitchId(0), SwitchId(3))];
        assert!(new_link.last().unwrap().offered_mbps > 0.7);
        let old_link = &report.bandwidth[&(SwitchId(1), SwitchId(2))];
        assert!(old_link.last().unwrap().offered_mbps < 0.3);
    }

    #[test]
    fn engine_driver_zero_deadline_installs_two_phase() {
        // A spent deadline degrades the plan to the two-phase
        // fallback: the emulator installs tagged duplicates + a stamp
        // flip instead of timed updates — more events than the four
        // timed rewrites, still a clean migration.
        let inst = motivating_example();
        let mut emu = Emulator::new(&inst, short_config(), 2);
        let mut driver = match UpdateDriver::engine(std::sync::Arc::new(inst), 1) {
            UpdateDriver::Engine(d) => d,
            _ => unreachable!(),
        };
        driver.deadline = std::time::Duration::ZERO;
        emu.install_driver(UpdateDriver::Engine(driver));
        let report = emu.run();
        assert_eq!(report.ttl_drops, 0, "two-phase never loops");
        assert!(
            report.applied_updates.len() > 4,
            "TP installs duplicates, flip and cleanup: {}",
            report.applied_updates.len()
        );
    }

    #[test]
    #[should_panic(expected = "must match the emulated instance")]
    fn engine_driver_rejects_mismatched_instance() {
        let inst = motivating_example();
        let mut emu = Emulator::new(&inst, short_config(), 2);
        let other = chronus_net::reversal_instance(4, 2, 1);
        emu.install_driver(UpdateDriver::engine(std::sync::Arc::new(other), 1));
    }

    #[test]
    fn or_round_with_source_congests_transiently() {
        // Round 1 fires v1 and v2 together: new flow reaches <v4,v5>
        // through the shortcut (delay 1 unit) while old in-flight
        // cohorts are still draining through v2→v3→v4 (delay 3 units):
        // for ~2 delay units the link sees double its capacity — the
        // Fig. 6 congestion spike.
        let inst = motivating_example();
        let cfg = EmuConfig {
            stats_interval: 100_000_000, // 100 ms windows resolve the spike
            ..short_config()
        };
        // Only the first OR round: the overlap on <v4,v5> is not cut
        // short by v4's own update, so a full sampling window sees
        // both streams. The seed pins a latency draw whose overlap
        // spans a whole window; draws that straddle two windows dilute
        // the peak below the doubled-capacity threshold.
        let rounds = vec![vec![SwitchId(0), SwitchId(1)]];
        let mut emu = Emulator::new(&inst, cfg, 0);
        emu.install_driver(UpdateDriver::or_rounds(rounds));
        let report = emu.run();
        let peak = report.peak_offered_mbps((SwitchId(3), SwitchId(4)));
        assert!(
            peak > 1.5,
            "old+new streams must overlap on <v4,v5>, peak {peak}"
        );
    }

    #[test]
    fn persistent_mixed_state_exhausts_ttl() {
        // Updating v4 (new rule → v3) while v3 keeps its old rule
        // (→ v4) creates a standing two-switch loop: every arriving
        // packet bounces until its TTL expires.
        let inst = motivating_example();
        let cfg = EmuConfig {
            ttl: 8, // a bounce costs 2 hops / 200 ms; 8 hops expire fast
            ..short_config()
        };
        let mut emu = Emulator::new(&inst, cfg, 6);
        emu.install_driver(UpdateDriver::or_rounds(vec![vec![SwitchId(3)]]));
        let report = emu.run();
        // The standing loop kills packets two ways: TTL expiry on the
        // bounce, and buffer overflow on the links the circulating
        // traffic doubles up. Either way, traffic dies and delivery
        // stalls.
        assert!(
            report.ttl_drops > 0 || report.buffer_drops > 0,
            "standing loop must drop packets: {report:?}"
        );
        assert!(!report.clean());
    }

    #[test]
    fn ttl_drop_forensics_localize_the_loop() {
        // Same standing v3↔v4 loop as above, but with a buffer deep
        // enough that packets die of TTL exhaustion (not overflow):
        // every drop record must carry the bounce trail, and the trail
        // must name the two looping switches.
        let inst = motivating_example();
        let cfg = EmuConfig {
            ttl: 8,
            buffer_delay: 10_000_000_000, // never overflow; force TTL expiry
            ..short_config()
        };
        let mut emu = Emulator::new(&inst, cfg, 6);
        emu.install_driver(UpdateDriver::or_rounds(vec![vec![SwitchId(3)]]));
        let report = emu.run();
        assert!(report.ttl_drops > 0, "standing loop must expire packets");
        assert!(!report.ttl_drop_records.is_empty());
        assert!(
            report.ttl_drop_records.len() <= crate::report::MAX_TTL_DROP_RECORDS,
            "forensics stay bounded"
        );
        for drop in &report.ttl_drop_records {
            assert!(drop.looped(), "an expiring packet was bouncing: {drop:?}");
            // The v3↔v4 bounce dominates the remembered tail.
            assert!(
                drop.last_hops.contains(&SwitchId(2)) && drop.last_hops.contains(&SwitchId(3)),
                "trail names the looping pair: {drop:?}"
            );
        }
    }

    #[test]
    fn two_phase_is_loop_free_but_doubles_rules() {
        let inst = motivating_example();
        let mut emu = Emulator::new(&inst, short_config(), 3);
        let base_rules = emu.current_rule_count();
        emu.install_driver(UpdateDriver::two_phase());
        // Run and inspect: no loops, no misses.
        let report = emu.run();
        assert_eq!(report.ttl_drops, 0, "TP is per-packet consistent");
        assert_eq!(report.table_misses, 0);
        // Baseline: 6 rules (5 forwarding + 1 delivery).
        assert_eq!(base_rules, 6);
    }

    #[test]
    fn tp_peak_rules_exceed_chronus_peak() {
        let inst = motivating_example();
        // TP: the transition holds old rules (6) plus the tagged new
        // generation (4: v4, v3, v2, v6 — the source's stamp rule is
        // the modified original).
        let mut tp = Emulator::new(&inst, short_config(), 4);
        tp.install_driver(UpdateDriver::two_phase());
        let tp_report = tp.run();
        assert_eq!(tp_report.peak_rule_count, 10);

        // Chronus rewrites actions in place: the peak never exceeds
        // the baseline 6 rules.
        let schedule = greedy_schedule(&inst).unwrap().schedule;
        let mut ch = Emulator::new(&inst, short_config(), 4);
        ch.install_driver(UpdateDriver::chronus(schedule, &inst));
        let ch_report = ch.run();
        assert_eq!(ch_report.peak_rule_count, 6);
    }

    /// A fault-enabled emulator with the motivating example's greedy
    /// schedule installed over the reliable channel.
    fn faulty_emu(plan: FaultPlan, reliable: ReliableConfig, slack: SlackBudget) -> Emulator {
        let inst = motivating_example();
        let schedule = greedy_schedule(&inst).unwrap().schedule;
        let mut emu = Emulator::new(&inst, short_config(), 2);
        emu.install_faults(plan, reliable, slack);
        emu.install_driver(UpdateDriver::chronus(schedule, &inst));
        emu
    }

    #[test]
    fn reliable_quiet_run_migrates_cleanly() {
        let emu = faulty_emu(
            FaultPlan::quiet(7),
            ReliableConfig::default(),
            SlackBudget::new(99_000_000),
        );
        let report = emu.run();
        assert!(report.clean(), "quiet faulty channel stays clean");
        assert_eq!(report.applied_updates.len(), 4);
        assert_eq!(report.timed_tasks_pending, 0);
        assert!(!report.rolled_back);
        let f = report.faults.expect("fault summary present");
        assert_eq!(f.drops, 0);
        assert_eq!(f.retransmits, 0);
        assert_eq!(f.triggers_armed, 4);
        assert_eq!(f.triggers_fired, 4);
        assert_eq!(f.rollbacks, 0);
        // Traffic migrated exactly as on the ideal channel.
        let new_link = &report.bandwidth[&(SwitchId(0), SwitchId(3))];
        assert!(new_link.last().unwrap().offered_mbps > 0.7);
    }

    #[test]
    fn lossy_run_recovers_via_retransmission() {
        let emu = faulty_emu(
            FaultPlan::lossy(11, 0.2),
            ReliableConfig::default(),
            SlackBudget::new(99_000_000),
        );
        let report = emu.run();
        assert_eq!(report.ttl_drops, 0, "no loops despite 20% message loss");
        assert_eq!(report.table_misses, 0);
        assert_eq!(report.timed_tasks_pending, 0, "every update landed");
        assert!(!report.rolled_back);
        let f = report.faults.expect("fault summary present");
        assert!(f.drops > 0, "the seed must actually drop something: {f}");
        assert!(
            f.retransmits > 0,
            "recovery must come from retransmission: {f}"
        );
        assert_eq!(f.exhausted, 0);
    }

    #[test]
    fn reboot_before_update_recovers_via_rearm() {
        // The agent reboots after the Arm messages went out (send at
        // update_at − 1s = 1s) and comes back 200 ms later — well
        // before its triggers fire at ≥ 2s. The recovery re-arm path
        // must restore the lost trigger.
        let plan = FaultPlan::quiet(3).with_reboot(1_100_000_000, SwitchId(1), 200_000_000);
        let emu = faulty_emu(
            plan,
            ReliableConfig::default(),
            SlackBudget::new(99_000_000),
        );
        let report = emu.run();
        assert!(report.clean(), "reboot recovery keeps the run clean");
        assert_eq!(report.timed_tasks_pending, 0);
        assert!(!report.rolled_back);
        let f = report.faults.expect("fault summary present");
        assert_eq!(f.reboots, 1);
        assert_eq!(f.triggers_lost, 1, "the reboot wiped one armed trigger");
        assert!(f.triggers_armed >= 5, "the lost trigger was re-armed: {f}");
        assert_eq!(f.triggers_fired, 4, "each task still applies exactly once");
    }

    #[test]
    fn dead_channel_with_zero_slack_rolls_back_to_two_phase() {
        // Every control message vanishes: retries exhaust, the
        // watchdog finds zero certified slack, and the run must fall
        // back to the two-phase path — which installs over the
        // *ideal* legacy channel and still completes the migration.
        let reliable = ReliableConfig {
            max_retries: 2,
            ..ReliableConfig::default()
        };
        let emu = faulty_emu(FaultPlan::lossy(5, 1.0), reliable, SlackBudget::zero());
        let report = emu.run();
        assert!(report.rolled_back, "zero slack must force the rollback");
        assert_eq!(
            report.timed_tasks_pending, 4,
            "the timed plan itself never lands"
        );
        assert_eq!(report.ttl_drops, 0, "two-phase fallback never loops");
        assert_eq!(report.table_misses, 0);
        let f = report.faults.expect("fault summary present");
        assert_eq!(f.rollbacks, 1, "rollback fires once, not per task");
        assert!(f.exhausted > 0, "retries ran dry first: {f}");
        // TP installs tagged duplicates + flip + cleanup: more events
        // than the four timed rewrites.
        assert!(report.applied_updates.len() > 4);
        let new_link = &report.bandwidth[&(SwitchId(0), SwitchId(3))];
        assert!(
            new_link.last().unwrap().offered_mbps > 0.7,
            "the fallback still migrates the traffic"
        );
    }

    #[test]
    fn clock_spike_within_slack_stays_clean() {
        // A +50 µs desync spike hits v2 before its trigger fires: the
        // switch fires 50 µs early — far inside the certified ±99 ms
        // tolerance, so the run stays consistent.
        // Baseline: the same seeds with no spike — deviations are just
        // the drawn clock offset/drift residuals.
        let quiet = faulty_emu(
            FaultPlan::quiet(9),
            ReliableConfig::default(),
            SlackBudget::new(99_000_000),
        )
        .run();
        let base_dev = quiet.faults.expect("fault summary").max_fire_deviation_ns;

        let plan = FaultPlan::quiet(9).with_spike(1_500_000_000, SwitchId(1), 50_000);
        let emu = faulty_emu(
            plan,
            ReliableConfig::default(),
            SlackBudget::new(99_000_000),
        );
        let report = emu.run();
        assert!(report.clean(), "an in-slack spike must not break the run");
        assert_eq!(report.timed_tasks_pending, 0);
        let f = report.faults.expect("fault summary present");
        assert_eq!(f.spikes, 1);
        assert!(
            f.max_fire_deviation_ns > base_dev,
            "the spike shows up as extra firing deviation: {} vs baseline {base_dev}",
            f.max_fire_deviation_ns
        );
        assert!(
            f.max_fire_deviation_ns < 99_000_000,
            "but stays inside the certified slack: {f}"
        );
    }
}
