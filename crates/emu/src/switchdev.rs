//! Emulated switches: flow table + ports + hardware clock.

use chronus_clock::{HardwareClock, Nanos, ScheduledExecutor};
use chronus_faults::DedupFilter;
use chronus_net::{LinkIdx, SwitchId};
use chronus_openflow::{Action, FlowMod, FlowModCommand, FlowTable, Packet, RuleId, TableError};
use std::collections::HashMap;

/// The reserved port a host hangs off (packet delivery).
pub const HOST_PORT: u16 = 0;

/// The switch's control agent: the software half that speaks to the
/// controller and drives timed triggers. It lives and dies separately
/// from the data plane — an agent reboot loses every armed trigger and
/// silences the control channel, but installed flow-table rules
/// survive (TCAM state persists across agent restarts).
#[derive(Clone, Debug)]
pub struct SwitchAgent {
    /// Timed triggers armed by the controller, fired by the local
    /// clock; the payload is `(task id, FlowMod)`.
    pub executor: ScheduledExecutor<(usize, FlowMod)>,
    /// Reliable-channel receiver dedup (retransmissions and wire
    /// duplicates are re-acked, never re-executed).
    pub dedup: DedupFilter,
    /// `false` while the agent is rebooting: control messages
    /// addressed to it are lost and triggers cannot fire.
    pub online: bool,
}

impl SwitchAgent {
    /// A fresh online agent driven by the switch's clock.
    pub fn new(clock: HardwareClock) -> Self {
        SwitchAgent {
            executor: ScheduledExecutor::new(clock),
            dedup: DedupFilter::new(),
            online: true,
        }
    }

    /// Applies a clock-desync spike of `offset_ns` to the agent's
    /// executor clock (callers also spike the switch's own clock).
    pub fn spike_clock(&mut self, offset_ns: Nanos) {
        self.executor.clock_mut().correct_offset(-offset_ns);
    }
}

/// One emulated switch.
#[derive(Clone, Debug)]
pub struct EmuSwitch {
    /// The switch's model id.
    pub id: SwitchId,
    /// Its flow table.
    pub table: FlowTable,
    /// Its (possibly skewed) hardware clock.
    pub clock: HardwareClock,
    /// Its control agent (timed triggers + channel state).
    pub agent: SwitchAgent,
    port_to_link: HashMap<u16, LinkIdx>,
    neighbor_to_port: HashMap<SwitchId, u16>,
    next_port: u16,
}

impl EmuSwitch {
    /// Creates a switch with an empty table.
    pub fn new(id: SwitchId, clock: HardwareClock) -> Self {
        EmuSwitch {
            id,
            table: FlowTable::new(),
            clock,
            agent: SwitchAgent::new(clock),
            port_to_link: HashMap::new(),
            neighbor_to_port: HashMap::new(),
            next_port: HOST_PORT + 1,
        }
    }

    /// Registers the outgoing link towards `neighbor`, assigning the
    /// next free port. Idempotent per neighbor.
    pub fn attach_link(&mut self, neighbor: SwitchId, link: LinkIdx) -> u16 {
        if let Some(&p) = self.neighbor_to_port.get(&neighbor) {
            return p;
        }
        let port = self.next_port;
        self.next_port += 1;
        self.neighbor_to_port.insert(neighbor, port);
        self.port_to_link.insert(port, link);
        port
    }

    /// The egress port towards `neighbor`, if attached.
    pub fn port_towards(&self, neighbor: SwitchId) -> Option<u16> {
        self.neighbor_to_port.get(&neighbor).copied()
    }

    /// The link behind an egress port.
    pub fn link_behind(&self, port: u16) -> Option<LinkIdx> {
        self.port_to_link.get(&port).copied()
    }

    /// Applies a FlowMod to the table.
    ///
    /// # Errors
    /// Any [`TableError`] from the table operation.
    pub fn apply_flowmod(&mut self, fm: &FlowMod) -> Result<Option<RuleId>, TableError> {
        match fm.command {
            FlowModCommand::Add => self
                .table
                .add(fm.priority, fm.mat, fm.actions.clone())
                .map(Some),
            FlowModCommand::ModifyActions => {
                let id = fm.rule.ok_or(TableError::NoSuchRule(RuleId(u64::MAX)))?;
                self.table.modify_actions(id, fm.actions.clone())?;
                Ok(None)
            }
            FlowModCommand::Delete => {
                let id = fm.rule.ok_or(TableError::NoSuchRule(RuleId(u64::MAX)))?;
                self.table.remove(id)?;
                Ok(None)
            }
        }
    }

    /// Runs a packet through the table (bumping counters) and applies
    /// header-rewriting actions, returning the possibly-rewritten
    /// packet and the egress decisions (`HOST_PORT` means deliver).
    pub fn forward(&mut self, mut packet: Packet) -> (Packet, Vec<u16>) {
        let actions = self.table.process(&packet);
        let mut out = Vec::new();
        for a in actions {
            match a {
                Action::Output(p) => out.push(p),
                Action::SetVlan(v) => packet.vlan = Some(v),
                Action::StripVlan => packet.vlan = None,
                Action::Flood => {
                    // Flood to every switch port except the ingress.
                    for &p in self.port_to_link.keys() {
                        if p != packet.in_port {
                            out.push(p);
                        }
                    }
                }
                Action::Drop => {}
            }
        }
        (packet, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chronus_openflow::{Ipv4Prefix, Match};

    fn sw() -> EmuSwitch {
        EmuSwitch::new(SwitchId(1), HardwareClock::perfect())
    }

    #[test]
    fn port_assignment_is_stable() {
        let mut s = sw();
        let p1 = s.attach_link(SwitchId(2), LinkIdx(0));
        let p2 = s.attach_link(SwitchId(3), LinkIdx(1));
        assert_ne!(p1, p2);
        assert_ne!(p1, HOST_PORT);
        assert_eq!(s.attach_link(SwitchId(2), LinkIdx(0)), p1, "idempotent");
        assert_eq!(s.port_towards(SwitchId(2)), Some(p1));
        assert_eq!(s.link_behind(p2), Some(LinkIdx(1)));
        assert_eq!(s.port_towards(SwitchId(9)), None);
    }

    #[test]
    fn flowmod_roundtrip() {
        let mut s = sw();
        let add = FlowMod::add(
            1,
            5,
            Match::dst_prefix(Ipv4Prefix::host(7)),
            vec![Action::Output(1)],
        );
        let id = s.apply_flowmod(&add).unwrap().unwrap();
        assert_eq!(s.table.len(), 1);
        let modify = FlowMod::modify(2, id, vec![Action::Output(2)]);
        s.apply_flowmod(&modify).unwrap();
        assert_eq!(s.table.rule(id).unwrap().actions, vec![Action::Output(2)]);
        let del = FlowMod::delete(3, id);
        s.apply_flowmod(&del).unwrap();
        assert!(s.table.is_empty());
        assert!(s.apply_flowmod(&del).is_err());
    }

    #[test]
    fn forward_applies_rewrites_and_outputs() {
        let mut s = sw();
        s.attach_link(SwitchId(2), LinkIdx(0));
        s.table
            .add(
                5,
                Match::dst_prefix(Ipv4Prefix::host(7)),
                vec![Action::SetVlan(2), Action::Output(1)],
            )
            .unwrap();
        let (pkt, out) = s.forward(Packet::new(HOST_PORT, 1, 7));
        assert_eq!(pkt.vlan, Some(2));
        assert_eq!(out, vec![1]);
        // Miss: no outputs.
        let (_, out) = s.forward(Packet::new(HOST_PORT, 1, 99));
        assert!(out.is_empty());
    }

    #[test]
    fn agent_reboot_semantics_lose_triggers_not_rules() {
        let mut s = sw();
        let id = s
            .apply_flowmod(&FlowMod::add(
                1,
                5,
                Match::dst_prefix(Ipv4Prefix::host(7)),
                vec![Action::Output(1)],
            ))
            .unwrap()
            .unwrap();
        s.agent.executor.arm(1_000, (0, FlowMod::delete(2, id)));
        assert_eq!(s.agent.executor.armed(), 1);
        // Reboot: agent state resets, TCAM survives.
        let lost = s.agent.executor.clear();
        s.agent.online = false;
        assert_eq!(lost, 1);
        assert_eq!(s.table.len(), 1, "data plane survives the reboot");
    }

    #[test]
    fn spike_shifts_the_agent_clock() {
        let mut s = sw();
        let before = s.agent.executor.clock().read(0);
        s.agent.spike_clock(500);
        assert_eq!(s.agent.executor.clock().read(0), before + 500);
        s.agent.spike_clock(-200);
        assert_eq!(s.agent.executor.clock().read(0), before + 300);
    }

    #[test]
    fn flood_skips_ingress() {
        let mut s = sw();
        s.attach_link(SwitchId(2), LinkIdx(0)); // port 1
        s.attach_link(SwitchId(3), LinkIdx(1)); // port 2
        s.table
            .add(1, Match::default(), vec![Action::Flood])
            .unwrap();
        let (_, mut out) = s.forward(Packet::new(1, 1, 2));
        out.sort_unstable();
        assert_eq!(out, vec![2]);
    }
}
