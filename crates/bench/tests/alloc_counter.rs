//! Counting-allocator regression test for the greedy hot path.
//!
//! The flat-arena work exists to take per-candidate heap traffic out
//! of the planning loop: simulation state lives in pooled
//! `SimArena` buffers, gate deltas recycle their undo vectors, and the
//! flat scan's tables are built once per run. This test pins that
//! property with a counting global allocator: after one warm-up run
//! has populated the workspace pools, a second run over the same
//! workspace must average **fewer than 150 heap allocations per
//! greedy step** — headroom for the per-step dependency-set build
//! (`build_set`'s BTreeMaps and chain vectors), candidate/heads
//! vectors, `Schedule` BTreeMap node churn and trace bookkeeping, but
//! far below what a reintroduced per-candidate-*evaluation* allocation
//! costs: evaluations run per pending switch per step, so even one
//! stray `Vec` per evaluation multiplies the per-step count several
//! times over and trips the bound. (The committed run measures
//! ~96/step; the report also emits per-candidate and per-gate-check
//! rates for eyeballing in CI logs.)
//!
//! (An integration test gets its own binary, so the global allocator
//! here cannot interfere with any other test.)

use chronus_bench::fig10::scale_instance;
use chronus_core::greedy::{greedy_schedule_in, GreedyConfig};
use chronus_timenet::SimWorkspace;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);

struct CountingAlloc;

// SAFETY: delegates allocation to `System` unchanged; the counter is a
// relaxed atomic side effect.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: forwards `layout` to `System.alloc` untouched; the
    // caller's layout obligations pass through unchanged.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    // SAFETY: forwards `ptr`/`layout` to `System.dealloc`; the caller
    // guarantees `ptr` came from this allocator with that layout.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    // SAFETY: forwards to `System.realloc`; the caller guarantees
    // `ptr`/`layout` validity and a nonzero `new_size`.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn warm_greedy_runs_nearly_allocation_free() {
    let inst = (0..8)
        .find_map(|s| scale_instance(512, 20170605 + 977 + s))
        .expect("fig10-scale instance at n=512");
    let cfg = GreedyConfig {
        verify: chronus_verify::VerifyConfig::disabled(),
        ..Default::default()
    };

    // Warm-up: populates the workspace arena pools, sizes the ledger
    // rows, and leaves every reusable buffer parked.
    let mut ws = SimWorkspace::default();
    let warm = greedy_schedule_in(&inst, cfg, &mut ws).expect("feasible");
    assert!(warm.simulator_calls > 0);

    // Measured run: same workspace, so only per-run state (schedule
    // nodes, round traces, scan tables) may touch the allocator.
    let before = ALLOCS.load(Ordering::Relaxed);
    let out = greedy_schedule_in(&inst, cfg, &mut ws).expect("feasible");
    let allocs = ALLOCS.load(Ordering::Relaxed) - before;

    let checks = out.simulator_calls as u64;
    let committed: u64 = out.rounds.iter().map(|r| r.committed.len() as u64).sum();
    let per_candidate = allocs as f64 / committed.max(1) as f64;
    println!(
        "warm greedy @512: {allocs} allocations over {committed} committed \
         candidates ({per_candidate:.1} per candidate; {checks} gate checks, \
         {:.1} per check; {} steps, {:.1} per step), arena high-water {} B",
        allocs as f64 / checks.max(1) as f64,
        out.rounds.len(),
        allocs as f64 / out.rounds.len().max(1) as f64,
        out.arena_bytes
    );
    assert_eq!(
        out.makespan, warm.makespan,
        "warm run must not change the schedule"
    );
    let _ = per_candidate;
    let per_step = allocs as f64 / out.rounds.len().max(1) as f64;
    assert!(
        per_step < 150.0,
        "warm greedy run allocated {per_step:.1} times per step (≥ 150): \
         a hot-path allocation crept back in"
    );
}
