//! # chronus-bench — the experiment harness
//!
//! One module (and one binary under `src/bin/`) per table/figure of
//! the paper's evaluation (§V). Every experiment is a library function
//! returning plain data, so the binaries, the integration tests and
//! EXPERIMENTS.md all draw from the same code:
//!
//! | Paper artifact | Module | Binary |
//! |---|---|---|
//! | Table II (flow tables)            | [`table2`]      | `table2` |
//! | Figs. 1/2/3/5 worked example      | [`walkthrough`] | `walkthrough` |
//! | Fig. 6 (bandwidth vs time)        | [`fig6`]        | `fig6` |
//! | Fig. 7 (% congestion-free)        | [`sweep`]       | `fig7` |
//! | Fig. 8 (# congested links)        | [`sweep`]       | `fig8` |
//! | Fig. 9 (# forwarding rules)       | [`fig9`]        | `fig9` |
//! | Fig. 10 (running time)            | [`fig10`]       | `fig10` |
//! | Fig. 11 (update-time CDF)         | [`fig11`]       | `fig11` |
//! | Multi-flow extension (beyond paper) | [`multiflow`] | `multiflow` |
//!
//! Each binary accepts `--runs`, `--instances` and `--budget-ms` to
//! scale between a seconds-long smoke run (the defaults) and the
//! paper-scale configuration (`--paper`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(
    not(test),
    deny(clippy::unwrap_used, clippy::expect_used, clippy::indexing_slicing)
)]

pub mod fig10;
pub mod fig11;
pub mod fig6;
pub mod fig9;
pub mod multiflow;
pub mod sweep;
pub mod table2;
pub mod util;
pub mod walkthrough;

use chronus_core::greedy::greedy_schedule;
use chronus_core::MutpProblem;
use chronus_net::{TimeStep, UpdateInstance};
use chronus_timenet::Schedule;

/// A schedule for every instance, even infeasible ones: the greedy
/// result when it exists, otherwise the greedy's partial progress
/// force-completed by updating the leftovers one per drain period
/// (so the simulation can still count how much congestion the
/// best effort causes — the Fig. 8 accounting for instances where no
/// clean schedule exists).
pub fn best_effort_schedule(instance: &UpdateInstance) -> Schedule {
    if let Ok(out) = greedy_schedule(instance) {
        return out.schedule;
    }
    // Force-complete: reverse final-path order, one update per drain
    // period — loop-safe ordering, congestion where unavoidable.
    // Harness-only path: panicking on a malformed instance is intended.
    #[allow(clippy::expect_used)]
    let problem = MutpProblem::new(instance).expect("generated instances are valid");
    let drain = problem.drain_bound();
    let mut schedule = Schedule::new();
    let mut t: TimeStep = 0;
    for (fi, flow) in instance.flows.iter().enumerate() {
        let pending = problem.pending(fi);
        let mut ordered: Vec<_> = flow
            .fin
            .hops()
            .iter()
            .rev()
            .filter(|v| pending.contains(v))
            .copied()
            .collect();
        // Any pending switch not on the final path (cannot happen by
        // construction, but stay total):
        for &v in pending {
            if !ordered.contains(&v) {
                ordered.push(v);
            }
        }
        for v in ordered {
            schedule.set(flow.id, v, t);
            t += drain;
        }
    }
    schedule
}

#[cfg(test)]
mod tests {
    use super::*;
    use chronus_net::{motivating_example, Flow, FlowId, NetworkBuilder, Path, SwitchId};
    use chronus_timenet::FluidSimulator;

    #[test]
    fn best_effort_matches_greedy_when_feasible() {
        let inst = motivating_example();
        let s = best_effort_schedule(&inst);
        let report = FluidSimulator::check(&inst, &s);
        assert!(report.congestion_free() && report.loop_free());
    }

    #[test]
    fn best_effort_always_complete_even_when_infeasible() {
        let sid = SwitchId;
        let mut b = NetworkBuilder::with_switches(4);
        b.add_link(sid(0), sid(1), 1, 1).unwrap();
        b.add_link(sid(1), sid(2), 1, 1).unwrap();
        b.add_link(sid(2), sid(3), 1, 1).unwrap();
        b.add_link(sid(0), sid(2), 1, 1).unwrap();
        let flow = Flow::new(
            FlowId(0),
            1,
            Path::new(vec![sid(0), sid(1), sid(2), sid(3)]),
            Path::new(vec![sid(0), sid(2), sid(3)]),
        )
        .unwrap();
        let inst = UpdateInstance::single(b.build(), flow).unwrap();
        let s = best_effort_schedule(&inst);
        assert!(s.validate(&inst).is_ok(), "all required switches scheduled");
        let report = FluidSimulator::check(&inst, &s);
        assert!(
            !report.congestion_free(),
            "fast shortcut congests regardless"
        );
    }
}
